#!/usr/bin/env python
"""Distributed hashtable GUPS benchmark (the paper's Fig. 9 scenario).

Inserts a stream of random keys into a table distributed over P ranks.
One-sided inserts are remote atomic compare-and-swaps (collisions chain
into an overflow heap via fetch-and-add); two-sided inserts route a
(ID, elem, pos) triplet to the owner with per-round synchronisation.

Demonstrates the paper's crossover: two-sided wins at P=2 (one message
beats a CAS round trip) while one-sided wins at scale — and Summit GPUs
stop scaling once inserts cross the X-Bus.

Run:  python examples/hashtable_gups.py
"""

import numpy as np

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.util import Table
from repro.workloads.hashtable import (
    HashTableConfig,
    generate_keys,
    run_hashtable,
)


def verify() -> None:
    cfg = HashTableConfig(total_inserts=2000, seed=3)
    keys = sorted(np.concatenate(generate_keys(cfg, 4)).tolist())
    for runtime, machine in (
        ("one_sided", perlmutter_cpu()),
        ("two_sided", perlmutter_cpu()),
        ("shmem", perlmutter_gpu()),
    ):
        res = run_hashtable(machine, runtime, cfg, 4)
        ok = sorted(res.extras["values"]) == keys
        extra = (
            f", collisions={res.extras['collisions']}"
            if res.extras["collisions"] is not None
            else ""
        )
        print(f"  {runtime:10s}: every key stored exactly once = {ok}{extra}")
        assert ok


def scaling() -> None:
    cfg = HashTableConfig(total_inserts=8000, seed=5)
    table = Table(
        ["machine", "variant", "P", "time (ms)", "KUPS", "one/two"],
        title=f"Hashtable insert times ({cfg.total_inserts} inserts)",
    )
    for P in (2, 8, 32, 128):
        one = run_hashtable(perlmutter_cpu(), "one_sided", cfg, P)
        two = run_hashtable(perlmutter_cpu(), "two_sided", cfg, P)
        table.add_row("perlmutter-cpu", "one_sided", P,
                      f"{one.time * 1e3:.2f}",
                      f"{one.extras['gups'] * 1e6:.0f}", "")
        table.add_row("perlmutter-cpu", "two_sided", P,
                      f"{two.time * 1e3:.2f}",
                      f"{two.extras['gups'] * 1e6:.0f}",
                      f"{one.time / two.time:.2f}x")
    for machine, Ps in ((perlmutter_gpu(), (1, 2, 4)), (summit_gpu(), (1, 3, 6))):
        for P in Ps:
            r = run_hashtable(machine, "shmem", cfg, P)
            table.add_row(machine.name, "shmem", P, f"{r.time * 1e3:.2f}",
                          f"{r.extras['gups'] * 1e6:.0f}", "")
    print(table.render())
    print(
        "\nPaper shape: one/two < 1 means one-sided is slower — true only"
        "\nat P=2; at 32-128 ranks the CAS stream wins (paper: 5x at 128)."
    )


def main() -> None:
    print("== correctness (all variants, 4 ranks) ==")
    verify()
    print("\n== scaling ==")
    scaling()


if __name__ == "__main__":
    main()
