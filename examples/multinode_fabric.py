#!/usr/bin/env python
"""Multi-node extension: Slingshot-11 and InfiniBand fabrics.

Builds two-node clusters from the single-node models and measures flood
bandwidth/latency across the switch against the on-node baselines —
extending the paper's Fig. 3 scope ("MPI on CPUs over InfiniBand and
Slingshot-11") beyond the node boundary.  Also verifies a stencil running
across two nodes against the serial reference.

Run:  python examples/multinode_fabric.py
"""

import numpy as np

from repro.machines import (
    INFINIBAND_EDR,
    SLINGSHOT11,
    make_cluster,
    perlmutter_cpu,
    summit_cpu,
)
from repro.util import Table, fmt_bytes
from repro.workloads.flood import run_flood
from repro.workloads.stencil import (
    StencilConfig,
    initial_grid,
    jacobi_reference,
    run_stencil,
)


def flood_study() -> None:
    table = Table(
        ["path", "runtime", "B", "msg/sync", "GB/s", "us/msg"],
        title="On-node vs inter-node flood",
    )
    cases = [
        ("perlmutter on-node", lambda: perlmutter_cpu(), "spread"),
        ("perlmutter <-SS11->",
         lambda: make_cluster(perlmutter_cpu(), 2, SLINGSHOT11), "block"),
        ("summit on-node", lambda: summit_cpu(), "spread"),
        ("summit <-IB-EDR->",
         lambda: make_cluster(summit_cpu(), 2, INFINIBAND_EDR), "block"),
    ]
    for label, factory, placement in cases:
        for B, n in ((64, 1), (65536, 64), (4 << 20, 64)):
            # Fresh machine per measurement: link cursors are stateful.
            r = run_flood(factory(), "two_sided", B, n, iters=2,
                          placement=placement)
            table.add_row(
                label, "two_sided", fmt_bytes(B), n,
                f"{r.bandwidth / 1e9:.2f}",
                f"{r.latency_per_message * 1e6:.2f}",
            )
    print(table.render())
    print(
        "\nThe fabric caps bandwidth at the NIC (25 / 12.5 GB/s) and the"
        "\nswitch roughly doubles the small-message latency."
    )


def cross_node_stencil() -> None:
    cluster = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
    cfg = StencilConfig(nx=32, ny=32, iters=5, mode="execute")
    res = run_stencil(cluster, "two_sided", cfg, 8, placement="block")
    ref = jacobi_reference(initial_grid(32, 32), 5)
    ok = np.allclose(res.extras["field"], ref)
    print(f"stencil across 2 nodes (8 ranks): correct = {ok}, "
          f"time = {res.time * 1e3:.3f} ms")
    assert ok


def main() -> None:
    flood_study()
    print()
    cross_node_stencil()


if __name__ == "__main__":
    main()
