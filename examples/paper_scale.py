#!/usr/bin/env python
"""Run the headline experiments at the paper's actual problem sizes.

The default benchmarks use scaled-down workloads so the whole suite
finishes in seconds; this script runs the paper-scale versions:

* Stencil: 16384 x 16384 grid, 1000 iterations (paper §III-A);
* HashTable: one million inserts (paper §III-C);
* SpTRSV: a larger supernodal matrix (the paper's 126Kx126K / 1e8-nnz
  factor is approached structurally; full size needs ~10 GB of dense
  blocks, so the default here is ~1/8 of it — raise --supernodes to go
  further).

Simulation is event-driven, so the wall time scales with *messages*, not
with the virtual seconds simulated. Expect a few minutes in total.

Run:  python examples/paper_scale.py [--quick]
"""

import argparse
import time

from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.util import Table
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.workloads.stencil import StencilConfig, run_stencil


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--quick", action="store_true",
                    help="1/10 of the paper sizes (for a fast look)")
    ap.add_argument("--supernodes", type=int, default=520)
    args = ap.parse_args()
    scale = 10 if args.quick else 1

    table = Table(["experiment", "config", "P", "virtual time", "wall (s)"],
                  title="Paper-scale runs")

    # Stencil: 16384^2, 1000 iterations.
    iters = 1000 // scale
    cfg = StencilConfig(nx=16384, ny=16384, iters=iters, mode="simulate")
    for P, machine in ((128, perlmutter_cpu()), (4, perlmutter_gpu())):
        runtime = "two_sided" if P == 128 else "shmem"
        w0 = time.perf_counter()
        res = run_stencil(machine, runtime, cfg, P)
        table.add_row("stencil", f"16384^2 x{iters}", P,
                      f"{res.time:.3f} s", f"{time.perf_counter() - w0:.1f}")

    # HashTable: 1e6 inserts.
    inserts = 1_000_000 // scale
    ht = HashTableConfig(total_inserts=inserts, seed=1)
    for runtime, P in (("one_sided", 128), ("two_sided", 128)):
        w0 = time.perf_counter()
        res = run_hashtable(perlmutter_cpu(), runtime, ht, P)
        table.add_row(f"hashtable/{runtime}", f"{inserts} inserts", P,
                      f"{res.time * 1e3:.1f} ms",
                      f"{time.perf_counter() - w0:.1f}")

    # SpTRSV: large supernodal matrix.
    n_sn = max(args.supernodes // scale, 60)
    matrix = generate_matrix(
        MatrixSpec(n_supernodes=n_sn, width_lo=3, width_hi=130, seed=2)
    )
    for runtime, P in (("two_sided", 32), ("one_sided", 32)):
        w0 = time.perf_counter()
        res = run_sptrsv(perlmutter_cpu(), runtime, matrix, P)
        table.add_row(
            f"sptrsv/{runtime}", f"n={matrix.n} nnz={matrix.nnz}", P,
            f"{res.time * 1e3:.2f} ms", f"{time.perf_counter() - w0:.1f}",
        )

    print(table.render())


if __name__ == "__main__":
    main()
