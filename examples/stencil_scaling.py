#!/usr/bin/env python
"""Stencil scaling study (the paper's Fig. 5 scenario).

Verifies the distributed Jacobi solver against the serial reference on a
small grid, then sweeps process counts on the paper's 16384^2 grid across
CPU two-sided, CPU one-sided, and GPU put-with-signal variants.

Run:  python examples/stencil_scaling.py
"""

import numpy as np

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.util import Table, fmt_bytes
from repro.workloads.stencil import (
    StencilConfig,
    initial_grid,
    jacobi_reference,
    run_stencil,
)


def verify() -> None:
    """Execute-mode run with real numerics, checked against serial Jacobi."""
    n, iters = 48, 8
    cfg = StencilConfig(nx=n, ny=n, iters=iters, mode="execute")
    ref = jacobi_reference(initial_grid(n, n), iters)
    for runtime, machine in (
        ("two_sided", perlmutter_cpu()),
        ("one_sided", perlmutter_cpu()),
        ("shmem", perlmutter_gpu()),
    ):
        res = run_stencil(machine, runtime, cfg, 4)
        ok = np.allclose(res.extras["field"], ref, atol=1e-12)
        print(f"  {runtime:10s}: field matches serial reference = {ok}")
        assert ok


def scaling() -> None:
    cfg = StencilConfig(nx=16384, ny=16384, iters=10, mode="simulate")
    table = Table(
        ["machine", "variant", "P", "halo msg", "time (ms)", "speedup vs P=4"],
        title="Stencil scaling, 16384^2 grid, 10 iterations",
    )
    base = {}
    for runtime in ("two_sided", "one_sided"):
        for P in (4, 16, 64, 128):
            res = run_stencil(perlmutter_cpu(), runtime, cfg, P)
            key = ("perlmutter-cpu", runtime)
            base.setdefault(key, res.time)
            table.add_row(
                "perlmutter-cpu",
                runtime,
                P,
                fmt_bytes(max(res.extras["halo_bytes"].values())),
                f"{res.time * 1e3:.2f}",
                f"{base[key] / res.time:.2f}x",
            )
    for machine, P_list in ((perlmutter_gpu(), (2, 4)), (summit_gpu(), (2, 6))):
        for P in P_list:
            res = run_stencil(machine, "shmem", cfg, P)
            key = (machine.name, "shmem")
            base.setdefault(key, res.time)
            table.add_row(
                machine.name,
                "shmem",
                P,
                fmt_bytes(max(res.extras["halo_bytes"].values())),
                f"{res.time * 1e3:.2f}",
                f"{base[key] / res.time:.2f}x",
            )
    print(table.render())
    print(
        "\nPaper shape: CPU one-sided == two-sided (bandwidth-bound); GPUs"
        "\nfaster via higher achieved bandwidth + in-kernel parallelism;"
        "\nstencil insensitive to Summit's dual-island topology."
    )


def main() -> None:
    print("== correctness (execute mode, 4 ranks, all variants) ==")
    verify()
    print("\n== scaling (simulate mode, paper-scale grid) ==")
    scaling()


if __name__ == "__main__":
    main()
