#!/usr/bin/env python
"""Fault injection: how each runtime degrades when the fabric misbehaves.

The paper's Message Roofline assumes a perfect network.  `repro.faults`
relaxes that: a seed-reproducible FaultPlan adds per-link loss, latency
jitter, outage windows and permanent degradation, and each transport
backend recovers with its own semantics — two-sided MPI retransmits off a
fast library ack timer, one-sided MPI only notices a lost Put at the next
flush (and re-syncs its window every retry), NVSHMEM retries in NIC
hardware.  This example sweeps the loss rate for all three and prints the
resulting "robustness roofline".

Run:  python examples/fault_injection.py
CLI:  repro fault perlmutter-cpu one_sided --loss 0.08
      repro run degradation
"""

from repro import faults
from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.util import fmt_bw
from repro.workloads.flood import run_flood

SIZE = 65536
MSGS = 64
LOSSES = (0.0, 0.02, 0.08, 0.2)
CASES = (
    ("two_sided", perlmutter_cpu()),
    ("one_sided", perlmutter_cpu()),
    ("shmem", perlmutter_gpu()),
)


def main() -> None:
    # 1. The degradation table: same flood, same seed, rising loss.
    print(f"64 KiB flood, {MSGS} msgs/sync, loss swept at seed=11")
    print(f"{'runtime':<12}" + "".join(f"{'loss=' + str(p):>13}" for p in LOSSES))
    for runtime, machine in CASES:
        row = []
        for loss in LOSSES:
            plan = faults.FaultPlan.uniform(loss=loss, seed=11)
            with faults.inject(plan):
                bw = run_flood(machine, runtime, SIZE, MSGS, iters=2).bandwidth
            row.append(bw)
        cells = "".join(f"{b / 1e9:>8.1f} GB/s" for b in row)
        print(f"{runtime:<12}{cells}")
    print()

    # 2. Fault accounting: the scope aggregates drops and recovery work.
    plan = faults.FaultPlan.uniform(loss=0.08, jitter=2e-6, seed=11)
    with faults.inject(plan) as scope:
        bw = run_flood(perlmutter_cpu(), "one_sided", SIZE, MSGS, iters=2)
    s = scope.stats()
    print(f"one_sided @ 8% loss + 2 us jitter : {fmt_bw(bw.bandwidth)}")
    print(
        f"  {int(s['drops'])} drops, {int(s['retransmits'])} retransmits, "
        f"{int(s['delivered_with_retry'])} messages needed >1 attempt"
    )
    print()

    # 3. Determinism: the same seed replays the identical schedule.
    def bw_at(seed):
        with faults.inject(faults.FaultPlan.uniform(loss=0.1, seed=seed)):
            return run_flood(perlmutter_cpu(), "two_sided", SIZE, MSGS).bandwidth

    a, b, c = bw_at(3), bw_at(3), bw_at(4)
    print(f"seed=3 twice : {fmt_bw(a)} == {fmt_bw(b)}  (bit-identical: {a == b})")
    print(f"seed=4       : {fmt_bw(c)}  (different draw sequence)")


if __name__ == "__main__":
    main()
