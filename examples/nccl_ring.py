#!/usr/bin/env python
"""NCCL-style ring allreduce on simulated GPUs (paper §V future work).

Compares host-initiated (CUDA-aware MPI) allreduce against the
GPU-initiated put-with-signal ring, single-stream and striped over the
A100's NVLink port group — and verifies the ring numerically.  All four
variants are one :func:`repro.collectives.run_collective` call each; the
selector's ``explain()`` shows why the ring wins at size.

Run:  python examples/nccl_ring.py
"""

import numpy as np

from repro.collectives import explain_collective, run_collective
from repro.machines import perlmutter_gpu, summit_gpu
from repro.util import Table


def verify() -> None:
    rng = np.random.default_rng(0)
    values = [rng.normal(size=64) for _ in range(4)]
    for stripes in (1, 4):
        r = run_collective(
            perlmutter_gpu(), "shmem", "allreduce",
            nranks=4, nelems=64, algorithm="ring", stripes=stripes,
            values=values,
        )
        ok = all(np.allclose(g, np.sum(values, axis=0)) for g in r.results)
        print(f"  ring (stripes={stripes}): matches numpy sum = {ok}")
        assert ok


def sweep() -> None:
    table = Table(
        ["machine", "variant", "elements", "time (us)", "bus GB/s"],
        title="Allreduce on 4 GPUs",
    )
    variants = (
        ("host-mpi", "two_sided", "recursive_doubling", 1),
        ("gpu-ring", "shmem", "ring", 1),
        ("gpu-ring-x4", "shmem", "ring", 4),
    )
    for mname, factory in (("perlmutter-gpu", perlmutter_gpu),
                           ("summit-gpu", summit_gpu)):
        for n in (4096, 262144, 4_194_304):
            for label, runtime, algorithm, stripes in variants:
                r = run_collective(
                    factory(), runtime, "allreduce",
                    nranks=4, nelems=n, algorithm=algorithm, stripes=stripes,
                )
                table.add_row(
                    mname, label, n, f"{r.time * 1e6:.1f}",
                    f"{r.bus_bandwidth / 1e9:.2f}",
                )
    print(table.render())
    print(
        "\nTakeaways: GPU-initiated wins everywhere (no host round trips);"
        "\na single-stream ring uses one of the A100's four NVLink ports,"
        "\nso V100 beats it — striping x4 (NCCL's multi-ring) recovers the"
        "\nport group and the A100 pulls ahead."
    )


def explain() -> None:
    sel = explain_collective(
        perlmutter_gpu(), "shmem", "allreduce", nranks=4, nbytes=4 << 20
    )
    print(sel.explain())


def main() -> None:
    print("== correctness ==")
    verify()
    print("\n== bandwidth sweep ==")
    sweep()
    print("\n== selector ==")
    explain()


if __name__ == "__main__":
    main()
