#!/usr/bin/env python
"""NCCL-style ring allreduce on simulated GPUs (paper §V future work).

Compares host-initiated (CUDA-aware MPI) allreduce against the
GPU-initiated put-with-signal ring, single-stream and striped over the
A100's NVLink port group — and verifies the ring numerically.

Run:  python examples/nccl_ring.py
"""

import numpy as np

from repro.comm import Job, allreduce
from repro.comm.gpu_collectives import run_ring_allreduce
from repro.machines import perlmutter_gpu, summit_gpu
from repro.util import Table


def verify() -> None:
    rng = np.random.default_rng(0)
    values = [rng.normal(size=64) for _ in range(4)]
    for stripes in (1, 4):
        out = run_ring_allreduce(
            perlmutter_gpu(), 4, 64, values=values, stripes=stripes
        )
        ok = all(
            np.allclose(g, np.sum(values, axis=0)) for g in out["results"]
        )
        print(f"  ring (stripes={stripes}): matches numpy sum = {ok}")
        assert ok


def host_time(machine, nelems: int) -> float:
    job = Job(machine, 4, "two_sided", placement="spread")

    def program(ctx):
        yield from ctx.barrier()
        t0 = ctx.sim.now
        yield from allreduce(ctx, np.zeros(nelems))
        return ctx.sim.now - t0

    return max(job.run(program).results)


def sweep() -> None:
    table = Table(
        ["machine", "variant", "elements", "time (us)", "algo GB/s"],
        title="Allreduce on 4 GPUs",
    )
    for mname, factory in (("perlmutter-gpu", perlmutter_gpu),
                           ("summit-gpu", summit_gpu)):
        for n in (4096, 262144, 4_194_304):
            t = host_time(factory(), n)
            bw = 2 * 3 / 4 * n * 8 / t
            table.add_row(mname, "host-mpi", n, f"{t * 1e6:.1f}",
                          f"{bw / 1e9:.2f}")
            for label, stripes in (("gpu-ring", 1), ("gpu-ring-x4", 4)):
                out = run_ring_allreduce(factory(), 4, n, stripes=stripes)
                table.add_row(
                    mname, label, n, f"{out['time'] * 1e6:.1f}",
                    f"{out['algo_bandwidth'] / 1e9:.2f}",
                )
    print(table.render())
    print(
        "\nTakeaways: GPU-initiated wins everywhere (no host round trips);"
        "\na single-stream ring uses one of the A100's four NVLink ports,"
        "\nso V100 beats it — striping x4 (NCCL's multi-ring) recovers the"
        "\nport group and the A100 pulls ahead."
    )


def main() -> None:
    print("== correctness ==")
    verify()
    print("\n== bandwidth sweep ==")
    sweep()


if __name__ == "__main__":
    main()
