#!/usr/bin/env python
"""A tour of the Message Roofline model (the paper's core contribution).

Walks through: building a roofline from a machine model, the sharp vs
rounded variants, fitting LogGP ceilings from simulated sweep data (as the
paper fits its diagonal ceilings from empirical dots), overlap-gain
analysis, and the Fig. 10 message-splitting variant — with ASCII log-log
plots.

Run:  python examples/roofline_tour.py
"""


from repro.machines import frontier_cpu, perlmutter_gpu
from repro.roofline import (
    MessageRoofline,
    Series,
    SplitModel,
    ascii_loglog,
    fit_loggp,
)
from repro.util import fmt_bw, fmt_bytes
from repro.workloads.flood import run_flood


def main() -> None:
    machine = frontier_cpu()
    params = machine.loggp(
        "one_sided", 0, 1, nranks=2, placement="spread", sided="one",
        ops_per_message=1,
    )
    roofline = MessageRoofline(params, name="frontier/one-sided")

    print("== 1. the model ==")
    print(f"L={params.L * 1e6:.2f} us  o={params.o * 1e6:.2f} us  "
          f"g={params.g * 1e6:.2f} us  peak={fmt_bw(params.peak_bandwidth)}  "
          f"o_sync={params.o_sync * 1e6:.2f} us")
    sizes = [2.0**k for k in range(3, 23)]
    chart_series = [
        Series(f"n={n}", [(B, float(roofline.bandwidth(B, n))) for B in sizes],
               marker=m)
        for n, m in ((1, "1"), (100, "2"), (10_000, "3"))
    ]
    print(ascii_loglog(
        chart_series, title="Message Roofline on Frontier",
        xlabel="message size (B)", ylabel="bytes/s",
    ))

    print("\n== 2. overlap gains (the msg/sync axis) ==")
    for B in (64, 4096, 1 << 20):
        gain = float(roofline.max_overlap_gain(B))
        print(f"  B={fmt_bytes(B):>8}: up to {gain:5.1f}x from message overlap")
    print("  (the paper: ~10x when latency dominates, ~1x when bandwidth-bound)")

    print("\n== 3. fitting ceilings from measured dots ==")
    samples = []
    for n in (1, 16, 256):
        for B in (64, 4096, 262144, 4 << 20):
            samples.append(
                run_flood(frontier_cpu(), "one_sided", B, n, iters=2).as_sample()
            )
    fit = fit_loggp(samples)
    print(f"  fitted: L+o={(fit.params.L + fit.params.o) * 1e6:.2f} us, "
          f"spacing={max(fit.params.o, fit.params.g) * 1e6:.2f} us, "
          f"peak={fmt_bw(fit.params.peak_bandwidth)}")
    print(f"  goodness: rms log-residual {fit.residual_rms:.3f} over "
          f"{fit.n_samples} samples")

    print("\n== 4. the Fig. 10 variant: split one message into four ==")
    split = SplitModel.from_machine(perlmutter_gpu(), "gpu0", "gpu1")
    print(f"  crossover volume : {fmt_bytes(split.crossover_volume(4))} "
          "(paper: ~131 KB)")
    print(f"  asymptotic gain  : {split.asymptotic_speedup(4):.2f}x "
          "(paper: up to 2.9x)")
    vols = [2.0**k for k in range(12, 25)]
    print(ascii_loglog(
        [Series("speedup(k=4)", [(V, float(split.speedup(V, 4))) for V in vols],
                marker="*"),
         Series("break-even", [(V, 1.0) for V in vols], marker="-")],
        title="Split-message speedup vs volume (Perlmutter GPUs)",
        xlabel="message volume (B)", ylabel="speedup",
        height=12,
    ))


if __name__ == "__main__":
    main()
