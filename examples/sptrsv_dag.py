#!/usr/bin/env python
"""Sparse triangular solve over a supernodal DAG (the paper's Fig. 8
scenario).

Generates a synthetic SuperLU-style supernodal matrix, prints its DAG and
communication-plan statistics, verifies the distributed solve against
scipy, and compares two-sided vs one-sided vs GPU variants — showing the
paper's result that one-sided SpTRSV *loses* on CPUs (four MPI ops plus a
user-built notification loop per message at one message per sync).

Run:  python examples/sptrsv_dag.py
"""

import numpy as np

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.util import Table
from repro.workloads.sptrsv import (
    BlockCyclicLayout,
    CommPlan,
    MatrixSpec,
    SpTrsvConfig,
    generate_matrix,
    reference_solve,
    run_sptrsv,
)


def main() -> None:
    # A verification-scale matrix with the paper's message-size profile.
    matrix = generate_matrix(
        MatrixSpec(n_supernodes=40, width_lo=3, width_hi=60, seed=11)
    )
    plan = CommPlan.build(matrix, BlockCyclicLayout.square_ish(4))
    print("== matrix & communication plan ==")
    print(plan.describe())

    print("\n== correctness (execute mode vs scipy) ==")
    b = np.linspace(1.0, 2.0, matrix.n)
    xref = reference_solve(matrix, b)
    cfg = SpTrsvConfig(mode="execute")
    for runtime, machine in (
        ("two_sided", perlmutter_cpu()),
        ("one_sided", perlmutter_cpu()),
        ("shmem", perlmutter_gpu()),
    ):
        res = run_sptrsv(machine, runtime, matrix, 4, cfg=cfg, b=b)
        err = float(np.max(np.abs(res.extras["x"] - xref)))
        print(f"  {runtime:10s}: max |x - x_ref| = {err:.2e}")
        assert err < 1e-9

    print("\n== performance (simulate mode, larger matrix) ==")
    big = generate_matrix(
        MatrixSpec(n_supernodes=220, width_lo=3, width_hi=130, seed=2)
    )
    table = Table(
        ["machine", "variant", "P", "time (ms)", "msgs", "one/two"],
        title=f"SpTRSV times (n={big.n}, nnz={big.nnz})",
    )
    for P in (1, 4, 16, 32):
        two = run_sptrsv(perlmutter_cpu(), "two_sided", big, P)
        one = run_sptrsv(perlmutter_cpu(), "one_sided", big, P)
        table.add_row("perlmutter-cpu", "two_sided", P,
                      f"{two.time * 1e3:.3f}", two.counters.messages, "")
        table.add_row("perlmutter-cpu", "one_sided", P,
                      f"{one.time * 1e3:.3f}", one.counters.messages,
                      f"{one.time / two.time:.2f}x")
    for machine, Ps in ((perlmutter_gpu(), (1, 2, 4)), (summit_gpu(), (1, 4, 6))):
        for P in Ps:
            r = run_sptrsv(machine, "shmem", big, P)
            table.add_row(machine.name, "shmem", P, f"{r.time * 1e3:.3f}",
                          r.counters.messages, "")
    print(table.render())
    print(
        "\nPaper shape: one-sided slower than two-sided on CPUs (4 ops +"
        "\nListing-1 polling per message); Perlmutter GPUs scale where"
        "\nSummit GPUs stall (NVLink3 latency + cheap signal polling)."
    )


if __name__ == "__main__":
    main()
