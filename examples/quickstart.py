#!/usr/bin/env python
"""Quickstart: simulate MPI on a modelled supercomputer in ~40 lines.

Builds the Perlmutter CPU model, runs a two-rank ping-pong and a flood
benchmark over the simulated Infinity Fabric, and places the measured
bandwidth on the Message Roofline.  Uses the stable ``repro`` facade
(``repro.Session``) — see ``docs/API.md`` for the full surface.

Run:  python examples/quickstart.py
"""

import repro
from repro.comm import Job
from repro.roofline import MessageRoofline
from repro.util import fmt_bw, fmt_time


def pingpong(ctx):
    """Each rank program is a generator; comm verbs advance virtual time."""
    if ctx.rank == 0:
        req = yield from ctx.isend(1, nbytes=8, payload=b"ping")
        yield from ctx.waitall([req])
        payload, status = yield from ctx.recv(source=1)
        return payload
    payload, _ = yield from ctx.recv(source=0)
    req = yield from ctx.isend(0, nbytes=8, payload=b"pong")
    yield from ctx.waitall([req])
    return payload


def main() -> None:
    machine = repro.get_machine("perlmutter-cpu")
    print(machine.describe())
    print()

    # 1. Ping-pong: the simulator's virtual clock gives the latency.
    job = Job(machine, 2, "two_sided", placement="spread")
    result = job.run(pingpong)
    print(f"ping-pong round trip : {fmt_time(result.time)}")
    print(f"one-way latency      : {fmt_time(result.time / 2)}  (paper: ~3.3 us)")
    print()

    # 2. Flood: n messages per synchronization -> sustained bandwidth.
    #    A Session pins the machine + backend once for every runner inside.
    print("flood bandwidth vs messages-per-sync (64 KiB messages):")
    with repro.Session(machine="perlmutter-cpu", backend=repro.TWO_SIDED) as s:
        for n in (1, 16, 256):
            r = s.run_flood(nbytes=65536, msgs_per_sync=n, iters=3)
            print(f"  n={n:4d}  {fmt_bw(r.bandwidth)}")
    print()

    # 3. The analytic Message Roofline bound for the same operating points.
    params = machine.loggp("two_sided", 0, 1, nranks=2, placement="spread",
                           sided="two")
    roofline = MessageRoofline(params, name="perlmutter-cpu/two-sided")
    print("Message Roofline bound at the same points:")
    for n in (1, 16, 256):
        print(f"  n={n:4d}  {fmt_bw(float(roofline.bandwidth(65536, n)))}")
    print()
    print(f"horizontal ceiling (peak): {fmt_bw(roofline.peak_bandwidth)}")


if __name__ == "__main__":
    main()
