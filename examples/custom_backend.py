#!/usr/bin/env python
"""Add a runtime backend in one file — no workload edits.

The paper's §V projection: one-sided MPI "can easily outperform the
two-sided" once the 4-op software emulation (Put / flush / Put(signal) /
flush + the Listing-1 polling receiver) becomes a single hardware
put-with-signal.  This example builds that NIC as a *user* backend:

1. subclass a built-in adapter (the fused op sequences are exactly the
   NVSHMEM ones, so :class:`ShmemBackend` already does the right thing),
   give it a name and a cost-profile key, and register it;
2. give a machine model the matching :class:`CommCosts` profile;
3. run the unchanged flood workload under the new name.

Every workload in the repo (stencil, SpTRSV, hashtable, flood) would
accept ``FUSED`` as its ``runtime`` argument — the runners emit
:class:`repro.ir.IRProgram` values lowered through
:func:`repro.ir.run_program` and never see the backend.  The declared
:class:`BackendCaps` is the backend's *entire* behavioural contract with
the rest of the repo: capability-driven consumers — the IR pass gates,
``Selection.explain``, :func:`repro.transport.require` selection, the
host-involvement ablation's overhead model — all pick it up from
:func:`repro.transport.capabilities` with zero extra code, and the last
sections demonstrate each one.

Run:  python examples/custom_backend.py
"""

import dataclasses

from repro import ir
from repro.machines import perlmutter_cpu
from repro.transport import (
    ONE_SIDED,
    TWO_SIDED,
    BackendCaps,
    capabilities,
    register_backend,
    require,
)
from repro.transport.shmem import ShmemBackend
from repro.util import fmt_bw
from repro.workloads.flood import run_flood

FUSED = "fused_put_nic"


class FusedPutNic(ShmemBackend):
    """Hypothetical CPU NIC with hardware put-with-signal.

    The op sequences (fused put+signal, true receiver notification) come
    from the parent adapter; only the name and the cost profile differ.
    Declare capabilities *first* and completely — every flag, not just
    the ones that differ from the default — because consumers branch on
    the caps table, never on the backend's name.
    """

    name = FUSED
    costs_key = FUSED
    sided = "shmem"  # fused-op accounting in the analytic rooflines
    caps = BackendCaps(
        remote_atomics=True,   # NIC-side fetch-add (hashtable workload)
        ops_per_message=1,     # the whole point: one fused op, not four
        gpu_initiated=False,   # host issues the verbs...
        host_bypass=False,     # ...and host polls completion
        fence_epochs=False,    # no epoch fence -> sync-elide stays off
        stream_ordered=False,  # no device stream ordering
    )
    description = "example: CPU NIC with hardware put-with-signal"


register_backend(FusedPutNic())

# Registering the same name twice is a loud, self-diagnosing error — the
# message names the incumbent class and description, so a double-import
# is identifiable without a debugger.  Opt-in shadowing: replace=True.
try:
    register_backend(FusedPutNic())
except ValueError as exc:
    _COLLISION = str(exc)
register_backend(FusedPutNic(), replace=True)  # idempotent re-run


def fused_machine():
    """Perlmutter CPU with a cost profile for the hypothetical NIC."""
    machine = perlmutter_cpu()
    one = machine.runtimes[ONE_SIDED]
    machine.runtimes[FUSED] = dataclasses.replace(
        one,
        put_signal=one.put,  # one fused issue instead of four ops
        wait_wakeup=1.0e-6,  # hardware notification wake
        poll_slot=0.0,  # no Listing-1 software scan
        wait_poll=2e-7,
    )
    return machine


def main() -> None:
    print("registered backend:", FusedPutNic.name)
    print("collision diagnostic:", _COLLISION)
    print()

    # The caps table now carries the user backend next to the built-ins,
    # and capability-predicate selection finds it without naming it:
    # require() returns every backend whose declared caps match.
    print("capabilities():")
    for name, caps in sorted(capabilities().items()):
        print(f"  {name:>16}: {caps.summary()}")
    fused_ops = require(ops_per_message=1, gpu_initiated=False)
    print(f"require(ops_per_message=1, gpu_initiated=False).candidates() = "
          f"{fused_ops.candidates()}")
    assert FUSED in fused_ops.candidates()
    print()

    # Small-message flood: sweep messages-per-sync and watch the
    # crossover.  With the 4-op emulation, one-sided trails two-sided at
    # every n (the paper's CPU result); the fused op flips the order.
    nbytes = 512
    print(f"flood bandwidth, {nbytes} B messages (paper Fig. 3 regime):")
    print(f"  {'n/sync':>7}  {'two_sided':>12}  {'one_sided':>12}  {FUSED:>14}")
    crossover = {ONE_SIDED: None, FUSED: None}
    for n in (1, 4, 16, 64, 256):
        bw = {}
        for runtime in (TWO_SIDED, ONE_SIDED, FUSED):
            machine = fused_machine()
            bw[runtime] = run_flood(machine, runtime, nbytes, n, iters=3).bandwidth
        for runtime in (ONE_SIDED, FUSED):
            if crossover[runtime] is None and bw[runtime] > bw[TWO_SIDED]:
                crossover[runtime] = n
        print(f"  {n:>7}  {fmt_bw(bw[TWO_SIDED]):>12}  "
              f"{fmt_bw(bw[ONE_SIDED]):>12}  {fmt_bw(bw[FUSED]):>14}")
    print()
    print(f"crossover vs two-sided: 4-op emulation at n={crossover[ONE_SIDED]}, "
          f"fused hardware op at n={crossover[FUSED]} — hardware support "
          "moves the paper's §V crossover to the smallest batches.")

    # The flood program is IR, so the pass pipeline applies to the user
    # backend unchanged: coalesce merges the 256 small posts per sync
    # into one bulk post, with a modeled-cost proof per rewrite.
    print()
    print("IR passes on the custom backend (repro ir explain, in-process):")
    with ir.passes(True), ir.collect() as reports:
        run_flood(fused_machine(), FUSED, nbytes, 256, iters=3)
    print(ir.explain_all(reports))

    # The host-involvement ablation's overhead model branches on the
    # caps table too, so the user backend gets a correctly-costed row
    # with zero extra code: ops_per_message=1 selects the fused
    # put_signal-per-message formula instead of the 4-op emulation.
    from repro.experiments.host_involvement import host_overhead

    machine = fused_machine()
    print()
    print("host_overhead (256 msgs, 3 syncs) via the caps table:")
    for runtime in (TWO_SIDED, ONE_SIDED, FUSED):
        h = host_overhead(machine, runtime, messages=256, syncs=3)
        print(f"  {runtime:>16}: {h * 1e6:8.1f} us")
    assert host_overhead(machine, FUSED, messages=256, syncs=3) < \
        host_overhead(machine, ONE_SIDED, messages=256, syncs=3)


if __name__ == "__main__":
    main()
