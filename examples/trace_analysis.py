#!/usr/bin/env python
"""Dissecting a run with the trace-analysis tools.

Runs a traced SpTRSV solve, then asks: what actually moved (message-size
distribution), when (achieved-bandwidth timeline), who talked to whom
(communication matrix), and what the DAG permits at best (critical-path
lower bound vs the measured makespan).

Run:  python examples/trace_analysis.py
"""

from repro.analysis import (
    analyze_dag,
    ascii_timeline,
    bandwidth_timeline,
    comm_matrix,
    latency_lower_bound,
    message_stats,
    rank_activity,
)
from repro.comm import Job
from repro.machines import perlmutter_cpu
from repro.transport import TWO_SIDED
from repro.util import fmt_bytes, fmt_time
from repro.workloads.sptrsv import (
    BlockCyclicLayout,
    CommPlan,
    MatrixSpec,
    generate_matrix,
)
from repro.workloads.sptrsv.runner import _mailbox_spec, _program_sptrsv


def main() -> None:
    matrix = generate_matrix(
        MatrixSpec(n_supernodes=80, width_lo=3, width_hi=80, seed=13)
    )
    nranks = 4
    plan = CommPlan.build(matrix, BlockCyclicLayout.square_ish(nranks))

    print("== DAG structure ==")
    profile = analyze_dag(matrix)
    print(" ", profile.summary())
    bound = latency_lower_bound(
        matrix, per_message_latency=3.3e-6, nranks=nranks
    )
    print(f"  latency lower bound at 3.3 us/message: {fmt_time(bound)}")

    # Traced distributed solve (two-sided, simulate mode).  The program is
    # runtime-neutral: the transport channel supplies the op sequence.
    job = Job(perlmutter_cpu(), nranks, TWO_SIDED, placement="block",
              trace=True)
    chan = job.channel(_mailbox_spec(plan, nranks, False))
    result = job.run(_program_sptrsv, plan, None, False, chan)
    makespan = max(r["time"] for r in result.results)
    print(f"  simulated solve makespan: {fmt_time(makespan)} "
          f"({makespan / bound:.1f}x the bound)")

    print("\n== what moved ==")
    stats = message_stats(job.tracer)
    print(f"  {stats.count} messages, {fmt_bytes(stats.total_bytes)} total")
    print(f"  sizes: min {fmt_bytes(stats.min_bytes)}, "
          f"median {fmt_bytes(stats.p50_bytes)}, "
          f"max {fmt_bytes(stats.max_bytes)} "
          "(paper: 24 B .. ~1 KiB)")
    print(f"  mean wire time {fmt_time(stats.mean_wire_time)}")

    print("\n== when it moved ==")
    print(ascii_timeline(bandwidth_timeline(job.tracer, nbins=12)))

    print("\n== who talked to whom (KiB) ==")
    m = comm_matrix(job.tracer, nranks) / 1024
    header = "        " + "".join(f"-> r{j:<5d}" for j in range(nranks))
    print(header)
    for i in range(nranks):
        cells = "".join(f"{m[i, j]:8.1f}" for j in range(nranks))
        print(f"  r{i}  {cells}")

    print("\n== per-rank activity ==")
    for rank, counts in sorted(rank_activity(job.tracer).items()):
        print(f"  rank {rank}: {counts['send']} sends, "
              f"{counts['arrive']} receives")


if __name__ == "__main__":
    main()
