"""Inter-node extension: two-node Perlmutter over Slingshot-11 and two-node
Summit over InfiniBand EDR, against their on-node baselines.

Run: ``pytest benchmarks/bench_internode.py --benchmark-only -s``
"""

from repro.experiments import run_internode

from _harness import run_and_check


def test_internode(benchmark):
    run_and_check(benchmark, run_internode)
