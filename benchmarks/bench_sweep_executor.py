"""Benchmark the sweep executor: parallel speedup and cache-warm reads.

Times the fig09 hashtable sweep (15 points, the heaviest per-point
experiment) four ways — serial, process-pool parallel, cache-cold, and
cache-warm — and writes ``benchmarks/output/BENCH_sweep.json``.  The two
headline checks:

* the process pool beats serial wall time (``parallel_speedup > 1``) —
  demanded strictly when more than one core is available, relaxed to
  "pool overhead stays under 15%" on single-core machines where no wall
  time can be recovered;
* a cache-warm rerun is at least 5x faster than the cache-cold run;
* chunked dispatch recovers real parallelism: a synthetic sweep of
  blocking points (sleeps, so the check is honest on single-core
  runners) must come out at least 2x faster with ``jobs=4`` than serial
  — this pins the fix for the per-point-future overhead that used to
  make parallel sweeps *slower* than serial (speedup 0.97).

Run standalone (``python benchmarks/bench_sweep_executor.py``) or via the
benchmark suite (``pytest benchmarks/bench_sweep_executor.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import sys
import tempfile
import time

from repro.experiments import run_fig09
from repro.sweep import ResultCache, SweepSpec, execution, run_sweep

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_sweep.json"

_KWARGS = {"total_inserts": 8000, "seed": 5}  # run_fig09 defaults, pinned

# Synthetic chunked-dispatch sweep: each point blocks (releases the CPU)
# for a fixed interval, so overlap across pool workers is measurable even
# on a single-core runner.
_SLEEP_POINTS = 16
_SLEEP_SECONDS = 0.05
_SLEEP_JOBS = 4


def _sleep_point(params, seed):
    time.sleep(_SLEEP_SECONDS)
    return {"x": params["x"], "seed": seed}


def _sleep_spec() -> SweepSpec:
    return SweepSpec(
        name="bench-chunked",
        runner=_sleep_point,
        axes={"x": tuple(range(_SLEEP_POINTS))},
    )


def _timed_chunked(jobs: int) -> float:
    t0 = time.perf_counter()
    results = run_sweep(_sleep_spec(), jobs=jobs, cache=None)
    assert len(results) == _SLEEP_POINTS and all(r.ok for r in results)
    return time.perf_counter() - t0


def _timed(jobs: int, cache: ResultCache | None) -> tuple[float, int]:
    t0 = time.perf_counter()
    with execution(jobs=jobs, cache=cache):
        report = run_fig09(**_KWARGS)
    return time.perf_counter() - t0, len(report.rows)


def run_bench(jobs: int | None = None) -> dict:
    cores = multiprocessing.cpu_count()
    if jobs is None:
        jobs = max(2, min(4, cores))

    serial_s, npoints = _timed(jobs=1, cache=None)
    parallel_s, _ = _timed(jobs=jobs, cache=None)
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        cache = ResultCache(tmp)
        cold_s, _ = _timed(jobs=1, cache=cache)
        warm_s, _ = _timed(jobs=1, cache=cache)
        assert cache.stats()["hits"] == npoints, "warm run missed the cache"

    chunked_serial_s = _timed_chunked(jobs=1)
    chunked_parallel_s = _timed_chunked(jobs=_SLEEP_JOBS)
    chunked_speedup = chunked_serial_s / chunked_parallel_s

    result = {
        "bench": "sweep_executor",
        "experiment": "fig09",
        "points": npoints,
        "jobs": jobs,
        "cores": cores,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cache_cold_seconds": round(cold_s, 4),
        "cache_warm_seconds": round(warm_s, 4),
        "warm_speedup": round(cold_s / warm_s, 1),
        "chunked_points": _SLEEP_POINTS,
        "chunked_jobs": _SLEEP_JOBS,
        "chunked_serial_seconds": round(chunked_serial_s, 4),
        "chunked_parallel_seconds": round(chunked_parallel_s, 4),
        "chunked_parallel_speedup": round(chunked_speedup, 2),
        "checks": {
            "parallel_beats_serial": (
                parallel_s < serial_s
                if cores > 1
                else parallel_s < serial_s * 1.15
            ),
            "warm_at_least_5x_faster_than_cold": cold_s >= 5 * warm_s,
            "chunked_parallel_speedup_at_least_2x": chunked_speedup >= 2.0,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_sweep_executor_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"sweep bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
