"""Fig. 3: two-sided vs one-sided MPI sustained bandwidth on Perlmutter,
Frontier and Summit CPUs, with fitted LogGP ceilings.

Run: ``pytest benchmarks/bench_fig03_cpu_bandwidth.py --benchmark-only -s``
"""

from repro.experiments import run_fig03

from _harness import run_and_check


def test_fig03(benchmark):
    run_and_check(benchmark, run_fig03)
