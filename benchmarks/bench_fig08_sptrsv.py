"""Fig. 8: SpTRSV time — one-sided slower than two-sided on CPUs;
Perlmutter GPUs scale where Summit GPUs stall.

Run: ``pytest benchmarks/bench_fig08_sptrsv.py --benchmark-only -s``
"""

from repro.experiments import run_fig08

from _harness import run_and_check


def test_fig08(benchmark):
    run_and_check(benchmark, run_fig08)
