"""Benchmark the routed fabric: transfer throughput and layer contracts.

Drives a bully-loaded dragonfly fabric with adaptive routing + congestion
control and measures wall-clock routed transfers per second; writes
``benchmarks/output/BENCH_fabric.json``.  Gates:

* minimal-routing parity — a fabric built with ``routing="minimal"``
  produces bit-identical arrivals to the no-policy default (the
  golden-pinned path);
* adaptive routing detours under load (some decision leaves the minimal
  hops) and still replays bit-identically from the same schedule;
* congestion control engages (marks > 0) and backs off (rate < 1) under
  the flood;
* routed-transfer throughput stays useful (absolute floor here; CI
  additionally diffs against the committed baseline).

Run standalone (``python benchmarks/bench_fabric.py``) or via pytest.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.net import AdaptiveRouting, CongestionConfig, Fabric, dragonfly
from repro.sim import Simulator

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_fabric.json"

FABRIC = (4, 4, 1)  # dragonfly(groups, routers_per_group, nodes_per_router)
N_TRANSFERS = 20_000
NBYTES = 65536


def _pairs(topo):
    """A deterministic all-groups traffic pattern over the routers."""
    routers = topo.endpoints
    n = len(routers)
    return [(routers[i % n], routers[(i * 7 + 3) % n]) for i in range(64)]


def _run_schedule(routing, congestion):
    sim = Simulator()
    f = Fabric(
        sim, dragonfly(*FABRIC).topology, routing=routing, congestion=congestion
    )
    pairs = _pairs(f.topology)
    arrivals = []
    detoured = 0
    for i in range(N_TRANSFERS):
        src, dst = pairs[i % len(pairs)]
        if src == dst:
            continue
        d = f.transfer(src, dst, NBYTES)
        arrivals.append(d.arrival)
        if d.route.nhops > f.topology.route(src, dst).nhops:
            detoured += 1
    return f, arrivals, detoured


def _minimal_parity() -> bool:
    _f1, default, _ = _run_schedule(None, None)
    _f2, minimal, _ = _run_schedule("minimal", None)
    return default == minimal  # exact float equality, not approx


def run_bench() -> dict:
    parity = _minimal_parity()

    t0 = time.perf_counter()
    fabric, arrivals, detoured = _run_schedule(
        AdaptiveRouting(candidates=2), CongestionConfig()
    )
    elapsed = time.perf_counter() - t0
    per_sec = len(arrivals) / elapsed

    _f2, replay, _ = _run_schedule(AdaptiveRouting(candidates=2), CongestionConfig())
    deterministic = arrivals == replay

    cc = fabric.cc
    result = {
        "bench": "fabric",
        "fabric": f"dragonfly{FABRIC}",
        "transfers": len(arrivals),
        "nbytes": NBYTES,
        "throughput": {
            "routed_transfers_per_sec": round(per_sec, 1),
            "elapsed_s": round(elapsed, 4),
        },
        "adaptive": {
            "detoured_transfers": detoured,
            "cc_marks": cc.marks,
            "cc_backoffs": cc.backoffs,
        },
        "checks": {
            "minimal_routing_bit_identical_to_default": parity,
            "adaptive_detours_under_load": detoured > 0,
            "adaptive_schedule_deterministic": deterministic,
            "congestion_marks_under_load": cc.marks > 0,
            "congestion_backs_off": any(
                v < 1.0 for k, v in cc.stats().items() if k.startswith("cc.rate.")
            ),
            "throughput_at_least_10k_per_sec": per_sec >= 10_000,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_fabric_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"fabric bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
