"""Ablation 2: sharp vs rounded junction — how unreachable the ideal
roofline knee is.

Run: ``pytest benchmarks/bench_ablation_sharp.py --benchmark-only -s``
"""

from repro.experiments.ablations import run_ablation_sharp_junction

from _harness import run_and_check


def test_ablation_sharp(benchmark):
    run_and_check(benchmark, run_ablation_sharp_junction)
