"""Benchmark the stream-triggered backend's host-bypass win.

Runs the small-message flood on a Perlmutter-CPU variant hosting the
hardware put-with-signal NIC (``one_sided_hw``) and writes
``benchmarks/output/BENCH_stream.json``:

* **sync-bound flood** (64 B, 1 msg/sync): every sync is a host round
  trip for ``one_sided_hw`` but free for ``stream_triggered`` — the
  headline gate requires stream to beat the hardware NIC by the
  documented **>= 1.3x** margin here (measured ~1.41x);
* **issue-bound flood** (4096 B, 64 msgs/sync): the device-initiation
  term is paid per message, so the margin narrows and may invert —
  recorded for the JSON but *not* gated (the honest shape: host bypass
  wins at sync points, not on issue rate);
* **lower-bound sweep**: across the whole grid, stream modeled time
  never exceeds host-driven ``one_sided`` (the 4-op emulation);
* **ablation integration**: ``run_host_involvement`` paper-shape
  expectations all hold.

Throughput (simulated stream floods per wall-clock second) feeds the CI
regression gate: a fresh run must stay within 20% of the committed
JSON.  Run standalone (``python benchmarks/bench_stream.py``) or via
pytest (``pytest benchmarks/bench_stream.py``).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.experiments.ablations import _with_hw_put_signal
from repro.experiments.host_involvement import run_host_involvement
from repro.machines import get_machine
from repro.transport import ONE_SIDED, ONE_SIDED_HW, STREAM_TRIGGERED
from repro.workloads.flood import run_flood

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_stream.json"

# (nbytes, msgs_per_sync) grid: sync-bound end first, issue-bound last.
GRID = ((64, 1), (64, 16), (512, 16), (4096, 64), (65536, 256))
SYNC_BOUND = (64, 1)
ISSUE_BOUND = (4096, 64)
MARGIN = 1.3  # documented host-bypass speedup at the sync-bound point

THROUGHPUT_REPS = 50
THROUGHPUT_POINT = (4096, 64)


def _machine():
    """Perlmutter CPU + the hypothetical put-with-signal NIC profile."""
    return _with_hw_put_signal(get_machine("perlmutter-cpu"))


def run_bench() -> dict:
    machine = _machine()
    runtimes = (ONE_SIDED, ONE_SIDED_HW, STREAM_TRIGGERED)
    grid = {}
    for nbytes, n in GRID:
        grid[(nbytes, n)] = {
            rt: run_flood(machine, rt, nbytes, n, iters=3).time_total
            for rt in runtimes
        }

    sync = grid[SYNC_BOUND]
    issue = grid[ISSUE_BOUND]
    sync_speedup = sync[ONE_SIDED_HW] / sync[STREAM_TRIGGERED]
    issue_speedup = issue[ONE_SIDED_HW] / issue[STREAM_TRIGGERED]
    stream_bounded = all(
        row[STREAM_TRIGGERED] <= row[ONE_SIDED] * (1 + 1e-12)
        for row in grid.values()
    )

    ablation = run_host_involvement()

    nbytes, n = THROUGHPUT_POINT
    t0 = time.perf_counter()
    for _ in range(THROUGHPUT_REPS):
        run_flood(machine, STREAM_TRIGGERED, nbytes, n, iters=3)
    wall = time.perf_counter() - t0

    result = {
        "bench": "stream",
        "machine": "perlmutter-cpu + hw put-signal NIC",
        "flood_grid": [
            {
                "nbytes": nb,
                "msgs_per_sync": n_,
                **{rt: round(t, 10) for rt, t in row.items()},
            }
            for (nb, n_), row in grid.items()
        ],
        "host_bypass": {
            "sync_bound_point": dict(zip(("nbytes", "msgs_per_sync"),
                                         SYNC_BOUND)),
            "speedup_vs_one_sided_hw": round(sync_speedup, 3),
            "documented_margin": MARGIN,
            "issue_bound_speedup": round(issue_speedup, 3),
        },
        "throughput": {
            "reps": THROUGHPUT_REPS,
            "wall_seconds": round(wall, 4),
            "stream_floods_per_sec": round(THROUGHPUT_REPS / wall, 1),
        },
        "checks": {
            "stream_beats_hw_nic_when_sync_bound":
                sync_speedup >= MARGIN,
            "stream_never_slower_than_one_sided": stream_bounded,
            "host_involvement_expectations_pass":
                ablation.all_expectations_met,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_stream_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"stream bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
