"""Fig. 1: Message Roofline overview on Frontier — sharp vs rounded model,
latency ceilings per msg/sync, measured dots.

Run: ``pytest benchmarks/bench_fig01_overview.py --benchmark-only -s``
"""

from repro.experiments import run_fig01

from _harness import run_and_check


def test_fig01(benchmark):
    run_and_check(benchmark, run_fig01)
