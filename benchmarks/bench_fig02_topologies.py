"""Fig. 2: node architectures of the four platforms, regenerated from the
machine models with the paper's structural facts asserted.

Run: ``pytest benchmarks/bench_fig02_topologies.py --benchmark-only -s``
"""

from repro.experiments import run_fig02

from _harness import run_and_check


def test_fig02(benchmark):
    run_and_check(benchmark, run_fig02)
