"""Ablation 1: the non-overlappable gap/overhead ceiling (LogGP's g and
o cannot be hidden by message concurrency).

Run: ``pytest benchmarks/bench_ablation_gap.py --benchmark-only -s``
"""

from repro.experiments.ablations import run_ablation_gap

from _harness import run_and_check


def test_ablation_gap(benchmark):
    run_and_check(benchmark, run_ablation_gap)
