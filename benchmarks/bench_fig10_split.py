"""Fig. 10: splitting one large message into four concurrent ones on
Perlmutter GPUs — up to ~2.9x past ~131 KB.

Run: ``pytest benchmarks/bench_fig10_split.py --benchmark-only -s``
"""

from repro.experiments import run_fig10

from _harness import run_and_check


def test_fig10(benchmark):
    run_and_check(benchmark, run_fig10)
