"""Benchmark the collectives subsystem (:mod:`repro.collectives`).

Sweeps ring/recursive allreduce across message sizes on each machine's
native transports and writes ``benchmarks/output/BENCH_collectives.json``
with three kinds of content:

* **sweep rows** — simulated time and NCCL-convention bus bandwidth per
  (machine, runtime, algorithm, size) cell, the numbers the ML-traffic
  experiments build on;
* **checks** — correctness gates that make the numbers trustworthy:
  cross-backend accounting parity (same schedule, identical
  CollectiveStats), bulk-engine exactness (``perf.vectorized`` on/off
  byte-identical where the exclusivity gate engages), execute-mode
  numerics, and paper-shape orderings (GPU ring beats host MPI at
  bandwidth sizes);
* **throughput** — wall-clock simulated-collectives-per-second of the
  hot configuration, the regression gate CI compares against the
  committed baseline (>20% drop fails; see
  ``.github/workflows/ci.yml``).

Run standalone (``python benchmarks/bench_collectives.py``) or via
pytest (``pytest benchmarks/bench_collectives.py``).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

import numpy as np

from repro import perf
from repro.collectives import explain_collective, run_collective
from repro.machines import get_machine
from repro.transport import ONE_SIDED, SHMEM, TWO_SIDED

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_collectives.json"

# (machine, runtime, stripes): each machine's native transports.
PLATFORMS = [
    ("perlmutter-gpu", SHMEM, 4),
    ("perlmutter-gpu", TWO_SIDED, 1),
    ("perlmutter-cpu", ONE_SIDED, 1),
    ("perlmutter-cpu", TWO_SIDED, 1),
]
SIZES = [1 << 13, 1 << 17, 1 << 22]  # 8 KiB .. 4 MiB payload
P = 4

# The wall-clock throughput gate: the striped GPU ring, simulated
# back-to-back.  Sized to run in a few seconds of wall time.
HOT = {"machine": "perlmutter-gpu", "runtime": SHMEM, "nelems": 4096,
       "stripes": 4, "iters": 1000}


def _sweep():
    rows = []
    for machine_name, runtime, stripes in PLATFORMS:
        for nbytes in SIZES:
            for algorithm in ("ring", "recursive_doubling"):
                r = run_collective(
                    get_machine(machine_name), runtime, "allreduce",
                    nranks=P, nbytes=nbytes, algorithm=algorithm,
                    stripes=stripes if algorithm == "ring" else 1,
                )
                rows.append({
                    "machine": machine_name,
                    "runtime": runtime,
                    "algorithm": algorithm,
                    "nbytes": nbytes,
                    "time_us": round(r.time * 1e6, 3),
                    "bus_gbps": round(r.bus_bandwidth / 1e9, 3),
                })
    return rows


def _check_accounting_parity() -> bool:
    """Same plan, native transports, identical CollectiveStats."""
    ok = True
    for machine_name, runtimes in (
        ("perlmutter-gpu", (SHMEM, TWO_SIDED)),
        ("perlmutter-cpu", (ONE_SIDED, TWO_SIDED)),
    ):
        stats = [
            run_collective(get_machine(machine_name), rt, "allreduce",
                           nranks=P, nelems=1024,
                           algorithm="ring").stats.as_dict()
            for rt in runtimes
        ]
        ok = ok and all(s == stats[0] for s in stats)
    return ok


def _check_bulk_exact() -> bool:
    """vectorized on/off identical where the exclusivity gate engages."""
    kw = dict(coll="allreduce", nranks=P, nelems=8192, algorithm="ring",
              stripes=4)
    m = get_machine("perlmutter-gpu")
    with perf.vectorized(False):
        s = run_collective(m, SHMEM, **kw)
    with perf.vectorized(True):
        v = run_collective(m, SHMEM, **kw)
    return s.time == v.time and s.stats.as_dict() == v.stats.as_dict()


def _check_numerics() -> bool:
    rng = np.random.default_rng(11)
    vals = [rng.integers(-9, 9, size=16).astype(np.float64)
            for _ in range(P)]
    r = run_collective(get_machine("perlmutter-gpu"), SHMEM, "allreduce",
                       nranks=P, nelems=16, algorithm="ring", stripes=4,
                       values=vals)
    want = np.sum(vals, axis=0)
    return all(np.array_equal(out, want) for out in r.results)


def _check_gpu_beats_host(rows) -> bool:
    by = {(r["machine"], r["runtime"], r["algorithm"], r["nbytes"]): r
          for r in rows}
    big = SIZES[-1]
    gpu = by[("perlmutter-gpu", SHMEM, "ring", big)]
    host = by[("perlmutter-gpu", TWO_SIDED, "ring", big)]
    return gpu["bus_gbps"] > host["bus_gbps"]


def _check_selector_consistent() -> bool:
    m = get_machine("perlmutter-gpu")
    ok = True
    for nbytes in (64, SIZES[-1]):
        sel = explain_collective(m, SHMEM, "allreduce", nranks=P,
                                 nbytes=nbytes)
        r = run_collective(m, SHMEM, "allreduce", nranks=P, nbytes=nbytes)
        ok = ok and r.algorithm == sel.algorithm
    return ok


def _throughput():
    m = get_machine(HOT["machine"])
    t0 = time.perf_counter()
    r = run_collective(m, HOT["runtime"], "allreduce", nranks=P,
                       nelems=HOT["nelems"], algorithm="ring",
                       stripes=HOT["stripes"], iters=HOT["iters"])
    wall = time.perf_counter() - t0
    return {
        **{k: v for k, v in HOT.items()},
        "wall_seconds": round(wall, 4),
        "collectives_per_sec": round(HOT["iters"] / wall, 1),
        "simulated_us_per_collective": round(r.time * 1e6, 3),
    }


def run_bench() -> dict:
    rows = _sweep()
    result = {
        "bench": "collectives",
        "nranks": P,
        "sweep": rows,
        "throughput": _throughput(),
        "checks": {
            "accounting_parity_across_backends": _check_accounting_parity(),
            "bulk_matches_scalar": _check_bulk_exact(),
            "execute_mode_matches_numpy": _check_numerics(),
            "gpu_ring_beats_host_mpi_at_4MiB": _check_gpu_beats_host(rows),
            "selector_agrees_with_explain": _check_selector_consistent(),
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_collectives_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"collectives bench checks failed: {failed}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
