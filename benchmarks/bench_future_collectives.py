"""Future work #2 (paper SectionV): NCCL-style ring allreduce — host-MPI vs
GPU-initiated, single-stream vs striped over the NVLink port group.

Run: ``pytest benchmarks/bench_future_collectives.py --benchmark-only -s``
"""

from repro.experiments import run_future_collectives

from _harness import run_and_check


def test_future_collectives(benchmark):
    run_and_check(benchmark, run_future_collectives)
