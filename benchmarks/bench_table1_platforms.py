"""Table I: evaluation-platform inventory regenerated from the machine
models.

Run: ``pytest benchmarks/bench_table1_platforms.py --benchmark-only -s``
"""

from repro.experiments import run_table1

from _harness import run_and_check


def test_table1(benchmark):
    run_and_check(benchmark, run_table1)
