"""Fig. 6: Message-Roofline communication bounds of HashTable, Stencil
and SpTRSV on Perlmutter CPUs.

Run: ``pytest benchmarks/bench_fig06_workload_bounds.py --benchmark-only -s``
"""

from repro.experiments import run_fig06

from _harness import run_and_check


def test_fig06(benchmark):
    run_and_check(benchmark, run_fig06)
