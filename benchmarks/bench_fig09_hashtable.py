"""Fig. 9: distributed hashtable time — CAS one-sided wins at scale,
loses at P=2; Summit GPUs stall across sockets.

Run: ``pytest benchmarks/bench_fig09_hashtable.py --benchmark-only -s``
"""

from repro.experiments import run_fig09

from _harness import run_and_check


def test_fig09(benchmark):
    run_and_check(benchmark, run_fig09)
