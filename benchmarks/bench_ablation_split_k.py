"""Ablation 5: message-split factor k (2/4/8) on the 4-channel NVLink
port group.

Run: ``pytest benchmarks/bench_ablation_split_k.py --benchmark-only -s``
"""

from repro.experiments.ablations import run_ablation_split_factor

from _harness import run_and_check


def test_ablation_split_k(benchmark):
    run_and_check(benchmark, run_ablation_split_factor)
