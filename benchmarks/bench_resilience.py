"""Benchmark the resilience stack: failover overhead and recovery gates.

Measures what the failure-domain machinery costs when nothing fails, and
proves the failover/recovery contracts on a dragonfly(4,4,1) fabric;
writes ``benchmarks/output/BENCH_resilience.json``.  Gates:

* no-fault parity — a fabric with ``routing="failover"`` and no fault
  plan produces bit-identical arrivals to the no-policy default;
* no-fault overhead — wall-clock routed-transfer throughput under
  failover routing stays within 10% of the default fabric (best-of-3
  timings for both);
* a single dead router (``g3r2``, a transit hop for the measured traffic
  but never one of its endpoints) kills minimal routing with a
  :class:`~repro.faults.FaultError` but completes under failover;
* the failover schedule under the dead router replays bit-identically;
* recoverable training on a cluster survives a mid-run router kill and
  replays bit-identically.

Run standalone (``python benchmarks/bench_resilience.py``) or via pytest.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
import time

from repro.cluster import Cluster, RecoveryConfig, run_recoverable_training
from repro.faults import FaultError, FaultPlan, RouterFaults
from repro.faults.inject import FaultInjector
from repro.net import Fabric, FailoverRouting, dragonfly
from repro.sim import Simulator
from repro.workloads.ml import RecoverableTrainingSpec

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_resilience.json"

FABRIC = (4, 4, 1)  # dragonfly(groups, routers_per_group, nodes_per_router)
N_TRANSFERS = 20_000
NBYTES = 65536
DEAD_ROUTER = "g3r2"  # transit router for g3<->g2 traffic; never an endpoint below
MAX_OVERHEAD = 0.10  # no-fault failover may cost at most 10%

CLUSTER = "perlmutter-cpu-x8@dragonfly(4,2,2)"
KILL = 660e-6


def _pairs(topo):
    """A deterministic traffic pattern that transits (but never ends at)
    the victim router."""
    routers = [r for r in topo.endpoints if r != DEAD_ROUTER]
    n = len(routers)
    return [(routers[i % n], routers[(i * 7 + 3) % n]) for i in range(64)]


def _run_schedule(routing, plan=None, n=N_TRANSFERS):
    sim = Simulator()
    faults = FaultInjector(plan) if plan is not None else None
    f = Fabric(sim, dragonfly(*FABRIC).topology, routing=routing, faults=faults)
    pairs = _pairs(f.topology)
    arrivals = []
    for i in range(n):
        src, dst = pairs[i % len(pairs)]
        if src == dst:
            continue
        arrivals.append(f.transfer(src, dst, NBYTES).arrival)
    return f, arrivals


def _best_of(k, fn):
    best = math.inf
    out = None
    for _ in range(k):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _dead_router_plan():
    return FaultPlan(
        hard=(RouterFaults(DEAD_ROUTER, windows=((0.0, math.inf),)),)
    )


def _train(seed=7):
    plan = FaultPlan(hard=(RouterFaults("g0r0", windows=((KILL, math.inf),)),))
    cluster = Cluster(CLUSTER, faults=plan, routing=FailoverRouting(), seed=seed)
    return run_recoverable_training(
        cluster,
        RecoverableTrainingSpec(),
        nranks=4,
        config=RecoveryConfig(checkpoint_interval=2, checkpoint_cost=0.0),
        nodes=["n0", "n1", "n2", "n3"],
    )


def run_bench() -> dict:
    # -- no-fault parity + overhead (best of 3 each) ---------------------
    t_default, (_f, base_arrivals) = _best_of(3, lambda: _run_schedule(None))
    t_failover, (_f2, fo_arrivals) = _best_of(
        3, lambda: _run_schedule("failover")
    )
    parity = base_arrivals == fo_arrivals  # exact float equality
    overhead = t_failover / t_default - 1.0
    per_sec = len(fo_arrivals) / t_failover

    # -- a dead router: minimal dies, failover survives ------------------
    minimal_died = False
    try:
        _run_schedule("minimal", plan=_dead_router_plan(), n=2_000)
    except FaultError:
        minimal_died = True
    _f0, clean_2k = _run_schedule(None, n=2_000)
    f_kill, kill_arrivals = _run_schedule(
        "failover", plan=_dead_router_plan(), n=2_000
    )
    _f3, kill_replay = _run_schedule(
        "failover", plan=_dead_router_plan(), n=2_000
    )
    stats = f_kill.routing.stats()

    # -- job-level recovery on the cluster machine -----------------------
    train = _train()
    train_replay = _train()

    result = {
        "bench": "resilience",
        "fabric": f"dragonfly{FABRIC}",
        "transfers": len(fo_arrivals),
        "nbytes": NBYTES,
        "throughput": {
            "routed_transfers_per_sec": round(per_sec, 1),
            "elapsed_default_s": round(t_default, 4),
            "elapsed_failover_s": round(t_failover, 4),
            "no_fault_overhead": round(overhead, 4),
        },
        "failover": {
            "dead_router": DEAD_ROUTER,
            "detections": stats["detections"],
            "failovers": stats["failovers"],
            "partitions": stats["partitions"],
        },
        "recovery": {
            "completed": train.completed,
            "failures": train.failures,
            "blast_radius": train.blast_radius,
            "replayed_steps": train.replayed_steps,
            "makespan_us": round(train.makespan * 1e6, 3),
        },
        "checks": {
            "failover_clean_bit_identical_to_default": parity,
            "no_fault_overhead_within_10pct": overhead <= MAX_OVERHEAD,
            "minimal_routing_dies_on_dead_router": minimal_died,
            "failover_survives_dead_router": (
                len(kill_arrivals) == len(clean_2k) and stats["failovers"] > 0
            ),
            "failover_schedule_deterministic": kill_arrivals == kill_replay,
            "recovery_completes_after_router_kill": (
                train.completed and train.failures == 1
            ),
            "recovery_replay_bit_identical": train == train_replay,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_resilience_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"resilience bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
