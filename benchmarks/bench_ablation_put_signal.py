"""Ablation 3: hardware put-with-signal on CPUs — the paper's projection
that one-sided then easily outperforms two-sided.

Run: ``pytest benchmarks/bench_ablation_put_signal.py --benchmark-only -s``
"""

from repro.experiments.ablations import run_ablation_put_with_signal

from _harness import run_and_check


def test_ablation_put_signal(benchmark):
    run_and_check(benchmark, run_ablation_put_with_signal)
