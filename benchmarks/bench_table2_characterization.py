"""Table II: workload characterisation (msg/sync, words/msg, patterns)
measured from instrumented runs.

Run: ``pytest benchmarks/bench_table2_characterization.py --benchmark-only -s``
"""

from repro.experiments import run_table2

from _harness import run_and_check


def test_table2(benchmark):
    run_and_check(benchmark, run_table2)
