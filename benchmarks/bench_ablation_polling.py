"""Ablation 4: the Listing-1 receiver-notification polling cost as the
one-sided SpTRSV scaling limiter.

Run: ``pytest benchmarks/bench_ablation_polling.py --benchmark-only -s``
"""

from repro.experiments.ablations import run_ablation_polling

from _harness import run_and_check


def test_ablation_polling(benchmark):
    run_and_check(benchmark, run_ablation_polling)
