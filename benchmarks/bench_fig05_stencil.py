"""Fig. 5: stencil time on CPUs and GPUs; two-sided == one-sided on CPUs
(bandwidth-bound), GPUs win via bandwidth + parallelism.

Run: ``pytest benchmarks/bench_fig05_stencil.py --benchmark-only -s``
"""

from repro.experiments import run_fig05

from _harness import run_and_check


def test_fig05(benchmark):
    run_and_check(benchmark, run_fig05)
