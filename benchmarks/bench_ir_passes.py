"""Benchmark the IR pass pipeline: modeled win and execute-mode safety.

Applies ``coalesce`` + ``overlap`` to the flood and hashtable programs on
Perlmutter (CPU) and compares the cost model's pre-/post-pipeline totals;
writes ``benchmarks/output/BENCH_ir.json``.  Gates:

* coalesce + overlap deliver at least a 1.2x modeled speedup over the
  passes-off program for both workloads (the flood win is the paper's
  message-aggregation argument; the hashtable win folds owner-routed
  triplet batches);
* the pipeline changes *zero* execute-mode results — the stencil field
  and the hashtable value set are identical with passes on and off.

Run standalone (``python benchmarks/bench_ir_passes.py``) or via the
benchmark suite (``pytest benchmarks/bench_ir_passes.py``).
"""

from __future__ import annotations

import json
import pathlib
import sys

import numpy as np

from repro import ir
from repro.ir import build_pipeline, program_cost
from repro.machines.registry import get_machine
from repro.workloads.flood import build_flood_program, run_flood
from repro.workloads.hashtable.runner import (
    HashTableConfig,
    _plan_rounds,
    build_hashtable_program,
    generate_keys,
    run_hashtable,
)
from repro.workloads.hashtable.table import TableGeometry
from repro.workloads.stencil.runner import StencilConfig, run_stencil

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_ir.json"

MACHINE = "perlmutter-cpu"
PASSES = ("coalesce", "overlap")

# Flood: the paper's Fig. 3 sweet spot — small puts, many per sync.
_FLOOD = {"runtime": "one_sided", "nbytes": 4096, "msgs_per_sync": 64,
          "iters": 3}
# Hashtable: owner-routed triplets with a wide-enough window for the
# coalescer to find same-owner groups per round.
_HT = HashTableConfig(total_inserts=2000, sync_window=16)
_HT_NRANKS = 4


def _flood_ratio(machine) -> tuple[float, float, float]:
    program = build_flood_program(
        _FLOOD["runtime"], _FLOOD["nbytes"], _FLOOD["msgs_per_sync"],
        iters=_FLOOD["iters"],
    )
    pipe = build_pipeline(PASSES)
    before = program_cost(program, machine)
    rewritten, _ = pipe.run(program, machine)
    after = program_cost(rewritten, machine)
    return before, after, before / after


def _hashtable_ratio(machine) -> tuple[float, float, float]:
    geom = TableGeometry.for_inserts(
        _HT_NRANKS, _HT.total_inserts, load_factor=_HT.load_factor
    )
    keys = generate_keys(_HT, _HT_NRANKS)
    incoming = _plan_rounds(geom, keys, _HT_NRANKS, _HT.sync_window)
    program = build_hashtable_program(
        "two_sided", geom, keys, incoming, _HT.sync_window, _HT_NRANKS
    )
    pipe = build_pipeline(PASSES)
    before = program_cost(program, machine)
    rewritten, _ = pipe.run(program, machine)
    after = program_cost(rewritten, machine)
    return before, after, before / after


def _execute_mode_unchanged(machine) -> dict[str, bool]:
    cfg = StencilConfig(nx=32, ny=32, iters=3, mode="execute")
    base_field = run_stencil(machine, "one_sided", cfg, 4).extras["field"]
    ht_cfg = HashTableConfig(total_inserts=256, sync_window=16)
    base_values = run_hashtable(machine, "two_sided", ht_cfg, 4).extras["values"]
    base_flood = run_flood(machine, "one_sided", 4096, 64, iters=2)
    with ir.passes(list(PASSES)):
        on_field = run_stencil(machine, "one_sided", cfg, 4).extras["field"]
        on_values = run_hashtable(machine, "two_sided", ht_cfg, 4).extras["values"]
        on_flood = run_flood(machine, "one_sided", 4096, 64, iters=2)
    return {
        "stencil_field_identical": bool(np.array_equal(on_field, base_field)),
        "hashtable_values_identical": sorted(on_values) == sorted(base_values),
        "flood_modeled_time_improved": on_flood.time_total < base_flood.time_total,
    }


def run_bench() -> dict:
    machine = get_machine(MACHINE)
    f_before, f_after, f_ratio = _flood_ratio(machine)
    h_before, h_after, h_ratio = _hashtable_ratio(machine)
    accuracy = _execute_mode_unchanged(machine)

    result = {
        "bench": "ir_passes",
        "machine": MACHINE,
        "passes": list(PASSES),
        "flood": {
            **{k: v for k, v in _FLOOD.items()},
            "modeled_before_s": f_before,
            "modeled_after_s": f_after,
            "modeled_speedup": round(f_ratio, 2),
        },
        "hashtable": {
            "runtime": "two_sided",
            "total_inserts": _HT.total_inserts,
            "sync_window": _HT.sync_window,
            "nranks": _HT_NRANKS,
            "modeled_before_s": h_before,
            "modeled_after_s": h_after,
            "modeled_speedup": round(h_ratio, 2),
        },
        "checks": {
            "flood_coalesce_overlap_at_least_1_2x": f_ratio >= 1.2,
            "hashtable_coalesce_overlap_at_least_1_2x": h_ratio >= 1.2,
            **accuracy,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_ir_passes_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"ir bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench()
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
