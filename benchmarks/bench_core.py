"""Benchmark the vectorized bulk-transfer engine (:mod:`repro.perf`).

Times the two hot-loop workloads scalar vs vectorized and writes
``benchmarks/output/BENCH_core.json``:

* **flood**: one 32768-msg/sync shmem flood round (the paper's deep
  msg/sync axis) — every message is a fused ``put_signal_nbi`` on the
  same route;
* **hashtable epoch**: a 1e6-op remote CAS stream (the sender's-control
  insert pattern of the paper's hashtable and Fig. 4 CAS flood), the
  ISSUE's headline point — the vectorized engine must be **>= 5x**
  faster than the scalar event chain.

The scalar hashtable leg runs ``SCALAR_OPS`` ops and is extrapolated
linearly to 1e6 (the scalar path is O(events) = O(ops); per-op cost is
flat), keeping the bench under ~15 s; ``--full`` runs the scalar leg at
the full 1e6 ops instead.  Phase wall-clock is recorded through the
:mod:`repro.obs` span hooks and embedded in the JSON under ``"spans"``.

Both workloads are also checked for result parity (vectorized output ==
scalar output) at a reduced size, so the speedup numbers can never come
from computing something cheaper.

Run standalone (``python benchmarks/bench_core.py``) or via the
benchmark suite (``pytest benchmarks/bench_core.py``).  CI compares the
committed JSON against a fresh run and fails on a >20% vectorized
hashtable throughput regression (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro import perf
from repro.machines import get_machine
from repro.obs import SpanTracker
from repro.workloads.flood import run_cas_flood, run_flood

OUTPUT = pathlib.Path(__file__).parent / "output" / "BENCH_core.json"

FLOOD = {"machine": "perlmutter-gpu", "runtime": "shmem", "nbytes": 64,
         "msgs_per_sync": 32768, "iters": 1}
EPOCH_OPS = 1_000_000  # the 1e6-message hashtable epoch
SCALAR_OPS = 100_000  # scalar leg sample size (extrapolated to EPOCH_OPS)
CAS = {"machine": "perlmutter-cpu", "runtime": "one_sided"}


def _flood(vectorized: bool):
    with perf.vectorized(vectorized):
        t0 = time.perf_counter()
        r = run_flood(get_machine(FLOOD["machine"]), FLOOD["runtime"],
                      FLOOD["nbytes"], FLOOD["msgs_per_sync"],
                      iters=FLOOD["iters"])
        return time.perf_counter() - t0, r


def _epoch(vectorized: bool, n_ops: int):
    with perf.vectorized(vectorized):
        t0 = time.perf_counter()
        r = run_cas_flood(get_machine(CAS["machine"]), CAS["runtime"],
                          n_ops=n_ops)
        return time.perf_counter() - t0, r


def _parity() -> bool:
    """Vectorized results must equal scalar results (reduced sizes)."""
    with perf.vectorized(False):
        fs = run_flood(get_machine(FLOOD["machine"]), FLOOD["runtime"], 64, 256)
        cs = run_cas_flood(get_machine(CAS["machine"]), CAS["runtime"], n_ops=256)
    with perf.vectorized(True):
        fv = run_flood(get_machine(FLOOD["machine"]), FLOOD["runtime"], 64, 256)
        cv = run_cas_flood(get_machine(CAS["machine"]), CAS["runtime"], n_ops=256)
    return fs == fv and cs == cv


def run_bench(full: bool = False) -> dict:
    spans = SpanTracker()
    scalar_ops = EPOCH_OPS if full else SCALAR_OPS

    with spans.span("parity"):
        parity_ok = _parity()
    with spans.span("flood_scalar"):
        flood_scalar_s, _ = _flood(False)
    with spans.span("flood_vectorized"):
        flood_vec_s, _ = _flood(True)
    with spans.span("hashtable_scalar"):
        epoch_scalar_sample_s, _ = _epoch(False, scalar_ops)
    with spans.span("hashtable_vectorized"):
        epoch_vec_s, _ = _epoch(True, EPOCH_OPS)

    epoch_scalar_s = epoch_scalar_sample_s * (EPOCH_OPS / scalar_ops)
    flood_speedup = flood_scalar_s / flood_vec_s
    epoch_speedup = epoch_scalar_s / epoch_vec_s

    result = {
        "bench": "core",
        "flood": {
            **FLOOD,
            "scalar_seconds": round(flood_scalar_s, 4),
            "vectorized_seconds": round(flood_vec_s, 4),
            "speedup": round(flood_speedup, 2),
        },
        "hashtable_epoch": {
            **CAS,
            "ops": EPOCH_OPS,
            "scalar_sample_ops": scalar_ops,
            "scalar_seconds_extrapolated": round(epoch_scalar_s, 4),
            "vectorized_seconds": round(epoch_vec_s, 4),
            "vectorized_ops_per_sec": round(EPOCH_OPS / epoch_vec_s, 1),
            "speedup": round(epoch_speedup, 2),
        },
        "spans": {k: round(v, 4) for k, v in spans.totals().items()},
        "checks": {
            "vectorized_matches_scalar": parity_ok,
            "flood_vectorized_at_least_2x": flood_speedup >= 2.0,
            "hashtable_epoch_at_least_5x": epoch_speedup >= 5.0,
        },
    }
    OUTPUT.parent.mkdir(exist_ok=True)
    OUTPUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_core_bench():
    result = run_bench()
    failed = [k for k, ok in result["checks"].items() if not ok]
    assert not failed, f"core bench checks failed: {failed} in {result}"


def main() -> int:
    result = run_bench(full="--full" in sys.argv[1:])
    print(json.dumps(result, indent=2))
    print(f"wrote {OUTPUT}")
    return 0 if all(result["checks"].values()) else 1


if __name__ == "__main__":
    sys.exit(main())
