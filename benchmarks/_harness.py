"""Benchmark-suite support.

Every benchmark runs one paper experiment exactly once under
pytest-benchmark (wall time of the full reproduction pipeline), prints the
rendered report (visible with ``-s`` or on failure), saves it under
``benchmarks/output/``, and asserts the paper-shape expectations.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def run_and_check(benchmark, fn, **kwargs):
    """Benchmark one experiment runner and enforce its expectations."""
    report = benchmark.pedantic(
        lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    text = report.render()
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{report.experiment}.txt").write_text(text + "\n")
    failed = [k for k, ok in report.expectations.items() if not ok]
    assert not failed, f"paper-shape checks failed: {failed}"
    return report
