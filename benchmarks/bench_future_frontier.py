"""Future-work projection (paper SectionV): Frontier MI250X under ROC_SHMEM with the
signal wait emulated in software, compared against Perlmutter A100s.

Run: ``pytest benchmarks/bench_future_frontier.py --benchmark-only -s``
"""

from repro.experiments import run_future_frontier

from _harness import run_and_check


def test_future_frontier(benchmark):
    run_and_check(benchmark, run_future_frontier)
