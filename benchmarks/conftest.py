"""Benchmarks directory conftest (sys.path setup is handled by pytest
rootdir insertion; the shared helper lives in _harness.py)."""
