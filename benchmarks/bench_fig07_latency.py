"""Fig. 7: effective per-message latency of the three workloads —
hashtable (1e6 msg/sync) < stencil (4) < SpTRSV (1).

Run: ``pytest benchmarks/bench_fig07_latency.py --benchmark-only -s``
"""

from repro.experiments import run_fig07

from _harness import run_and_check


def test_fig07(benchmark):
    run_and_check(benchmark, run_fig07)
