"""Fig. 4: NVSHMEM GPU-initiated put-with-signal bandwidth and remote
atomic CAS latencies on Perlmutter and Summit GPUs.

Run: ``pytest benchmarks/bench_fig04_gpu_bandwidth.py --benchmark-only -s``
"""

from repro.experiments import run_fig04

from _harness import run_and_check


def test_fig04(benchmark):
    run_and_check(benchmark, run_fig04)
