"""The Session facade: one object composing obs + faults + sweep scopes."""

from __future__ import annotations

import pytest

import repro
from repro import faults, obs, sweep
from repro.sweep import SweepSpec


def _double(params, seed):
    return {"value": params["x"] * 2}


class TestSessionScopes:
    def test_composes_obs_faults_and_parallel_sweep(self):
        plan = faults.FaultPlan.uniform(loss=0.2, seed=3)
        with repro.Session(
            machine="perlmutter-cpu",
            backend=repro.ONE_SIDED,
            faults=plan,
            obs=True,
            jobs=2,
        ) as s:
            # All three ambient scopes are active inside the block.
            assert obs.current() is s.obs
            assert faults.current_plan() is plan
            assert sweep.current_execution().jobs == 2
            # A parallel sweep and a fault-injected workload in one scope.
            spec = SweepSpec(name="t", runner=_double, axes={"x": [1, 2, 3, 4]})
            results = sweep.run_sweep(spec)
            flood = s.run_flood(nbytes=4096, msgs_per_sync=32)
        assert [r.value["value"] for r in results] == [2, 4, 6, 8]
        assert flood.bandwidth > 0
        # The scopes produced their artefacts.
        stats = s.fault_stats()
        assert stats["delivered"] > 0
        assert set(stats) >= {"drops", "retransmits", "exhausted"}
        snap = s.obs.snapshot()
        assert any(k.startswith("fabric.") or "." in k for k in snap)
        # Everything is torn down outside the block.
        assert obs.current() is None
        assert faults.current_plan() is None
        assert sweep.current_execution().jobs == 1

    def test_scopes_are_optional(self):
        with repro.Session() as s:
            assert obs.current() is None
            assert faults.current_plan() is None
            assert sweep.current_execution().jobs == 1
            assert s.fault_stats() == {}

    def test_run_experiment_inside_session(self):
        with repro.Session(jobs=1) as s:
            report = s.run_experiment("fig02")
        assert report.rows

    def test_not_reentrant(self):
        s = repro.Session()
        with s:
            with pytest.raises(RuntimeError, match="re-entrant"):
                s.__enter__()
        # Fully exited: may be entered again.
        with s:
            pass


class TestSessionValidation:
    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.Session(backend="mpi3")

    def test_unknown_machine_rejected_eagerly(self):
        with pytest.raises(KeyError):
            repro.Session(machine="cray-1")

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            repro.Session(jobs=0)

    def test_runners_need_machine_and_backend(self):
        with repro.Session() as s:
            with pytest.raises(ValueError, match="machine"):
                s.run_flood(nbytes=64, msgs_per_sync=1)
        with repro.Session(machine="perlmutter-cpu") as s:
            with pytest.raises(ValueError, match="backend"):
                s.run_cas_flood(n_ops=1)


class TestTopLevelSurface:
    def test_reexports(self):
        for name in (
            "Session",
            "run_experiment",
            "run_sweep",
            "get_machine",
            "experiment_names",
            "machine_names",
            "backend_names",
        ):
            assert callable(getattr(repro, name)), name
        assert repro.TWO_SIDED == "two_sided"
        assert repro.ONE_SIDED == "one_sided"
        assert repro.SHMEM == "shmem"
        assert repro.ONE_SIDED_HW == "one_sided_hw"

    def test_run_experiment_unknown_name(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            repro.run_experiment("fig99")

    def test_name_listings(self):
        assert "fig09" in repro.experiment_names()
        assert "perlmutter-gpu" in repro.machine_names()
        assert set(repro.backend_names()) >= {"two_sided", "one_sided", "shmem"}
