"""Vectorized-vs-scalar parity on workload goldens, all five backends.

The bulk-transfer engine (:mod:`repro.perf`) must be *bit-identical* to
the scalar event chain — not approximately equal.  Every comparison here
is ``==`` on full result objects (times, counters, bandwidths, stored
values), with the engine force-enabled vs force-disabled via
:func:`repro.perf.vectorized`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import perf
from repro.experiments.ablations import _with_hw_put_signal
from repro.machines import get_machine
from repro.workloads.flood import run_cas_flood, run_flood
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.stencil import ProcessGrid, StencilConfig, run_stencil

# (backend, machine factory) — every registered transport backend.
BACKENDS = [
    ("two_sided", lambda: get_machine("perlmutter-cpu")),
    ("one_sided", lambda: get_machine("perlmutter-cpu")),
    ("shmem", lambda: get_machine("perlmutter-gpu")),
    ("one_sided_hw", lambda: _with_hw_put_signal(get_machine("perlmutter-cpu"))),
    ("stream_triggered", lambda: get_machine("perlmutter-gpu")),
]
IDS = [b for b, _ in BACKENDS]


def _both(run):
    """Run once scalar, once vectorized."""
    with perf.vectorized(False):
        scalar = run()
    with perf.vectorized(True):
        vector = run()
    return scalar, vector


@pytest.mark.parametrize("backend,machine_factory", BACKENDS, ids=IDS)
class TestBulkParity:
    def test_flood(self, backend, machine_factory):
        for nbytes, n in [(64, 1), (4096, 64), (64, 512)]:
            scalar, vector = _both(
                lambda: run_flood(machine_factory(), backend, nbytes, n, iters=2)
            )
            assert scalar == vector

    def test_cas_flood(self, backend, machine_factory):
        for n_ops in (1, 200):
            scalar, vector = _both(
                lambda: run_cas_flood(machine_factory(), backend, n_ops=n_ops)
            )
            assert scalar == vector

    def test_hashtable(self, backend, machine_factory):
        cfg = HashTableConfig(total_inserts=600, seed=2)
        scalar, vector = _both(
            lambda: run_hashtable(machine_factory(), backend, cfg, 4)
        )
        assert scalar.time == vector.time
        assert scalar.counters == vector.counters
        for a, b in zip(scalar.per_rank, vector.per_rank):
            assert a == b
        assert np.array_equal(
            np.sort(scalar.extras["values"]), np.sort(vector.extras["values"])
        )

    def test_stencil(self, backend, machine_factory):
        cfg = StencilConfig(nx=24, ny=24, iters=4, mode="execute")
        scalar, vector = _both(
            lambda: run_stencil(
                machine_factory(), backend, cfg, 4, grid=ProcessGrid(2, 2)
            )
        )
        assert scalar.time == vector.time
        assert scalar.counters == vector.counters
        assert np.array_equal(scalar.extras["field"], vector.extras["field"])
