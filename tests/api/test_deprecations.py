"""Renamed-parameter shims: legacy keywords keep working, warn once per
call site, and never mix with their replacements."""

from __future__ import annotations

import warnings

import pytest

from repro import _compat
from repro._compat import renamed_kwargs
from repro.machines import perlmutter_cpu
from repro.net.loggp import LogGPParams
from repro.workloads.flood import run_flood


@pytest.fixture(autouse=True)
def fresh_warned_sites():
    _compat._reset_warned()
    yield
    _compat._reset_warned()


PARAMS = LogGPParams(L=1e-6, o=2e-7, g=1e-7, G=1e-11, o_sync=1e-6)


class TestRenamedKwargs:
    def test_old_name_maps_to_new(self):
        with warnings.catch_warnings():
            warnings.simplefilter("always")  # keep -W error lanes green
            assert PARAMS.time_pipelined(64, nmsgs=5) == (
                PARAMS.time_pipelined(64, 5)
            )
            assert PARAMS.bandwidth_pipelined(64, nmsgs=5) == (
                PARAMS.bandwidth_pipelined(64, msgs_per_sync=5)
            )

    def test_warns_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):  # one site, many calls
                PARAMS.time_pipelined(64, nmsgs=5)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1
        assert "nmsgs" in str(dep[0].message)
        assert "msgs_per_sync" in str(dep[0].message)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            PARAMS.time_pipelined(64, nmsgs=5)  # a second, distinct site
        assert len(caught) == 1

    def test_new_name_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            PARAMS.time_pipelined(64, msgs_per_sync=5)
            PARAMS.time_pipelined(64, 5)

    def test_both_names_is_an_error(self):
        with pytest.raises(TypeError, match="deprecated"):
            PARAMS.time_pipelined(64, nmsgs=5, msgs_per_sync=5)

    def test_decorator_on_plain_function(self):
        @renamed_kwargs(count="n")
        def f(n):
            return n

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert f(count=3) == 3
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)


class TestFloodShims:
    def test_size_and_n_msgs_keywords(self):
        m = perlmutter_cpu()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = run_flood(m, "one_sided", size=4096, n_msgs=8, iters=1)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 2  # one per renamed keyword
        current = run_flood(
            perlmutter_cpu(), "one_sided", nbytes=4096, msgs_per_sync=8, iters=1
        )
        assert legacy == current

    def test_msg_bytes_and_count_keywords(self):
        m = perlmutter_cpu()
        with warnings.catch_warnings(record=True):
            warnings.simplefilter("always")
            legacy = run_flood(m, "two_sided", msg_bytes=64, count=4, iters=1)
        current = run_flood(
            perlmutter_cpu(), "two_sided", nbytes=64, msgs_per_sync=4, iters=1
        )
        assert legacy == current
