"""Phase spans: nesting, totals, injectable clocks."""

import pytest

from repro.obs.spans import SpanTracker


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestSpanTracker:
    def test_nested_paths_and_durations(self):
        spans = SpanTracker(clock=FakeClock())
        with spans.span("outer"):
            with spans.span("inner"):
                pass
        names = [s.name for s in spans.spans]
        assert names == ["outer/inner", "outer"]  # completion order
        inner, outer = spans.spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.duration > inner.duration

    def test_totals_sum_repeats(self):
        spans = SpanTracker(clock=FakeClock())
        for _ in range(3):
            with spans.span("warmup"):
                pass
        assert spans.totals() == {"warmup": 3.0}

    def test_span_closes_on_exception(self):
        spans = SpanTracker(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with spans.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in spans.spans] == ["boom"]
        assert spans._stack == []

    def test_slash_rejected(self):
        spans = SpanTracker()
        with pytest.raises(ValueError):
            with spans.span("a/b"):
                pass

    def test_snapshot_json_ready(self):
        spans = SpanTracker(clock=FakeClock())
        with spans.span("x"):
            pass
        (d,) = spans.snapshot()
        assert d["name"] == "x" and d["duration"] == 1.0 and d["depth"] == 0

    def test_virtual_clock_injection(self):
        t = {"now": 0.0}
        spans = SpanTracker(clock=lambda: t["now"])
        with spans.span("sim"):
            t["now"] = 5.0
        assert spans.totals()["sim"] == 5.0
