"""Metrics registry: instruments, bucketing edge cases, collectors."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timeline


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_on_and_between_edges(self):
        h = Histogram("w", edges=(1.0, 10.0, 100.0))
        h.observe(0.5)    # below first edge -> le_1
        h.observe(1.0)    # exactly on edge -> le_1 (inclusive upper bound)
        h.observe(5.0)    # -> le_10
        h.observe(100.0)  # exactly on last edge -> le_100
        h.observe(1e9)    # overflow -> le_inf
        snap = h.snapshot()
        assert snap["w.le_1"] == 2
        assert snap["w.le_10"] == 1
        assert snap["w.le_100"] == 1
        assert snap["w.le_inf"] == 1
        assert snap["w.count"] == 5
        assert snap["w.min"] == 0.5 and snap["w.max"] == 1e9

    def test_zero_edge_counts_zero_observations(self):
        h = Histogram("w", edges=(0.0, 1e-6))
        h.observe(0.0)
        h.observe(1e-7)
        assert h.snapshot()["w.le_0"] == 1

    def test_empty_histogram_snapshot(self):
        snap = Histogram("w", edges=(1.0,)).snapshot()
        assert snap["w.count"] == 0 and "w.min" not in snap
        assert math.isnan(Histogram("v", edges=(1.0,)).mean)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("w", edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("w", edges=())


class TestTimeline:
    def test_bins_accumulate_and_sort(self):
        tl = Timeline("bytes", bin_width=1.0)
        tl.observe(2.5, 10)
        tl.observe(0.1, 1)
        tl.observe(2.9, 5)
        assert tl.series() == [(0.5, 1.0), (2.5, 15.0)]

    def test_bad_width(self):
        with pytest.raises(ValueError):
            Timeline("x", bin_width=0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_flat(self):
        reg = MetricsRegistry()
        reg.counter("msgs").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("wait", edges=(1.0,)).observe(0.5)
        reg.timeline("bw", bin_width=1.0).observe(0.5, 4)
        snap = reg.snapshot()
        assert snap["msgs"] == 3 and snap["depth"] == 2
        assert snap["wait.le_1"] == 1
        assert snap["bw"] == [[0.5, 4.0]]

    def test_collectors_sum_merge_on_collision(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: {"link.bytes": 10.0, "only.a": 1.0})
        reg.register_collector(lambda: {"link.bytes": 5.0})
        snap = reg.snapshot()
        assert snap["link.bytes"] == 15.0 and snap["only.a"] == 1.0
