"""Metrics registry: instruments, bucketing edge cases, collectors."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Timeline


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_on_and_between_edges(self):
        h = Histogram("w", edges=(1.0, 10.0, 100.0))
        h.observe(0.5)    # below first edge -> le_1
        h.observe(1.0)    # exactly on edge -> le_1 (inclusive upper bound)
        h.observe(5.0)    # -> le_10
        h.observe(100.0)  # exactly on last edge -> le_100
        h.observe(1e9)    # overflow -> le_inf
        snap = h.snapshot()
        assert snap["w.le_1"] == 2
        assert snap["w.le_10"] == 1
        assert snap["w.le_100"] == 1
        assert snap["w.le_inf"] == 1
        assert snap["w.count"] == 5
        assert snap["w.min"] == 0.5 and snap["w.max"] == 1e9

    def test_zero_edge_counts_zero_observations(self):
        h = Histogram("w", edges=(0.0, 1e-6))
        h.observe(0.0)
        h.observe(1e-7)
        assert h.snapshot()["w.le_0"] == 1

    def test_empty_histogram_snapshot(self):
        snap = Histogram("w", edges=(1.0,)).snapshot()
        assert snap["w.count"] == 0 and "w.min" not in snap
        assert math.isnan(Histogram("v", edges=(1.0,)).mean)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("w", edges=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("w", edges=())


class TestHistogramQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(Histogram("w", edges=(1.0,)).quantile(0.99))

    def test_p_out_of_range_rejected(self):
        h = Histogram("w", edges=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_single_observation_every_p(self):
        h = Histogram("w", edges=(1.0, 10.0))
        h.observe(4.0)
        for p in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(p) == pytest.approx(4.0)

    def test_interpolates_inside_bucket(self):
        h = Histogram("w", edges=(0.0, 10.0, 20.0))
        for x in (2.0, 4.0, 6.0, 8.0):  # all in (0, 10]
            h.observe(x)
        # Median rank lands mid-bucket; bounds clamp to observed min/max.
        assert 2.0 <= h.quantile(0.5) <= 8.0
        assert h.quantile(1.0) == pytest.approx(8.0)

    def test_tail_quantiles_ordered_and_bounded(self):
        h = Histogram("w", edges=(1e-6, 1e-5, 1e-4))
        for i in range(1000):
            h.observe(1e-7 * (i + 1))  # up to 100 us, most below 10 us
        p50, p99, p999 = h.quantile(0.5), h.quantile(0.99), h.quantile(0.999)
        assert p50 <= p99 <= p999 <= h.max
        assert h.min <= p50

    def test_overflow_bucket_clamped_to_max(self):
        h = Histogram("w", edges=(1.0,))
        h.observe(0.5)
        h.observe(100.0)  # overflow bucket, open upper bound
        assert h.quantile(0.999) <= 100.0

    def test_snapshot_surfaces_tails(self):
        h = Histogram("w", edges=(1.0, 10.0))
        for x in (0.5, 2.0, 5.0, 20.0):
            h.observe(x)
        snap = h.snapshot()
        assert snap["w.p99"] == h.quantile(0.99)
        assert snap["w.p999"] == h.quantile(0.999)
        assert "w.p99" not in Histogram("v", edges=(1.0,)).snapshot()


class TestTimeline:
    def test_bins_accumulate_and_sort(self):
        tl = Timeline("bytes", bin_width=1.0)
        tl.observe(2.5, 10)
        tl.observe(0.1, 1)
        tl.observe(2.9, 5)
        assert tl.series() == [(0.5, 1.0), (2.5, 15.0)]

    def test_bad_width(self):
        with pytest.raises(ValueError):
            Timeline("x", bin_width=0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_flat(self):
        reg = MetricsRegistry()
        reg.counter("msgs").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("wait", edges=(1.0,)).observe(0.5)
        reg.timeline("bw", bin_width=1.0).observe(0.5, 4)
        snap = reg.snapshot()
        assert snap["msgs"] == 3 and snap["depth"] == 2
        assert snap["wait.le_1"] == 1
        assert snap["bw"] == [[0.5, 4.0]]

    def test_collectors_sum_merge_on_collision(self):
        reg = MetricsRegistry()
        reg.register_collector(lambda: {"link.bytes": 10.0, "only.a": 1.0})
        reg.register_collector(lambda: {"link.bytes": 5.0})
        snap = reg.snapshot()
        assert snap["link.bytes"] == 15.0 and snap["only.a"] == 1.0
