"""Trace sinks: ring eviction, JSONL round-trip, NullTracer storage."""

import json

import pytest

from repro.analysis.traces import from_records, load_jsonl, message_stats
from repro.obs.sinks import JsonlSink, RingBufferSink, record_from_json, record_to_json
from repro.sim.trace import NULL_SINK, ListSink, NullTracer, TraceRecord, Tracer


class TestRingBufferSink:
    def test_keeps_last_n(self):
        t = Tracer(sink=RingBufferSink(3))
        for i in range(10):
            t.emit(float(i), "send", 0, nbytes=i)
        assert len(t) == 3
        assert [r.t for r in t] == [7.0, 8.0, 9.0]
        assert t.sink.dropped == 7

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_under_capacity_keeps_all(self):
        t = Tracer(sink=RingBufferSink(100))
        t.emit(0.0, "send", 0, nbytes=1)
        assert len(t) == 1 and t.sink.dropped == 0

    def test_filter_and_totals_over_survivors(self):
        t = Tracer(sink=RingBufferSink(2))
        t.emit(0.0, "send", 0, nbytes=100)
        t.emit(1.0, "send", 0, nbytes=10)
        t.emit(2.0, "put", 1, nbytes=20)
        assert t.count("send") == 1
        assert t.total_bytes() == 30  # evicted record not counted

    def test_clear_resets_drop_count(self):
        s = RingBufferSink(1)
        s.append(TraceRecord(0.0, "x", 0))
        s.append(TraceRecord(1.0, "x", 0))
        assert s.dropped == 1
        s.clear()
        assert len(s) == 0 and s.dropped == 0


class TestJsonlSink:
    def test_round_trip_via_analysis_loader(self, tmp_path):
        path = tmp_path / "run.jsonl"
        t = Tracer(sink=JsonlSink(path))
        t.emit(1e-6, "net.transfer", -1, src="cpu0", dst="cpu1",
               nbytes=4096.0, start=1e-6, arrival=3e-6, nhops=1)
        t.emit(2e-6, "send", 0, dst=1, tag=7, nbytes=4096.0)
        t.sink.close()
        assert len(t) == 0  # nothing retained in memory
        assert t.sink.written == 2

        loaded = load_jsonl(path)
        assert len(loaded) == 2
        rec = loaded.records[0]
        assert rec.kind == "net.transfer" and rec.detail["dst"] == "cpu1"
        stats = message_stats(loaded)
        assert stats.count == 1 and stats.total_bytes == 4096.0

    def test_record_json_inverse(self):
        rec = TraceRecord(0.5, "put", 3, detail={"target": 1, "nbytes": 8.0})
        assert record_from_json(record_to_json(rec)) == rec

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "x.jsonl"
        with JsonlSink(path) as sink:
            Tracer(sink=sink).emit(0.0, "send", 0, nbytes=1)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_append_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.append(TraceRecord(0.0, "send", 0))

    def test_clear_truncates(self, tmp_path):
        path = tmp_path / "x.jsonl"
        sink = JsonlSink(path)
        t = Tracer(sink=sink)
        t.emit(0.0, "send", 0, nbytes=1)
        t.clear()
        t.emit(1.0, "send", 0, nbytes=2)
        sink.close()
        assert len(load_jsonl(path)) == 1


class TestTracerStorage:
    def test_default_sink_is_list(self):
        t = Tracer()
        assert isinstance(t.sink, ListSink)
        t.emit(0.0, "send", 0, nbytes=5)
        assert t.records[0].detail["nbytes"] == 5

    def test_null_tracer_shares_immutable_sink(self):
        a, b = NullTracer(), NullTracer()
        assert a.sink is NULL_SINK and b.sink is NULL_SINK
        a.emit(0.0, "send", 0, nbytes=5)
        assert len(a) == 0 and a.records == ()
        a.clear()  # no-op, no error

    def test_total_bytes_default_covers_one_sided_kinds(self):
        t = Tracer()
        t.emit(0.0, "send", 0, nbytes=1)
        t.emit(0.0, "put", 0, nbytes=2)
        t.emit(0.0, "put_signal", 0, nbytes=4)
        t.emit(0.0, "net.transfer", -1, nbytes=1000)  # fabric-level, excluded
        assert t.total_bytes() == 7
        assert t.total_bytes("send") == 1
        assert t.total_bytes(("put", "put_signal")) == 6

    def test_from_records_wraps_survivors(self):
        ring = RingBufferSink(2)
        src = Tracer(sink=ring)
        for i in range(5):
            src.emit(float(i), "send", 0, nbytes=1)
        wrapped = from_records(ring.records)
        assert wrapped.count("send") == 2
