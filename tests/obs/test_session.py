"""The ambient observation session: Job pickup, metrics wiring, spans."""

from repro import obs
from repro.comm.job import Job
from repro.obs.sinks import JsonlSink, RingBufferSink
from repro.sim.trace import NullTracer


def _flood(ctx, nbytes=64.0, n=8):
    if ctx.rank == 0:
        reqs = []
        for _ in range(n):
            r = yield from ctx.isend(1, nbytes=nbytes, tag=1)
            reqs.append(r)
        yield from ctx.waitall(reqs)
    else:
        for _ in range(n):
            yield from ctx.recv(source=0, tag=1)
    yield from ctx.barrier()


class TestAmbientPickup:
    def test_outside_session_defaults_unchanged(self, pm_cpu):
        job = Job(pm_cpu, 2, "two_sided")
        assert isinstance(job.tracer, NullTracer)
        assert job.metrics is None and job.obs is None

    def test_job_inside_session_feeds_metrics(self, pm_cpu):
        with obs.observe(obs.Obs()) as session:
            job = Job(pm_cpu, 2, "two_sided", placement="spread")
            job.run(_flood)
        snap = session.snapshot()
        assert snap["net.fabric.bytes"] == job.fabric.total_bytes
        assert snap["net.fabric.messages"] == job.fabric.total_messages
        assert snap["comm.two_sided.messages"] == 8
        assert snap["comm.two_sided.bytes_sent"] == 8 * 64.0
        # Tracing off by default even inside a session.
        assert isinstance(job.tracer, NullTracer)

    def test_session_is_stacked_and_popped(self, pm_cpu):
        assert obs.current() is None
        with obs.observe() as outer:
            assert obs.current() is outer
            with obs.observe() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is None

    def test_per_link_bytes_reconcile_on_single_hop(self, pm_cpu):
        """All flood traffic crosses exactly one link (spread placement on
        a 2-rank job), so per-link bytes must equal Fabric.total_bytes."""
        with obs.observe(obs.Obs()) as session:
            job = Job(pm_cpu, 2, "two_sided", placement="spread")
            job.run(_flood)
        snap = session.snapshot()
        link_bytes = sum(
            v for k, v in snap.items()
            if k.startswith("net.link.") and k.endswith(".bytes")
        )
        assert link_bytes == job.fabric.total_bytes == snap["net.fabric.bytes"]

    def test_metrics_aggregate_across_jobs(self, pm_cpu):
        with obs.observe(obs.Obs()) as session:
            j1 = Job(pm_cpu, 2, "two_sided", placement="spread")
            j1.run(_flood)
            j2 = Job(pm_cpu, 2, "two_sided", placement="spread")
            j2.run(_flood)
        snap = session.snapshot()
        assert snap["net.fabric.bytes"] == (
            j1.fabric.total_bytes + j2.fabric.total_bytes
        )
        assert snap["comm.two_sided.jobs"] == 2

    def test_link_wait_histogram_populated(self, pm_cpu):
        with obs.observe(obs.Obs()) as session:
            Job(pm_cpu, 2, "two_sided", placement="spread").run(_flood)
        snap = session.snapshot()
        assert snap["net.link_wait_seconds.count"] > 0

    def test_injection_wait_histogram_populated(self, pm_gpu):
        # GPU machines model per-endpoint injection (copy/DMA) ports.
        with obs.observe(obs.Obs()) as session:
            Job(pm_gpu, 2, "shmem", placement="spread").run(_flood)
        snap = session.snapshot()
        assert snap["net.injection_wait_seconds.count"] > 0

    def test_bytes_timeline_sums_to_total(self, pm_cpu):
        with obs.observe(obs.Obs()) as session:
            job = Job(pm_cpu, 2, "two_sided", placement="spread")
            job.run(_flood)
        snap = session.snapshot()
        assert sum(v for _t, v in snap["net.bytes_timeline"]) == (
            job.fabric.total_bytes
        )


class TestTracingSessions:
    def test_trace_session_collects_labelled_tracers(self, pm_cpu):
        with obs.observe(obs.Obs(trace=True)) as session:
            job = Job(pm_cpu, 2, "two_sided", placement="spread")
            job.run(_flood)
        assert len(session.traces) == 1
        label, tracer = session.traces[0]
        assert label.startswith("job0:") and "two_sided" in label
        assert tracer is job.tracer
        assert tracer.count("send") == 8

    def test_ring_sink_factory_bounds_every_job(self, pm_cpu):
        session = obs.Obs(trace=True, sink_factory=lambda: RingBufferSink(5))
        with obs.observe(session):
            job = Job(pm_cpu, 2, "two_sided", placement="spread")
            job.run(_flood)
        assert len(job.tracer) <= 5
        assert job.tracer.sink.dropped > 0

    def test_jsonl_factory_streams_and_close(self, pm_cpu, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        it = iter(paths)
        session = obs.Obs(trace=True, sink_factory=lambda: JsonlSink(next(it)))
        with obs.observe(session):
            Job(pm_cpu, 2, "two_sided", placement="spread").run(_flood)
        session.close()
        from repro.analysis.traces import load_jsonl

        loaded = load_jsonl(paths[0])
        assert loaded.count("send") == 8

    def test_explicit_trace_arg_still_wins(self, pm_cpu):
        with obs.observe(obs.Obs(trace=False)):
            job = Job(pm_cpu, 2, "two_sided", trace=True)
        assert not isinstance(job.tracer, NullTracer)

    def test_spans_record_job_phases(self, pm_cpu):
        with obs.observe(obs.Obs()) as session:
            Job(pm_cpu, 2, "two_sided", placement="spread").run(_flood)
        totals = session.spans.totals()
        sim_keys = [k for k in totals if k.endswith("/simulate")]
        assert sim_keys and all(totals[k] >= 0 for k in sim_keys)
        snap = session.snapshot()
        assert any(k.startswith("span.") for k in snap)


class TestTable2Spans:
    def test_characterize_workloads_emits_phase_spans(self, pm_cpu):
        from repro.workloads.instrument import characterize_workloads

        with obs.observe(obs.Obs()) as session:
            rows = characterize_workloads(pm_cpu)
        assert len(rows) == 3
        names = {s.name for s in session.spans.spans}
        assert {
            "characterize:stencil",
            "characterize:sptrsv",
            "characterize:hashtable",
        } <= names
