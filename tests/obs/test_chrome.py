"""Chrome trace-event export: schema shape, clocks, metadata."""

import json

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.spans import SpanTracker
from repro.sim.trace import Tracer


def _traced_job():
    t = Tracer()
    t.emit(1e-6, "net.transfer", -1, src="cpu0", dst="cpu1",
           nbytes=1024.0, start=1e-6, arrival=4e-6, nhops=1)
    t.emit(1e-6, "send", 0, dst=1, tag=3, nbytes=1024.0)
    t.emit(4e-6, "arrive", 1, src=0, tag=3, nbytes=1024.0)
    return t


class TestChromeTrace:
    def test_transfer_becomes_complete_event(self):
        doc = chrome_trace([("job0", _traced_job())])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        (x,) = xs
        assert x["ts"] == 1.0 and x["dur"] == 3.0  # microseconds
        assert x["name"] == "cpu0->cpu1"
        assert x["args"]["nbytes"] == 1024.0
        assert x["tid"] == 0  # fabric track

    def test_rank_ops_become_instants_with_thread_metadata(self):
        doc = chrome_trace([("job0", _traced_job())])
        evs = doc["traceEvents"]
        instants = [e for e in evs if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"send", "arrive"}
        assert all(e["s"] == "t" for e in instants)
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in evs
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names[(1, 0)] == "fabric"
        assert thread_names[(1, 1)] == "rank 0"
        assert thread_names[(1, 2)] == "rank 1"

    def test_process_metadata_labels_jobs(self):
        doc = chrome_trace([("alpha", Tracer()), ("beta", Tracer())])
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[1] == "alpha" and names[2] == "beta"

    def test_spans_rebased_on_own_process(self):
        ticks = iter([10.0, 10.5, 10.5, 11.0])
        spans = SpanTracker(clock=lambda: next(ticks))
        with spans.span("warmup"):
            pass
        with spans.span("run"):
            pass
        doc = chrome_trace([], spans)
        phase = [e for e in doc["traceEvents"] if e.get("cat") == "phase"]
        assert {e["name"] for e in phase} == {"warmup", "run"}
        assert all(e["pid"] == 0 for e in phase)
        assert min(e["ts"] for e in phase) == 0.0  # rebased to first span

    def test_written_file_is_valid_json(self, tmp_path):
        out = write_chrome_trace(tmp_path / "x.trace.json", [("j", _traced_job())])
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc and doc["otherData"]["time_unit"] == "us"
