"""MachineModel mechanics: placement, capacity, compute model, loggp bridge."""

import pytest

from repro.machines import CommCosts, GpuSpec, MachineModel, get_machine
from repro.net import LinkParams, TopologySpec


def _tiny_machine(**kwargs):
    topo = TopologySpec(name="tiny")
    topo.add_link("s0", "s1", LinkParams(latency=1e-6, bandwidth=10e9))
    defaults = dict(
        name="tiny",
        description="test machine",
        topology=topo,
        compute_endpoints=["s0", "s1"],
        runtimes={"two_sided": CommCosts(isend=1e-7, recv_match=1e-7)},
        cores_per_endpoint=4,
        mem_bandwidth_per_endpoint=100e9,
        mem_bandwidth_per_core=30e9,
    )
    defaults.update(kwargs)
    return MachineModel(**defaults)


class TestValidation:
    def test_missing_endpoint_rejected(self):
        with pytest.raises(ValueError, match="missing from topology"):
            _tiny_machine(compute_endpoints=["s0", "nope"])

    def test_no_runtimes_rejected(self):
        with pytest.raises(ValueError, match="no runtimes"):
            _tiny_machine(runtimes={})

    def test_unknown_runtime_lookup(self):
        m = _tiny_machine()
        with pytest.raises(KeyError, match="available"):
            m.runtime("shmem")

    def test_comm_costs_reject_negative(self):
        with pytest.raises(ValueError):
            CommCosts(isend=-1e-6)

    def test_gpu_spec_validation(self):
        with pytest.raises(ValueError):
            GpuSpec(mem_bandwidth=0, thread_blocks=80, flop_rate=1e12)
        with pytest.raises(ValueError):
            GpuSpec(mem_bandwidth=1e12, thread_blocks=0, flop_rate=1e12)


class TestPlacement:
    def test_block_fills_contiguously(self):
        m = _tiny_machine()
        eps = [m.endpoint_of_rank(r, 4, "block") for r in range(4)]
        assert eps == ["s0", "s0", "s1", "s1"]

    def test_spread_round_robins(self):
        m = _tiny_machine()
        eps = [m.endpoint_of_rank(r, 4, "spread") for r in range(4)]
        assert eps == ["s0", "s1", "s0", "s1"]

    def test_capacity_enforced(self):
        m = _tiny_machine()
        assert m.max_ranks == 8
        with pytest.raises(ValueError):
            m.endpoint_of_rank(0, 9)

    def test_rank_range_enforced(self):
        m = _tiny_machine()
        with pytest.raises(ValueError):
            m.endpoint_of_rank(4, 4)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            _tiny_machine().endpoint_of_rank(0, 2, "zigzag")

    def test_ranks_per_endpoint(self):
        m = _tiny_machine()
        assert m.ranks_per_endpoint(3, "block") == {"s0": 2, "s1": 1}


class TestComputeModel:
    def test_core_bound_at_low_sharing(self):
        m = _tiny_machine()
        # 1 rank: min(30, 100/1) = 30 GB/s.
        assert m.compute_time(30e9, sharing=1) == pytest.approx(1.0)

    def test_socket_bound_at_high_sharing(self):
        m = _tiny_machine()
        # 10 ranks sharing: min(30, 100/10) = 10 GB/s.
        assert m.compute_time(10e9, sharing=10) == pytest.approx(1.0)

    def test_flop_bound_kernel(self):
        m = _tiny_machine(flop_rate_per_core=1e9)
        assert m.compute_time(0.0, flops=2e9, sharing=1) == pytest.approx(2.0)

    def test_gpu_compute_requires_gpu(self):
        with pytest.raises(ValueError, match="no GPU"):
            _tiny_machine().compute_time(1e9, on_gpu=True)

    def test_gpu_compute_uses_hbm(self):
        gpu = GpuSpec(mem_bandwidth=1e12, thread_blocks=80, flop_rate=1e13)
        m = _tiny_machine(gpu=gpu)
        assert m.compute_time(1e12, on_gpu=True) == pytest.approx(1.0)

    def test_sharing_validation(self):
        with pytest.raises(ValueError):
            _tiny_machine().compute_time(1.0, sharing=0)


class TestLoggpBridge:
    def test_two_sided_params(self):
        m = _tiny_machine()
        p = m.loggp("two_sided", "s0", "s1", sided="two")
        assert p.o == pytest.approx(2e-7)
        assert p.L == pytest.approx(1e-6)
        assert p.peak_bandwidth == pytest.approx(10e9)

    def test_rank_resolution_needs_nranks(self):
        m = _tiny_machine()
        with pytest.raises(ValueError, match="nranks"):
            m.loggp("two_sided", 0, 1, sided="two")
        p = m.loggp("two_sided", 0, 1, nranks=2, placement="spread", sided="two")
        assert p.L == pytest.approx(1e-6)

    def test_unknown_sidedness(self):
        with pytest.raises(ValueError):
            _tiny_machine().loggp("two_sided", "s0", "s1", sided="three")

    def test_copy_per_byte_lowers_effective_bandwidth(self):
        m = get_machine("summit-cpu")
        p = m.loggp("two_sided", "cpu0", "cpu1", sided="two")
        assert p.peak_bandwidth < 32e9  # copy engine folded into G
