"""Platform definitions match the paper's Table I / Fig. 2."""

import pytest

from repro.machines import get_machine, machine_names, table1_rows
from repro.util.units import GBps


class TestRegistry:
    def test_all_five_platforms(self):
        assert machine_names() == [
            "frontier-cpu",
            "perlmutter-cpu",
            "perlmutter-gpu",
            "summit-cpu",
            "summit-gpu",
        ]

    def test_unknown_machine_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_machine("el-capitan")

    def test_fresh_instance_per_call(self):
        assert get_machine("summit-cpu") is not get_machine("summit-cpu")

    def test_table1_rows_cover_all(self):
        rows = table1_rows()
        assert len(rows) == 5
        assert all(r["links"] for r in rows)


class TestPerlmutter:
    def test_cpu_if_link_32GBps(self, pm_cpu):
        lp = pm_cpu.topology.link_params("cpu0", "cpu1")
        assert lp.bandwidth == GBps(32)
        assert lp.name == "IF CPU-CPU"

    def test_cpu_capacity_128_cores(self, pm_cpu):
        assert pm_cpu.max_ranks == 128

    def test_gpu_nvlink3_port_groups(self, pm_gpu):
        lp = pm_gpu.topology.link_params("gpu0", "gpu1")
        assert lp.bandwidth == GBps(100)
        assert lp.channels == 4
        assert lp.channel_bandwidth == pytest.approx(GBps(25))

    def test_gpu_fully_connected(self, pm_gpu):
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert pm_gpu.topology.route(f"gpu{i}", f"gpu{j}").nhops == 1

    def test_gpu_injection_ports(self, pm_gpu):
        for i in range(4):
            assert f"gpu{i}" in pm_gpu.topology.injection

    def test_gpu_spec_matches_paper(self, pm_gpu):
        assert pm_gpu.gpu.thread_blocks == 80


class TestSummit:
    def test_dumbbell_islands(self, sm_gpu):
        # In-island: direct NVLink.
        assert sm_gpu.topology.route("gpu0", "gpu2").nhops == 1
        assert sm_gpu.topology.route("gpu3", "gpu5").nhops == 1
        # Cross-island: through both CPUs and the X-Bus.
        r = sm_gpu.topology.route("gpu0", "gpu3")
        assert r.nhops == 3
        assert ("cpu0", "cpu1") in r.hops

    def test_in_island_routing_avoids_cpu(self, sm_gpu):
        r = sm_gpu.topology.route("gpu0", "gpu1")
        assert r.hops == (("gpu0", "gpu1"),)

    def test_xbus_atomic_gap_throttles(self, sm_gpu):
        lp = sm_gpu.topology.link_params("cpu0", "cpu1")
        assert lp.effective_atomic_gap > lp.gap

    def test_cpu_42_usable_cores(self, sm_cpu):
        assert sm_cpu.max_ranks == 42

    def test_spectrum_rma_heavier_than_two_sided(self, sm_cpu):
        two = sm_cpu.runtime("two_sided")
        one = sm_cpu.runtime("one_sided")
        assert one.put > two.isend  # the Fig. 3c inversion

    def test_spectrum_copy_engine(self, sm_cpu):
        assert sm_cpu.runtime("two_sided").copy_per_byte > 0


class TestFrontier:
    def test_if_bound_36GBps(self, fr_cpu):
        lp = fr_cpu.topology.link_params("numa0", "numa1")
        assert lp.bandwidth == GBps(36)

    def test_nic_behind_gpu(self, fr_cpu):
        r = fr_cpu.topology.route("numa0", "nic0")
        assert any("gpu" in ep for hop in r.hops for ep in hop)

    def test_no_gpu_runtime(self, fr_cpu):
        # ROC_SHMEM lacked wait_until_any: the paper runs no Frontier GPU
        # experiments, so neither do we.
        assert "shmem" not in fr_cpu.runtimes
        assert not fr_cpu.is_gpu_machine


class TestGpuVsCpuProfiles:
    def test_gpu_machines_have_gpu_spec(self, any_gpu_machine):
        assert any_gpu_machine.is_gpu_machine
        assert any_gpu_machine.max_ranks == len(any_gpu_machine.compute_endpoints)

    def test_cpu_machines_have_no_gpu_spec(self, any_cpu_machine):
        assert not any_cpu_machine.is_gpu_machine

    def test_describe_is_informative(self, any_cpu_machine):
        text = any_cpu_machine.describe()
        assert any_cpu_machine.name in text
        assert "runtimes" in text
