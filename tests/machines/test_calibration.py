"""End-to-end calibration against the latencies/bandwidths the paper quotes.

These tests pin the machine models to the paper's §II-§III numbers — they
are the contract that keeps every figure reproduction honest.  Tolerances
are ~±25% unless the paper gives a tighter statement.
"""

import numpy as np
import pytest

from repro.comm import Job
from repro.workloads.flood import run_cas_flood, run_flood


def _pingpong_oneway_us(machine):
    def program(ctx):
        if ctx.rank == 0:
            r = yield from ctx.isend(1, nbytes=8)
            yield from ctx.waitall([r])
            yield from ctx.recv(source=1)
        else:
            yield from ctx.recv(source=0)
            r = yield from ctx.isend(0, nbytes=8)
            yield from ctx.waitall([r])

    job = Job(machine, 2, "two_sided", placement="spread")
    res = job.run(program)
    return res.time * 1e6 / 2


def _four_op_sequence_us(machine):
    """The paper's one-sided message: put, flush, put-signal, flush."""

    def program(ctx, data_win, sig_win):
        h, s = data_win.handle(ctx), sig_win.handle(ctx)
        if ctx.rank == 0:
            yield from h.put(1, np.arange(8.0))
            yield from h.flush(1)
            yield from s.put(1, np.array([1], dtype=np.int64))
            yield from s.flush(1)
            return ctx.sim.now
        yield from ctx.poll_wait_signals(sig_win, [0], 1)
        return ctx.sim.now

    job = Job(machine, 2, "one_sided", placement="spread")
    res = job.run(program, job.window(8), job.window(2, dtype=np.int64))
    return res.results[0] * 1e6


def _put_signal_n1_us(machine):
    def program(ctx, data_win, sig_win):
        if ctx.rank == 0:
            yield from ctx.put_signal_nbi(
                data_win, 1, nelems=1, signal_win=sig_win, signal_idx=0
            )
            return 0.0
        t0 = ctx.sim.now
        yield from ctx.wait_until_all(sig_win, [0], 1)
        return (ctx.sim.now - t0) * 1e6

    job = Job(machine, 2, "shmem", placement="spread")
    res = job.run(program, job.window(8), job.window(2, dtype=np.uint64))
    return res.results[1]


class TestPerlmutterCpu:
    def test_two_sided_small_latency_3_3us(self, pm_cpu):
        assert _pingpong_oneway_us(pm_cpu) == pytest.approx(3.3, rel=0.15)

    def test_one_sided_4op_sequence_5us(self, pm_cpu):
        assert _four_op_sequence_us(pm_cpu) == pytest.approx(5.0, rel=0.2)

    def test_cas_2us(self, pm_cpu):
        r = run_cas_flood(pm_cpu, "one_sided")
        assert r["latency_per_cas"] * 1e6 == pytest.approx(2.0, rel=0.25)

    def test_flood_saturates_near_32GBps(self, pm_cpu):
        r = run_flood(pm_cpu, "two_sided", 4 * 2**20, 64, iters=2)
        assert 29e9 < r.bandwidth < 32.5e9

    def test_high_n_marginal_latency_sub_half_us(self, pm_cpu):
        r = run_flood(pm_cpu, "one_sided", 64, 1024, iters=2)
        assert r.latency_per_message * 1e6 < 0.5


class TestFrontierCpu:
    def test_flood_bounded_by_36GBps(self, fr_cpu):
        r = run_flood(fr_cpu, "one_sided", 4 * 2**20, 64, iters=2)
        assert 32e9 < r.bandwidth <= 36.2e9

    def test_two_sided_latency_similar_to_perlmutter(self, fr_cpu):
        assert 2.5 < _pingpong_oneway_us(fr_cpu) < 4.5


class TestSummitCpu:
    def test_two_sided_latency_3us(self, sm_cpu):
        assert _pingpong_oneway_us(sm_cpu) == pytest.approx(3.0, rel=0.2)

    def test_achieved_bandwidth_25GBps_despite_64_nominal(self, sm_cpu):
        r = run_flood(sm_cpu, "two_sided", 4 * 2**20, 64, iters=2)
        assert 22e9 < r.bandwidth < 27e9

    def test_spectrum_one_sided_consistently_slower(self, sm_cpu):
        from repro.machines import summit_cpu

        for B in (64, 4096):
            two = run_flood(summit_cpu(), "two_sided", B, 64, iters=2)
            one = run_flood(summit_cpu(), "one_sided", B, 64, iters=2)
            assert one.bandwidth <= two.bandwidth * 1.05


class TestPerlmutterGpu:
    def test_put_signal_n1_4us(self, pm_gpu):
        assert _put_signal_n1_us(pm_gpu) == pytest.approx(4.0, rel=0.25)

    def test_cas_0_8us(self, pm_gpu):
        r = run_cas_flood(pm_gpu, "shmem")
        assert r["latency_per_cas"] * 1e6 == pytest.approx(0.8, rel=0.2)

    def test_pairwise_peak_100GBps_with_concurrency(self, pm_gpu):
        r = run_flood(pm_gpu, "shmem", 4 * 2**20, 256, iters=2)
        assert 90e9 < r.bandwidth <= 101e9

    def test_single_message_rate_one_port(self, pm_gpu):
        r = run_flood(pm_gpu, "shmem", 4 * 2**20, 1, iters=2)
        assert r.bandwidth < 26e9  # one sub-channel


class TestSummitGpu:
    def test_put_signal_n1_5us(self, sm_gpu):
        assert _put_signal_n1_us(sm_gpu) == pytest.approx(5.0, rel=0.25)

    def test_cas_in_island_1us(self, sm_gpu):
        r = run_cas_flood(sm_gpu, "shmem", target_rank=1)
        assert r["latency_per_cas"] * 1e6 == pytest.approx(1.0, rel=0.2)

    def test_cas_cross_socket_1_6us(self):
        from repro.machines import summit_gpu

        r = run_cas_flood(summit_gpu(), "shmem", nranks=6, target_rank=3)
        assert r["latency_per_cas"] * 1e6 == pytest.approx(1.6, rel=0.2)

    def test_nvlink2_in_island_bandwidth(self, sm_gpu):
        r = run_flood(sm_gpu, "shmem", 4 * 2**20, 64, iters=2)
        assert 45e9 < r.bandwidth <= 50.5e9
