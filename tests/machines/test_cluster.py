"""Multi-node clusters: construction, routing, workloads over the fabric."""

import numpy as np
import pytest

from repro.machines import (
    INFINIBAND_EDR,
    SLINGSHOT11,
    make_cluster,
    perlmutter_cpu,
    perlmutter_gpu,
    summit_cpu,
)
from repro.workloads.flood import run_flood


class TestConstruction:
    def test_endpoint_replication(self):
        c = make_cluster(perlmutter_cpu(), 3)
        assert c.max_ranks == 3 * 128
        assert "n0.cpu0" in c.compute_endpoints
        assert "n2.cpu1" in c.compute_endpoints
        assert c.topology.has_endpoint("switch")

    def test_single_node_cluster_is_legal(self):
        c = make_cluster(perlmutter_cpu(), 1)
        assert c.max_ranks == 128

    def test_invalid_nnodes(self):
        with pytest.raises(ValueError):
            make_cluster(perlmutter_cpu(), 0)

    def test_node_without_nic_rejected(self):
        from repro.machines import CommCosts, MachineModel
        from repro.net import LinkParams, TopologySpec

        topo = TopologySpec(name="nicless")
        topo.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=1e9))
        node = MachineModel(
            name="nicless",
            description="no NIC",
            topology=topo,
            compute_endpoints=["a", "b"],
            runtimes={"two_sided": CommCosts()},
            cores_per_endpoint=1,
            mem_bandwidth_per_endpoint=1e9,
        )
        with pytest.raises(ValueError, match="NIC"):
            make_cluster(node, 2)

    def test_gpu_cluster_carries_gpu_spec(self):
        c = make_cluster(perlmutter_gpu(), 2)
        assert c.is_gpu_machine
        assert c.max_ranks == 8
        # Injection ports replicated per node.
        assert "n1.gpu3" in c.topology.injection


class TestRouting:
    def test_on_node_paths_unchanged(self):
        c = make_cluster(perlmutter_cpu(), 2)
        on_node = c.topology.route("n0.cpu0", "n0.cpu1")
        single = perlmutter_cpu().topology.route("cpu0", "cpu1")
        assert on_node.latency == pytest.approx(single.latency)
        assert on_node.bandwidth == single.bandwidth

    def test_inter_node_goes_through_switch(self):
        c = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
        r = c.topology.route("n0.cpu0", "n1.cpu0")
        assert ("n0.nic0", "switch") in r.hops
        assert r.bandwidth == pytest.approx(25e9)

    def test_interconnect_choice_matters(self):
        ss = make_cluster(summit_cpu(), 2, SLINGSHOT11)
        ib = make_cluster(summit_cpu(), 2, INFINIBAND_EDR)
        assert (
            ib.topology.route("n0.cpu0", "n1.cpu0").bandwidth
            < ss.topology.route("n0.cpu0", "n1.cpu0").bandwidth
        )


class TestWorkloadsOverFabric:
    def test_internode_flood_nic_bound(self):
        c = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
        r = run_flood(c, "two_sided", 4 << 20, 64, iters=2, placement="block")
        assert 22e9 < r.bandwidth < 25.5e9

    def test_internode_slower_than_on_node(self):
        on = run_flood(perlmutter_cpu(), "two_sided", 64, 1, iters=2)
        c = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
        off = run_flood(c, "two_sided", 64, 1, iters=2, placement="block")
        assert off.latency_per_message > on.latency_per_message

    def test_stencil_across_two_nodes_correct(self):
        from repro.workloads.stencil import (
            StencilConfig,
            initial_grid,
            jacobi_reference,
            run_stencil,
        )

        c = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
        cfg = StencilConfig(nx=24, ny=24, iters=4, mode="execute")
        res = run_stencil(c, "two_sided", cfg, 8, placement="block")
        ref = jacobi_reference(initial_grid(24, 24), 4)
        assert np.allclose(res.extras["field"], ref)

    def test_sptrsv_across_two_nodes_correct(self, small_matrix, rhs):
        from repro.workloads.sptrsv import (
            SpTrsvConfig,
            reference_solve,
            run_sptrsv,
        )

        c = make_cluster(perlmutter_cpu(), 2, SLINGSHOT11)
        res = run_sptrsv(
            c, "one_sided", small_matrix, 8,
            cfg=SpTrsvConfig(mode="execute"), b=rhs, placement="block",
        )
        assert np.allclose(res.extras["x"], reference_solve(small_matrix, rhs))

    def test_internode_experiment_expectations(self):
        from repro.experiments import run_internode

        rep = run_internode(iters=1)
        failed = [k for k, ok in rep.expectations.items() if not ok]
        assert not failed
