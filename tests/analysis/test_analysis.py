"""Trace analysis and DAG critical-path tools."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_dag,
    ascii_timeline,
    bandwidth_timeline,
    comm_matrix,
    latency_lower_bound,
    message_stats,
    rank_activity,
)
from repro.comm import Job
from repro.machines import perlmutter_cpu
from repro.workloads.sptrsv import MatrixSpec, generate_matrix


def _traced_flood(n=8, nbytes=4096):
    job = Job(perlmutter_cpu(), 2, "two_sided", placement="spread", trace=True)

    def program(ctx):
        if ctx.rank == 0:
            reqs = []
            for _ in range(n):
                r = yield from ctx.isend(1, nbytes=nbytes)
                reqs.append(r)
            yield from ctx.waitall(reqs)
        else:
            for _ in range(n):
                yield from ctx.recv(source=0)

    job.run(program)
    return job.tracer


class TestMessageStats:
    def test_counts_and_sizes(self):
        tracer = _traced_flood(n=8, nbytes=4096)
        stats = message_stats(tracer)
        # 8 data messages plus barrier-free run: every transfer is 4096 B
        # except possible zero-byte control traffic.
        assert stats.count >= 8
        assert stats.max_bytes == 4096
        assert stats.total_bytes >= 8 * 4096
        assert stats.mean_wire_time > 0
        assert stats.p95_wire_time >= stats.mean_wire_time * 0.5

    def test_words_per_message(self):
        tracer = _traced_flood(n=4, nbytes=800)
        stats = message_stats(tracer)
        assert stats.words_per_message() == pytest.approx(100, rel=0.2)

    def test_empty_trace_rejected(self):
        from repro.sim import Tracer

        with pytest.raises(ValueError, match="no fabric transfers"):
            message_stats(Tracer())


class TestTimeline:
    def test_bins_cover_run(self):
        tracer = _traced_flood(n=16)
        tl = bandwidth_timeline(tracer, nbins=8)
        assert len(tl) == 8
        assert all(v >= 0 for _, v in tl)
        assert any(v > 0 for _, v in tl)
        # Bin centers are evenly spaced and increasing.
        widths = {round(b - a, 15) for (a, _), (b, _) in zip(tl, tl[1:])}
        assert len(widths) == 1

    def test_bytes_conserved_across_bins(self):
        tracer = _traced_flood(n=16, nbytes=1024)
        tl = bandwidth_timeline(tracer, nbins=5)
        stats = message_stats(tracer)
        width = tl[1][0] - tl[0][0]
        recovered = sum(v * width for _, v in tl)
        assert recovered == pytest.approx(stats.total_bytes, rel=1e-6)

    def test_invalid_bins(self):
        tracer = _traced_flood()
        with pytest.raises(ValueError):
            bandwidth_timeline(tracer, nbins=0)

    def test_ascii_render(self):
        tracer = _traced_flood(n=16)
        text = ascii_timeline(bandwidth_timeline(tracer, nbins=4))
        assert text.count("|") >= 8
        assert "GB/s" in text


class TestRankViews:
    def test_activity_counts(self):
        tracer = _traced_flood(n=8)
        act = rank_activity(tracer)
        assert act[0]["send"] == 8
        assert act[1]["arrive"] == 8
        assert act[1]["send"] == 0

    def test_comm_matrix(self):
        tracer = _traced_flood(n=8, nbytes=512)
        m = comm_matrix(tracer, 2)
        assert m[0, 1] == 8 * 512
        assert m[1, 0] == 0
        assert m[0, 0] == 0

    def test_comm_matrix_one_sided(self):
        job = Job(perlmutter_cpu(), 2, "one_sided", placement="spread", trace=True)
        win = job.window(8)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.ones(4))
                yield from h.flush(1)
            else:
                yield from ctx.compute(seconds=0)

        job.run(program)
        m = comm_matrix(job.tracer, 2)
        assert m[0, 1] == 32.0


class TestCriticalPath:
    def test_profile_consistency(self, small_matrix):
        prof = analyze_dag(small_matrix)
        assert sum(prof.levels) == prof.n_supernodes
        assert prof.critical_path == len(prof.levels)
        assert prof.critical_path == small_matrix.critical_path_length()
        assert prof.max_parallelism >= 1
        assert 0 <= prof.serial_fraction <= 1
        assert "critical path" in prof.summary()

    def test_chain_matrix_is_fully_serial(self):
        # density 0 forces only the guaranteed (I, I-1) chain blocks.
        m = generate_matrix(
            MatrixSpec(n_supernodes=10, width_lo=2, width_hi=4,
                       block_density=1e-9, seed=0)
        )
        prof = analyze_dag(m)
        assert prof.critical_path == 10
        assert prof.mean_parallelism == 1.0
        assert prof.serial_fraction == 1.0

    def test_lower_bound_matches_simulation_order(self, medium_matrix):
        """The analytic bound must actually bound the simulated solve."""
        from repro.workloads.sptrsv import run_sptrsv

        res = run_sptrsv(perlmutter_cpu(), "two_sided", medium_matrix, 4)
        bound = latency_lower_bound(
            medium_matrix, per_message_latency=3.3e-6, nranks=4
        )
        assert res.time >= bound * 0.5  # bound is loose but not violated

    def test_lower_bound_single_rank_has_no_comm(self, small_matrix):
        b = latency_lower_bound(
            small_matrix, per_message_latency=1e-5,
            compute_time_total=1e-3, nranks=1,
        )
        assert b == pytest.approx(1e-3)

    def test_lower_bound_validation(self, small_matrix):
        with pytest.raises(ValueError):
            latency_lower_bound(small_matrix, per_message_latency=-1)
        with pytest.raises(ValueError):
            latency_lower_bound(small_matrix, per_message_latency=0, nranks=0)
