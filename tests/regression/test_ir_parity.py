"""IR lowering parity: passes-off output pinned across all five backends.

The IR layer is a refactor seam on top of the transport seam: with the
empty pipeline (the default), lowering a builder-produced program through
:func:`repro.ir.lower.run_program` must reproduce the pre-IR hand-written
runners exactly — same simulated times, same op counts, same
execute-mode values — on every backend.  ``test_transport_parity.py``
pins the experiment reports end-to-end; this lane pins the per-workload
rows directly (including ``one_sided_hw``, which no stock machine hosts)
and snapshots the ``explain()`` report format.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import ir
from repro.machines.registry import get_machine
from repro.transport import ONE_SIDED, ONE_SIDED_HW
from repro.workloads.flood import run_flood
from repro.workloads.hashtable.runner import HashTableConfig, run_hashtable
from repro.workloads.sptrsv.matrix import MatrixSpec, generate_matrix
from repro.workloads.sptrsv.runner import SpTrsvConfig, run_sptrsv
from repro.workloads.stencil.runner import StencilConfig, run_stencil


def _hw_machine():
    """A perlmutter-cpu variant hosting the fused put-with-signal backend
    (mirrors the put_signal ablation's hypothetical CrayMPI)."""
    m = get_machine("perlmutter-cpu")
    one = m.runtimes[ONE_SIDED]
    m.runtimes[ONE_SIDED_HW] = dataclasses.replace(
        one, put_signal=one.put, wait_wakeup=1.0e-6, poll_slot=0.0,
        wait_poll=2e-7,
    )
    return m


def _machine_for(backend: str):
    if backend in ("shmem", "stream_triggered"):
        # stream_triggered needs no calibrated profile: its costs derive
        # lazily from the machine's host-driven ones.
        return get_machine("perlmutter-gpu")
    if backend == "one_sided_hw":
        return _hw_machine()
    return get_machine("perlmutter-cpu")


BACKENDS = ["two_sided", "one_sided", "shmem", "one_sided_hw", "stream_triggered"]


@pytest.mark.parametrize("backend", BACKENDS)
class TestPassesOffParity:
    """Ambient default (no scope) == explicit all-off pipeline, per backend."""

    def test_flood_rows_identical(self, backend):
        m = _machine_for(backend)
        base = run_flood(m, backend, 4096, 16, iters=2)
        with ir.passes(False):
            off = run_flood(m, backend, 4096, 16, iters=2)
        assert off == base  # FloodResult is a frozen dataclass: full row

    def test_stencil_rows_identical(self, backend):
        m = _machine_for(backend)
        cfg = StencilConfig(nx=32, ny=32, iters=3, mode="execute")
        base = run_stencil(m, backend, cfg, 4)
        with ir.passes(False):
            off = run_stencil(m, backend, cfg, 4)
        assert off.time == base.time
        assert off.counters == base.counters
        assert np.array_equal(off.extras["field"], base.extras["field"])

    def test_hashtable_rows_identical(self, backend):
        m = _machine_for(backend)
        cfg = HashTableConfig(total_inserts=256)
        base = run_hashtable(m, backend, cfg, 4)
        with ir.passes(False):
            off = run_hashtable(m, backend, cfg, 4)
        assert off.time == base.time
        assert off.counters == base.counters
        assert sorted(off.extras["values"]) == sorted(base.extras["values"])
        assert off.extras["collisions"] == base.extras["collisions"]

    def test_sptrsv_rows_identical(self, backend):
        m = _machine_for(backend)
        matrix = generate_matrix(MatrixSpec(n_supernodes=16, seed=3))
        cfg = SpTrsvConfig(mode="execute")
        base = run_sptrsv(m, backend, matrix, 4, cfg=cfg)
        with ir.passes(False):
            off = run_sptrsv(m, backend, matrix, 4, cfg=cfg)
        assert off.time == base.time
        assert off.counters == base.counters
        assert np.allclose(off.extras["x"], base.extras["x"], rtol=0, atol=0)


class TestPassesOnAccuracy:
    """Execute-mode results are bit-identical with the pipeline on —
    passes rearrange *communication*, never the numerics."""

    def test_stencil_field_unchanged(self):
        m = get_machine("perlmutter-cpu")
        cfg = StencilConfig(nx=32, ny=32, iters=3, mode="execute")
        base = run_stencil(m, "one_sided", cfg, 4)
        with ir.passes(True):
            on = run_stencil(m, "one_sided", cfg, 4)
        assert np.array_equal(on.extras["field"], base.extras["field"])
        assert on.time <= base.time  # rewrites only remove modeled work

    def test_hashtable_values_unchanged(self):
        m = get_machine("perlmutter-cpu")
        cfg = HashTableConfig(total_inserts=256)
        base = run_hashtable(m, "two_sided", cfg, 4)
        with ir.passes(True):
            on = run_hashtable(m, "two_sided", cfg, 4)
        assert sorted(on.extras["values"]) == sorted(base.extras["values"])

    def test_flood_payload_equivalent_and_faster(self):
        m = get_machine("perlmutter-cpu")
        base = run_flood(m, "one_sided", 4096, 64, iters=2)
        with ir.passes(True):
            on = run_flood(m, "one_sided", 4096, 64, iters=2)
        assert on.nbytes == base.nbytes
        assert on.msgs_per_sync == base.msgs_per_sync
        assert on.time_total < base.time_total


class TestExplainSnapshots:
    """The explain() report format is part of the public surface."""

    def test_passes_off_report(self):
        m = get_machine("perlmutter-cpu")
        with ir.collect() as reports:
            run_flood(m, "one_sided", 4096, 64, iters=2)
        (rep,) = reports
        assert rep.explain() == (
            "ir: flood(P=2) on perlmutter-cpu/one_sided -> passes off"
        )

    def test_coalesce_report_snapshot(self):
        m = get_machine("perlmutter-cpu")
        with ir.passes(["coalesce"]), ir.collect() as reports:
            run_flood(m, "one_sided", 4096, 64, iters=2)
        (rep,) = reports
        lines = rep.explain().splitlines()
        assert lines[0] == (
            "ir: flood(P=2) on perlmutter-cpu/one_sided -> 1 pass, 1 rewrite"
        )
        assert lines[1] == "  passes: coalesce"
        assert lines[2].startswith("  coalesce/batch  x2")
        assert "[4096 B x n -> 262144 B x 1 per sync]" in lines[2]
        assert lines[3].startswith("  total: ")
        assert lines[3].endswith("x modeled)")

    def test_dynamic_program_note(self):
        m = get_machine("perlmutter-cpu")
        cfg = HashTableConfig(total_inserts=64)
        with ir.passes(True), ir.collect() as reports:
            run_hashtable(m, "one_sided", cfg, 2)
        (rep,) = reports
        assert rep.passes == ()
        assert any("dynamic program" in n for n in rep.notes)

    def test_explain_all_dedupes(self):
        m = get_machine("perlmutter-cpu")
        with ir.collect() as reports:
            run_flood(m, "one_sided", 4096, 64, iters=2)
            run_flood(m, "one_sided", 4096, 64, iters=2)
        text = ir.explain_all(reports)
        assert text.count("ir: flood") == 1
        assert "(x2 identical programs)" in text
