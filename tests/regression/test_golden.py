"""Golden regression values: the calibrated model, pinned.

The simulator is deterministic, so these virtual times are exact.  They
exist to catch *unintentional* model drift — a changed constant, a changed
cost path — not to forbid recalibration.  If you changed the model on
purpose, re-derive the constants (each test's command is in its docstring)
and update them together with DESIGN.md §5/§6b.

Comparisons use ``rel=1e-9`` (exact up to float noise).
"""

import pytest

from repro.machines import (
    frontier_cpu,
    perlmutter_cpu,
    perlmutter_gpu,
    summit_cpu,
    summit_gpu,
)
from repro.workloads.flood import run_cas_flood, run_flood
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.workloads.stencil import StencilConfig, run_stencil

EXACT = dict(rel=1e-9)


class TestGoldenTimes:
    def test_flood_two_sided_perlmutter(self):
        """run_flood(perlmutter_cpu(), 'two_sided', 4096, 16, iters=2)"""
        r = run_flood(perlmutter_cpu(), "two_sided", 4096, 16, iters=2)
        assert r.time_total == pytest.approx(2.265599999999999e-05, **EXACT)

    def test_flood_one_sided_frontier(self):
        """run_flood(frontier_cpu(), 'one_sided', 65536, 4, iters=2)"""
        r = run_flood(frontier_cpu(), "one_sided", 65536, 4, iters=2)
        assert r.time_total == pytest.approx(2.7163999999999996e-05, **EXACT)

    def test_flood_shmem_summit(self):
        """run_flood(summit_gpu(), 'shmem', 1024, 8, iters=2)"""
        r = run_flood(summit_gpu(), "shmem", 1024, 8, iters=2)
        assert r.time_total == pytest.approx(1.9742279999999998e-05, **EXACT)

    def test_stencil_simulate(self):
        """run_stencil(perlmutter_cpu(), 'two_sided', 512^2 x3, 16)"""
        cfg = StencilConfig(nx=512, ny=512, iters=3, mode="simulate")
        res = run_stencil(perlmutter_cpu(), "two_sided", cfg, 16)
        assert res.time == pytest.approx(4.7085280000000013e-05, **EXACT)

    def test_sptrsv_one_sided_summit(self):
        """run_sptrsv(summit_cpu(), 'one_sided', MatrixSpec(32, seed=5), 4)"""
        m = generate_matrix(MatrixSpec(n_supernodes=32, seed=5))
        res = run_sptrsv(summit_cpu(), "one_sided", m, 4)
        assert res.time == pytest.approx(0.0004092677500000003, **EXACT)

    def test_hashtable_shmem_perlmutter(self):
        """run_hashtable(perlmutter_gpu(), 'shmem', 500 inserts seed=9, 4)"""
        ht = HashTableConfig(total_inserts=500, seed=9)
        res = run_hashtable(perlmutter_gpu(), "shmem", ht, 4)
        assert res.time == pytest.approx(0.00014755741599999968, **EXACT)

    def test_cas_cross_island_summit(self):
        """run_cas_flood(summit_gpu(), 'shmem', nranks=6, target_rank=4)"""
        r = run_cas_flood(summit_gpu(), "shmem", nranks=6, target_rank=4)
        assert r["latency_per_cas"] == pytest.approx(
            1.6407499999999931e-06, **EXACT
        )
