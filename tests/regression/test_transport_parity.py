"""Transport-layer parity: experiment output pinned byte-for-byte.

The transport layer is a pure refactor seam — routing every workload
through Channel/Endpoint verbs must not move a single simulated
nanosecond.  These tests re-run Table 2 plus one figure per workload
(stencil, flood, SpTRSV, hashtable) and diff the report against the
goldens committed under ``goldens/``.

If a diff appears and the model change was intentional, regenerate with:

    PYTHONPATH=src python -m repro run <exp> --no-cache 2>/dev/null \
        > tests/regression/goldens/<exp>.txt
"""

import subprocess
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "goldens"
REPO_ROOT = Path(__file__).resolve().parents[2]

# table2 = op-count characterization; the figures cover one workload each:
# fig03 stencil, fig05 flood, fig08 SpTRSV, fig09 hashtable.
EXPERIMENTS = ["table2", "fig03", "fig05", "fig08", "fig09"]


@pytest.mark.parametrize("experiment", EXPERIMENTS)
def test_experiment_output_matches_golden(experiment):
    golden = (GOLDEN_DIR / f"{experiment}.txt").read_text()
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", experiment, "--no-cache"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == golden
