"""Observability must not perturb the zero-overhead default path.

Two regressions from ISSUE 1: (a) an untraced run allocates no trace
records at all (NullTracer owns no mutable storage and hot paths skip the
emit kwargs entirely); (b) a ring-buffer-sink hashtable run completes with
bounded memory — records retained never exceed the configured capacity,
no matter the msg/sync rate.
"""

from repro import obs
from repro.machines import perlmutter_cpu
from repro.obs.sinks import RingBufferSink
from repro.sim.trace import NULL_SINK, NullTracer
from repro.workloads.hashtable import HashTableConfig, run_hashtable


class TestNullTracerAllocatesNothing:
    def test_hashtable_flood_run_keeps_no_records(self):
        """One-sided hashtable: the highest msg/sync workload in the paper.

        Untraced, the job must end with zero retained trace records and the
        shared immutable null sink (not a per-job list that silently grew).
        """
        cfg = HashTableConfig(total_inserts=2000, seed=3)
        res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 4)
        assert res.time > 0
        # run_hashtable builds its own Job; verify via a fresh equivalent.
        from repro.comm.job import Job

        job = Job(perlmutter_cpu(), 4, "one_sided")
        assert isinstance(job.tracer, NullTracer)
        assert job.tracer.sink is NULL_SINK
        assert job.tracer.records == ()
        assert not job.tracer.enabled  # hot paths skip emit kwargs entirely

    def test_null_sink_is_shared_not_per_instance(self):
        tracers = [NullTracer() for _ in range(8)]
        assert len({id(t.sink) for t in tracers}) == 1


class TestRingBoundedHashtable:
    def test_high_msg_per_sync_run_is_bounded(self):
        """Hashtable at maximal msg/sync (all inserts between two barriers)
        under a small ring: the trace must stay within capacity while the
        run completes and drops are accounted for."""
        capacity = 256
        session = obs.Obs(trace=True, sink_factory=lambda: RingBufferSink(capacity))
        cfg = HashTableConfig(total_inserts=2000, seed=3)
        with obs.observe(session):
            res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 4)
        assert res.time > 0
        assert session.traces, "tracing session saw no jobs"
        for _label, tracer in session.traces:
            assert len(tracer) <= capacity
        # The run emitted far more than capacity: eviction really happened.
        total = sum(len(t) + t.sink.dropped for _l, t in session.traces)
        assert total > capacity
        assert any(t.sink.dropped > 0 for _l, t in session.traces)
