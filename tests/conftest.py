"""Shared fixtures: machine models, small matrices, reusable jobs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import (
    frontier_cpu,
    perlmutter_cpu,
    perlmutter_gpu,
    summit_cpu,
    summit_gpu,
)
from repro.sim import Simulator
from repro.workloads.sptrsv import MatrixSpec, generate_matrix


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def pm_cpu():
    return perlmutter_cpu()


@pytest.fixture
def pm_gpu():
    return perlmutter_gpu()


@pytest.fixture
def sm_cpu():
    return summit_cpu()


@pytest.fixture
def sm_gpu():
    return summit_gpu()


@pytest.fixture
def fr_cpu():
    return frontier_cpu()


@pytest.fixture(
    params=["perlmutter-cpu", "frontier-cpu", "summit-cpu"],
    ids=["perlmutter", "frontier", "summit"],
)
def any_cpu_machine(request):
    return {
        "perlmutter-cpu": perlmutter_cpu,
        "frontier-cpu": frontier_cpu,
        "summit-cpu": summit_cpu,
    }[request.param]()


@pytest.fixture(params=["perlmutter-gpu", "summit-gpu"], ids=["a100", "v100"])
def any_gpu_machine(request):
    return {"perlmutter-gpu": perlmutter_gpu, "summit-gpu": summit_gpu}[
        request.param
    ]()


@pytest.fixture(scope="session")
def small_matrix():
    """A small supernodal matrix with a nontrivial DAG (session-cached)."""
    return generate_matrix(MatrixSpec(n_supernodes=20, width_lo=2, width_hi=12, seed=3))


@pytest.fixture(scope="session")
def medium_matrix():
    return generate_matrix(
        MatrixSpec(n_supernodes=48, width_lo=3, width_hi=40, seed=7)
    )


@pytest.fixture
def rhs(small_matrix):
    return np.ones(small_matrix.n)
