"""Two-sided verbs through the Job runner: semantics and timing."""

import numpy as np
import pytest

from repro.comm import ANY_SOURCE, CommError, Job


def run2(machine, program, **kwargs):
    job = Job(machine, 2, "two_sided", placement="spread", **kwargs)
    return job, job.run(program)


class TestSendRecv:
    def test_payload_roundtrip(self, pm_cpu):
        data = np.arange(16.0)

        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=128, payload=data)
                yield from ctx.waitall([r])
                return None
            payload, status = yield from ctx.recv(source=0)
            return payload, status

        _, res = run2(pm_cpu, program)
        payload, status = res.results[1]
        assert np.array_equal(payload, data)
        assert status.nbytes == 128

    def test_any_source_receive(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=8, payload="hello")
                yield from ctx.waitall([r])
                return None
            payload, status = yield from ctx.recv(source=ANY_SOURCE)
            return status.source

        _, res = run2(pm_cpu, program)
        assert res.results[1] == 0

    def test_tag_selectivity(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                r1 = yield from ctx.isend(1, nbytes=8, tag=1, payload="one")
                r2 = yield from ctx.isend(1, nbytes=8, tag=2, payload="two")
                yield from ctx.waitall([r1, r2])
                return None
            # Receive tag 2 first although tag 1 arrived earlier.
            p2, _ = yield from ctx.recv(source=0, tag=2)
            p1, _ = yield from ctx.recv(source=0, tag=1)
            return p1, p2

        _, res = run2(pm_cpu, program)
        assert res.results[1] == ("one", "two")

    def test_out_of_range_dest_rejected(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.isend(5, nbytes=8)
            else:
                yield from ctx.compute(seconds=0)

        job = Job(pm_cpu, 2, "two_sided")
        with pytest.raises(CommError):
            job.run(program)

    def test_message_ordering_same_pair(self, pm_cpu):
        """Non-overtaking: same (src, dst, tag) arrive in send order."""

        def program(ctx):
            if ctx.rank == 0:
                reqs = []
                for i in range(10):
                    r = yield from ctx.isend(1, nbytes=64, tag=0, payload=i)
                    reqs.append(r)
                yield from ctx.waitall(reqs)
                return None
            got = []
            for _ in range(10):
                p, _ = yield from ctx.recv(source=0, tag=0)
                got.append(p)
            return got

        _, res = run2(pm_cpu, program)
        assert res.results[1] == list(range(10))


class TestRendezvous:
    def test_large_message_delivered(self, pm_cpu):
        big = np.ones(100_000)

        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=800_000, payload=big)
                yield from ctx.waitall([r])
                return None
            p, st = yield from ctx.recv(source=0)
            return p.sum(), st.nbytes

        _, res = run2(pm_cpu, program)
        assert res.results[1] == (100_000.0, 800_000)

    def test_rendezvous_waits_for_receiver(self, pm_cpu):
        """Data doesn't move until the receive is posted: sender completion
        time reflects the receiver's late arrival."""

        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=1_000_000)
                yield from ctx.waitall([r])
                return ctx.sim.now
            yield from ctx.compute(seconds=1e-3)  # busy for 1 ms
            yield from ctx.recv(source=0)
            return ctx.sim.now

        _, res = run2(pm_cpu, program)
        assert res.results[0] > 1e-3  # sender waited for the late recv

    def test_eager_completes_locally(self, pm_cpu):
        """Small sends buffer locally: sender is done long before the
        (late) receiver picks it up."""

        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=64)
                yield from ctx.waitall([r])
                return ctx.sim.now
            yield from ctx.compute(seconds=1e-3)
            yield from ctx.recv(source=0)
            return ctx.sim.now

        _, res = run2(pm_cpu, program)
        assert res.results[0] < 1e-4


class TestWaits:
    def test_waitall_returns_all_values(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                reqs = []
                for i in range(3):
                    r = yield from ctx.isend(1, nbytes=8, tag=i, payload=i)
                    reqs.append(r)
                yield from ctx.waitall(reqs)
                return None
            reqs = []
            for i in range(3):
                r = yield from ctx.irecv(source=0, tag=i)
                reqs.append(r)
            values = yield from ctx.waitall(reqs)
            return [v[0] for v in values]

        _, res = run2(pm_cpu, program)
        assert res.results[1] == [0, 1, 2]

    def test_waitany_returns_completed_index(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(seconds=1e-4)
                r = yield from ctx.isend(1, nbytes=8, tag=7, payload="late")
                yield from ctx.waitall([r])
                return None
            r_never = yield from ctx.irecv(source=0, tag=99)
            r_comes = yield from ctx.irecv(source=0, tag=7)
            idx = yield from ctx.waitany([r_never, r_comes])
            return idx

        _, res = run2(pm_cpu, program)
        assert res.results[1] == 1

    def test_recv_poll_equivalent_to_recv(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=8, payload="ping")
                yield from ctx.waitall([r])
                return None
            p, st = yield from ctx.recv_poll(source=0)
            return p

        _, res = run2(pm_cpu, program)
        assert res.results[1] == "ping"

    def test_recv_poll_handles_rendezvous(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                r = yield from ctx.isend(1, nbytes=500_000, payload="big")
                yield from ctx.waitall([r])
                return None
            p, st = yield from ctx.recv_poll(source=0)
            return p, st.nbytes

        _, res = run2(pm_cpu, program)
        assert res.results[1] == ("big", 500_000)


class TestInstrumentation:
    def test_counters_track_messages_and_syncs(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                reqs = []
                for _ in range(4):
                    r = yield from ctx.isend(1, nbytes=64)
                    reqs.append(r)
                yield from ctx.waitall(reqs)
                return None
            for _ in range(4):
                r = yield from ctx.irecv(source=0)
                yield from ctx.wait(r)

        job, res = run2(pm_cpu, program)
        sender = res.per_rank[0]
        assert sender.messages == 4
        assert sender.bytes_sent == 256
        assert sender.syncs == 1
        assert sender.msg_per_sync() == pytest.approx(4.0)
        receiver = res.per_rank[1]
        assert receiver.recv_messages == 4
        assert receiver.syncs == 4
