"""Extended verbs: sendrecv, iprobe, accumulate, passive-target locks."""

import numpy as np
import pytest

from repro.comm import CommError, Job


class TestSendrecv:
    def test_paired_exchange(self, pm_cpu):
        def program(ctx):
            other = 1 - ctx.rank
            payload, status = yield from ctx.sendrecv(
                other, nbytes=8, payload=f"from {ctx.rank}"
            )
            return payload, status.source

        job = Job(pm_cpu, 2, "two_sided", placement="spread")
        res = job.run(program)
        assert res.results[0] == ("from 1", 1)
        assert res.results[1] == ("from 0", 0)

    def test_ring_shift_no_deadlock(self, pm_cpu):
        def program(ctx):
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            payload, _ = yield from ctx.sendrecv(
                right, nbytes=8, source=left, payload=ctx.rank
            )
            return payload

        res = Job(pm_cpu, 6, "two_sided").run(program)
        assert res.results == [5, 0, 1, 2, 3, 4]


class TestIprobe:
    def test_probe_miss_and_hit(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                miss = yield from ctx.iprobe()
                r = None
                while r is None:
                    r = yield from ctx.iprobe(source=1, tag=9)
                    if r is None:
                        yield from ctx.compute(seconds=1e-6)
                # Probe does not consume: the recv still sees it.
                payload, _ = yield from ctx.recv(source=1, tag=9)
                return miss, r.nbytes, payload
            req = yield from ctx.isend(0, nbytes=64, tag=9, payload="here")
            yield from ctx.waitall([req])

        job = Job(pm_cpu, 2, "two_sided", placement="spread")
        res = job.run(program)
        miss, nbytes, payload = res.results[0]
        assert miss is None
        assert nbytes == 64
        assert payload == "here"


class TestAccumulate:
    def test_sum_accumulate(self, pm_cpu):
        job = Job(pm_cpu, 3, "one_sided", placement="spread")
        win = job.window(4, fill=1.0)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank > 0:
                yield from h.accumulate(0, np.full(4, float(ctx.rank)))
                yield from h.flush(0)
            yield from ctx.barrier()

        job.run(program)
        assert np.allclose(win.local(0), 1.0 + 1.0 + 2.0)

    def test_concurrent_accumulates_lose_nothing(self, pm_cpu):
        job = Job(pm_cpu, 8, "one_sided", placement="spread")
        win = job.window(1, fill=0.0)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank > 0:
                for _ in range(5):
                    yield from h.accumulate(0, np.ones(1))
                yield from h.flush(0)
            yield from ctx.barrier()

        job.run(program)
        assert win.local(0)[0] == 35.0  # 7 ranks x 5

    def test_max_and_replace_ops(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided", placement="spread")
        win = job.window(2, fill=5.0)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.accumulate(1, np.array([9.0, 1.0]), op="max")
                yield from h.flush(1)
                yield from h.accumulate(1, np.array([2.0]), offset=1, op="replace")
                yield from h.flush(1)
            yield from ctx.barrier()

        job.run(program)
        assert list(win.local(1)) == [9.0, 2.0]

    def test_invalid_op_and_bounds(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided")
        win = job.window(2)

        def bad_op(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.accumulate(1, np.ones(1), op="xor")
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="accumulate op"):
            job.run(bad_op)


class TestPassiveLocks:
    def test_lock_put_unlock_epoch(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided", placement="spread")
        win = job.window(2)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.lock(1)
                yield from h.put(1, np.array([4.0]))
                yield from h.unlock(1)
                # unlock implies flush: data is visible.
                return float(win.local(1)[0])
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 4.0

    def test_exclusive_locks_serialise(self, pm_cpu):
        job = Job(pm_cpu, 3, "one_sided", placement="spread")
        win = job.window(1)
        spans = {}

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank > 0:
                yield from h.lock(0, exclusive=True)
                start = ctx.sim.now
                yield from ctx.compute(seconds=1e-4)
                yield from h.unlock(0)
                spans[ctx.rank] = (start, ctx.sim.now)
            else:
                yield from ctx.compute(seconds=0)

        job.run(program)
        (s1, e1), (s2, e2) = spans[1], spans[2]
        # Critical sections must not overlap.
        assert e1 <= s2 or e2 <= s1

    def test_shared_locks_coexist(self, pm_cpu):
        job = Job(pm_cpu, 3, "one_sided", placement="spread")
        win = job.window(1)
        starts = {}

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank > 0:
                yield from h.lock(0)
                starts[ctx.rank] = ctx.sim.now
                yield from ctx.compute(seconds=1e-4)
                yield from h.unlock(0)
            else:
                yield from ctx.compute(seconds=0)

        job.run(program)
        # Both shared holders entered within one lock-acquisition time of
        # each other: no serialisation.
        assert abs(starts[1] - starts[2]) < 5e-5

    def test_double_lock_rejected(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided")
        win = job.window(1)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.lock(1)
                yield from h.lock(1)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="already holds"):
            job.run(program)

    def test_unlock_without_lock_rejected(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided")
        win = job.window(1)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.unlock(1)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="does not hold"):
            job.run(program)
