"""One-sided windows: put/get, flush semantics, fence, polling receiver."""

import numpy as np
import pytest

from repro.comm import CommError, Job


def job2(machine, runtime="one_sided"):
    return Job(machine, 2, runtime, placement="spread")


class TestPutGet:
    def test_put_lands_in_target_buffer(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(8)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.array([1.0, 2.0, 3.0]), offset=2)
                yield from h.flush(1)
            else:
                yield from ctx.compute(seconds=0)

        job.run(program)
        assert np.array_equal(win.local(1)[2:5], [1.0, 2.0, 3.0])
        assert win.local(1)[0] == 0.0

    def test_put_out_of_bounds_fails(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(4)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.zeros(3), offset=2)
                yield from h.flush(1)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="out of bounds"):
            job.run(program)

    def test_put_needs_values_or_nelems(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(4)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="values or nelems"):
            job.run(program)

    def test_get_fetches_remote_values(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(4)
        win.local(1)[:] = [10.0, 20.0, 30.0, 40.0]

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                req = yield from h.get(1, offset=1, nelems=2)
                got = yield from ctx.wait(req)
                return got
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert np.array_equal(res.results[0], [20.0, 30.0])


class TestFlushSemantics:
    def test_data_not_guaranteed_before_flush(self, pm_cpu):
        """The put is non-blocking: immediately after issue the target may
        not have the data yet; after the flush it must."""
        job = job2(pm_cpu)
        win = job.window(2)
        observed = {}

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.array([7.0]))
                observed["before_flush"] = float(win.local(1)[0])
                yield from h.flush(1)
                observed["after_flush"] = float(win.local(1)[0])
            else:
                yield from ctx.compute(seconds=0)

        job.run(program)
        assert observed["before_flush"] == 0.0
        assert observed["after_flush"] == 7.0

    def test_flush_costs_a_round_trip(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(2)
        route_latency = pm_cpu.topology.route("cpu0", "cpu1").latency

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.array([1.0]))
                t0 = ctx.sim.now
                yield from h.flush(1)
                return ctx.sim.now - t0
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] >= 2 * route_latency

    def test_flush_all_covers_every_target(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided", placement="spread")
        win = job.window(2)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.array([5.0]))
                yield from h.flush()  # flush_all
                return float(win.local(1)[0])
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 5.0

    def test_flush_local_cheaper_than_flush(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(2)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(1, np.array([1.0]))
                t0 = ctx.sim.now
                yield from h.flush_local(1)
                t_local = ctx.sim.now - t0
                yield from h.put(1, np.array([2.0]))
                t1 = ctx.sim.now
                yield from h.flush(1)
                t_remote = ctx.sim.now - t1
                return t_local, t_remote
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        t_local, t_remote = res.results[0]
        assert t_local < t_remote


class TestFence:
    def test_fence_is_collective_epoch(self, pm_cpu):
        job = job2(pm_cpu)
        win = job.window(2)

        def program(ctx):
            h = win.handle(ctx)
            yield from h.fence()
            if ctx.rank == 0:
                yield from h.put(1, np.array([3.0]))
            yield from h.fence()
            # After the closing fence both ranks observe the data.
            return float(win.local(1)[0])

        res = job.run(program)
        assert res.results == [3.0, 3.0]

    def test_unbalanced_fence_deadlocks(self, pm_cpu):
        from repro.sim.event import SimulationError

        job = job2(pm_cpu)
        win = job.window(2)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.fence()

        with pytest.raises(SimulationError, match="deadlock"):
            job.run(program)


class TestPollingReceiver:
    def test_listing1_loop_sees_all_signals(self, pm_cpu):
        job = Job(pm_cpu, 4, "one_sided", placement="spread")
        sig = job.window(4, dtype=np.int64)

        def program(ctx):
            h = sig.handle(ctx)
            if ctx.rank == 0:
                got = yield from ctx.poll_wait_signals(sig, [1, 2, 3], expected=3)
                return sorted(got)
            yield from ctx.compute(seconds=ctx.rank * 1e-6)
            yield from h.put(0, np.array([1], dtype=np.int64), offset=ctx.rank)
            yield from h.flush(0)

        res = job.run(program)
        assert res.results[0] == [1, 2, 3]

    def test_poll_expected_bounds_checked(self, pm_cpu):
        job = job2(pm_cpu)
        sig = job.window(4, dtype=np.int64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.poll_wait_signals(sig, [0], expected=2)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="slots"):
            job.run(program)

    def test_poll_cost_scales_with_slots(self, pm_cpu):
        """The Listing-1 scan charges per remaining slot — the 'extra work'
        the paper blames for one-sided SpTRSV's scaling ceiling."""
        times = {}
        for nslots in (2, 64):
            job = Job(pm_cpu, 2, "one_sided", placement="spread")
            sig = job.window(64, dtype=np.int64)

            def program(ctx, n=nslots):
                h = sig.handle(ctx)
                if ctx.rank == 0:
                    t0 = ctx.sim.now
                    yield from ctx.poll_wait_signals(
                        sig, list(range(n)), expected=1
                    )
                    return ctx.sim.now - t0
                yield from h.put(0, np.array([1], dtype=np.int64), offset=0)
                yield from h.flush(0)

            times[nslots] = job.run(program).results[0]
        assert times[64] > times[2]
