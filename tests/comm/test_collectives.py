"""Message-passing collectives: correctness at awkward rank counts plus
cost-scaling sanity."""

import numpy as np
import pytest

from repro.comm import Job
from repro.comm.base import CommError
from repro.comm.collectives import (
    allgather,
    allreduce,
    alltoall,
    bcast,
    dissemination_barrier,
    reduce,
)

PS = [1, 2, 3, 4, 5, 7, 8, 12]


def run(machine, nranks, program):
    return Job(machine, nranks, "two_sided", placement="spread").run(program)


class TestBcast:
    @pytest.mark.parametrize("P", PS)
    def test_all_ranks_get_root_value(self, pm_cpu, P):
        def program(ctx):
            value = np.arange(5.0) if ctx.rank == 0 else None
            got = yield from bcast(ctx, value, root=0)
            return got

        res = run(pm_cpu, P, program)
        for got in res.results:
            assert np.array_equal(got, np.arange(5.0))

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_nonzero_root(self, pm_cpu, root):
        def program(ctx):
            value = np.full(3, 9.0) if ctx.rank == root else None
            got = yield from bcast(ctx, value, root=root)
            return got

        res = run(pm_cpu, 3, program)
        assert all(np.all(g == 9.0) for g in res.results)

    def test_invalid_root(self, pm_cpu):
        def program(ctx):
            yield from bcast(ctx, 1.0, root=7)

        with pytest.raises(CommError):
            run(pm_cpu, 2, program)

    def test_log_rounds_cost(self, pm_cpu):
        """A binomial tree costs ~log2(P) latencies, far below P."""
        from repro.machines import perlmutter_cpu

        def program(ctx):
            t0 = ctx.sim.now
            yield from bcast(ctx, np.zeros(1) if ctx.rank == 0 else None)
            return ctx.sim.now - t0

        t16 = max(run(perlmutter_cpu(), 16, program).results)
        t2 = max(run(perlmutter_cpu(), 2, program).results)
        assert t16 < 6 * t2  # log2(16)=4 rounds, not 15


class TestReduce:
    @pytest.mark.parametrize("P", PS)
    def test_sum_at_root(self, pm_cpu, P):
        def program(ctx):
            got = yield from reduce(ctx, np.array([float(ctx.rank + 1)]))
            return got

        res = run(pm_cpu, P, program)
        assert res.results[0] == pytest.approx(P * (P + 1) / 2)
        assert all(r is None for r in res.results[1:])

    @pytest.mark.parametrize("op,expected", [("max", 7.0), ("min", 0.0), ("prod", 0.0)])
    def test_other_ops(self, pm_cpu, op, expected):
        def program(ctx):
            got = yield from reduce(ctx, np.array([float(ctx.rank)]), op=op)
            return got

        res = run(pm_cpu, 8, program)
        assert res.results[0] == pytest.approx(expected)

    def test_unknown_op(self, pm_cpu):
        def program(ctx):
            yield from reduce(ctx, 1.0, op="xor")

        with pytest.raises(CommError, match="unsupported"):
            run(pm_cpu, 2, program)


class TestAllreduce:
    @pytest.mark.parametrize("P", PS)
    def test_sum_everywhere(self, pm_cpu, P):
        def program(ctx):
            got = yield from allreduce(ctx, np.array([float(ctx.rank + 1), 1.0]))
            return got

        res = run(pm_cpu, P, program)
        expected = np.array([P * (P + 1) / 2, float(P)])
        for got in res.results:
            assert np.allclose(got, expected)

    @pytest.mark.parametrize("P", [3, 5, 6, 7])
    def test_non_power_of_two_fold(self, pm_cpu, P):
        """The remainder fold must neither drop nor double-count ranks."""

        def program(ctx):
            got = yield from allreduce(ctx, np.array([2.0**ctx.rank]))
            return got

        res = run(pm_cpu, P, program)
        expected = sum(2.0**r for r in range(P))
        for got in res.results:
            assert got[0] == pytest.approx(expected)

    def test_max_op(self, pm_cpu):
        def program(ctx):
            got = yield from allreduce(ctx, np.array([float(ctx.rank)]), op="max")
            return got

        res = run(pm_cpu, 6, program)
        assert all(g[0] == 5.0 for g in res.results)


class TestAllgather:
    @pytest.mark.parametrize("P", PS)
    def test_concatenates_in_rank_order(self, pm_cpu, P):
        def program(ctx):
            got = yield from allgather(ctx, np.array([float(ctx.rank)] * 2))
            return got

        res = run(pm_cpu, P, program)
        expected = np.concatenate([[float(r)] * 2 for r in range(P)])
        for got in res.results:
            assert np.array_equal(got, expected)


class TestAlltoall:
    @pytest.mark.parametrize("P", [1, 2, 4, 8, 3, 6])
    def test_transpose_property(self, pm_cpu, P):
        """out[i] at rank j == blocks[j] prepared at rank i."""

        def program(ctx):
            blocks = [
                np.array([10.0 * ctx.rank + j]) for j in range(ctx.size)
            ]
            got = yield from alltoall(ctx, blocks)
            return got

        res = run(pm_cpu, P, program)
        for j in range(P):
            for i in range(P):
                assert res.results[j][i][0] == pytest.approx(10.0 * i + j)

    def test_wrong_block_count(self, pm_cpu):
        def program(ctx):
            yield from alltoall(ctx, [np.zeros(1)])

        with pytest.raises(CommError, match="blocks"):
            run(pm_cpu, 2, program)


class TestDisseminationBarrier:
    @pytest.mark.parametrize("P", [2, 3, 5, 8])
    def test_no_rank_escapes_early(self, pm_cpu, P):
        """No rank may leave the barrier before the slowest rank arrives."""
        arrive = {}
        leave = {}

        def program(ctx):
            yield from ctx.compute(seconds=(ctx.rank + 1) * 1e-5)
            arrive[ctx.rank] = ctx.sim.now
            yield from dissemination_barrier(ctx)
            leave[ctx.rank] = ctx.sim.now

        run(pm_cpu, P, program)
        assert min(leave.values()) >= max(arrive.values())

    def test_single_rank_noop(self, pm_cpu):
        def program(ctx):
            yield from dissemination_barrier(ctx)
            return ctx.sim.now

        assert run(pm_cpu, 1, program).results == [0.0]
