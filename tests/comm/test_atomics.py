"""Window atomics: CAS, fetch-and-add, swap, target serialisation."""

import numpy as np
import pytest

from repro.comm import CommError, Job


def job_n(machine, n=2, runtime="one_sided"):
    return Job(machine, n, runtime, placement="spread")


class TestCas:
    def test_cas_success_swaps(self, pm_cpu):
        job = job_n(pm_cpu)
        win = job.window(4, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                old = yield from h.cas_blocking(1, 0, 0, 42)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 0
        assert win.local(1)[0] == 42

    def test_cas_failure_leaves_value(self, pm_cpu):
        job = job_n(pm_cpu)
        win = job.window(4, dtype=np.int64, fill=7)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                old = yield from h.cas_blocking(1, 0, 0, 42)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 7
        assert win.local(1)[0] == 7  # unchanged

    def test_concurrent_cas_exactly_one_winner(self, pm_cpu):
        job = Job(pm_cpu, 4, "one_sided", placement="spread")
        win = job.window(1, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from ctx.compute(seconds=0)
                return None
            old = yield from h.cas_blocking(0, 0, 0, ctx.rank)
            return old == 0  # True for the winner

        res = job.run(program)
        winners = [r for r in res.results[1:] if r]
        assert len(winners) == 1
        assert win.local(0)[0] in (1, 2, 3)

    def test_atomic_offset_bounds(self, pm_cpu):
        job = job_n(pm_cpu)
        win = job.window(2, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.cas_blocking(1, 5, 0, 1)
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="out of bounds"):
            job.run(program)


class TestFetchOps:
    def test_faa_returns_old_and_adds(self, pm_cpu):
        job = job_n(pm_cpu)
        win = job.window(1, dtype=np.int64, fill=10)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                old = yield from h.faa_blocking(1, 0, 5)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 10
        assert win.local(1)[0] == 15

    def test_concurrent_faa_all_unique(self, pm_cpu):
        """Fetch-and-add as an allocator: every rank gets a distinct index
        (the hashtable overflow-heap idiom)."""
        job = Job(pm_cpu, 8, "one_sided", placement="spread")
        win = job.window(1, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from ctx.compute(seconds=0)
                return None
            old = yield from h.faa_blocking(0, 0, 1)
            return old

        res = job.run(program)
        indices = res.results[1:]
        assert sorted(indices) == list(range(7))
        assert win.local(0)[0] == 7

    def test_fetch_and_replace_swaps(self, pm_cpu):
        job = job_n(pm_cpu)
        win = job.window(1, dtype=np.int64, fill=99)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                req = yield from h.fetch_and_replace(1, 0, 123)
                old = yield from ctx.wait(req)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 99
        assert win.local(1)[0] == 123


class TestAtomicTiming:
    def test_atomics_serialise_at_target(self, pm_cpu):
        """Two concurrent atomics on the same target are spaced at least by
        atomic_apply at the target's atomic unit."""
        job = Job(pm_cpu, 3, "one_sided", placement="spread")
        win = job.window(1, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from ctx.compute(seconds=0)
                return None
            t0 = ctx.sim.now
            yield from h.faa_blocking(0, 0, 1)
            return ctx.sim.now - t0

        res = job.run(program)
        t1, t2 = sorted(res.results[1:])
        assert t2 >= t1  # loser waited at the atomic unit

    def test_atomic_gap_throttles_cross_socket(self, sm_gpu):
        """Summit X-Bus atomics are rate limited (atomic_gap); in-island
        atomics are not."""
        from repro.machines import summit_gpu

        def streaming(target, nranks):
            job = Job(summit_gpu(), nranks, "shmem", placement="spread")
            win = job.window(1, dtype=np.int64)

            def program(ctx):
                if ctx.rank == 0:
                    t0 = ctx.sim.now
                    for i in range(32):
                        yield from ctx.atomic_fetch_add(win, target, 0, 1)
                    return (ctx.sim.now - t0) / 32
                yield from ctx.compute(seconds=0)

            return job.run(program).results[0]

        in_island = streaming(1, 2)
        cross = streaming(3, 6)
        assert cross > in_island
