"""MPI envelope matching semantics."""

import pytest

from repro.comm import ANY_SOURCE, ANY_TAG, Message
from repro.comm.matching import MatchingEngine


@pytest.fixture
def engine(sim):
    return MatchingEngine(sim, rank=0)


def _msg(src=1, tag=5, nbytes=8, payload=None):
    return Message(src=src, dst=0, tag=tag, nbytes=nbytes, payload=payload)


class TestMatching:
    def test_posted_recv_matches_arrival(self, sim, engine):
        ev = sim.event()
        engine.post(1, 5, ev)
        engine.deliver(_msg(payload="data"))
        assert ev.triggered
        payload, status = ev.value
        assert payload == "data"
        assert status.source == 1 and status.tag == 5

    def test_unexpected_queue_matches_later_post(self, sim, engine):
        engine.deliver(_msg(payload="early"))
        ev = sim.event()
        engine.post(1, 5, ev)
        assert ev.triggered
        assert ev.value[0] == "early"

    def test_wildcard_source(self, sim, engine):
        ev = sim.event()
        engine.post(ANY_SOURCE, 5, ev)
        engine.deliver(_msg(src=3))
        assert ev.triggered
        assert ev.value[1].source == 3

    def test_wildcard_tag(self, sim, engine):
        ev = sim.event()
        engine.post(1, ANY_TAG, ev)
        engine.deliver(_msg(tag=99))
        assert ev.triggered

    def test_non_matching_tag_queues(self, sim, engine):
        ev = sim.event()
        engine.post(1, 5, ev)
        engine.deliver(_msg(tag=6))
        assert not ev.triggered
        assert engine.unexpected_depth == 1

    def test_non_matching_source_queues(self, sim, engine):
        ev = sim.event()
        engine.post(2, 5, ev)
        engine.deliver(_msg(src=1))
        assert not ev.triggered

    def test_oldest_posted_wins(self, sim, engine):
        ev1, ev2 = sim.event(), sim.event()
        engine.post(ANY_SOURCE, ANY_TAG, ev1)
        engine.post(ANY_SOURCE, ANY_TAG, ev2)
        engine.deliver(_msg(payload="first"))
        assert ev1.triggered and not ev2.triggered

    def test_non_overtaking_same_sender(self, sim, engine):
        engine.deliver(_msg(payload="m1"))
        engine.deliver(_msg(payload="m2"))
        ev1, ev2 = sim.event(), sim.event()
        engine.post(1, 5, ev1)
        engine.post(1, 5, ev2)
        assert ev1.value[0] == "m1" and ev2.value[0] == "m2"

    def test_wrong_destination_rejected(self, engine):
        bad = Message(src=1, dst=7, tag=0, nbytes=0)
        with pytest.raises(ValueError):
            engine.deliver(bad)

    def test_completion_delay_applied(self, sim):
        engine = MatchingEngine(sim, 0, delay_fn=lambda m: 1e-6)
        ev = sim.event()
        engine.post(1, 5, ev)
        engine.deliver(_msg())
        fired = []
        ev.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(1e-6)]


class TestProbeAndTake:
    def test_probe_nondestructive(self, sim, engine):
        engine.deliver(_msg(payload="x"))
        assert engine.probe(1, 5) is not None
        assert engine.unexpected_depth == 1

    def test_probe_miss(self, sim, engine):
        assert engine.probe(1, 5) is None

    def test_take_pops_matching(self, sim, engine):
        engine.deliver(_msg(tag=1, payload="a"))
        engine.deliver(_msg(tag=2, payload="b"))
        got = engine.take(ANY_SOURCE, 2)
        assert got.payload == "b"
        assert engine.unexpected_depth == 1

    def test_take_miss_returns_none(self, sim, engine):
        assert engine.take(ANY_SOURCE, ANY_TAG) is None

    def test_arrival_watcher_fires_on_delivery(self, sim, engine):
        ev = engine.on_arrival()
        assert not ev.triggered
        engine.deliver(_msg())
        assert ev.triggered

    def test_on_match_hook_bypasses_completion(self, sim, engine):
        hooked = []
        m = _msg()
        m.on_match = lambda posted, msg: hooked.append(msg)
        ev = sim.event()
        engine.post(1, 5, ev)
        engine.deliver(m)
        assert hooked == [m]
        assert not ev.triggered  # hook owns completion now
