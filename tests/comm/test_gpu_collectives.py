"""The deprecated ring-allreduce shim: warns, validates, still performs.

``run_ring_allreduce`` now delegates to
:func:`repro.collectives.run_collective`; these tests pin that the shim
(a) emits the deprecation exactly as the ``repro._compat`` policy says,
(b) keeps the legacy validations and result shape, and (c) preserves
every performance property the old hand-rolled ring was built to show.
"""

import numpy as np
import pytest

from repro import _compat
from repro.comm.base import CommError
from repro.comm.gpu_collectives import run_ring_allreduce
from repro.machines import perlmutter_gpu, summit_gpu


@pytest.fixture(autouse=True)
def _fresh_warnings():
    # The shim warns once per call site; tests below call from many
    # lines but re-runs must start clean.
    _compat._reset_warned()
    yield
    _compat._reset_warned()


def _run(*args, **kwargs):
    _compat._reset_warned()  # every helper call is the same call site
    with pytest.deprecated_call(match="run_collective"):
        return run_ring_allreduce(*args, **kwargs)


class TestShim:
    def test_warns_once_per_call_site(self):
        with pytest.deprecated_call():
            for _ in range(3):  # one site, three calls -> one warning
                run_ring_allreduce(perlmutter_gpu(), 2, 8)

    def test_matches_run_collective(self):
        out = _run(perlmutter_gpu(), 4, 4096, stripes=4)
        from repro.collectives import run_collective

        r = run_collective(
            perlmutter_gpu(), "shmem", "allreduce",
            nranks=4, nelems=4096, algorithm="ring", stripes=4,
        )
        assert out["time"] == r.time
        assert out["algo_bandwidth"] == r.bus_bandwidth

    def test_legacy_dict_shape(self):
        out = _run(perlmutter_gpu(), 2, 16)
        assert set(out) == {
            "time", "results", "algo_bandwidth", "nelems", "nranks"
        }
        assert out["results"] == [None, None]  # simulate mode, like the old ring


class TestCorrectness:
    @pytest.mark.parametrize("P", [1, 2, 3, 4])
    def test_matches_numpy_sum(self, P):
        rng = np.random.default_rng(P)
        n = 12 * max(P, 1)
        values = [rng.normal(size=n) for _ in range(P)]
        out = _run(perlmutter_gpu(), P, n, values=values)
        expected = np.sum(values, axis=0)
        for got in out["results"]:
            assert np.allclose(got, expected)

    def test_summit_six_gpus(self):
        rng = np.random.default_rng(7)
        n = 24
        values = [rng.normal(size=n) for _ in range(6)]
        out = _run(summit_gpu(), 6, n, values=values)
        for got in out["results"]:
            assert np.allclose(got, np.sum(values, axis=0))

    def test_indivisible_length_rejected(self):
        with pytest.deprecated_call(), pytest.raises(CommError, match="divisible"):
            run_ring_allreduce(perlmutter_gpu(), 4, 10)


class TestPerformanceShape:
    def test_large_buffers_approach_link_bandwidth(self):
        """Ring allreduce is bandwidth-optimal: for large buffers the
        algorithmic bandwidth approaches the per-message link rate."""
        out = _run(perlmutter_gpu(), 4, 4_000_000)
        # One NVLink3 sub-channel carries 25 GB/s per hop.
        assert out["algo_bandwidth"] > 0.5 * 25e9

    def test_small_buffers_latency_bound(self):
        small = _run(perlmutter_gpu(), 4, 16)
        big = _run(perlmutter_gpu(), 4, 4_000_000)
        assert small["algo_bandwidth"] < big["algo_bandwidth"]

    def test_simulate_and_execute_same_time(self):
        rng = np.random.default_rng(3)
        n = 64
        values = [rng.normal(size=n) for _ in range(4)]
        t_sim = _run(perlmutter_gpu(), 4, n)["time"]
        t_exe = _run(perlmutter_gpu(), 4, n, values=values)["time"]
        assert t_sim == pytest.approx(t_exe, rel=1e-12)

    def test_single_stream_ring_misses_port_group(self):
        """An unstriped ring sees only one NVLink3 port (25 GB/s) on A100
        while V100's single 50 GB/s link serves it fully — NCCL's
        motivation for multiple rings."""
        t_pm = _run(perlmutter_gpu(), 4, 400_000)["time"]
        t_sm = _run(summit_gpu(), 4, 400_000)["time"]
        assert t_sm < t_pm  # V100 wins the single-stream ring

    def test_striping_engages_the_port_group(self):
        base = _run(perlmutter_gpu(), 4, 4_000_000)
        striped = _run(perlmutter_gpu(), 4, 4_000_000, stripes=4)
        assert striped["time"] < base["time"] / 2
        # With all four ports engaged, A100 overtakes V100.
        t_sm = _run(summit_gpu(), 4, 4_000_000)["time"]
        assert striped["time"] < t_sm

    def test_striped_ring_still_correct(self):
        rng = np.random.default_rng(11)
        n = 48
        values = [rng.normal(size=n) for _ in range(4)]
        out = _run(perlmutter_gpu(), 4, n, values=values, stripes=4)
        expected = np.sum(values, axis=0)
        for got in out["results"]:
            assert np.allclose(got, expected)

    def test_invalid_stripes(self):
        with pytest.deprecated_call(), pytest.raises(CommError, match="stripes"):
            run_ring_allreduce(perlmutter_gpu(), 4, 8, stripes=5)
