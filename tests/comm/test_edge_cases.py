"""Edge cases of the completion and probing verbs.

MPI leaves several corners underspecified in folklore but precise in the
standard: zero-request waits complete immediately, wildcard receives
report the *actual* source/tag in the status, and a ``Sendrecv`` with
``dest == source == self`` must not deadlock.  Pin our semantics.
"""

import pytest

from repro.comm import ANY_SOURCE, ANY_TAG, Job


class TestWaitanyEdges:
    def test_empty_request_list_returns_none(self, pm_cpu):
        def program(ctx):
            t0 = ctx.sim.now
            idx = yield from ctx.waitany([])
            return idx, ctx.sim.now - t0

        res = Job(pm_cpu, 1, "two_sided").run(program)
        idx, elapsed = res.results[0]
        assert idx is None
        assert elapsed == 0.0

    def test_waitall_empty_request_list(self, pm_cpu):
        def program(ctx):
            values = yield from ctx.waitall([])
            return values

        assert Job(pm_cpu, 1, "two_sided").run(program).results == [[]]

    def test_returns_index_of_first_done(self, pm_cpu):
        def program(ctx):
            from repro.comm import ANY_SOURCE

            if ctx.rank == 0:
                # Tag 9 arrives much later than tag 5.
                late = yield from ctx.irecv(source=ANY_SOURCE, tag=9)
                soon = yield from ctx.irecv(source=1, tag=5)
                idx = yield from ctx.waitany([late, soon])
                # Drain the dangling request so the job can finish.
                req = yield from ctx.isend(0, nbytes=8, tag=9)
                yield from ctx.waitall([req, late])
                return idx
            req = yield from ctx.isend(0, nbytes=8, tag=5)
            yield from ctx.waitall([req])

        job = Job(pm_cpu, 2, "two_sided", placement="spread")
        assert job.run(program).results[0] == 1

    def test_already_complete_request_is_instant(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                payload_req = yield from ctx.irecv(source=1, tag=1)
                yield from ctx.wait(payload_req)
                # Request is complete: waitany must not block or wake.
                idx = yield from ctx.waitany([payload_req])
                return idx
            req = yield from ctx.isend(0, nbytes=8, tag=1)
            yield from ctx.waitall([req])

        job = Job(pm_cpu, 2, "two_sided", placement="spread")
        assert job.run(program).results[0] == 0


class TestWildcards:
    def test_recv_any_source_reports_actual_source(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                sources = set()
                for _ in range(2):
                    _, status = yield from ctx.recv(source=ANY_SOURCE, tag=7)
                    sources.add(status.source)
                return sources
            req = yield from ctx.isend(0, nbytes=16, tag=7, payload=ctx.rank)
            yield from ctx.waitall([req])

        res = Job(pm_cpu, 3, "two_sided").run(program)
        assert res.results[0] == {1, 2}

    def test_recv_any_tag_reports_actual_tag(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                tags = set()
                for _ in range(2):
                    _, status = yield from ctx.recv(source=1, tag=ANY_TAG)
                    tags.add(status.tag)
                return tags
            for tag in (3, 11):
                req = yield from ctx.isend(0, nbytes=8, tag=tag)
                yield from ctx.waitall([req])

        res = Job(pm_cpu, 2, "two_sided", placement="spread").run(program)
        assert res.results[0] == {3, 11}

    def test_iprobe_wildcards_match_any_pending(self, pm_cpu):
        def program(ctx):
            if ctx.rank == 0:
                status = None
                while status is None:
                    status = yield from ctx.iprobe(ANY_SOURCE, ANY_TAG)
                    if status is None:
                        yield from ctx.compute(seconds=1e-6)
                # Specific probes: wrong tag misses, right tag hits.
                miss = yield from ctx.iprobe(source=1, tag=status.tag + 1)
                hit = yield from ctx.iprobe(source=1, tag=status.tag)
                payload, _ = yield from ctx.recv(ANY_SOURCE, ANY_TAG)
                return status.source, status.tag, miss, hit.nbytes, payload
            req = yield from ctx.isend(0, nbytes=32, tag=4, payload="x")
            yield from ctx.waitall([req])

        res = Job(pm_cpu, 2, "two_sided", placement="spread").run(program)
        source, tag, miss, hit_nbytes, payload = res.results[0]
        assert (source, tag) == (1, 4)
        assert miss is None
        assert hit_nbytes == 32
        assert payload == "x"

    def test_irecv_source_out_of_range_rejected(self, pm_cpu):
        from repro.comm import CommError

        def program(ctx):
            with pytest.raises(CommError, match="out of range"):
                yield from ctx.irecv(source=5)
            yield from ctx.compute(seconds=0)

        Job(pm_cpu, 2, "two_sided").run(program)


class TestSelfSendrecv:
    def test_sendrecv_with_self_completes(self, pm_cpu):
        def program(ctx):
            payload, status = yield from ctx.sendrecv(
                ctx.rank, nbytes=8, payload=f"self {ctx.rank}"
            )
            return payload, status.source

        res = Job(pm_cpu, 2, "two_sided").run(program)
        assert res.results[0] == ("self 0", 0)
        assert res.results[1] == ("self 1", 1)

    def test_sendrecv_tagged_exchange(self, pm_cpu):
        """Each side tags with its own rank; statuses carry the tags."""

        def program(ctx):
            other = 1 - ctx.rank
            payload, status = yield from ctx.sendrecv(
                other, nbytes=8, source=other, sendtag=ctx.rank,
                recvtag=other, payload=ctx.rank,
            )
            return payload, status.tag

        res = Job(pm_cpu, 2, "two_sided", placement="spread").run(program)
        assert res.results[0] == (1, 1)
        assert res.results[1] == (0, 0)
