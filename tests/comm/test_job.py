"""Job runner: lifecycle, collectives, results, validation."""

import numpy as np
import pytest

from repro.comm import Job


class TestLifecycle:
    def test_single_rank_job(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=1e-3)
            return ctx.rank

        res = Job(pm_cpu, 1, "two_sided").run(program)
        assert res.results == [0]
        assert res.time == pytest.approx(1e-3)

    def test_results_ordered_by_rank(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=0)
            return ctx.rank * 10

        res = Job(pm_cpu, 4, "two_sided").run(program)
        assert res.results == [0, 10, 20, 30]

    def test_program_args_forwarded(self, pm_cpu):
        def program(ctx, a, b=0):
            yield from ctx.compute(seconds=0)
            return a + b + ctx.rank

        res = Job(pm_cpu, 2, "two_sided").run(program, 100, b=1)
        assert res.results == [101, 102]

    def test_time_is_makespan(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=(ctx.rank + 1) * 1e-3)

        res = Job(pm_cpu, 3, "two_sided").run(program)
        assert res.time == pytest.approx(3e-3)

    def test_capacity_validation(self, pm_cpu):
        with pytest.raises(ValueError, match="capacity"):
            Job(pm_cpu, 129, "two_sided")
        with pytest.raises(ValueError):
            Job(pm_cpu, 0, "two_sided")

    def test_unknown_runtime(self, pm_cpu):
        from repro.transport import UnknownBackendError

        with pytest.raises(UnknownBackendError, match="valid backends"):
            Job(pm_cpu, 2, "nccl")

    def test_gpu_machine_caps_at_device_count(self, pm_gpu):
        with pytest.raises(ValueError):
            Job(pm_gpu, 5, "shmem")

    def test_events_processed_reported(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=1e-6)

        res = Job(pm_cpu, 2, "two_sided").run(program)
        assert res.events_processed > 0


class TestCollectives:
    def test_barrier_synchronises(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=ctx.rank * 1e-4)
            yield from ctx.barrier()
            return ctx.sim.now

        res = Job(pm_cpu, 4, "two_sided").run(program)
        assert max(res.results) - min(res.results) < 1e-12

    def test_barrier_cost_grows_with_log_p(self, pm_cpu):
        from repro.machines import perlmutter_cpu

        def program(ctx):
            t0 = ctx.sim.now
            yield from ctx.barrier()
            return ctx.sim.now - t0

        t2 = Job(perlmutter_cpu(), 2, "two_sided").run(program).results[0]
        t32 = Job(perlmutter_cpu(), 32, "two_sided").run(program).results[0]
        assert t32 > t2
        assert t32 == pytest.approx(t2 * 5, rel=0.01)  # log2(32)/log2(2)

    def test_repeated_barriers(self, pm_cpu):
        def program(ctx):
            for _ in range(3):
                yield from ctx.barrier()
            return True

        res = Job(pm_cpu, 3, "two_sided").run(program)
        assert all(res.results)

    def test_allreduce_sum(self, pm_cpu):
        def program(ctx):
            total = yield from ctx.allreduce_sum(float(ctx.rank + 1))
            return total

        res = Job(pm_cpu, 4, "two_sided").run(program)
        assert res.results == [10.0] * 4

    def test_single_rank_barrier_free(self, pm_cpu):
        def program(ctx):
            t0 = ctx.sim.now
            yield from ctx.barrier()
            return ctx.sim.now - t0

        assert Job(pm_cpu, 1, "two_sided").run(program).results[0] == 0.0


class TestWindows:
    def test_window_per_rank_buffers(self, pm_cpu):
        job = Job(pm_cpu, 3, "one_sided")
        win = job.window(4, dtype=np.int32, fill=9)
        assert len(win.buffers) == 3
        assert win.local(2).dtype == np.int32
        assert win.local(0)[0] == 9
        # Buffers are independent.
        win.local(0)[0] = 1
        assert win.local(1)[0] == 9

    def test_window_count_validation(self, pm_cpu):
        job = Job(pm_cpu, 2, "one_sided")
        with pytest.raises(ValueError):
            job.window(0)

    def test_gups_helper(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=1e-3)

        res = Job(pm_cpu, 1, "two_sided").run(program)
        assert res.gups(1000) == pytest.approx(1000 / 1e-3 / 1e9)


class TestDeterminism:
    def test_identical_runs_identical_times(self, small_matrix):
        from repro.machines import perlmutter_cpu
        from repro.workloads.sptrsv import run_sptrsv

        t1 = run_sptrsv(perlmutter_cpu(), "two_sided", small_matrix, 4).time
        t2 = run_sptrsv(perlmutter_cpu(), "two_sided", small_matrix, 4).time
        assert t1 == t2
