"""GPU-initiated SHMEM layer: put-with-signal, waits, quiet, ordering."""

import numpy as np
import pytest

from repro.comm import CommError, Job


def gjob(machine, n=2):
    return Job(machine, n, "shmem", placement="spread")


class TestPutSignal:
    def test_data_and_signal_land(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(8)
        sig = job.window(4, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.put_signal_nbi(
                    data, 1, values=np.array([1.5, 2.5]), offset=3,
                    signal_win=sig, signal_idx=2, signal_value=9,
                )
                yield from ctx.quiet()
            else:
                yield from ctx.wait_until_all(sig, [2], value=9)
                return list(data.local(1)[3:5])

        res = job.run(program)
        assert res.results[1] == [1.5, 2.5]
        assert sig.local(1)[2] == 9

    def test_signal_never_observable_before_data(self, pm_gpu):
        """The put-with-signal ordering guarantee: when the waiter wakes,
        the data is already visible."""
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.put_signal_nbi(
                    data, 1, values=np.array([7.0]), signal_win=sig, signal_idx=0
                )
                yield from ctx.quiet()
            else:
                yield from ctx.wait_until_all(sig, [0], value=1)
                # Observed at the very wake instant.
                return float(data.local(1)[0])

        res = job.run(program)
        assert res.results[1] == 7.0

    def test_signal_add_accumulates(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(3):
                    yield from ctx.put_signal_nbi(
                        data, 1, nelems=1, signal_win=sig, signal_idx=0,
                        signal_value=1, signal_op="add",
                    )
                yield from ctx.quiet()
            else:
                yield from ctx.wait_until_all(sig, [0], value=3)
                return int(sig.local(1)[0])

        res = job.run(program)
        assert res.results[1] == 3

    def test_bad_signal_op_rejected(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.put_signal_nbi(
                    data, 1, nelems=1, signal_win=sig, signal_idx=0,
                    signal_op="xor",
                )
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError, match="signal_op"):
            job.run(program)


class TestWaitUntil:
    def test_wait_until_any_returns_fired_index(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(8, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.compute(seconds=1e-6)
                yield from ctx.put_signal_nbi(
                    data, 1, nelems=1, signal_win=sig, signal_idx=5
                )
                yield from ctx.quiet()
            else:
                idx = yield from ctx.wait_until_any(sig, [1, 3, 5, 7])
                return idx

        res = job.run(program)
        assert res.results[1] == 5

    def test_wait_until_any_consume_resets(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.put_signal_nbi(
                    data, 1, nelems=1, signal_win=sig, signal_idx=0
                )
                yield from ctx.quiet()
            else:
                idx = yield from ctx.wait_until_any(sig, [0], consume=True)
                return idx, int(sig.local(1)[0])

        res = job.run(program)
        assert res.results[1] == (0, 0)

    def test_wait_until_any_empty_rejected(self, pm_gpu):
        job = gjob(pm_gpu)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.wait_until_any(sig, [])
            else:
                yield from ctx.compute(seconds=0)

        with pytest.raises(CommError):
            job.run(program)

    def test_wait_satisfied_signals_do_not_block(self, pm_gpu):
        job = gjob(pm_gpu)
        sig = job.window(2, dtype=np.uint64, fill=5)

        def program(ctx):
            t0 = ctx.sim.now
            yield from ctx.wait_until_all(sig, [0, 1], value=5)
            return ctx.sim.now - t0

        res = job.run(program)
        assert res.results[0] == 0.0  # no block, no wakeup charge


class TestQuiet:
    def test_quiet_completes_outstanding(self, pm_gpu):
        job = gjob(pm_gpu)
        data = job.window(4)
        sig = job.window(2, dtype=np.uint64)

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.put_signal_nbi(
                    data, 1, values=np.array([4.0]), signal_win=sig, signal_idx=0
                )
                yield from ctx.quiet()
                # After quiet, remote completion is guaranteed.
                return float(data.local(1)[0])
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 4.0

    def test_barrier_all(self, pm_gpu):
        job = gjob(pm_gpu, n=4)

        def program(ctx):
            yield from ctx.compute(seconds=ctx.rank * 1e-6)
            yield from ctx.barrier_all()
            return ctx.sim.now

        res = job.run(program)
        # All ranks leave the barrier at (nearly) the same time.
        assert max(res.results) - min(res.results) < 1e-9


class TestGpuAtomics:
    def test_atomic_cas_via_shmem(self, pm_gpu):
        job = gjob(pm_gpu)
        win = job.window(2, dtype=np.int64)

        def program(ctx):
            if ctx.rank == 0:
                old = yield from ctx.atomic_compare_swap(win, 1, 0, 0, 77)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 0
        assert win.local(1)[0] == 77

    def test_atomic_fetch_add_via_shmem(self, pm_gpu):
        job = gjob(pm_gpu)
        win = job.window(2, dtype=np.int64, fill=5)

        def program(ctx):
            if ctx.rank == 0:
                old = yield from ctx.atomic_fetch_add(win, 1, 0, 3)
                return old
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert res.results[0] == 5
        assert win.local(1)[0] == 8
