"""Property tests for the IR pass pipeline (hypothesis).

Two invariants, checked over randomly drawn (workload-program, machine,
backend) triples:

* **monotone** — no pass ever *increases* a program's modeled cost: the
  passes only merge messages, hide compute behind transfers, drop
  provably redundant fences, or retarget to a cheaper backend, and each
  is conservative (it fires only when the cost model says the rewrite is
  safe or free).
* **idempotent** — running a pipeline on its own output fires zero
  further rewrites and leaves the program unchanged: every rewrite
  removes its own precondition (a coalesced batch has n=1, split compute
  has no ``interior_frac``, an elided region has no fences, a retargeted
  program keeps the incumbent on the second scoring).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import build_pipeline, program_cost
from repro.machines.registry import get_machine
from repro.workloads.flood import build_cas_flood_program, build_flood_program
from repro.workloads.hashtable.runner import (
    HashTableConfig,
    _plan_rounds,
    build_hashtable_program,
    generate_keys,
)
from repro.workloads.hashtable.table import TableGeometry
from repro.workloads.stencil.decomposition import ProcessGrid
from repro.workloads.stencil.runner import StencilConfig, build_stencil_program

MACHINES = ("perlmutter-cpu", "perlmutter-gpu", "summit-cpu", "frontier-gpu")

PASS_NAMES = ("coalesce", "overlap", "sync-elide", "auto-backend")


def _backends_for(machine):
    return tuple(machine.runtimes)


@st.composite
def programs(draw):
    """A static program from a real workload builder, on a real machine."""
    machine = get_machine(draw(st.sampled_from(MACHINES)))
    runtime = draw(st.sampled_from(_backends_for(machine)))
    kind = draw(st.sampled_from(("flood", "cas_flood", "stencil", "hashtable")))
    if kind == "flood":
        program = build_flood_program(
            runtime,
            draw(st.sampled_from((64, 1024, 4096, 65536))),
            draw(st.sampled_from((1, 4, 64))),
            iters=draw(st.integers(1, 3)),
        )
    elif kind == "cas_flood":
        program = build_cas_flood_program(
            runtime, n_ops=draw(st.integers(1, 64)), target_rank=1
        )
    elif kind == "stencil":
        nranks = draw(st.sampled_from((1, 2, 4)))
        n = draw(st.sampled_from((16, 32)))
        cfg = StencilConfig(
            nx=n, ny=n, iters=draw(st.integers(1, 3)), mode="simulate"
        )
        program = build_stencil_program(
            runtime, cfg, ProcessGrid.square_ish(nranks), nranks
        )
    else:
        nranks = draw(st.sampled_from((2, 4)))
        cfg = HashTableConfig(total_inserts=draw(st.sampled_from((32, 128))))
        geom = TableGeometry.for_inserts(
            nranks, cfg.total_inserts, load_factor=cfg.load_factor
        )
        keys = generate_keys(cfg, nranks)
        incoming = _plan_rounds(geom, keys, nranks, cfg.sync_window)
        program = build_hashtable_program(
            runtime, geom, keys, incoming, cfg.sync_window, nranks
        )
    return program, machine


@settings(max_examples=60, deadline=None)
@given(programs(), st.sampled_from(PASS_NAMES))
def test_no_pass_increases_modeled_cost(prog_machine, pass_name):
    program, machine = prog_machine
    if program.dynamic:
        return  # passes never see dynamic programs (run_program skips them)
    pipe = build_pipeline([pass_name])
    before = program_cost(program, machine)
    rewritten, _rewrites = pipe.run(program, machine)
    after = program_cost(rewritten, machine)
    assert after <= before * (1 + 1e-12), (
        f"{pass_name} increased modeled cost on {program.name}"
        f"@{machine.name}/{program.runtime}: {before} -> {after}"
    )


@settings(max_examples=60, deadline=None)
@given(
    programs(),
    st.lists(st.sampled_from(PASS_NAMES), min_size=1, max_size=4, unique=True),
)
def test_pipelines_are_idempotent(prog_machine, names):
    program, machine = prog_machine
    if program.dynamic:
        return
    pipe = build_pipeline(names)
    once, _ = pipe.run(program, machine)
    twice, rewrites = pipe.run(once, machine)
    assert not rewrites, (
        f"second {names} run fired {[r.kind for r in rewrites]} "
        f"on {program.name}@{machine.name}/{program.runtime}"
    )
    assert twice.runtime == once.runtime
    assert [
        [type(op).__name__ for ops in r.body for op in ops]
        for r in twice.regions
    ] == [
        [type(op).__name__ for ops in r.body for op in ops]
        for r in once.regions
    ]


@settings(max_examples=30, deadline=None)
@given(programs())
def test_default_pipeline_cost_monotone_end_to_end(prog_machine):
    program, machine = prog_machine
    if program.dynamic:
        return
    pipe = build_pipeline(True)
    before = program_cost(program, machine)
    rewritten, _ = pipe.run(program, machine)
    assert program_cost(rewritten, machine) <= before * (1 + 1e-12)
