"""Property-based tests (hypothesis) on the collective cost model.

The selector's :func:`~repro.collectives.selector.model_time` promises
(documented in its module): non-negative, zero at P=1, monotone in the
message size for every algorithm, and monotone in the rank count within
an algorithm family — for the linear (ring/tree/pairwise) families over
*all* rank counts, for the log-based recursive families across
power-of-two rank counts only (the MPICH fold makes 2^k + 1 ranks
genuinely costlier than 2^(k+1), so all-P monotonicity is not claimed
and not tested).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.plan import ALGORITHMS
from repro.collectives.selector import model_time, select
from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.transport import SHMEM, TWO_SIDED

ALL_PAIRS = [(c, a) for c, algs in sorted(ALGORITHMS.items()) for a in algs]

# Linear-round families: cost has the closed form rounds(P) * (alpha +
# c(P) * m * beta) with rounds and c nondecreasing in P.
LINEAR_PAIRS = [
    ("allreduce", "ring"),
    ("allgather", "ring"),
    ("reduce_scatter", "ring"),
    ("alltoall", "ring"),
    ("alltoall", "pairwise"),
    ("broadcast", "ring"),
    ("broadcast", "tree"),
    ("barrier", "dissemination"),
    ("barrier", "tree"),
]

LOG_PAIRS = [p for p in ALL_PAIRS if p not in LINEAR_PAIRS]

alphas = st.floats(1e-9, 1e-3)
betas = st.floats(1e-13, 1e-7)
sizes = st.floats(0.0, 2.0**28)
ranks = st.integers(1, 96)
log_ranks = st.integers(0, 7).map(lambda k: 1 << k)


@given(alpha=alphas, beta=betas, m=sizes, P=ranks)
@settings(max_examples=60)
@pytest.mark.parametrize(("coll", "algorithm"), ALL_PAIRS)
def test_nonnegative_and_zero_at_one_rank(coll, algorithm, alpha, beta, m, P):
    t = model_time(coll, algorithm, P, m, alpha, beta)
    assert t >= 0.0
    assert model_time(coll, algorithm, 1, m, alpha, beta) == 0.0


@given(alpha=alphas, beta=betas, P=ranks,
       ms=st.tuples(sizes, sizes).map(sorted))
@settings(max_examples=60)
@pytest.mark.parametrize(("coll", "algorithm"), ALL_PAIRS)
def test_monotone_in_message_size(coll, algorithm, alpha, beta, P, ms):
    m1, m2 = ms
    t1 = model_time(coll, algorithm, P, m1, alpha, beta)
    t2 = model_time(coll, algorithm, P, m2, alpha, beta)
    assert t1 <= t2


@given(alpha=alphas, beta=betas, m=sizes,
       Ps=st.tuples(ranks, ranks).map(sorted))
@settings(max_examples=60)
@pytest.mark.parametrize(("coll", "algorithm"), LINEAR_PAIRS)
def test_linear_families_monotone_in_all_ranks(coll, algorithm, alpha, beta,
                                               m, Ps):
    P1, P2 = Ps
    t1 = model_time(coll, algorithm, P1, m, alpha, beta)
    t2 = model_time(coll, algorithm, P2, m, alpha, beta)
    assert t1 <= t2 * (1 + 1e-12)


@given(alpha=alphas, beta=betas, m=sizes,
       Ps=st.tuples(log_ranks, log_ranks).map(sorted))
@settings(max_examples=60)
@pytest.mark.parametrize(("coll", "algorithm"), LOG_PAIRS)
def test_log_families_monotone_across_pow2_ranks(coll, algorithm, alpha,
                                                 beta, m, Ps):
    P1, P2 = Ps
    t1 = model_time(coll, algorithm, P1, m, alpha, beta)
    t2 = model_time(coll, algorithm, P2, m, alpha, beta)
    assert t1 <= t2 * (1 + 1e-12)


def test_fold_really_breaks_all_p_monotonicity():
    """Document *why* the log families only claim pow2 monotonicity:
    5 ranks (fold) genuinely cost more than 8 (no fold) at small m."""
    alpha, beta = 1e-6, 1e-10
    t5 = model_time("allreduce", "recursive_doubling", 5, 64, alpha, beta)
    t8 = model_time("allreduce", "recursive_doubling", 8, 64, alpha, beta)
    assert t5 > t8


@given(m=sizes, P=st.integers(2, 32))
@settings(max_examples=40, deadline=None)
@pytest.mark.parametrize(
    ("machine_factory", "runtime"),
    [(perlmutter_cpu, TWO_SIDED), (perlmutter_gpu, SHMEM)],
    ids=["cpu-mpi", "gpu-shmem"],
)
@pytest.mark.parametrize("coll", sorted(ALGORITHMS))
def test_selector_always_returns_argmin(coll, machine_factory, runtime, m, P):
    sel = select(coll, nranks=P, nbytes=m, machine=machine_factory(),
                 runtime=runtime)
    table = dict(sel.costs)
    assert sel.algorithm in table
    assert table[sel.algorithm] == min(table.values())
    assert sel.alpha > 0.0 and sel.beta > 0.0
