"""Property-based tests (hypothesis) on core invariants.

Covers: the Message Roofline's mathematical invariants, LogGP timing, fabric
causality, matching-engine conservation, decomposition partitioning, the
hashtable's insert conservation, and triangular-solve correctness over
random matrices.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import LinkParams, LogGPParams, TopologySpec
from repro.net.fabric import Fabric
from repro.roofline import MessageRoofline, SplitModel
from repro.sim import Simulator
from repro.workloads.stencil import ProcessGrid

# Bounded, physically sensible parameter ranges.  The rounded model's
# monotonicity properties hold on the physical domain g <= o + L (an
# injection gap can re-arm within the one-message cost); an unbounded gap
# would mean the port re-arms slower than an entire message completes,
# which no real link exhibits.
lat = st.floats(1e-8, 1e-4)
ovh = st.floats(1e-9, 1e-5)
bw = st.floats(1e8, 1e12)
sizes = st.floats(8.0, 2.0**26)
msgs = st.integers(1, 100_000)


def params_strategy():
    def build(L, o, g_frac, b, s):
        g = g_frac * (o + L)
        return LogGPParams(L=L, o=o, g=g, G=1.0 / b, o_sync=s)

    return st.builds(
        build, lat, ovh, st.floats(0.0, 1.0), bw, st.floats(0.0, 1e-4)
    )


class TestRooflineProperties:
    @settings(max_examples=150)
    @given(params_strategy(), sizes, msgs)
    def test_bandwidth_never_exceeds_peak(self, p, B, n):
        r = MessageRoofline(p)
        assert float(r.bandwidth(B, n)) <= p.peak_bandwidth * (1 + 1e-9)

    @settings(max_examples=150)
    @given(params_strategy(), sizes, msgs)
    def test_sharp_bound_dominates_rounded(self, p, B, n):
        r = MessageRoofline(p)
        assert float(r.bandwidth(B, n, sharp=True)) >= float(
            r.bandwidth(B, n)
        ) * (1 - 1e-9)

    @settings(max_examples=100)
    @given(params_strategy(), sizes, st.integers(1, 1000))
    def test_bandwidth_nondecreasing_in_n(self, p, B, n):
        r = MessageRoofline(p)
        assert float(r.bandwidth(B, n + 1)) >= float(r.bandwidth(B, n)) * (
            1 - 1e-12
        )

    @settings(max_examples=100)
    @given(params_strategy(), sizes, msgs)
    def test_time_positive_and_additive(self, p, B, n):
        r = MessageRoofline(p)
        t = float(r.time(B, n))
        assert t > 0
        # Doubling the batch never more than doubles the time + one sync.
        assert float(r.time(B, 2 * n)) <= 2 * t

    @settings(max_examples=100)
    @given(params_strategy(), sizes)
    def test_overlap_gain_at_least_one(self, p, B):
        r = MessageRoofline(p)
        assert float(r.max_overlap_gain(B)) >= 1 - 1e-9

    @settings(max_examples=100)
    @given(params_strategy(), sizes, msgs)
    def test_time_matches_loggp_pipelined(self, p, B, n):
        r = MessageRoofline(p)
        assert float(r.time(B, n)) == pytest.approx(p.time_pipelined(B, n))


class TestSplitModelProperties:
    @settings(max_examples=100)
    @given(
        st.floats(0.0, 1e-5),
        st.floats(0.0, 1e-5),
        st.floats(1e9, 1e11),
        st.floats(2.0, 20.0),
        st.integers(1, 8),
        st.floats(1e3, 1e9),
    )
    def test_time_positive_and_k1_consistent(self, o, L, chan_bw, inj_mult, k, V):
        m = SplitModel(
            o=o, L=L, channel_bandwidth=chan_bw,
            injection_bandwidth=chan_bw * inj_mult, channels=4,
        )
        t = float(m.time(V, k))
        assert t > 0
        if k == 1:
            assert t == pytest.approx(o + L + V / chan_bw)

    @settings(max_examples=50)
    @given(st.integers(2, 8))
    def test_asymptote_bounded_by_k_and_channels(self, k):
        m = SplitModel(
            o=1e-7, L=1e-7, channel_bandwidth=25e9,
            injection_bandwidth=1e15, channels=4,
        )
        assert m.asymptotic_speedup(k) <= min(k, 4) + 1e-9


class TestFabricProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1e6), min_size=1, max_size=12),
        st.floats(1e-8, 1e-5),
        st.floats(1e8, 1e11),
    )
    def test_causality_and_fifo(self, sizes_list, latency, bandwidth):
        """Arrivals never precede sends and same-channel order holds."""
        sim = Simulator()
        topo = TopologySpec(name="p")
        topo.add_link("a", "b", LinkParams(latency=latency, bandwidth=bandwidth))
        fab = Fabric(sim, topo)
        arrivals = [fab.transfer("a", "b", s).arrival for s in sizes_list]
        assert all(a >= latency for a in arrivals)
        # Monotone up to float associativity noise.
        for a, b in zip(arrivals, arrivals[1:]):
            assert b >= a - 1e-12 * max(1.0, abs(a))

    @settings(max_examples=60, deadline=None)
    @given(st.floats(8, 1e8), st.integers(1, 8))
    def test_conservation_of_bytes(self, nbytes, nmsgs):
        sim = Simulator()
        topo = TopologySpec(name="p")
        topo.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=1e10))
        fab = Fabric(sim, topo)
        for _ in range(nmsgs):
            fab.transfer("a", "b", nbytes)
        assert fab.total_bytes == pytest.approx(nbytes * nmsgs)
        assert fab.link_stats()["a->b.messages"] == nmsgs


class TestDecompositionProperties:
    @settings(max_examples=100)
    @given(st.integers(1, 64), st.integers(8, 300), st.integers(8, 300))
    def test_blocks_partition_grid(self, p, nx, ny):
        g = ProcessGrid.square_ish(p)
        if nx < g.px or ny < g.py:
            return
        cells = 0
        row_starts = set()
        for r in range(g.nranks):
            rows, cols = g.block(r, nx, ny)
            assert 0 <= rows.start < rows.stop <= ny
            assert 0 <= cols.start < cols.stop <= nx
            cells += (rows.stop - rows.start) * (cols.stop - cols.start)
            row_starts.add((rows.start, cols.start))
        assert cells == nx * ny
        assert len(row_starts) == g.nranks  # disjoint origins

    @settings(max_examples=100)
    @given(st.integers(1, 128))
    def test_neighbor_symmetry(self, p):
        g = ProcessGrid.square_ish(p)
        for r in range(g.nranks):
            for d, nb in g.neighbors(r).items():
                assert g.neighbors(nb)[ProcessGrid.opposite(d)] == r


class TestHashtableProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(10, 300), st.integers(1, 6), st.integers(0, 1000))
    def test_all_inserts_conserved(self, total, nranks, seed):
        from repro.machines import perlmutter_cpu
        from repro.workloads.hashtable import (
            HashTableConfig,
            generate_keys,
            run_hashtable,
        )

        cfg = HashTableConfig(total_inserts=total, seed=seed)
        keys = np.concatenate(generate_keys(cfg, nranks))
        res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, nranks)
        assert sorted(res.extras["values"]) == sorted(keys.tolist())


class TestSpTrsvProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(4, 16), st.integers(0, 100), st.integers(1, 6))
    def test_solve_matches_scipy_random_matrices(self, n_sn, seed, nranks):
        from repro.machines import perlmutter_cpu
        from repro.workloads.sptrsv import (
            MatrixSpec,
            SpTrsvConfig,
            generate_matrix,
            reference_solve,
            run_sptrsv,
        )

        m = generate_matrix(
            MatrixSpec(n_supernodes=n_sn, width_lo=1, width_hi=8, seed=seed)
        )
        b = np.ones(m.n)
        res = run_sptrsv(
            perlmutter_cpu(), "two_sided", m, nranks,
            cfg=SpTrsvConfig(mode="execute"), b=b,
        )
        assert np.allclose(res.extras["x"], reference_solve(m, b), atol=1e-9)
