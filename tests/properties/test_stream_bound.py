"""Property: stream-triggered is a modeled lower bound (hypothesis).

The derived stream profile (:func:`repro.comm.stream.derive_stream_costs`)
takes the cheapest positive issue cost any host profile carries, adds the
device-initiation term, and zeroes every host-side field — so for *any*
workload program on *any* machine hosting the 4-op one-sided emulation,
the stream-triggered modeled time never exceeds host-driven one-sided.
This is the paper-shape claim behind the ``host_involvement`` ablation,
checked here over randomly drawn (workload, shape, machine) points rather
than the ablation's five fixed ones.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import program_cost
from repro.machines.registry import get_machine
from repro.transport import ONE_SIDED, STREAM_TRIGGERED
from repro.workloads.flood import build_cas_flood_program, build_flood_program
from repro.workloads.hashtable.runner import (
    HashTableConfig,
    _plan_rounds,
    build_hashtable_program,
    generate_keys,
)
from repro.workloads.hashtable.table import TableGeometry
from repro.workloads.stencil.decomposition import ProcessGrid
from repro.workloads.stencil.runner import StencilConfig, build_stencil_program

# Machines whose calibrated tables host the one-sided emulation; the
# stream profile needs no entry anywhere (it derives lazily).
MACHINES = ("perlmutter-cpu", "summit-cpu", "frontier-cpu")


@st.composite
def program_pairs(draw):
    """The same workload shape lowered for one_sided and stream."""
    machine = get_machine(draw(st.sampled_from(MACHINES)))
    kind = draw(st.sampled_from(("flood", "cas_flood", "stencil", "hashtable")))
    if kind == "flood":
        nbytes = draw(st.sampled_from((64, 1024, 4096, 65536)))
        n = draw(st.sampled_from((1, 4, 64)))
        iters = draw(st.integers(1, 3))
        build = lambda rt: build_flood_program(rt, nbytes, n, iters=iters)
    elif kind == "cas_flood":
        n_ops = draw(st.integers(1, 64))
        build = lambda rt: build_cas_flood_program(
            rt, n_ops=n_ops, target_rank=1
        )
    elif kind == "stencil":
        nranks = draw(st.sampled_from((1, 2, 4)))
        n = draw(st.sampled_from((16, 32)))
        cfg = StencilConfig(
            nx=n, ny=n, iters=draw(st.integers(1, 3)), mode="simulate"
        )
        grid = ProcessGrid.square_ish(nranks)
        build = lambda rt: build_stencil_program(rt, cfg, grid, nranks)
    else:
        nranks = draw(st.sampled_from((2, 4)))
        cfg = HashTableConfig(total_inserts=draw(st.sampled_from((32, 128))))
        geom = TableGeometry.for_inserts(
            nranks, cfg.total_inserts, load_factor=cfg.load_factor
        )
        keys = generate_keys(cfg, nranks)
        incoming = _plan_rounds(geom, keys, nranks, cfg.sync_window)
        build = lambda rt: build_hashtable_program(
            rt, geom, keys, incoming, cfg.sync_window, nranks
        )
    return build(ONE_SIDED), build(STREAM_TRIGGERED), machine


@settings(max_examples=80, deadline=None)
@given(program_pairs())
def test_stream_never_models_slower_than_one_sided(pair):
    host, stream, machine = pair
    if host.dynamic or stream.dynamic:
        return  # dynamic programs have no static modeled cost
    t_host = program_cost(host, machine)
    t_stream = program_cost(stream, machine)
    assert t_stream <= t_host * (1 + 1e-12), (
        f"stream modeled slower than one_sided on "
        f"{host.name}@{machine.name}: {t_host} -> {t_stream}"
    )
