"""Property-based tests on the message-passing collectives.

Random rank counts, payload lengths and values — the collectives must
always match numpy computed on the gathered inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import Job
from repro.comm.collectives import allgather, allreduce, alltoall, bcast, reduce
from repro.machines import perlmutter_cpu

ranks = st.integers(1, 9)
veclen = st.integers(1, 6)
seeds = st.integers(0, 10_000)


def _inputs(P, n, seed):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for _ in range(P)]


def _run(P, program):
    return Job(perlmutter_cpu(), P, "two_sided", placement="spread").run(program)


class TestCollectiveProperties:
    @settings(max_examples=30, deadline=None)
    @given(ranks, veclen, seeds)
    def test_allreduce_equals_numpy_sum(self, P, n, seed):
        data = _inputs(P, n, seed)

        def program(ctx):
            got = yield from allreduce(ctx, data[ctx.rank])
            return got

        res = _run(P, program)
        expected = np.sum(data, axis=0)
        for got in res.results:
            assert np.allclose(got, expected)

    @settings(max_examples=30, deadline=None)
    @given(ranks, veclen, seeds)
    def test_reduce_equals_numpy_at_root(self, P, n, seed):
        data = _inputs(P, n, seed)

        def program(ctx):
            got = yield from reduce(ctx, data[ctx.rank], op="max")
            return got

        res = _run(P, program)
        assert np.allclose(res.results[0], np.max(data, axis=0))

    @settings(max_examples=30, deadline=None)
    @given(ranks, veclen, seeds, st.integers(0, 8))
    def test_bcast_from_any_root(self, P, n, seed, root_pick):
        root = root_pick % P
        data = _inputs(P, n, seed)

        def program(ctx):
            value = data[root] if ctx.rank == root else None
            got = yield from bcast(ctx, value, root=root)
            return got

        res = _run(P, program)
        for got in res.results:
            assert np.allclose(got, data[root])

    @settings(max_examples=25, deadline=None)
    @given(ranks, veclen, seeds)
    def test_allgather_equals_concatenation(self, P, n, seed):
        data = _inputs(P, n, seed)

        def program(ctx):
            got = yield from allgather(ctx, data[ctx.rank])
            return got

        res = _run(P, program)
        expected = np.concatenate(data)
        for got in res.results:
            assert np.allclose(got, expected)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 8), seeds)
    def test_alltoall_is_transpose(self, P, seed):
        rng = np.random.default_rng(seed)
        payload = rng.normal(size=(P, P))

        def program(ctx):
            blocks = [np.array([payload[ctx.rank, j]]) for j in range(P)]
            got = yield from alltoall(ctx, blocks)
            return np.array([g[0] for g in got])

        res = _run(P, program)
        for j in range(P):
            assert np.allclose(res.results[j], payload[:, j])

    @settings(max_examples=20, deadline=None)
    @given(ranks, seeds)
    def test_allreduce_deterministic(self, P, seed):
        data = _inputs(P, 3, seed)

        def program(ctx):
            got = yield from allreduce(ctx, data[ctx.rank])
            return got

        a = _run(P, program).results
        b = _run(P, program).results
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
