"""Property-based tests on one-sided window semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import Job
from repro.machines import perlmutter_cpu


class TestPutGetProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 6),
        st.integers(1, 16),
        st.integers(0, 1000),
    )
    def test_put_roundtrip_any_geometry(self, P, n, seed):
        """Data put to any target is exactly what get returns after flush."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=n)
        target = int(rng.integers(1, P))
        offset = int(rng.integers(0, 4))
        job = Job(perlmutter_cpu(), P, "one_sided", placement="spread")
        win = job.window(n + 4)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from h.put(target, data, offset=offset)
                yield from h.flush(target)
                req = yield from h.get(target, offset=offset, nelems=n)
                got = yield from ctx.wait(req)
                return got
            yield from ctx.compute(seconds=0)

        res = job.run(program)
        assert np.allclose(res.results[0], data)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(1, 5), st.integers(0, 500))
    def test_accumulate_sum_conservation(self, P, k, seed):
        """Concurrent accumulates from all ranks sum exactly — no lost
        updates regardless of P, repetition count, or timing."""
        rng = np.random.default_rng(seed)
        contributions = rng.integers(1, 10, size=(P, k)).astype(float)
        job = Job(perlmutter_cpu(), P, "one_sided", placement="spread")
        win = job.window(1, fill=0.0)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank > 0:
                for j in range(k):
                    yield from h.accumulate(
                        0, np.array([contributions[ctx.rank, j]])
                    )
                yield from h.flush(0)
            yield from ctx.barrier()

        job.run(program)
        assert win.local(0)[0] == pytest.approx(contributions[1:].sum())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 500))
    def test_faa_allocates_unique_dense_indices(self, P, seed):
        """Fetch-and-add from racing ranks hands out 0..P-2 exactly once,
        for every P and schedule perturbation."""
        rng = np.random.default_rng(seed)
        delays = rng.uniform(0, 2e-6, size=P)
        job = Job(perlmutter_cpu(), P, "one_sided", placement="spread")
        win = job.window(1, dtype=np.int64)

        def program(ctx):
            h = win.handle(ctx)
            if ctx.rank == 0:
                yield from ctx.compute(seconds=0)
                return None
            yield from ctx.compute(seconds=float(delays[ctx.rank]))
            old = yield from h.faa_blocking(0, 0, 1)
            return old

        res = job.run(program)
        assert sorted(res.results[1:]) == list(range(P - 1))
