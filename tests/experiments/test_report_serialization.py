"""ExperimentReport serialization and failure surfacing in jobs."""

import json

import pytest

from repro.comm import Job
from repro.experiments import run_table1
from repro.experiments.report import ExperimentReport
from repro.machines import perlmutter_cpu


class TestReportSerialization:
    def test_to_dict_row_records(self):
        rep = ExperimentReport(
            experiment="x",
            title="t",
            headers=["a", "b"],
            rows=[[1, 2.5], [3, 4.0]],
            expectations={"ok": True},
            notes=["n"],
        )
        d = rep.to_dict()
        assert d["rows"] == [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
        assert d["all_expectations_met"] is True

    def test_to_json_roundtrip(self):
        rep = run_table1()
        d = json.loads(rep.to_json())
        assert d["experiment"] == "table1"
        assert isinstance(d["rows"], list) and d["rows"]
        assert set(d["rows"][0]) == set(rep.headers)

    def test_json_handles_numpy_scalars(self):
        import numpy as np

        rep = ExperimentReport(
            experiment="x", title="t", headers=["v"], rows=[[np.float64(1.5)]]
        )
        assert json.loads(rep.to_json())["rows"][0]["v"] == 1.5

    def test_failed_expectation_reflected(self):
        rep = ExperimentReport(
            experiment="x", title="t", headers=["v"], rows=[[1]],
            expectations={"claim": False},
        )
        assert not rep.all_expectations_met
        assert "[FAIL] claim" in rep.render()


class TestJobFailureSurfacing:
    def test_rank_exception_propagates_with_message(self, pm_cpu):
        def program(ctx):
            yield from ctx.compute(seconds=1e-6)
            if ctx.rank == 1:
                raise RuntimeError("rank 1 exploded")

        job = Job(pm_cpu, 2, "two_sided")
        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            job.run(program)

    def test_failure_before_any_yield(self, pm_cpu):
        def program(ctx):
            raise ValueError("immediate")
            yield  # pragma: no cover

        with pytest.raises(ValueError, match="immediate"):
            Job(pm_cpu, 2, "two_sided").run(program)

    def test_deadlock_reported_as_simulation_error(self, pm_cpu):
        from repro.sim.event import SimulationError

        def program(ctx):
            if ctx.rank == 0:
                yield from ctx.recv(source=1)  # never sent

        with pytest.raises(SimulationError, match="deadlock"):
            Job(pm_cpu, 2, "two_sided").run(program)


class TestStressDeterminism:
    def test_large_mixed_run_bitwise_repeatable(self):
        """A sizeable run touching every verb family must reproduce its
        virtual makespan exactly."""
        from repro.workloads.hashtable import HashTableConfig, run_hashtable
        from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv

        cfg = HashTableConfig(total_inserts=3000, seed=17)
        t1 = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 16).time
        t2 = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 16).time
        assert t1 == t2
        m = generate_matrix(MatrixSpec(n_supernodes=64, seed=17))
        s1 = run_sptrsv(perlmutter_cpu(), "one_sided", m, 8).time
        s2 = run_sptrsv(perlmutter_cpu(), "one_sided", m, 8).time
        assert s1 == s2
