"""Ablation studies and the Frontier ROC_SHMEM projection."""

import pytest

from repro.experiments.ablations import (
    ALL_ABLATIONS,
    run_ablation_gap,
    run_ablation_put_with_signal,
    run_ablation_split_factor,
)
from repro.experiments.future import run_future_frontier
from repro.machines import get_machine
from repro.machines.frontier import frontier_gpu_projection


@pytest.mark.parametrize("name", sorted(ALL_ABLATIONS))
def test_ablation_expectations_hold(name):
    report = ALL_ABLATIONS[name]()
    failed = [k for k, ok in report.expectations.items() if not ok]
    assert not failed, f"{name}: {failed}"


class TestAblationContent:
    def test_gap_ablation_quantifies_ceiling(self):
        rep = run_ablation_gap()
        # Removing o and g must be a strict improvement at 64 B.
        small = rep.rows[0]
        assert small[3] > small[1]

    def test_put_signal_ablation_reverses_the_loss(self):
        rep = run_ablation_put_with_signal()
        hw = {(r[0], r[1]): r[3] for r in rep.rows}
        # Emulation > 1 (loses to two-sided); hw < 1 (wins) — the paper's
        # §V projection in numbers.
        assert hw[("one_sided", 4)] > 1.0
        assert hw[("one_sided_hw", 4)] < 1.0

    def test_split_factor_rows_cover_k(self):
        rep = run_ablation_split_factor()
        assert [r[0] for r in rep.rows] == [2, 4, 8]


class TestFrontierProjection:
    def test_projection_expectations_hold(self):
        rep = run_future_frontier()
        failed = [k for k, ok in rep.expectations.items() if not ok]
        assert not failed

    def test_projection_machine_is_flagged(self):
        m = frontier_gpu_projection()
        assert "PROJECTION" in m.description
        assert m.is_gpu_machine
        assert m.max_ranks == 4

    def test_projection_in_registry_but_not_table1(self):
        from repro.machines import machine_names, table1_rows

        assert "frontier-gpu" not in machine_names()
        assert "frontier-gpu" in machine_names(include_projections=True)
        assert get_machine("frontier-gpu").name == "frontier-gpu"
        assert all(r["machine"] != "frontier-gpu" for r in table1_rows())

    def test_emulated_wait_visibly_slower_than_native(self):
        """The core projection claim: software-emulated wait_until_any
        makes SpTRSV slower than with NVSHMEM's native wait."""
        from repro.machines import perlmutter_gpu
        from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv

        m = generate_matrix(MatrixSpec(n_supernodes=80, seed=6))
        t_native = run_sptrsv(perlmutter_gpu(), "shmem", m, 4).time
        t_emulated = run_sptrsv(frontier_gpu_projection(), "shmem", m, 4).time
        assert t_emulated > t_native

    def test_projection_workloads_still_correct(self):
        """Projection machines run the same verified code paths."""
        import numpy as np

        from repro.workloads.sptrsv import (
            MatrixSpec,
            SpTrsvConfig,
            generate_matrix,
            reference_solve,
            run_sptrsv,
        )

        m = generate_matrix(MatrixSpec(n_supernodes=16, width_lo=2, width_hi=10, seed=1))
        b = np.ones(m.n)
        res = run_sptrsv(
            frontier_gpu_projection(), "shmem", m, 4,
            cfg=SpTrsvConfig(mode="execute"), b=b,
        )
        assert np.allclose(res.extras["x"], reference_solve(m, b), atol=1e-9)
