"""Integration: every figure/table experiment reproduces the paper's shape.

These are the repo's acceptance tests — each ``run_figXX`` encodes the
paper's claims as boolean expectations, and the suite requires all of them
to hold.  EXPERIMENTS.md documents the per-claim paper-vs-measured detail.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    run_fig01,
    run_fig03,
    run_fig05,
    run_fig09,
    run_fig10,
    run_table1,
    run_table2,
)


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_experiment_reproduces_paper_shape(name):
    report = ALL_EXPERIMENTS[name]()
    failed = [k for k, ok in report.expectations.items() if not ok]
    assert not failed, f"{name} failed paper-shape checks: {failed}"


class TestReportStructure:
    def test_rows_match_headers(self):
        rep = run_fig03(machines=("perlmutter-cpu",), iters=1)
        assert all(len(r) == len(rep.headers) for r in rep.rows)

    def test_render_contains_table_and_checks(self):
        rep = run_table1()
        text = rep.render()
        assert "paper-shape checks" in text
        assert "[PASS]" in text
        assert rep.experiment in text

    def test_all_expectations_met_property(self):
        rep = run_table1()
        assert rep.all_expectations_met

    def test_fig01_chart_rendered(self):
        rep = run_fig01(measured=False)
        assert rep.charts
        assert "log axis" in rep.charts[0]

    def test_fig05_scales_with_iters(self):
        r2 = run_fig05(nx=2048, iters=2)
        r4 = run_fig05(nx=2048, iters=4)
        t2 = next(r[3] for r in r2.rows if r[2] == 4 and r[1] == "two_sided")
        t4 = next(r[3] for r in r4.rows if r[2] == 4 and r[1] == "two_sided")
        assert t4 == pytest.approx(2 * t2, rel=0.2)

    def test_fig09_notes_quantify_speedup(self):
        rep = run_fig09(total_inserts=2000)
        assert any("speedup" in n for n in rep.notes)

    def test_fig10_unmeasured_variant(self):
        rep = run_fig10(measured=False)
        assert rep.all_expectations_met

    def test_table2_rows_are_three_workloads(self):
        rep = run_table2()
        assert [r[0] for r in rep.rows] == ["Stencil", "SpTRSV", "Hashtable"]

    def test_host_involvement_deterministic_and_shaped(self):
        from repro.experiments import run_host_involvement

        a, b = run_host_involvement(), run_host_involvement()
        assert a.rows == b.rows
        assert a.expectations == b.expectations
        # Every workload sweeps all four generations; stream rows carry
        # exactly zero host microseconds.
        assert len(a.rows) == 5 * 4
        stream_rows = [r for r in a.rows if r[1] == "stream_triggered"]
        assert len(stream_rows) == 5
        assert all(r[3] == 0.0 for r in stream_rows)
