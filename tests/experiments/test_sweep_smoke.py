"""Every experiment runs through the sweep engine, parallel == serial.

The tentpole guarantee of ``repro.sweep``: an experiment's report is a
pure function of its spec — worker count must never change a row.  Each
``ALL_EXPERIMENTS`` entry runs twice (serial, then under
``execution(jobs=2)``) with its smallest kwargs, and the reports must
match row for row.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.sweep import execution

# Smallest faithful configuration per experiment (defaults elsewhere).
_FAST_KWARGS = {
    "fig01": {"iters": 1},
    "fig03": {"machines": ("perlmutter-cpu",), "iters": 1},
    "fig04": {"iters": 1},
    "fig05": {"nx": 2048, "iters": 2},
    "fig06": {"iters": 1},
    "fig08": {"n_supernodes": 60},
    "fig09": {"total_inserts": 2000},
    "internode": {"iters": 1},
}


def _rows_equal(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_rows_equal(x, y) for x, y in zip(a, b))
    return a == b


@pytest.mark.parametrize("name", sorted(ALL_EXPERIMENTS))
def test_parallel_rows_identical_to_serial(name):
    kwargs = _FAST_KWARGS.get(name, {})
    serial = ALL_EXPERIMENTS[name](**kwargs)
    with execution(jobs=2):
        parallel = ALL_EXPERIMENTS[name](**kwargs)
    assert serial.headers == parallel.headers
    assert _rows_equal(serial.rows, parallel.rows), f"{name} rows diverged"
    assert serial.expectations == parallel.expectations
