"""Hard faults: element windows, topology resolution, victim picking."""

import math

import pytest

from repro.faults import (
    FaultPlan,
    HardFaults,
    NicFaults,
    NodeFaults,
    RouterFaults,
    UnknownElementError,
    element_catalog,
    elements_down_at,
    pick_victims,
    resolve_hard_faults,
    validate_element,
)
from repro.machines.registry import get_machine
from repro.net import dragonfly

CLUSTER = "perlmutter-cpu-x8@dragonfly(4,2,2)"


def _blueprint():
    return dragonfly(4, 2, 2).topology


class TestHardFaults:
    def test_defaults_are_clean(self):
        hf = RouterFaults("g0r0")
        assert hf.clean
        assert hf.kind == "router"

    def test_windows_make_it_dirty(self):
        assert not RouterFaults("g0r0", windows=((1e-6, math.inf),)).clean

    def test_windows_sorted(self):
        hf = NodeFaults("n0", windows=((5e-6, 6e-6), (1e-6, 2e-6)))
        assert hf.windows == ((1e-6, 2e-6), (5e-6, 6e-6))

    @pytest.mark.parametrize("window", [(5.0, 5.0), (5.0, 2.0), (-1.0, 2.0)])
    def test_bad_window_rejected(self, window):
        with pytest.raises(ValueError, match="window"):
            NicFaults("nic0", windows=(window,))

    def test_empty_element_rejected(self):
        with pytest.raises(ValueError, match="element"):
            RouterFaults("")

    def test_kinds(self):
        assert NodeFaults("n0").kind == "node"
        assert NicFaults("nic0").kind == "nic"
        assert HardFaults("x").kind == "element"

    def test_infinite_window_allowed(self):
        hf = RouterFaults("g0r0", windows=((0.0, math.inf),))
        assert hf.windows == ((0.0, math.inf),)


class TestFaultPlanHard:
    def test_plan_clean_considers_hard(self):
        assert FaultPlan(hard=(RouterFaults("g0r0"),)).clean
        assert not FaultPlan(
            hard=(RouterFaults("g0r0", windows=((0.0, 1e-6),)),)
        ).clean

    def test_duplicate_element_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                hard=(
                    RouterFaults("g0r0", windows=((0.0, 1e-6),)),
                    RouterFaults("g0r0", windows=((2e-6, 3e-6),)),
                )
            )

    def test_same_name_different_kind_allowed(self):
        plan = FaultPlan(
            hard=(
                NodeFaults("n0", windows=((0.0, 1e-6),)),
                NicFaults("n0", windows=((0.0, 1e-6),)),
            )
        )
        assert len(plan.hard) == 2

    def test_uniform_accepts_hard(self):
        plan = FaultPlan.uniform(hard=(RouterFaults("g0r0"),))
        assert plan.hard[0].element == "g0r0"


class TestElementCatalog:
    def test_blueprint_routers(self):
        cat = element_catalog(_blueprint())
        assert "g0r0" in cat["router"] and "g3r1" in cat["router"]
        assert cat["node"] == () and cat["nic"] == ()

    def test_cluster_machine_catalog(self):
        machine = get_machine(CLUSTER)
        cat = element_catalog(
            machine.topology, compute=tuple(machine.compute_endpoints)
        )
        assert len(cat["router"]) == 8
        assert cat["node"] == tuple(f"n{i}" for i in range(8))
        assert len(cat["nic"]) == 8
        # compute endpoints are never fault targets
        assert not any("cpu" in r for r in cat["router"])

    def test_validate_element(self):
        machine = get_machine(CLUSTER)
        compute = tuple(machine.compute_endpoints)
        validate_element(machine.topology, "router", "g0r0", compute=compute)
        validate_element(machine.topology, "node", "n3", compute=compute)
        with pytest.raises(UnknownElementError, match="valid routers"):
            validate_element(
                machine.topology, "router", "bogus", compute=compute
            )
        with pytest.raises(UnknownElementError, match="valid nodes"):
            validate_element(machine.topology, "node", "n99", compute=compute)

    def test_validate_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            validate_element(_blueprint(), "switchboard", "g0r0")


class TestResolveHardFaults:
    def test_router_takes_all_attached_links(self):
        topo = _blueprint()
        plan = FaultPlan(
            hard=(RouterFaults("g1r0", windows=((1e-6, math.inf),)),)
        )
        dead = resolve_hard_faults(plan, topo)
        assert dead  # every key involves g1r0, atomically windowed
        assert all("g1r0" in key for key in dead)
        assert all(ws == ((1e-6, math.inf),) for ws in dead.values())
        expected = {
            frozenset(key)
            for key in topo.links
            if "g1r0" in key
        }
        assert set(dead) == expected

    def test_node_matches_prefixed_endpoints(self):
        machine = get_machine(CLUSTER)
        plan = FaultPlan(hard=(NodeFaults("n0", windows=((0.0, 1e-6),)),))
        dead = resolve_hard_faults(plan, machine.topology)
        assert dead
        assert all(
            any(e == "n0" or e.startswith("n0.") for e in key) for key in dead
        )

    def test_overlapping_windows_merge(self):
        topo = _blueprint()
        plan = FaultPlan(
            hard=(
                RouterFaults("g0r0", windows=((1e-6, 3e-6), (2e-6, 5e-6))),
            )
        )
        dead = resolve_hard_faults(plan, topo)
        assert all(ws == ((1e-6, 5e-6),) for ws in dead.values())

    def test_unknown_element_lenient_by_default(self):
        topo = _blueprint()
        plan = FaultPlan(hard=(NodeFaults("n99", windows=((0.0, 1e-6),)),))
        assert resolve_hard_faults(plan, topo) == {}

    def test_unknown_element_strict_raises(self):
        topo = _blueprint()
        plan = FaultPlan(hard=(NodeFaults("n99", windows=((0.0, 1e-6),)),))
        with pytest.raises(UnknownElementError):
            resolve_hard_faults(plan, topo, strict=True)

    def test_elements_down_at(self):
        plan = FaultPlan(
            hard=(
                RouterFaults("g0r0", windows=((1e-6, 2e-6),)),
                NodeFaults("n0", windows=((3e-6, math.inf),)),
            )
        )
        assert [hf.element for hf in elements_down_at(plan, 1.5e-6)] == ["g0r0"]
        assert [hf.element for hf in elements_down_at(plan, 2.5e-6)] == []
        assert [hf.element for hf in elements_down_at(plan, 10.0)] == ["n0"]


class TestPickVictims:
    def test_deterministic(self):
        elements = [f"g{g}r{r}" for g in range(4) for r in range(2)]
        a = pick_victims(elements, 3, seed=7)
        b = pick_victims(elements, 3, seed=7)
        assert a == b and len(a) == 3

    def test_seed_changes_choice(self):
        elements = [f"g{g}r{r}" for g in range(4) for r in range(2)]
        draws = {tuple(pick_victims(elements, 2, seed=s)) for s in range(16)}
        assert len(draws) > 1

    def test_count_clamped(self):
        assert len(pick_victims(["a", "b"], 5)) == 2
