"""Fabric behaviour under an active fault plan: retransmission timing,
jitter, degradation, down windows, and abort/surface exhaustion."""

import pytest

from repro.faults import FaultError, FaultPlan, FaultSemantics, LinkFaults
from repro.faults.inject import FaultInjector
from repro.net import Fabric, LinkParams, TopologySpec


def _topo():
    topo = TopologySpec(name="t")
    topo.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=10e9))
    return topo


def _fabric(sim, plan=None, semantics=None):
    inj = FaultInjector(plan, semantics) if plan is not None else None
    return Fabric(sim, _topo(), faults=inj)


# Seeds chosen (by inspection of the deterministic draws) so that the
# first traversal of transfer 0 on a<->b is dropped / delivered.
def _seed_where(lost: bool, loss: float = 0.5) -> int:
    probe = LinkFaults(loss=loss)
    for seed in range(100):
        inj = FaultInjector(FaultPlan.uniform(loss=loss, seed=seed))
        if inj.lost(probe, "a<->b", 0, 0) == lost:
            return seed
    raise AssertionError("no such seed in range")  # pragma: no cover


class TestZeroFaultParity:
    def test_clean_injector_times_identical(self, sim):
        """loss=jitter=0, degrade=1: the faulty code path must reproduce
        the pristine path's arithmetic exactly."""
        clean = _fabric(sim)
        d1 = clean.transfer("a", "b", 10000)
        d2 = clean.transfer("a", "b", 10000)
        faulty = _fabric(sim, FaultPlan(links={("x", "y"): LinkFaults(loss=0.1)}))
        f1 = faulty.transfer("a", "b", 10000)
        f2 = faulty.transfer("a", "b", 10000)
        assert (f1.start, f1.arrival) == (d1.start, d1.arrival)
        assert (f2.start, f2.arrival) == (d2.start, d2.arrival)
        assert f1.attempts == 1 and not f1.dropped


class TestRetransmission:
    def test_drop_delays_arrival_by_detection_timeout(self, sim):
        seed = _seed_where(lost=True)
        plan = FaultPlan.uniform(loss=0.5, seed=seed, timeout=20e-6, backoff=2.0)
        d = _fabric(sim, plan).transfer("a", "b", 10000)
        assert d.attempts >= 2
        # Clean arrival is 2 us; the first retry alone starts at 20 us.
        assert d.arrival >= 20e-6
        assert not d.dropped

    def test_delivery_first_try_unaffected(self, sim):
        seed = _seed_where(lost=False)
        plan = FaultPlan.uniform(loss=0.5, seed=seed)
        d = _fabric(sim, plan).transfer("a", "b", 10000)
        assert d.attempts == 1
        assert d.arrival == pytest.approx(2e-6)

    def test_detect_scale_stretches_recovery(self, sim):
        seed = _seed_where(lost=True)
        plan = FaultPlan.uniform(loss=0.5, seed=seed)
        fast = _fabric(sim, plan, FaultSemantics(mode="abort", detect_scale=1.0))
        slow = _fabric(sim, plan, FaultSemantics(mode="abort", detect_scale=4.0))
        assert slow.transfer("a", "b", 100).arrival > fast.transfer(
            "a", "b", 100
        ).arrival

    def test_resync_penalty_adds_round_trip(self, sim):
        seed = _seed_where(lost=True)
        plan = FaultPlan.uniform(loss=0.5, seed=seed)
        plain = _fabric(sim, plan, FaultSemantics(mode="surface"))
        resync = _fabric(
            sim, plan, FaultSemantics(mode="surface", resync_penalty=True)
        )
        d_plain = plain.transfer("a", "b", 100)
        d_resync = resync.transfer("a", "b", 100)
        # Identical draws (same plan, tid, attempts) — only the re-sync
        # round trip (2x the 1 us route latency per retry) separates them.
        assert d_plain.attempts == d_resync.attempts >= 2
        gap = d_resync.arrival - d_plain.arrival
        assert gap == pytest.approx(2e-6 * (d_plain.attempts - 1))

    def test_counters_track_drops(self, sim):
        plan = FaultPlan.uniform(loss=0.4, seed=1)
        inj = FaultInjector(plan)
        f = Fabric(sim, _topo(), faults=inj)
        for _ in range(100):
            f.transfer("a", "b", 1000)
        assert inj.delivered == 100
        assert inj.drops > 0
        assert inj.drops == inj.retransmits  # nothing exhausted here
        assert inj.drops_by_link["a<->b"] == inj.drops


class TestExhaustion:
    def test_abort_raises_at_transfer(self, sim):
        seed = _seed_where(lost=True, loss=0.999)
        plan = FaultPlan.uniform(loss=0.999, seed=seed, max_retries=2)
        f = _fabric(sim, plan, FaultSemantics(mode="abort"))
        with pytest.raises(FaultError, match="after 3 attempts"):
            f.transfer("a", "b", 1000)

    def test_surface_fails_completion_event(self, sim):
        seed = _seed_where(lost=True, loss=0.999)
        plan = FaultPlan.uniform(loss=0.999, seed=seed, max_retries=2)
        f = _fabric(sim, plan, FaultSemantics(mode="surface"))
        d = f.transfer("a", "b", 1000)
        assert d.dropped and d.attempts == 3
        d.event.defuse()
        sim.run()
        assert d.event.triggered and not d.event.ok
        assert isinstance(d.event.value, FaultError)

    def test_unhandled_surfaced_failure_raises_in_sim(self, sim):
        seed = _seed_where(lost=True, loss=0.999)
        plan = FaultPlan.uniform(loss=0.999, seed=seed, max_retries=0)
        f = _fabric(sim, plan, FaultSemantics(mode="surface"))
        f.transfer("a", "b", 1000)
        with pytest.raises(FaultError):
            sim.run()


class TestJitterDegradeDown:
    def test_jitter_delays_within_bound(self, sim):
        base = _fabric(sim).transfer("a", "b", 10000).arrival
        plan = FaultPlan.uniform(jitter=5e-6, seed=0)
        d = _fabric(sim, plan).transfer("a", "b", 10000)
        assert base <= d.arrival < base + 5e-6

    def test_degrade_halves_bandwidth(self, sim):
        plan = FaultPlan.uniform(degrade=2.0)
        d = _fabric(sim, plan).transfer("a", "b", 10000)
        # 1 us wire + 10000 B at 5 GB/s effective = 2 us of bytes.
        assert d.arrival == pytest.approx(3e-6)

    def test_down_window_stalls_head(self, sim):
        plan = FaultPlan.uniform(down=((0.0, 50e-6),))
        inj = FaultInjector(plan)
        f = Fabric(sim, _topo(), faults=inj)
        d = f.transfer("a", "b", 10000)
        assert d.arrival >= 50e-6
        assert f.link("a", "b").channel("a", "b").down_stall_seconds > 0

    def test_transfer_after_window_unaffected(self, sim):
        plan = FaultPlan.uniform(down=((0.0, 5e-6),))
        f = _fabric(sim, plan)
        first = f.transfer("a", "b", 0)
        sim.run(until=first.event)
        d = f.transfer("a", "b", 10000)  # issued at ~6 us, window closed
        assert d.arrival == pytest.approx(sim.now + 2e-6)


class TestLoopback:
    def test_loopback_never_faults(self, sim):
        plan = FaultPlan.uniform(loss=0.999, jitter=1e-3, seed=0)
        inj = FaultInjector(plan)
        topo = _topo()
        f = Fabric(sim, topo, faults=inj)
        d = f.transfer("a", "a", 100000)
        assert d.attempts == 1 and not d.dropped
        assert inj.drops == 0
