"""FaultPlan / LinkFaults / RetransmitPolicy / FaultSemantics validation."""

import pytest

from repro.faults import (
    NO_FAULTS,
    FaultPlan,
    FaultSemantics,
    LinkFaults,
    RetransmitPolicy,
)


class TestLinkFaults:
    def test_defaults_are_clean(self):
        assert NO_FAULTS.clean
        assert LinkFaults().clean

    @pytest.mark.parametrize("loss", [-0.1, 1.0, 1.5])
    def test_loss_range(self, loss):
        with pytest.raises(ValueError, match="loss"):
            LinkFaults(loss=loss)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            LinkFaults(jitter=-1e-6)

    def test_degrade_below_one_rejected(self):
        with pytest.raises(ValueError, match="degrade"):
            LinkFaults(degrade=0.5)

    @pytest.mark.parametrize("window", [(5.0, 5.0), (5.0, 2.0), (-1.0, 2.0)])
    def test_bad_down_window_rejected(self, window):
        with pytest.raises(ValueError, match="down window"):
            LinkFaults(down=(window,))

    def test_down_windows_sorted(self):
        lf = LinkFaults(down=((5e-6, 6e-6), (1e-6, 2e-6)))
        assert lf.down == ((1e-6, 2e-6), (5e-6, 6e-6))

    def test_any_fault_is_not_clean(self):
        assert not LinkFaults(loss=0.1).clean
        assert not LinkFaults(jitter=1e-6).clean
        assert not LinkFaults(degrade=2.0).clean
        assert not LinkFaults(down=((0.0, 1e-6),)).clean


class TestRetransmitPolicy:
    def test_defaults_valid(self):
        p = RetransmitPolicy()
        assert p.timeout > 0 and p.backoff >= 1.0 and p.max_retries >= 0

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            RetransmitPolicy(timeout=0.0)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            RetransmitPolicy(backoff=0.9)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetransmitPolicy(max_retries=-1)


class TestFaultSemantics:
    def test_modes(self):
        assert FaultSemantics(mode="abort").mode == "abort"
        assert FaultSemantics(mode="surface").mode == "surface"
        with pytest.raises(ValueError, match="mode"):
            FaultSemantics(mode="explode")

    def test_detect_scale_positive(self):
        with pytest.raises(ValueError, match="detect_scale"):
            FaultSemantics(detect_scale=0.0)


class TestFaultPlan:
    def test_default_plan_is_clean(self):
        assert FaultPlan().clean
        assert FaultPlan.uniform().clean
        assert FaultPlan.uniform(loss=0.0, jitter=0.0).clean

    def test_uniform_sets_every_link(self):
        plan = FaultPlan.uniform(loss=0.1, seed=3)
        assert not plan.clean
        assert plan.for_link("x", "y").loss == 0.1
        assert plan.seed == 3

    def test_for_link_is_unordered(self):
        lf = LinkFaults(loss=0.2)
        plan = FaultPlan(links={("a", "b"): lf})
        assert plan.for_link("a", "b") is lf
        assert plan.for_link("b", "a") is lf
        assert plan.for_link("a", "c") is NO_FAULTS

    def test_duplicate_link_override_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                links={
                    ("a", "b"): LinkFaults(loss=0.1),
                    ("b", "a"): LinkFaults(loss=0.2),
                }
            )

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)

    def test_clean_considers_overrides(self):
        plan = FaultPlan(links={("a", "b"): LinkFaults(loss=0.1)})
        assert not plan.clean
        plan = FaultPlan(links={("a", "b"): LinkFaults()})
        assert plan.clean
