"""FaultPlan / LinkFaults / RetransmitPolicy / FaultSemantics validation."""

import pytest

from repro.faults import (
    NO_FAULTS,
    FaultPlan,
    FaultSemantics,
    LinkFaults,
    RetransmitPolicy,
)


class TestLinkFaults:
    def test_defaults_are_clean(self):
        assert NO_FAULTS.clean
        assert LinkFaults().clean

    @pytest.mark.parametrize("loss", [-0.1, 1.0, 1.5])
    def test_loss_range(self, loss):
        with pytest.raises(ValueError, match="loss"):
            LinkFaults(loss=loss)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            LinkFaults(jitter=-1e-6)

    def test_degrade_below_one_rejected(self):
        with pytest.raises(ValueError, match="degrade"):
            LinkFaults(degrade=0.5)

    @pytest.mark.parametrize("window", [(5.0, 5.0), (5.0, 2.0), (-1.0, 2.0)])
    def test_bad_down_window_rejected(self, window):
        with pytest.raises(ValueError, match="down window"):
            LinkFaults(down=(window,))

    def test_down_windows_sorted(self):
        lf = LinkFaults(down=((5e-6, 6e-6), (1e-6, 2e-6)))
        assert lf.down == ((1e-6, 2e-6), (5e-6, 6e-6))

    def test_any_fault_is_not_clean(self):
        assert not LinkFaults(loss=0.1).clean
        assert not LinkFaults(jitter=1e-6).clean
        assert not LinkFaults(degrade=2.0).clean
        assert not LinkFaults(down=((0.0, 1e-6),)).clean


class TestRetransmitPolicy:
    def test_defaults_valid(self):
        p = RetransmitPolicy()
        assert p.timeout > 0 and p.backoff >= 1.0 and p.max_retries >= 0

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            RetransmitPolicy(timeout=0.0)

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            RetransmitPolicy(backoff=0.9)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetransmitPolicy(max_retries=-1)


class TestFaultSemantics:
    def test_modes(self):
        assert FaultSemantics(mode="abort").mode == "abort"
        assert FaultSemantics(mode="surface").mode == "surface"
        with pytest.raises(ValueError, match="mode"):
            FaultSemantics(mode="explode")

    def test_detect_scale_positive(self):
        with pytest.raises(ValueError, match="detect_scale"):
            FaultSemantics(detect_scale=0.0)


class TestFaultPlan:
    def test_default_plan_is_clean(self):
        assert FaultPlan().clean
        assert FaultPlan.uniform().clean
        assert FaultPlan.uniform(loss=0.0, jitter=0.0).clean

    def test_uniform_sets_every_link(self):
        plan = FaultPlan.uniform(loss=0.1, seed=3)
        assert not plan.clean
        assert plan.for_link("x", "y").loss == 0.1
        assert plan.seed == 3

    def test_for_link_is_unordered(self):
        lf = LinkFaults(loss=0.2)
        plan = FaultPlan(links={("a", "b"): lf})
        assert plan.for_link("a", "b") is lf
        assert plan.for_link("b", "a") is lf
        assert plan.for_link("a", "c") is NO_FAULTS

    def test_duplicate_link_override_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan(
                links={
                    ("a", "b"): LinkFaults(loss=0.1),
                    ("b", "a"): LinkFaults(loss=0.2),
                }
            )

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(seed=-1)

    def test_clean_considers_overrides(self):
        plan = FaultPlan(links={("a", "b"): LinkFaults(loss=0.1)})
        assert not plan.clean
        plan = FaultPlan(links={("a", "b"): LinkFaults()})
        assert plan.clean


class TestForLinkClusterNamespacing:
    """Regression: a plan keyed on bare machine link names must bind on a
    cluster machine, where the same endpoints carry ``n{i}.`` prefixes."""

    def test_prefixed_link_falls_back_to_bare_key(self):
        lf = LinkFaults(loss=0.2)
        plan = FaultPlan(links={("cpu0", "nic0"): lf})
        # On node n3 of a cluster machine the same link is namespaced.
        assert plan.for_link("n3.cpu0", "n3.nic0") is lf
        assert plan.for_link("n3.nic0", "n3.cpu0") is lf

    def test_exact_prefixed_key_wins_over_bare(self):
        bare = LinkFaults(loss=0.1)
        exact = LinkFaults(loss=0.3)
        plan = FaultPlan(
            links={
                ("cpu0", "nic0"): bare,
                ("n3.cpu0", "n3.nic0"): exact,
            }
        )
        assert plan.for_link("n3.cpu0", "n3.nic0") is exact
        assert plan.for_link("n5.cpu0", "n5.nic0") is bare

    def test_cross_node_links_do_not_strip(self):
        # A nic0<->nic0 key must not match the inter-node path n0.nic0 ->
        # n1.nic0: the endpoints live on different nodes.
        plan = FaultPlan(links={("nic0", "nic0"): LinkFaults(loss=0.2)})
        assert plan.for_link("n0.nic0", "n1.nic0") is NO_FAULTS

    def test_fabric_level_links_unaffected(self):
        plan = FaultPlan(links={("g0r0", "g1r0"): LinkFaults(loss=0.2)})
        assert plan.for_link("g0r0", "g1r0").loss == 0.2
        assert plan.for_link("n0.nic0", "g0r0") is NO_FAULTS

    def test_faulty_cluster_flood_sees_bare_key_faults(self):
        """End to end: a bare-named link override degrades the same flood
        on the namespaced cluster machine."""
        from repro import faults
        from repro.machines.registry import get_machine
        from repro.workloads.flood import run_flood

        machine = get_machine("perlmutter-cpu-x8@dragonfly(4,2,2)")
        clean = run_flood(machine, "one_sided", 65536, 16, iters=1)
        plan = FaultPlan(
            links={("cpu0", "cpu1"): LinkFaults(degrade=4.0)},
        )
        with faults.inject(plan):
            slowed = run_flood(machine, "one_sided", 65536, 16, iters=1)
        assert slowed.bandwidth < clean.bandwidth
