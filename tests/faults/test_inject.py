"""FaultInjector sampling determinism + the ambient inject() scope."""

import pytest

from repro import faults
from repro.faults import FaultPlan, LinkFaults
from repro.faults.inject import FaultInjector


def _inj(seed=0):
    return FaultInjector(FaultPlan.uniform(loss=0.1, seed=seed))


class TestSampling:
    def test_unit_in_unit_interval(self):
        inj = _inj()
        draws = [inj.unit("a<->b", t, 0, "loss") for t in range(200)]
        assert all(0.0 <= d < 1.0 for d in draws)
        # Not degenerate: the draws actually spread out.
        assert max(draws) - min(draws) > 0.5

    def test_same_args_same_draw(self):
        a, b = _inj(seed=7), _inj(seed=7)
        for t in range(50):
            assert a.unit("x<->y", t, 0, "loss") == b.unit("x<->y", t, 0, "loss")

    def test_different_seed_different_draws(self):
        a, b = _inj(seed=1), _inj(seed=2)
        draws_a = [a.unit("x<->y", t, 0, "loss") for t in range(50)]
        draws_b = [b.unit("x<->y", t, 0, "loss") for t in range(50)]
        assert draws_a != draws_b

    def test_draws_independent_of_link_and_purpose(self):
        inj = _inj()
        assert inj.unit("a<->b", 0, 0, "loss") != inj.unit("a<->c", 0, 0, "loss")
        assert inj.unit("a<->b", 0, 0, "loss") != inj.unit("a<->b", 0, 0, "jitter")

    def test_monotone_coupling_in_loss(self):
        """A message lost at p1 is lost at every p2 >= p1 (same draw,
        larger threshold) — the property that makes degradation curves
        monotone."""
        inj = _inj(seed=3)
        lo, hi = LinkFaults(loss=0.05), LinkFaults(loss=0.3)
        lost_lo = {t for t in range(500) if inj.lost(lo, "a<->b", t, 0)}
        lost_hi = {t for t in range(500) if inj.lost(hi, "a<->b", t, 0)}
        assert lost_lo <= lost_hi
        assert len(lost_lo) < len(lost_hi)

    def test_loss_rate_roughly_matches(self):
        inj = _inj()
        lf = LinkFaults(loss=0.2)
        lost = sum(inj.lost(lf, "a<->b", t, 0) for t in range(2000))
        assert lost / 2000 == pytest.approx(0.2, abs=0.03)

    def test_zero_loss_never_samples(self):
        inj = _inj()
        lf = LinkFaults()
        assert not any(inj.lost(lf, "a<->b", t, 0) for t in range(100))

    def test_jitter_bounded_and_deterministic(self):
        inj = _inj(seed=5)
        lf = LinkFaults(jitter=3e-6)
        draws = [inj.jitter(lf, "a<->b", t, 0) for t in range(100)]
        assert all(0.0 <= j < 3e-6 for j in draws)
        assert draws == [inj.jitter(lf, "a<->b", t, 0) for t in range(100)]
        assert inj.jitter(LinkFaults(), "a<->b", 0, 0) == 0.0


class TestScope:
    def test_no_ambient_plan_by_default(self):
        assert faults.current_plan() is None
        assert faults.current_scope() is None

    def test_inject_installs_and_restores(self):
        plan = FaultPlan.uniform(loss=0.1)
        with faults.inject(plan) as scope:
            assert faults.current_plan() is plan
            assert faults.current_scope() is scope
        assert faults.current_plan() is None

    def test_inject_none_is_noop_scope(self):
        with faults.inject(None) as scope:
            assert faults.current_plan() is None
            assert scope.stats()["drops"] == 0.0

    def test_nested_innermost_wins(self):
        outer, inner = FaultPlan.uniform(loss=0.1), FaultPlan.uniform(loss=0.2)
        with faults.inject(outer):
            with faults.inject(inner):
                assert faults.current_plan() is inner
            assert faults.current_plan() is outer

    def test_scope_merges_injector_stats(self):
        with faults.inject(FaultPlan.uniform(loss=0.1)) as scope:
            a, b = _inj(), _inj()
            a.record_drop("l1")
            a.record_retransmit()
            b.record_drop("l2")
            b.record_delivery(2)
            scope.attach(a)
            scope.attach(b)
        s = scope.stats()
        assert s["drops"] == 2.0
        assert s["retransmits"] == 1.0
        assert s["delivered_with_retry"] == 1.0


class TestMetricsSnapshot:
    def test_prefixed_and_per_link(self):
        inj = _inj()
        inj.record_drop("cpu0<->cpu1")
        inj.record_delivery(1)
        snap = inj.metrics_snapshot()
        assert snap["faults.drops"] == 1.0
        assert snap["faults.delivered"] == 1.0
        assert snap["faults.link.cpu0<->cpu1.drops"] == 1.0
