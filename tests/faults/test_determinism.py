"""Property: a FaultPlan(seed=k) run replays bit-identically, and raising
the loss rate can only slow a workload down (monotone coupling)."""

import pytest

from repro import faults, obs
from repro.workloads.flood import run_flood

_SIZE = 65536
_MSGS = 32


def _bandwidth(pm_cpu, loss, seed):
    plan = faults.FaultPlan.uniform(loss=loss, seed=seed) if loss else None
    with faults.inject(plan):
        return run_flood(pm_cpu, "one_sided", _SIZE, _MSGS, iters=1).bandwidth


def _schedule(pm_cpu, plan):
    """Every net.transfer record of one faulty flood, as comparable tuples."""
    with obs.observe(obs.Obs(trace=True)) as session, faults.inject(plan):
        run_flood(pm_cpu, "two_sided", _SIZE, _MSGS, iters=1)
    out = []
    for _label, tracer in session.traces:
        for rec in tracer.records:
            if rec.kind == "net.transfer":
                d = rec.detail
                out.append(
                    (d["src"], d["dst"], d["start"], d["arrival"], d["attempts"])
                )
    return out


@pytest.mark.parametrize("seed", [0, 11, 97])
def test_same_seed_identical_schedule(pm_cpu, seed):
    plan = faults.FaultPlan.uniform(loss=0.1, jitter=2e-6, seed=seed)
    assert _schedule(pm_cpu, plan) == _schedule(pm_cpu, plan)


def test_different_seed_different_schedule(pm_cpu):
    a = _schedule(pm_cpu, faults.FaultPlan.uniform(loss=0.1, seed=1))
    b = _schedule(pm_cpu, faults.FaultPlan.uniform(loss=0.1, seed=2))
    assert a != b


@pytest.mark.parametrize("seed", [0, 5])
def test_bandwidth_monotone_in_loss(pm_cpu, seed):
    bws = [_bandwidth(pm_cpu, loss, seed) for loss in (0.0, 0.05, 0.15, 0.3)]
    assert all(bws[i] >= bws[i + 1] for i in range(len(bws) - 1))


def test_zero_fault_plan_matches_no_plan(pm_cpu):
    """loss=0 under inject() must be byte-identical to no injection at all
    (the acceptance criterion for the fault-free fast path)."""
    baseline = run_flood(pm_cpu, "one_sided", _SIZE, _MSGS, iters=1).bandwidth
    with faults.inject(faults.FaultPlan.uniform(loss=0.0)):
        injected = run_flood(pm_cpu, "one_sided", _SIZE, _MSGS, iters=1).bandwidth
    assert injected == baseline


def test_scope_stats_reflect_run(pm_cpu):
    plan = faults.FaultPlan.uniform(loss=0.15, seed=4)
    with faults.inject(plan) as scope:
        run_flood(pm_cpu, "two_sided", _SIZE, _MSGS, iters=1)
    s = scope.stats()
    assert s["delivered"] > 0
    assert s["drops"] > 0
    assert s["retransmits"] <= s["drops"]
