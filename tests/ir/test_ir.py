"""Unit tests for repro.ir: programs, passes, cost model, reports, obs."""

from __future__ import annotations

import pytest

from repro import ir, obs
from repro.ir import ops as O
from repro.ir.cost import CostModel, program_cost
from repro.ir.program import Region, region_for_all, static_program
from repro.machines.registry import get_machine
from repro.workloads.flood import build_flood_program
from repro.workloads.hashtable.runner import (
    HashTableConfig,
    run_hashtable,
)
from repro.workloads.stencil.decomposition import ProcessGrid
from repro.workloads.stencil.runner import StencilConfig, build_stencil_program

M = get_machine("perlmutter-cpu")


class TestProgram:
    def test_flood_program_shape(self):
        p = build_flood_program("one_sided", 4096, 8, iters=2)
        assert not p.dynamic and p.portable
        assert len(p.regions) == 2
        r0 = p.regions[0].rank_ops(0)
        assert [type(op).__name__ for op in r0] == (
            ["BatchPost"] * 8 + ["BatchCommit", "Barrier"]
        )

    def test_static_program_replicates_shared_prologue(self):
        p = static_program(
            "t", None, 3, "two_sided", prologue=[O.Barrier()], regions=[]
        )
        assert len(p.prologue) == 3
        assert all(len(ops) == 1 for ops in p.prologue)

    def test_region_for_all(self):
        r = region_for_all("r", 2, lambda rank: [O.Barrier()])
        assert isinstance(r, Region) and len(r.body) == 2

    def test_op_count(self):
        p = build_flood_program("one_sided", 64, 4, iters=1)
        assert p.op_count() > 0


class TestPipeline:
    def test_build_pipeline_validates_names(self):
        with pytest.raises(ValueError, match="unknown IR pass"):
            ir.build_pipeline(["coalesce", "nope"])

    def test_build_pipeline_bool_forms(self):
        assert not ir.build_pipeline(False).enabled
        assert not ir.build_pipeline(None).enabled
        assert ir.build_pipeline(True).names() == ir.DEFAULT_PASSES

    def test_coalesce_respects_byte_cap(self):
        from repro.ir.pipeline import _COALESCE_BYTE_CAP

        huge = build_flood_program(
            "one_sided", _COALESCE_BYTE_CAP, 4, iters=1
        )
        pipe = ir.build_pipeline(["coalesce"])
        _, rewrites = pipe.run(huge, M)
        assert rewrites == []

    def test_sync_elide_needs_fence_epochs(self):
        grid = ProcessGrid.square_ish(4)
        cfg = StencilConfig(nx=16, ny=16, iters=2)
        pipe = ir.build_pipeline(["sync-elide"])
        rma = build_stencil_program("one_sided", cfg, grid, 4)
        _, fired = pipe.run(rma, M)
        assert fired and fired[0].kind == "fence"
        two = build_stencil_program("two_sided", cfg, grid, 4)
        _, not_fired = pipe.run(two, M)
        assert not_fired == []

    def test_auto_backend_requires_portable(self):
        p = build_flood_program("one_sided", 65536, 64, iters=1)
        assert p.portable
        pipe = ir.build_pipeline(["auto-backend"])
        rewritten, _ = pipe.run(p.with_(portable=False), M)
        assert rewritten.runtime == "one_sided"


class TestCostModel:
    def test_for_machine(self):
        cm = CostModel.for_(M, "one_sided", 2)
        assert cm.alpha > 0 and cm.G > 0 and cm.barrier > 0

    def test_dynamic_program_cost_raises(self):
        geom_cfg = HashTableConfig(total_inserts=32)
        from repro.workloads.hashtable.runner import (
            _plan_rounds,
            build_hashtable_program,
            generate_keys,
        )
        from repro.workloads.hashtable.table import TableGeometry

        geom = TableGeometry.for_inserts(2, 32, load_factor=0.6)
        keys = generate_keys(geom_cfg, 2)
        incoming = _plan_rounds(geom, keys, 2, 1)
        p = build_hashtable_program("one_sided", geom, keys, incoming, 1, 2)
        assert p.dynamic
        with pytest.raises(ValueError, match="dynamic"):
            program_cost(p, M)

    def test_more_messages_cost_more(self):
        small = build_flood_program("one_sided", 4096, 4, iters=1)
        big = build_flood_program("one_sided", 4096, 64, iters=1)
        assert program_cost(big, M) > program_cost(small, M)


class TestScopes:
    def test_innermost_pipeline_wins(self):
        with ir.passes(["coalesce"]):
            with ir.passes(False):
                assert not ir.current_pipeline().enabled
            assert ir.current_pipeline().names() == ("coalesce",)

    def test_default_is_empty(self):
        assert not ir.current_pipeline().enabled

    def test_faults_force_scalar_pipeline(self):
        from repro import faults

        plan = faults.FaultPlan.uniform(loss=0.2, seed=1)
        with faults.inject(plan), ir.passes(True), ir.collect() as reports:
            run_hashtable(M, "two_sided", HashTableConfig(total_inserts=64), 2)
        (rep,) = reports
        assert rep.passes == ()
        assert any("faults active" in n for n in rep.notes)


class TestObsIntegration:
    def test_counters_and_span(self):
        session = obs.Obs()
        with obs.observe(session), ir.passes(True):
            run_hashtable(M, "two_sided", HashTableConfig(total_inserts=64), 2)
        snap = session.snapshot()
        assert snap["ir.programs.lowered"] >= 1
        assert snap["ir.ops.lowered"] > 0
        assert any(k.startswith("ir.ops.") and k != "ir.ops.lowered"
                   for k in snap)
