"""Distributed hashtable: local structures, both variants, invariants."""

import numpy as np
import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.workloads.hashtable import (
    HashTableConfig,
    TableGeometry,
    chain_lengths,
    collect_values,
    generate_keys,
    local_insert,
    run_hashtable,
)


class TestGeometry:
    def test_locate_in_range(self):
        geom = TableGeometry(nranks=4, slots_per_rank=16, heap_per_rank=8)
        for key in range(1, 500):
            r, s = geom.locate(key)
            assert 0 <= r < 4 and 0 <= s < 16

    def test_locate_deterministic(self):
        geom = TableGeometry(nranks=4, slots_per_rank=16, heap_per_rank=8)
        assert geom.locate(12345) == geom.locate(12345)

    def test_zero_key_reserved(self):
        geom = TableGeometry(nranks=2, slots_per_rank=4, heap_per_rank=4)
        with pytest.raises(ValueError):
            geom.locate(0)

    def test_for_inserts_sizing(self):
        geom = TableGeometry.for_inserts(4, 1000, load_factor=0.5)
        assert geom.total_slots >= 2000
        assert geom.heap_per_rank >= 250

    def test_spread_across_ranks(self):
        geom = TableGeometry(nranks=8, slots_per_rank=64, heap_per_rank=8)
        rng = np.random.default_rng(0)
        homes = [geom.locate(int(k))[0] for k in rng.integers(1, 1 << 60, 2000)]
        counts = np.bincount(homes, minlength=8)
        assert counts.min() > 150  # roughly uniform

    def test_validation(self):
        with pytest.raises(ValueError):
            TableGeometry(0, 1, 1)
        with pytest.raises(ValueError):
            TableGeometry.for_inserts(2, 10, load_factor=0)


class TestLocalInsert:
    def _state(self, slots=4, heap=4):
        return (
            np.zeros(slots, dtype=np.int64),
            np.zeros(slots, dtype=np.int64),
            np.zeros(2 * heap, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )

    def test_insert_into_empty_slot(self):
        table, chain, heap, meta = self._state()
        assert local_insert(5, 2, table, chain, heap, meta) is False
        assert table[2] == 5

    def test_collision_goes_to_heap(self):
        table, chain, heap, meta = self._state()
        local_insert(5, 2, table, chain, heap, meta)
        assert local_insert(9, 2, table, chain, heap, meta) is True
        assert table[2] == 5
        assert heap[0] == 9
        assert chain[2] == 1  # 1-based heap index

    def test_chain_links_preserve_all(self):
        table, chain, heap, meta = self._state(heap=8)
        for key in (5, 9, 13, 17):
            local_insert(key, 2, table, chain, heap, meta)
        assert sorted(collect_values(table, heap, meta)) == [5, 9, 13, 17]
        assert chain_lengths(chain, heap)[2] == 3

    def test_heap_exhaustion_raises(self):
        table, chain, heap, meta = self._state(heap=1)
        local_insert(1, 0, table, chain, heap, meta)
        local_insert(2, 0, table, chain, heap, meta)
        with pytest.raises(RuntimeError, match="heap exhausted"):
            local_insert(3, 0, table, chain, heap, meta)

    def test_corrupt_chain_detected(self):
        table, chain, heap, meta = self._state()
        chain[0] = 99  # out of range
        with pytest.raises(RuntimeError, match="corrupt"):
            chain_lengths(chain, heap)


class TestKeyGeneration:
    def test_keys_unique_nonzero(self):
        cfg = HashTableConfig(total_inserts=5000, seed=1)
        parts = generate_keys(cfg, 4)
        allk = np.concatenate(parts)
        assert len(allk) == 5000
        assert len(np.unique(allk)) == 5000
        assert np.all(allk > 0)

    def test_partition_balanced(self):
        cfg = HashTableConfig(total_inserts=1001, seed=1)
        parts = generate_keys(cfg, 4)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 1001
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        cfg = HashTableConfig(total_inserts=100, seed=9)
        a = generate_keys(cfg, 2)
        b = generate_keys(cfg, 2)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


@pytest.mark.parametrize(
    "runtime,machine_factory,nranks",
    [
        ("one_sided", perlmutter_cpu, 4),
        ("one_sided", perlmutter_cpu, 8),
        ("two_sided", perlmutter_cpu, 4),
        ("two_sided", perlmutter_cpu, 8),
        ("shmem", perlmutter_gpu, 4),
        ("shmem", summit_gpu, 6),
    ],
)
class TestDistributedCorrectness:
    def test_all_values_stored_exactly_once(self, runtime, machine_factory, nranks):
        cfg = HashTableConfig(total_inserts=1500, seed=2)
        keys = np.concatenate(generate_keys(cfg, nranks))
        res = run_hashtable(machine_factory(), runtime, cfg, nranks)
        assert sorted(res.extras["values"]) == sorted(keys.tolist())


class TestDistributedBehaviour:
    def test_chains_intact_after_one_sided_run(self):
        cfg = HashTableConfig(total_inserts=2000, seed=4, load_factor=0.9)
        res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 4)
        for chain, heap in zip(res.extras["chains"], res.extras["heaps"]):
            chain_lengths(chain, heap)  # raises on corruption
        assert res.extras["collisions"] > 0  # high load factor collides

    def test_gups_metric_positive(self):
        cfg = HashTableConfig(total_inserts=500, seed=2)
        res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 2)
        assert res.extras["gups"] > 0

    def test_one_sided_no_sync_until_end(self):
        """Paper: 'there is no synchronization until ending the insert' —
        sync count stays at the two barriers regardless of insert count."""
        cfg = HashTableConfig(total_inserts=400, seed=2)
        res = run_hashtable(perlmutter_cpu(), "one_sided", cfg, 2)
        # cas_blocking waits contribute; what matters is no collective sync
        # scaling: atomics >> barrier syncs.
        assert res.counters.atomics >= 400

    def test_two_sided_one_sided_crossover(self):
        """Paper Fig. 9: two-sided wins at P=2, one-sided wins at scale."""
        cfg = HashTableConfig(total_inserts=2000, seed=5)
        t = {}
        for P in (2, 32):
            for rt in ("one_sided", "two_sided"):
                t[(rt, P)] = run_hashtable(perlmutter_cpu(), rt, cfg, P).time
        assert t[("two_sided", 2)] < t[("one_sided", 2)]
        assert t[("one_sided", 32)] < t[("two_sided", 32)]

    def test_summit_cross_socket_atomics_hurt(self):
        """Paper Fig. 9: Summit GPUs stop scaling past one island."""
        cfg = HashTableConfig(total_inserts=3000, seed=5)
        t3 = run_hashtable(summit_gpu(), "shmem", cfg, 3).time
        t4 = run_hashtable(summit_gpu(), "shmem", cfg, 4).time
        assert t4 > t3 * 0.9

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HashTableConfig(total_inserts=0)
        with pytest.raises(ValueError):
            HashTableConfig(load_factor=1.5)
        with pytest.raises(ValueError):
            HashTableConfig(sync_window=0)
        with pytest.raises(ValueError):
            HashTableConfig(mode="other")

    def test_unknown_runtime_rejected(self):
        with pytest.raises((ValueError, KeyError)):
            run_hashtable(perlmutter_cpu(), "rdma", HashTableConfig(), 2)
