"""Block-cyclic layout and the static communication plan."""

import pytest

from repro.workloads.sptrsv import (
    BlockCyclicLayout,
    CommPlan,
)


class TestLayout:
    def test_square_ish(self):
        lay = BlockCyclicLayout.square_ish(12)
        assert lay.pr * lay.pc == 12
        assert abs(lay.pr - lay.pc) <= 1 or lay.pr in (3,)  # near-square

    def test_owner_is_block_cyclic(self):
        lay = BlockCyclicLayout(pr=2, pc=3)
        assert lay.owner(0, 0) == 0
        assert lay.owner(0, 1) == 1
        assert lay.owner(1, 0) == 3
        assert lay.owner(2, 3) == 0  # wraps both ways

    def test_all_ranks_used(self):
        lay = BlockCyclicLayout(pr=2, pc=2)
        owners = {lay.owner(i, j) for i in range(4) for j in range(4)}
        assert owners == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockCyclicLayout(0, 2)


class TestCommPlan:
    @pytest.fixture
    def plan(self, small_matrix):
        return CommPlan.build(small_matrix, BlockCyclicLayout(2, 2))

    def test_every_block_owned_once(self, plan, small_matrix):
        owned = [b for blocks in plan.owned_blocks.values() for b in blocks]
        expected = [(I, J) for (I, J) in small_matrix.blocks if I > J]
        assert sorted(owned) == sorted(expected)

    def test_every_diag_owned_once(self, plan, small_matrix):
        diags = [d for ds in plan.owned_diags.values() for d in ds]
        assert sorted(diags) == list(range(small_matrix.n_supernodes))

    def test_slots_are_dense_and_unique(self, plan):
        for rank, expected in plan.expected.items():
            assert [m.slot for m in expected] == list(range(len(expected)))

    def test_sender_slot_lookup_matches_receiver(self, plan):
        for rank, expected in plan.expected.items():
            for m in expected:
                key = (m.kind, m.supernode, m.source, m.block)
                assert plan.slot_of[rank][key] == m.slot

    def test_x_messages_go_to_column_owners(self, plan, small_matrix):
        for J, targets in plan.x_targets.items():
            diag_owner = plan.layout.diag_owner(J)
            assert diag_owner not in targets
            for dst in targets:
                assert any(
                    plan.layout.owner(I, J) == dst
                    for I in small_matrix.column_blocks(J)
                )

    def test_contrib_totals_match_row_blocks(self, plan, small_matrix):
        for J in range(small_matrix.n_supernodes):
            assert plan.contrib_total[J] == len(small_matrix.row_blocks(J))

    def test_lsum_messages_only_remote(self, plan):
        for rank, expected in plan.expected.items():
            for m in expected:
                assert m.source != rank

    def test_message_conservation(self, plan, small_matrix):
        """Every remote x fan-out and every off-rank lsum block appears
        exactly once in some rank's expected list."""
        n_x = sum(len(t) for t in plan.x_targets.values())
        n_lsum = sum(
            1
            for (I, J) in small_matrix.blocks
            if I > J
            and plan.layout.owner(I, J) != plan.layout.diag_owner(I)
        )
        total_expected = sum(len(v) for v in plan.expected.values())
        assert total_expected == n_x + n_lsum

    def test_window_geometry(self, plan):
        for rank in plan.expected:
            offs = plan.slot_offsets(rank)
            words = [m.words for m in plan.expected[rank]]
            assert len(offs) == len(words)
            # Offsets are the prefix sums of the slot sizes.
            acc = 0
            for off, w in zip(offs, words):
                assert off == acc
                acc += w
            assert plan.window_words(rank) == acc

    def test_describe_mentions_scale(self, plan, small_matrix):
        text = plan.describe()
        assert f"{small_matrix.n_supernodes} supernodes" in text
        assert "message sizes" in text

    def test_single_rank_plan_has_no_messages(self, small_matrix):
        plan = CommPlan.build(small_matrix, BlockCyclicLayout(1, 1))
        assert plan.expected_count(0) == 0
