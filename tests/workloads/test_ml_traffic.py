"""ML traffic runners: validation, accounting invariants, session wiring.

The three :mod:`repro.workloads.ml` runners model the communication
patterns the experiments sweep (data-parallel allreduce, MoE alltoall,
KV-cache broadcast).  These tests pin their parameter validation, the
internal consistency of every derived field, and the roofline-style
scaling directions the experiment expectations rely on.
"""

from __future__ import annotations

import pytest

from repro import Session
from repro.collectives import CollectiveError
from repro.machines import perlmutter_gpu
from repro.transport import SHMEM, TWO_SIDED
from repro.workloads.ml import (
    run_kv_transfer,
    run_moe_dispatch,
    run_training_step,
)

PM = perlmutter_gpu


# ---------------------------------------------------------------------------
# training step
# ---------------------------------------------------------------------------


class TestTrainingStep:
    def test_result_is_internally_consistent(self):
        r = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=1 << 20,
                              tokens_per_rank=256)
        assert r.nranks == 4
        assert r.grad_bytes == float(1 << 20)
        assert r.time > 0
        assert r.compute_time > 0
        assert 0.0 <= r.comm_fraction <= 1.0
        assert r.comm_time == pytest.approx(
            max(r.time - r.compute_time, 0.0)
        )
        assert r.comm_fraction == pytest.approx(r.comm_time / r.time)
        assert r.step_rate == pytest.approx(1.0 / r.time)
        assert r.flops_per_rank == 6.0 * (r.grad_bytes / 4.0) * 256
        assert r.algorithm in ("ring", "recursive_doubling")

    def test_more_tokens_hide_the_allreduce(self):
        small = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=1 << 20,
                                  tokens_per_rank=128)
        large = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=1 << 20,
                                  tokens_per_rank=8192)
        assert large.comm_fraction < small.comm_fraction
        assert large.compute_time > small.compute_time

    def test_bigger_gradient_costs_more(self):
        t = [
            run_training_step(PM(), SHMEM, nranks=4, grad_bytes=g,
                              tokens_per_rank=256).time
            for g in (1 << 18, 1 << 22)
        ]
        assert t[0] < t[1]

    def test_bucketing_splits_unevenly_but_runs(self):
        # 10 words over 3 buckets: 4 + 3 + 3.
        r = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=80,
                              buckets=3)
        assert r.buckets == 3
        assert r.time > 0
        # More buckets means more alpha cost on the same bytes.
        r1 = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=1 << 16,
                               buckets=1, algorithm="ring")
        r8 = run_training_step(PM(), SHMEM, nranks=4, grad_bytes=1 << 16,
                               buckets=8, algorithm="ring")
        assert r8.time >= r1.time

    def test_deterministic(self):
        kw = dict(nranks=4, grad_bytes=1 << 18, tokens_per_rank=512)
        assert (run_training_step(PM(), SHMEM, **kw).time
                == run_training_step(PM(), SHMEM, **kw).time)

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(grad_bytes=4.0), "grad_bytes"),
            (dict(grad_bytes=1 << 20, buckets=0), "buckets"),
            (dict(grad_bytes=64, buckets=32), "exceeds gradient words"),
            (dict(grad_bytes=1 << 20, tokens_per_rank=0), "tokens_per_rank"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(CollectiveError, match=match):
            run_training_step(PM(), SHMEM, nranks=4, **kwargs)


# ---------------------------------------------------------------------------
# MoE dispatch
# ---------------------------------------------------------------------------


class TestMoeDispatch:
    def test_result_is_internally_consistent(self):
        r = run_moe_dispatch(PM(), SHMEM, nranks=4, tokens_per_rank=512,
                             hidden=64)
        assert r.time > 0
        assert 0.0 <= r.comm_fraction <= 1.0
        assert r.comm_time == pytest.approx(max(r.time - r.compute_time, 0.0))
        # Equal routing: tokens/P per destination, hidden words each.
        assert r.dispatch_bytes == (4 - 1) * (512 // 4) * 64 * 8.0
        assert r.tokens_per_s == pytest.approx(512 / r.time)
        assert r.algorithm in ("pairwise", "ring")

    def test_wider_experts_hide_the_dispatch(self):
        narrow = run_moe_dispatch(PM(), SHMEM, nranks=4, tokens_per_rank=512,
                                  hidden=32)
        wide = run_moe_dispatch(PM(), SHMEM, nranks=4, tokens_per_rank=512,
                                hidden=512)
        assert wide.comm_fraction < narrow.comm_fraction

    def test_more_tokens_longer_layer(self):
        t = [
            run_moe_dispatch(PM(), SHMEM, nranks=4, tokens_per_rank=k,
                             hidden=64).time
            for k in (128, 2048)
        ]
        assert t[0] < t[1]

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(tokens_per_rank=2), "tokens_per_rank"),
            (dict(hidden=0), "hidden"),
            (dict(ffn_mult=0), "ffn_mult"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(CollectiveError, match=match):
            run_moe_dispatch(PM(), SHMEM, nranks=4, **kwargs)


# ---------------------------------------------------------------------------
# KV transfer
# ---------------------------------------------------------------------------


class TestKvTransfer:
    def test_result_is_internally_consistent(self):
        r = run_kv_transfer(PM(), SHMEM, nranks=4, context_tokens=512)
        assert r.kv_bytes == 2 * r.layers * 512 * r.hidden * 8.0
        assert r.prefill_time > 0
        assert r.transfer_time > 0
        assert r.decode_time == pytest.approx(
            r.decode_tokens * (r.decode_time / r.decode_tokens)
        )
        assert r.ttft == pytest.approx(
            r.prefill_time + r.transfer_time + r.decode_time / r.decode_tokens
        )
        assert r.transfer_bandwidth == pytest.approx(
            r.kv_bytes / r.transfer_time
        )
        assert r.algorithm in ("tree", "ring")

    def test_handoff_grows_with_context(self):
        small = run_kv_transfer(PM(), SHMEM, nranks=4, context_tokens=256)
        large = run_kv_transfer(PM(), SHMEM, nranks=4, context_tokens=4096)
        assert small.transfer_time < large.transfer_time
        assert small.ttft < large.ttft
        # The large cache amortizes per-round latency: better bandwidth.
        assert large.transfer_bandwidth > small.transfer_bandwidth

    def test_gpu_initiated_never_slower(self):
        host = run_kv_transfer(PM(), TWO_SIDED, nranks=4, context_tokens=1024)
        gpu = run_kv_transfer(PM(), SHMEM, nranks=4, context_tokens=1024)
        assert gpu.transfer_time <= host.transfer_time

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(nranks=1), "replica"),
            (dict(nranks=4, context_tokens=0), ">= 1"),
            (dict(nranks=4, layers=0), ">= 1"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(CollectiveError, match=match):
            run_kv_transfer(PM(), SHMEM, **kwargs)


# ---------------------------------------------------------------------------
# Session facade + observability wiring
# ---------------------------------------------------------------------------


class TestSessionIntegration:
    def test_session_runners_and_metrics(self):
        with Session(machine="perlmutter-gpu", backend=SHMEM, obs=True) as s:
            tr = s.run_training_step(nranks=4, grad_bytes=1 << 18)
            moe = s.run_moe_dispatch(nranks=4, tokens_per_rank=64, hidden=16)
            kv = s.run_kv_transfer(nranks=4, context_tokens=128)
            coll = s.run_collective("allreduce", nranks=4, nelems=64)
        assert tr.time > 0 and moe.time > 0 and kv.time > 0 and coll.time > 0
        snap = s.obs.snapshot()
        assert snap["ml.training.steps"] == 1
        assert snap["ml.moe.layers"] == 1
        assert snap["ml.inference.kv_bytes"] == kv.kv_bytes * 3
        assert snap["collectives.allreduce.runs"] == 1
        assert snap["span.ml:training_step.seconds"] > 0
        assert snap["span.ml:moe_dispatch.seconds"] > 0
        assert snap["span.ml:kv_transfer.seconds"] > 0
        assert any(k.startswith("span.collective:allreduce:") for k in snap)

    def test_session_explain(self):
        with Session(machine="perlmutter-gpu", backend=SHMEM) as s:
            sel = s.explain_collective("allreduce", nranks=4, nbytes=1 << 20)
        assert "<- selected" in sel.explain()
