"""Synthetic supernodal matrix generation and structure."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.workloads.sptrsv import MatrixSpec, generate_matrix


class TestSpec:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MatrixSpec(n_supernodes=1)
        with pytest.raises(ValueError):
            MatrixSpec(width_lo=0)
        with pytest.raises(ValueError):
            MatrixSpec(width_lo=10, width_hi=5)
        with pytest.raises(ValueError):
            MatrixSpec(block_density=0)
        with pytest.raises(ValueError):
            MatrixSpec(density_range=-1)


class TestStructure:
    def test_offsets_consistent_with_widths(self, small_matrix):
        m = small_matrix
        assert m.offsets[0] == 0
        for j, w in enumerate(m.widths):
            lo, hi = m.sn_range(j)
            assert hi - lo == w
        assert m.n == sum(m.widths)

    def test_widths_within_spec(self):
        spec = MatrixSpec(n_supernodes=30, width_lo=5, width_hi=9, seed=1)
        m = generate_matrix(spec)
        assert all(5 <= w <= 9 for w in m.widths)

    def test_lower_triangular_blocks_only(self, small_matrix):
        assert all(I >= J for I, J in small_matrix.blocks)

    def test_diagonal_blocks_unit_lower(self, small_matrix):
        for j in range(small_matrix.n_supernodes):
            d = small_matrix.blocks[(j, j)]
            assert np.allclose(np.diag(d), 1.0)
            assert np.allclose(np.triu(d, k=1), 0.0)

    def test_every_supernode_has_a_predecessor(self, small_matrix):
        """The generator guarantees DAG connectivity so communication is
        exercised for every supernode."""
        for I in range(1, small_matrix.n_supernodes):
            assert small_matrix.row_blocks(I), f"supernode {I} is isolated"

    def test_column_and_row_blocks_consistent(self, small_matrix):
        m = small_matrix
        for (I, J) in m.blocks:
            if I > J:
                assert I in m.column_blocks(J)
                assert J in m.row_blocks(I)

    def test_deterministic_for_seed(self):
        spec = MatrixSpec(n_supernodes=12, seed=42)
        m1, m2 = generate_matrix(spec), generate_matrix(spec)
        assert m1.widths == m2.widths
        assert set(m1.blocks) == set(m2.blocks)

    def test_different_seeds_differ(self):
        m1 = generate_matrix(MatrixSpec(n_supernodes=12, seed=1))
        m2 = generate_matrix(MatrixSpec(n_supernodes=12, seed=2))
        assert set(m1.blocks) != set(m2.blocks) or m1.widths != m2.widths

    def test_message_sizes_in_paper_range(self):
        """Paper: SpTRSV messages span 24 B to 1040 B."""
        m = generate_matrix(MatrixSpec(n_supernodes=64, width_lo=3, width_hi=130))
        sizes = m.message_sizes()
        assert sizes.min() >= 24
        assert sizes.max() <= 1040


class TestCsrConversion:
    def test_csr_is_lower_triangular(self, small_matrix):
        L = small_matrix.to_csr()
        assert (L - sp.tril(L)).nnz == 0

    def test_csr_diag_is_ones(self, small_matrix):
        L = small_matrix.to_csr()
        assert np.allclose(L.diagonal(), 1.0)

    def test_csr_nnz_matches_blocks(self, small_matrix):
        m = small_matrix
        L = m.to_csr()
        expected = 0
        for (I, J), b in m.blocks.items():
            if I == J:
                w = b.shape[0]
                expected += w * (w + 1) // 2
            else:
                expected += b.size
        # to_csr may drop explicit zeros from random blocks (none expected,
        # values are continuous), so equality should hold.
        assert L.nnz == expected


class TestDag:
    def test_edges_sorted_and_forward(self, small_matrix):
        edges = small_matrix.dag_edges()
        assert all(j < i for j, i in edges)
        assert edges == sorted(edges)

    def test_critical_path_bounds(self, small_matrix):
        cp = small_matrix.critical_path_length()
        assert 2 <= cp <= small_matrix.n_supernodes
