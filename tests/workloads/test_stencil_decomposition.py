"""Process grid decomposition: coords, neighbors, blocks, halo sizes."""

import pytest

from repro.workloads.stencil import ProcessGrid


class TestGridShape:
    @pytest.mark.parametrize(
        "p,shape", [(1, (1, 1)), (4, (2, 2)), (8, (4, 2)), (128, (16, 8)), (6, (3, 2))]
    )
    def test_square_ish_matches_paper_shapes(self, p, shape):
        g = ProcessGrid.square_ish(p)
        assert (g.px, g.py) == shape
        assert g.nranks == p

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            ProcessGrid(0, 2)
        with pytest.raises(ValueError):
            ProcessGrid.square_ish(0)


class TestCoordsAndNeighbors:
    def test_coords_roundtrip(self):
        g = ProcessGrid(4, 3)
        for r in range(12):
            ix, iy = g.coords(r)
            assert g.rank_of(ix, iy) == r

    def test_out_of_grid_is_none(self):
        g = ProcessGrid(2, 2)
        assert g.rank_of(-1, 0) is None
        assert g.rank_of(2, 0) is None

    def test_corner_has_two_neighbors(self):
        g = ProcessGrid(3, 3)
        assert set(g.neighbors(0)) == {"east", "south"}

    def test_interior_has_four(self):
        g = ProcessGrid(3, 3)
        nb = g.neighbors(4)  # center
        assert set(nb) == {"north", "south", "east", "west"}
        assert nb["north"] == 1 and nb["south"] == 7
        assert nb["west"] == 3 and nb["east"] == 5

    def test_neighbors_symmetric(self):
        g = ProcessGrid(4, 4)
        for r in range(16):
            for d, nb in g.neighbors(r).items():
                assert g.neighbors(nb)[ProcessGrid.opposite(d)] == r

    def test_opposite(self):
        assert ProcessGrid.opposite("north") == "south"
        assert ProcessGrid.opposite("east") == "west"


class TestBlocks:
    def test_even_split_partitions_grid(self):
        g = ProcessGrid(2, 2)
        covered = set()
        for r in range(4):
            rows, cols = g.block(r, 8, 8)
            for i in range(rows.start, rows.stop):
                for j in range(cols.start, cols.stop):
                    covered.add((i, j))
        assert len(covered) == 64

    def test_uneven_split_partitions_grid(self):
        g = ProcessGrid(3, 2)
        total = 0
        for r in range(6):
            bx, by = g.block_shape(r, 10, 7)
            total += bx * by
        assert total == 70

    def test_uneven_split_near_equal(self):
        g = ProcessGrid(3, 1)
        widths = [g.block_shape(r, 10, 3)[0] for r in range(3)]
        assert sorted(widths) == [3, 3, 4]

    def test_too_small_grid_rejected(self):
        g = ProcessGrid(4, 4)
        with pytest.raises(ValueError):
            g.block(0, 2, 2)

    def test_paper_message_size_scaling(self):
        """Paper: grid 16384^2, P=4..128 => halo messages 2^16 down to
        2^13 bytes."""
        assert ProcessGrid.square_ish(4).halo_bytes(16384, 16384)["east"] == 2**16
        assert ProcessGrid.square_ish(128).halo_bytes(16384, 16384)["north"] == 2**13

    def test_halo_bytes_directions(self):
        hb = ProcessGrid(4, 2).halo_bytes(64, 64)
        assert hb["north"] == hb["south"] == 16 * 8
        assert hb["west"] == hb["east"] == 32 * 8
