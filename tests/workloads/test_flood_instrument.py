"""Flood microbenchmark and the Table II instrumentation."""

import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.workloads.flood import (
    DEFAULT_MSGS_PER_SYNC,
    DEFAULT_SIZES,
    run_cas_flood,
    run_flood,
    sweep_flood,
)
from repro.workloads.instrument import characterize_workloads


class TestFlood:
    def test_bandwidth_positive_and_bounded(self):
        r = run_flood(perlmutter_cpu(), "two_sided", 65536, 16, iters=2)
        assert 0 < r.bandwidth <= 32e9

    def test_bandwidth_rises_with_n(self):
        bw = [
            run_flood(perlmutter_cpu(), "two_sided", 1024, n, iters=2).bandwidth
            for n in (1, 16, 256)
        ]
        assert bw[0] < bw[1] < bw[2]

    def test_bandwidth_rises_with_size(self):
        bw = [
            run_flood(perlmutter_cpu(), "one_sided", B, 16, iters=2).bandwidth
            for B in (64, 4096, 262144)
        ]
        assert bw[0] < bw[1] < bw[2]

    def test_all_runtimes_supported(self):
        for machine, rt in (
            (perlmutter_cpu(), "two_sided"),
            (perlmutter_cpu(), "one_sided"),
            (perlmutter_gpu(), "shmem"),
        ):
            r = run_flood(machine, rt, 4096, 4, iters=1)
            assert r.runtime == rt
            assert r.bandwidth > 0

    def test_as_sample_roundtrip(self):
        r = run_flood(perlmutter_cpu(), "two_sided", 1024, 4, iters=1)
        s = r.as_sample()
        assert s.nbytes == 1024 and s.msgs_per_sync == 4
        assert s.bandwidth == r.bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            run_flood(perlmutter_cpu(), "two_sided", 4, 1)
        with pytest.raises(ValueError):
            run_flood(perlmutter_cpu(), "two_sided", 64, 0)
        with pytest.raises((ValueError, KeyError)):
            run_flood(perlmutter_cpu(), "smoke", 64, 1)

    def test_sweep_covers_grid(self):
        # sweep_flood is deprecated (use repro.sweep.run_sweep); the shim
        # must keep working for one cycle while warning.
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            out = sweep_flood(
                perlmutter_cpu, "two_sided", sizes=(64, 1024),
                msgs_per_sync=(1, 4), iters=1,
            )
        assert len(out) == 4
        assert {(r.nbytes, r.msgs_per_sync) for r in out} == {
            (64, 1), (64, 4), (1024, 1), (1024, 4),
        }

    def test_defaults_sane(self):
        assert len(DEFAULT_SIZES) >= 5
        assert max(DEFAULT_MSGS_PER_SYNC) >= 256


class TestCasFlood:
    def test_latency_fields(self):
        r = run_cas_flood(perlmutter_cpu(), "one_sided", n_ops=16)
        assert r["latency_per_cas"] > 0
        assert r["cas_rate"] == pytest.approx(1 / r["latency_per_cas"])

    def test_target_rank_validated(self):
        with pytest.raises(ValueError):
            run_cas_flood(perlmutter_cpu(), "one_sided", target_rank=0)
        with pytest.raises(ValueError):
            run_cas_flood(perlmutter_cpu(), "one_sided", nranks=2, target_rank=2)


class TestTable2:
    def test_characterization_rows(self):
        rows = characterize_workloads(perlmutter_cpu())
        assert [r.workload for r in rows] == ["Stencil", "SpTRSV", "Hashtable"]
        stencil = rows[0]
        assert stencil.msgs_per_sync == "4"
        assert stencil.pattern == "BSP sync"
        sptrsv = rows[1]
        assert sptrsv.msgs_per_sync == "1"
        # Paper: average ~100 words per SpTRSV message.
        assert "avg" in sptrsv.words_per_msg
        ht = rows[2]
        assert ht.notify_receiver == "No"
        assert "insert" in ht.msgs_per_sync
