"""Distributed SpTRSV: correctness vs scipy and paper-shape behaviours."""

import numpy as np
import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.workloads.sptrsv import (
    BlockCyclicLayout,
    SpTrsvConfig,
    reference_solve,
    run_sptrsv,
)

EXEC = SpTrsvConfig(mode="execute")


@pytest.mark.parametrize(
    "runtime,machine_factory,nranks",
    [
        ("two_sided", perlmutter_cpu, 1),
        ("two_sided", perlmutter_cpu, 4),
        ("two_sided", perlmutter_cpu, 6),
        ("one_sided", perlmutter_cpu, 4),
        ("one_sided", perlmutter_cpu, 6),
        ("shmem", perlmutter_gpu, 4),
        ("shmem", summit_gpu, 6),
    ],
)
class TestCorrectness:
    def test_solution_matches_scipy(
        self, runtime, machine_factory, nranks, small_matrix, rhs
    ):
        xref = reference_solve(small_matrix, rhs)
        res = run_sptrsv(
            machine_factory(), runtime, small_matrix, nranks, cfg=EXEC, b=rhs
        )
        assert np.allclose(res.extras["x"], xref, atol=1e-9)


class TestCorrectnessVariants:
    def test_random_rhs(self, small_matrix):
        rng = np.random.default_rng(0)
        b = rng.normal(size=small_matrix.n)
        xref = reference_solve(small_matrix, b)
        res = run_sptrsv(
            perlmutter_cpu(), "two_sided", small_matrix, 4, cfg=EXEC, b=b
        )
        assert np.allclose(res.extras["x"], xref, atol=1e-9)

    def test_non_square_layout(self, small_matrix, rhs):
        xref = reference_solve(small_matrix, rhs)
        res = run_sptrsv(
            perlmutter_cpu(),
            "two_sided",
            small_matrix,
            8,
            cfg=EXEC,
            b=rhs,
            layout=BlockCyclicLayout(4, 2),
        )
        assert np.allclose(res.extras["x"], xref, atol=1e-9)

    def test_wrong_rhs_length_rejected(self, small_matrix):
        with pytest.raises(ValueError, match="length"):
            run_sptrsv(
                perlmutter_cpu(), "two_sided", small_matrix, 2,
                cfg=EXEC, b=np.ones(3),
            )

    def test_layout_mismatch_rejected(self, small_matrix):
        with pytest.raises(ValueError, match="!= nranks"):
            run_sptrsv(
                perlmutter_cpu(), "two_sided", small_matrix, 4,
                layout=BlockCyclicLayout(1, 2),
            )

    def test_unknown_runtime_rejected(self, small_matrix):
        with pytest.raises((ValueError, KeyError)):
            run_sptrsv(perlmutter_cpu(), "mystery", small_matrix, 2)


class TestPaperShapes:
    def test_one_message_per_sync(self, medium_matrix):
        res = run_sptrsv(perlmutter_cpu(), "two_sided", medium_matrix, 4)
        # Sends are fire-and-forget; each expected message is a blocking
        # recv (its own sync) — msg/sync ~ 1 by design.
        assert res.msgs_per_sync == pytest.approx(1.0, abs=0.5)

    def test_one_sided_uses_4x_operations(self, medium_matrix):
        two = run_sptrsv(perlmutter_cpu(), "two_sided", medium_matrix, 4)
        one = run_sptrsv(perlmutter_cpu(), "one_sided", medium_matrix, 4)
        # One-sided: 2 puts + 2 flushes per logical message (data and
        # signal travel separately, so the message counter doubles) and
        # substantially more runtime calls overall.
        assert one.counters.messages == 2 * two.counters.messages
        assert one.counters.operations > 1.3 * two.counters.operations

    def test_one_sided_slower_on_cpu(self, medium_matrix):
        """The paper's headline SpTRSV result (Fig. 8)."""
        for P in (4, 16):
            two = run_sptrsv(perlmutter_cpu(), "two_sided", medium_matrix, P)
            one = run_sptrsv(perlmutter_cpu(), "one_sided", medium_matrix, P)
            assert one.time > two.time

    def test_simulate_and_execute_same_time(self, small_matrix, rhs):
        """Virtual time must not depend on whether real numerics ran."""
        sim = run_sptrsv(perlmutter_cpu(), "two_sided", small_matrix, 4)
        ex = run_sptrsv(
            perlmutter_cpu(), "two_sided", small_matrix, 4, cfg=EXEC, b=rhs
        )
        assert sim.time == pytest.approx(ex.time, rel=1e-12)

    def test_message_count_independent_of_runtime_timing(self, medium_matrix):
        """The comm pattern is static (Table II: deterministic & variable):
        message counts depend only on matrix + layout."""
        a = run_sptrsv(perlmutter_cpu(), "two_sided", medium_matrix, 4)
        b = run_sptrsv(summit_gpu_like_cpu(), "two_sided", medium_matrix, 4)
        assert a.counters.messages == b.counters.messages

    def test_extras_describe_plan(self, small_matrix):
        res = run_sptrsv(perlmutter_cpu(), "two_sided", small_matrix, 2)
        assert "supernodes" in res.extras["plan"]
        assert res.extras["nnz"] == small_matrix.nnz


def summit_gpu_like_cpu():
    from repro.machines import summit_cpu

    return summit_cpu()
