"""The paper's heat/energy stencil variant: sources, conservation,
distributed correctness."""

import numpy as np
import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.workloads.stencil import (
    ProcessGrid,
    StencilConfig,
    heat_reference,
    heat_step,
    run_stencil,
    total_heat,
)


class TestHeatKernel:
    def test_diffusion_spreads_and_conserves(self):
        u = np.zeros((7, 7))
        u[3, 3] = 8.0
        out = heat_step(u)
        assert out[3, 3] == 4.0  # half stays
        assert out[2, 3] == out[4, 3] == out[3, 2] == out[3, 4] == 1.0
        assert total_heat(out) == pytest.approx(8.0)

    def test_energy_injection(self):
        u = np.zeros((5, 5))
        out = heat_step(u, sources=[(2, 2)], energy=1.5)
        assert out[2, 2] == 1.5
        assert total_heat(out) == pytest.approx(1.5)

    def test_energy_grows_linearly_away_from_boundary(self):
        # Early iterations on a large grid: no heat reaches the sinks yet,
        # so total heat == iters * energy * nsources exactly.
        sources = [(8, 8), (12, 12)]
        u = heat_reference(24, 24, 5, sources=sources, energy=1.0)
        assert total_heat(u) == pytest.approx(10.0)

    def test_boundary_sinks_drain_energy(self):
        sources = [(2, 2)]
        u_long = heat_reference(8, 8, 200, sources=sources, energy=1.0)
        # With absorbing boundaries the total stays below total injected.
        assert total_heat(u_long) < 200.0

    def test_source_outside_interior_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            heat_step(np.zeros((5, 5)), sources=[(0, 2)], energy=1.0)


class TestHeatConfig:
    def test_source_positions_deterministic_and_interior(self):
        cfg = StencilConfig(nx=100, ny=60, variant="heat", nsources=4)
        pos = cfg.source_positions()
        assert pos == cfg.source_positions()
        assert len(pos) == 4
        for r, c in pos:
            assert 1 <= r <= 58 and 1 <= c <= 98

    def test_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(variant="laplace")
        with pytest.raises(ValueError):
            StencilConfig(variant="heat", nsources=-1)


@pytest.mark.parametrize(
    "runtime,machine_factory,nranks",
    [
        ("two_sided", perlmutter_cpu, 4),
        ("one_sided", perlmutter_cpu, 4),
        ("shmem", perlmutter_gpu, 4),
        ("two_sided", perlmutter_cpu, 6),
    ],
)
class TestDistributedHeat:
    def test_matches_serial_reference(self, runtime, machine_factory, nranks):
        n, iters = 30, 6
        cfg = StencilConfig(
            nx=n, ny=n, iters=iters, mode="execute", variant="heat",
            energy=1.0, nsources=3,
        )
        ref = heat_reference(n, n, iters, sources=cfg.source_positions(),
                             energy=1.0)
        grid = ProcessGrid(3, 2) if nranks == 6 else None
        res = run_stencil(machine_factory(), runtime, cfg, nranks, grid=grid)
        assert np.allclose(res.extras["field"], ref, atol=1e-12)

    def test_energy_conserved_distributed(self, runtime, machine_factory, nranks):
        cfg = StencilConfig(
            nx=40, ny=40, iters=4, mode="execute", variant="heat",
            energy=2.0, nsources=2,
        )
        res = run_stencil(machine_factory(), runtime, cfg, nranks)
        # 4 iters x 2 sources x 2.0 energy, nothing reaches the sinks yet.
        assert total_heat(res.extras["field"]) == pytest.approx(16.0)
