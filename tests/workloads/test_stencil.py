"""Stencil kernels and the distributed runner (all three comm variants)."""

import numpy as np
import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_gpu
from repro.workloads.stencil import (
    ProcessGrid,
    StencilConfig,
    initial_grid,
    jacobi_reference,
    jacobi_step,
    run_stencil,
)


class TestKernels:
    def test_initial_grid_hot_edge(self):
        u = initial_grid(8, 8)
        assert np.all(u[0, :] == 1.0)
        assert np.all(u[1:, :] == 0.0)

    def test_jacobi_step_averages_neighbors(self):
        u = np.zeros((3, 3))
        u[0, 1] = 4.0  # north neighbor of the single interior cell
        out = jacobi_step(u)
        assert out[1, 1] == 1.0

    def test_jacobi_step_preserves_boundary(self):
        u = initial_grid(6, 6)
        out = jacobi_step(u)
        assert np.array_equal(out[0, :], u[0, :])
        assert np.array_equal(out[-1, :], u[-1, :])

    def test_jacobi_out_buffer_reused(self):
        u = initial_grid(5, 5)
        scratch = np.empty_like(u)
        out = jacobi_step(u, scratch)
        assert out is scratch

    def test_reference_converges_toward_laplace(self):
        u = jacobi_reference(initial_grid(10, 10), 2000)
        # Interior rows interpolate between hot (1.0) and cold (0.0) edges.
        col = u[:, 5]
        assert np.all(np.diff(col) <= 1e-9)
        assert 0 < col[5] < 1

    def test_small_grid_rejected(self):
        with pytest.raises(ValueError):
            initial_grid(2, 5)
        with pytest.raises(ValueError):
            jacobi_step(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            jacobi_reference(initial_grid(4, 4), -1)


@pytest.mark.parametrize(
    "runtime,machine_factory,nranks",
    [
        ("two_sided", perlmutter_cpu, 4),
        ("two_sided", perlmutter_cpu, 8),
        ("one_sided", perlmutter_cpu, 4),
        ("one_sided", perlmutter_cpu, 8),
        ("shmem", perlmutter_gpu, 4),
        ("shmem", summit_gpu, 6),
    ],
)
class TestDistributedCorrectness:
    def test_matches_serial_reference(self, runtime, machine_factory, nranks):
        n = 24
        iters = 6
        cfg = StencilConfig(nx=n, ny=n, iters=iters, mode="execute")
        ref = jacobi_reference(initial_grid(n, n), iters)
        res = run_stencil(machine_factory(), runtime, cfg, nranks)
        assert np.allclose(res.extras["field"], ref, atol=1e-12)


class TestDistributedBehaviour:
    def test_uneven_decomposition_correct(self):
        cfg = StencilConfig(nx=33, ny=35, iters=4, mode="execute")
        ref = jacobi_reference(initial_grid(33, 35), 4)
        res = run_stencil(
            perlmutter_cpu(), "two_sided", cfg, 6, grid=ProcessGrid(3, 2)
        )
        assert np.allclose(res.extras["field"], ref)

    def test_single_rank_needs_no_comm(self):
        cfg = StencilConfig(nx=16, ny=16, iters=3, mode="execute")
        res = run_stencil(perlmutter_cpu(), "two_sided", cfg, 1)
        assert res.counters.messages == 0
        ref = jacobi_reference(initial_grid(16, 16), 3)
        assert np.allclose(res.extras["field"], ref)

    def test_msg_per_sync_is_four_for_interior(self):
        cfg = StencilConfig(nx=64, ny=64, iters=5, mode="simulate")
        res = run_stencil(perlmutter_cpu(), "two_sided", cfg, 16)
        grid = ProcessGrid.square_ish(16)
        interior = next(
            r for r in range(16) if len(grid.neighbors(r)) == 4
        )
        c = res.per_rank[interior]
        # 4 messages per iteration, one waitall (+1 setup barrier overall).
        assert c.messages == 4 * 5
        assert c.syncs == 5 + 1

    def test_one_sided_and_two_sided_times_close(self):
        """Paper Fig. 5: bandwidth-bound stencil shows no one-sided gain."""
        cfg = StencilConfig(nx=2048, ny=2048, iters=4, mode="simulate")
        t2 = run_stencil(perlmutter_cpu(), "two_sided", cfg, 16).time
        t1 = run_stencil(perlmutter_cpu(), "one_sided", cfg, 16).time
        assert t1 / t2 == pytest.approx(1.0, abs=0.15)

    def test_gpu_faster_than_cpu(self):
        cfg = StencilConfig(nx=4096, ny=4096, iters=3, mode="simulate")
        t_cpu = run_stencil(perlmutter_cpu(), "two_sided", cfg, 16).time
        t_gpu = run_stencil(perlmutter_gpu(), "shmem", cfg, 4).time
        assert t_gpu < t_cpu

    def test_grid_mismatch_rejected(self):
        cfg = StencilConfig(nx=16, ny=16, iters=1)
        with pytest.raises(ValueError, match="!= nranks"):
            run_stencil(perlmutter_cpu(), "two_sided", cfg, 4, grid=ProcessGrid(3, 2))

    def test_unknown_runtime_rejected(self):
        cfg = StencilConfig(nx=16, ny=16, iters=1)
        with pytest.raises((ValueError, KeyError)):
            run_stencil(perlmutter_cpu(), "nccl", cfg, 4)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(nx=2, ny=16)
        with pytest.raises(ValueError):
            StencilConfig(iters=0)
        with pytest.raises(ValueError):
            StencilConfig(mode="dry-run")

    def test_result_rows(self):
        cfg = StencilConfig(nx=64, ny=64, iters=2, mode="simulate")
        res = run_stencil(perlmutter_cpu(), "two_sided", cfg, 4)
        row = res.row()
        assert row["workload"] == "stencil"
        assert row["P"] == 4
        assert row["time_ms"] > 0
