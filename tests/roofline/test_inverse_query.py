"""The inverse roofline query: concurrency needed for a bandwidth target."""

import pytest

from repro.net import LogGPParams
from repro.roofline import MessageRoofline


@pytest.fixture
def roofline():
    return MessageRoofline(
        LogGPParams(L=2e-6, o=3e-7, g=2e-7, G=1 / 32e9, o_sync=1e-6)
    )


class TestRequiredMsgsPerSync:
    def test_result_actually_reaches_target(self, roofline):
        for B in (64.0, 4096.0, 262144.0):
            for frac in (0.3, 0.6, 0.9):
                n = roofline.required_msgs_per_sync(B, frac)
                assert n is not None
                target = frac * float(roofline.saturation_bandwidth(B))
                assert float(roofline.bandwidth(B, n)) >= target * (1 - 1e-9)

    def test_result_is_minimal(self, roofline):
        B = 512.0
        n = roofline.required_msgs_per_sync(B, 0.8)
        assert n is not None and n > 1
        target = 0.8 * float(roofline.saturation_bandwidth(B))
        assert float(roofline.bandwidth(B, n - 1)) < target

    def test_bandwidth_bound_messages_need_one(self, roofline):
        # Huge messages: already at the wire limit with a single message.
        assert roofline.required_msgs_per_sync(1 << 26, 0.5) == 1

    def test_full_saturation_unreachable_in_finite_n(self, roofline):
        # Exactly 1.0 of the asymptote can never be reached at finite n for
        # latency-bound sizes (the limit is approached, not attained).
        n = roofline.required_msgs_per_sync(64.0, 1.0)
        assert n is None

    def test_higher_targets_need_more_concurrency(self, roofline):
        B = 256.0
        ns = [roofline.required_msgs_per_sync(B, f) for f in (0.2, 0.5, 0.9)]
        assert all(n is not None for n in ns)
        assert ns[0] <= ns[1] <= ns[2]

    def test_validation(self, roofline):
        with pytest.raises(ValueError):
            roofline.required_msgs_per_sync(64.0, 0.0)
        with pytest.raises(ValueError):
            roofline.required_msgs_per_sync(64.0, 1.5)
        with pytest.raises(ValueError):
            roofline.required_msgs_per_sync(0.0, 0.5)

    def test_on_machine_params(self):
        """Sanity on a real machine: reaching 90% of the small-message
        saturation on Perlmutter one-sided takes tens of msgs/sync —
        the paper's '100 messages per sync' guidance territory."""
        from repro.machines import perlmutter_cpu

        m = perlmutter_cpu()
        params = m.loggp("one_sided", 0, 1, nranks=2, placement="spread",
                         sided="one", ops_per_message=1)
        roof = MessageRoofline(params)
        n = roof.required_msgs_per_sync(64.0, 0.9)
        assert n is not None
        assert 10 <= n <= 500
