"""LogGP fitting: recovery from synthetic and simulated data."""

import numpy as np
import pytest

from repro.net import LogGPParams
from repro.roofline import FloodSample, MessageRoofline, fit_loggp


def _synthetic_samples(params, sizes, ns, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    roof = MessageRoofline(params)
    out = []
    for n in ns:
        for B in sizes:
            bw = float(roof.bandwidth(B, n))
            if noise:
                bw *= float(np.exp(rng.normal(0, noise)))
            out.append(FloodSample(nbytes=B, msgs_per_sync=n, bandwidth=bw))
    return out


TRUE = LogGPParams(L=2e-6, o=4e-7, g=2.5e-7, G=1 / 32e9)
SIZES = [64.0 * 8**k for k in range(6)]
NS = (1, 8, 64, 512)


class TestRecovery:
    def test_exact_recovery_from_clean_data(self):
        """Identifiable quantities recover: G exactly; the small-message
        spacing max(o, g) (o and g trade off inside the max); and the
        n=1 fixed cost L + o."""
        fit = fit_loggp(_synthetic_samples(TRUE, SIZES, NS))
        assert fit.params.G == pytest.approx(TRUE.G, rel=0.05)
        assert max(fit.params.o, fit.params.g) == pytest.approx(
            max(TRUE.o, TRUE.g), rel=0.1
        )
        assert fit.params.L + fit.params.o == pytest.approx(
            TRUE.L + TRUE.o, rel=0.1
        )
        assert fit.residual_rms < 0.02

    def test_peak_bandwidth_recovered(self):
        fit = fit_loggp(_synthetic_samples(TRUE, SIZES, NS))
        assert fit.params.peak_bandwidth == pytest.approx(32e9, rel=0.05)

    def test_noisy_data_still_close(self):
        fit = fit_loggp(_synthetic_samples(TRUE, SIZES, NS, noise=0.05))
        assert fit.params.G == pytest.approx(TRUE.G, rel=0.15)
        assert fit.residual_rms < 0.15

    def test_hint_does_not_hurt(self):
        fit = fit_loggp(
            _synthetic_samples(TRUE, SIZES, NS), peak_bandwidth_hint=30e9
        )
        assert fit.params.peak_bandwidth == pytest.approx(32e9, rel=0.05)

    def test_fit_from_simulated_flood(self, pm_cpu):
        """End to end: fit the simulator's measured curve (the paper's
        'diagonal ceilings inferred from empirical data')."""
        from repro.machines import perlmutter_cpu
        from repro.workloads.flood import run_flood

        samples = []
        for n in (1, 16, 256):
            for B in (64, 4096, 262144, 4194304):
                r = run_flood(perlmutter_cpu(), "two_sided", B, n, iters=2)
                samples.append(r.as_sample())
        fit = fit_loggp(samples)
        # Peak near the 32 GB/s IF link; worst-case point error bounded.
        assert 28e9 < fit.params.peak_bandwidth < 36e9
        assert fit.residual_rms < 0.35


class TestValidation:
    def test_too_few_samples(self):
        with pytest.raises(ValueError, match=">= 4"):
            fit_loggp(_synthetic_samples(TRUE, SIZES[:1], (1,))[:3])

    def test_bad_sample_values(self):
        bad = [FloodSample(nbytes=-1, msgs_per_sync=1, bandwidth=1e9)] * 5
        with pytest.raises(ValueError):
            fit_loggp(bad)

    def test_max_relative_error_property(self):
        fit = fit_loggp(_synthetic_samples(TRUE, SIZES, NS))
        assert fit.max_relative_error >= 0
        assert fit.n_samples == len(SIZES) * len(NS)
