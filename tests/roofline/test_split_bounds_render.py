"""SplitModel (Fig. 10), workload bounds (Fig. 6), ASCII rendering."""

import pytest

from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.roofline import (
    Series,
    SplitModel,
    WorkloadProfile,
    ascii_loglog,
    bound_workload,
    profile_from_counters,
)


@pytest.fixture
def split():
    return SplitModel.from_machine(perlmutter_gpu(), "gpu0", "gpu1")


class TestSplitModel:
    def test_k1_is_baseline(self, split):
        t = float(split.time(1 << 20, 1))
        expected = split.o + split.L + (1 << 20) / split.channel_bandwidth
        assert t == pytest.approx(expected)

    def test_split_wins_large_volumes(self, split):
        assert float(split.speedup(16 << 20, 4)) > 2.5

    def test_split_loses_small_volumes(self, split):
        assert float(split.speedup(4 << 10, 4)) < 1.0

    def test_crossover_monotone(self, split):
        V = split.crossover_volume(4)
        assert float(split.speedup(V * 4, 4)) > 1.0
        assert float(split.speedup(V / 4, 4)) < 1.0

    def test_paper_crossover_131KB(self, split):
        assert 64 * 1024 <= split.crossover_volume(4) <= 256 * 1024

    def test_paper_asymptote_2_9x(self, split):
        assert split.asymptotic_speedup(4) == pytest.approx(2.9, rel=0.15)

    def test_more_chunks_than_channels_reuses(self):
        m = SplitModel(
            o=1e-7, L=1e-7, channel_bandwidth=25e9,
            injection_bandwidth=1e15, channels=4,
        )
        # 8 chunks on 4 channels: two waves.
        t8 = float(m.time(1 << 24, 8))
        t4 = float(m.time(1 << 24, 4))
        assert t8 >= t4 * 0.9

    def test_speedup_capped_by_channels(self):
        m = SplitModel(
            o=0.0, L=0.0, channel_bandwidth=25e9,
            injection_bandwidth=1e18, channels=4,
        )
        assert m.asymptotic_speedup(4) <= 4.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            SplitModel(o=0, L=0, channel_bandwidth=0, injection_bandwidth=1)
        m = SplitModel(o=0, L=0, channel_bandwidth=1e9, injection_bandwidth=1e9)
        with pytest.raises(ValueError):
            m.time(100, 0)
        with pytest.raises(ValueError):
            m.time(-1, 1)


class TestWorkloadBounds:
    def test_bound_rows_structure(self):
        prof = WorkloadProfile(
            "stencil", (8192.0, 65536.0), msgs_per_sync=4, sided="two",
            ops_per_message=2,
        )
        wb = bound_workload(perlmutter_cpu(), "two_sided", prof)
        rows = wb.rows()
        assert len(rows) == 2
        assert rows[1]["bound_GBps"] > rows[0]["bound_GBps"]
        assert all(0 < r["fraction_of_peak"] <= 1 for r in rows)

    def test_one_sided_four_ops_bound_slower(self):
        two = bound_workload(
            perlmutter_cpu(),
            "two_sided",
            WorkloadProfile("sptrsv", (800.0,), 1, "two", 2),
        )
        one = bound_workload(
            perlmutter_cpu(),
            "one_sided",
            WorkloadProfile("sptrsv", (800.0,), 1, "one", 4),
        )
        assert one.time_per_sync[0] > two.time_per_sync[0]

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", (), 1, "two", 2)
        with pytest.raises(ValueError):
            WorkloadProfile("x", (-1.0,), 1, "two", 2)
        with pytest.raises(ValueError):
            WorkloadProfile("x", (8.0,), 0, "two", 2)

    def test_profile_from_counters(self):
        from repro.comm import OpCounter

        c = OpCounter(messages=40, bytes_sent=40 * 800, operations=80, syncs=10)
        prof = profile_from_counters("w", c, sided="two")
        assert prof.msgs_per_sync == pytest.approx(4.0)
        assert prof.message_sizes == (800.0,)
        assert prof.ops_per_message == 2


class TestAsciiRender:
    def test_renders_grid_and_legend(self):
        s = Series("model", [(2.0**k, 2.0**k) for k in range(3, 20)], marker="o")
        out = ascii_loglog([s], width=40, height=10, title="T", xlabel="B", ylabel="GB/s")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert sum(line.count("o") for line in lines) >= 10
        assert "legend: o=model" in out

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_loglog([Series("empty", [])])

    def test_rejects_multichar_marker(self):
        with pytest.raises(ValueError):
            Series("x", [(1, 1)], marker="ab")

    def test_degenerate_single_point(self):
        out = ascii_loglog([Series("p", [(10.0, 10.0)])], width=20, height=5)
        assert "p" in out
