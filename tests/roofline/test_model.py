"""Message Roofline model: sharp vs rounded, ceilings, overlap gains."""

import numpy as np
import pytest

from repro.net import LogGPParams
from repro.roofline import MessageRoofline


@pytest.fixture
def roofline():
    # L=2us, o=0.3us, g=0.2us, peak 32 GB/s, o_sync=1us.
    return MessageRoofline(
        LogGPParams(L=2e-6, o=3e-7, g=2e-7, G=1 / 32e9, o_sync=1e-6)
    )


class TestTimeModel:
    def test_n1_rounded_time(self, roofline):
        p = roofline.params
        t = float(roofline.time(1024, 1))
        assert t == pytest.approx(p.o + 1024 * p.G + p.L + p.o_sync)

    def test_rounded_matches_loggp_pipelined(self, roofline):
        p = roofline.params
        for B, n in [(64, 1), (1024, 16), (1 << 20, 256)]:
            assert float(roofline.time(B, n)) == pytest.approx(
                p.time_pipelined(B, n)
            )

    def test_sharp_never_slower_than_rounded(self, roofline):
        B = np.logspace(1, 7, 30)
        for n in (1, 10, 1000):
            assert np.all(
                roofline.time(B, n, sharp=True) <= roofline.time(B, n) + 1e-15
            )

    def test_vectorised_over_sizes(self, roofline):
        B = np.array([64.0, 1024.0, 65536.0])
        bw = roofline.bandwidth(B, 10)
        assert bw.shape == (3,)
        assert np.all(np.diff(bw) > 0)  # larger messages => higher bandwidth

    def test_invalid_inputs(self, roofline):
        with pytest.raises(ValueError):
            roofline.time(-1, 1)
        with pytest.raises(ValueError):
            roofline.time(64, 0)
        with pytest.raises(ValueError):
            roofline.bandwidth(0, 1)


class TestCeilings:
    def test_peak_is_horizontal_ceiling(self, roofline):
        assert roofline.peak_bandwidth == pytest.approx(32e9)
        bw = float(roofline.bandwidth(1 << 26, 1000))
        assert bw < 32e9
        assert bw > 0.95 * 32e9

    def test_bandwidth_never_exceeds_peak(self, roofline):
        B = np.logspace(1, 8, 50)
        for n in (1, 100, 100_000):
            assert np.all(roofline.bandwidth(B, n) <= 32e9 * (1 + 1e-12))

    def test_saturation_bounded_by_gap(self, roofline):
        # Tiny messages: even n -> inf is bounded by B / max(o, g).
        sat = float(roofline.saturation_bandwidth(8))
        assert sat == pytest.approx(8 / 3e-7)

    def test_knee_moves_left_with_n(self, roofline):
        assert roofline.knee_size(1) > roofline.knee_size(100)


class TestMsgSyncAxis:
    def test_bandwidth_monotone_in_n(self, roofline):
        bws = [float(roofline.bandwidth(256, n)) for n in (1, 4, 16, 64, 256)]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))

    def test_latency_per_message_decreases_with_n(self, roofline):
        lats = [float(roofline.latency_per_message(256, n)) for n in (1, 10, 100)]
        assert lats[0] > lats[1] > lats[2]

    def test_overlap_gain_large_for_latency_bound(self, roofline):
        # L + o_sync = 3 us dominates small messages; marginal is o=0.3us.
        gain = float(roofline.overlap_gain(64, 1_000_000))
        assert gain > 8

    def test_overlap_gain_nil_for_bandwidth_bound(self, roofline):
        gain = float(roofline.overlap_gain(1 << 26, 100))
        assert gain < 1.05

    def test_max_overlap_gain_is_limit(self, roofline):
        B = 64
        finite = float(roofline.overlap_gain(B, 10_000_000))
        limit = float(roofline.max_overlap_gain(B))
        assert finite == pytest.approx(limit, rel=0.01)


class TestSeriesAndBounds:
    def test_series_one_per_n(self, roofline):
        series = roofline.series([64, 1024], msgs_per_sync=(1, 10, 100))
        assert len(series) == 3
        assert series[0].label == "1 msg/sync"
        assert series[2].bandwidth.shape == (2,)

    def test_bound_query_fields(self, roofline):
        b = roofline.bound(1024, 10)
        assert b["bound_bandwidth"] < roofline.peak_bandwidth
        assert 0 < b["fraction_of_peak"] < 1
        assert b["bound_time_per_sync"] == pytest.approx(
            float(roofline.time(1024, 10))
        )
