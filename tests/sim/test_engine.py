"""Simulator clock, scheduling order, run() modes."""

import pytest

from repro.sim import Simulator
from repro.sim.event import SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_time_advances_monotonically(self, sim):
        stamps = []
        for d in (5.0, 1.0, 3.0):
            sim.timeout(d).add_callback(lambda e, s=stamps: s.append(sim.now))
        sim.run()
        assert stamps == [1.0, 3.0, 5.0]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        sim.timeout(1.0).add_callback(lambda e: order.append("first"))
        sim.timeout(1.0).add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_event_count_increments(self, sim):
        sim.timeout(1)
        sim.timeout(2)
        sim.run()
        assert sim.event_count == 2


class TestRunModes:
    def test_run_to_quiescence(self, sim):
        sim.timeout(7)
        sim.run()
        assert sim.now == 7

    def test_run_until_time_processes_earlier_events(self, sim):
        hits = []
        sim.timeout(1).add_callback(lambda e: hits.append(1))
        sim.timeout(10).add_callback(lambda e: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0

    def test_run_until_time_then_continue(self, sim):
        sim.timeout(10)
        sim.run(until=5.0)
        sim.run()
        assert sim.now == 10

    def test_run_until_past_time_raises(self, sim):
        sim.timeout(5)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_run_until_event_returns_value(self, sim):
        ev = sim.timeout(2, value="payload")
        assert sim.run(until=ev) == "payload"
        assert sim.now == 2

    def test_run_until_never_firing_event_detects_deadlock(self, sim):
        ev = sim.event()  # never triggered
        sim.timeout(1)
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=ev)

    def test_run_until_failed_event_raises(self, sim):
        ev = sim.event()
        sim.timeout(1).add_callback(lambda e: ev.fail(RuntimeError("died")))
        with pytest.raises(RuntimeError, match="died"):
            sim.run(until=ev)

    def test_run_until_foreign_event_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.run(until=other.timeout(1))

    def test_not_reentrant(self, sim):
        def prog():
            yield sim.timeout(1)
            sim.run()  # illegal nested run

        sim.process(prog())
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(4)
        assert sim.peek() == 4
