"""Resource (FIFO server), Store (mailbox), Pipe (latency stage)."""

import pytest

from repro.sim import Pipe, Resource, Store
from repro.sim.event import SimulationError


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_immediate_grant_under_capacity(self, sim):
        res = Resource(sim, capacity=2)
        g1, g2 = res.request(), res.request()
        assert g1.triggered and g2.triggered
        assert res.in_use == 2

    def test_queueing_over_capacity(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        g2 = res.request()
        assert not g2.triggered
        assert res.queue_length == 1
        res.release()
        assert g2.triggered
        assert res.queue_length == 0

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        waiters = [res.request() for _ in range(3)]
        res.release()
        assert waiters[0].triggered and not waiters[1].triggered
        res.release()
        assert waiters[1].triggered and not waiters[2].triggered

    def test_release_without_request_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()

    def test_serialises_processes(self, sim):
        res = Resource(sim, capacity=1)
        finish = []

        def worker(name):
            grant = res.request()
            yield grant
            yield sim.timeout(10)
            res.release()
            finish.append((name, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finish == [("a", 10), ("b", 20)]


class TestStore:
    def test_put_then_get(self, sim):
        st = Store(sim)
        st.put("x")
        ev = st.get()
        assert ev.triggered and ev.value == "x"

    def test_get_then_put_wakes_waiter(self, sim):
        st = Store(sim)
        ev = st.get()
        assert not ev.triggered
        st.put("y")
        assert ev.triggered and ev.value == "y"

    def test_fifo_ordering(self, sim):
        st = Store(sim)
        for item in ("a", "b", "c"):
            st.put(item)
        assert [st.get().value for _ in range(3)] == ["a", "b", "c"]

    def test_waiters_served_fifo(self, sim):
        st = Store(sim)
        e1, e2 = st.get(), st.get()
        st.put(1)
        st.put(2)
        assert e1.value == 1 and e2.value == 2

    def test_len_and_peek(self, sim):
        st = Store(sim)
        st.put("a")
        st.put("b")
        assert len(st) == 2
        assert st.peek_all() == ["a", "b"]
        assert len(st) == 2  # peek is non-destructive


class TestPipe:
    def test_delivery_time_is_latency_plus_bytes(self, sim):
        pipe = Pipe(sim, latency=1.0, bandwidth=100.0)
        arrived = []
        pipe.send("m", nbytes=50).add_callback(lambda e: arrived.append(sim.now))
        sim.run()
        assert arrived == [pytest.approx(1.5)]

    def test_zero_byte_message_pays_latency_only(self, sim):
        pipe = Pipe(sim, latency=2.0, bandwidth=1.0)
        pipe.send("ctrl")
        sim.run()
        assert sim.now == pytest.approx(2.0)

    def test_recv_gets_sent_item(self, sim):
        pipe = Pipe(sim, latency=0.5, bandwidth=10.0)

        def receiver():
            item = yield pipe.recv()
            return item

        p = sim.process(receiver())
        pipe.send("payload", nbytes=5)
        sim.run()
        assert p.value == "payload"

    def test_invalid_params_rejected(self, sim):
        with pytest.raises(ValueError):
            Pipe(sim, latency=-1, bandwidth=1)
        with pytest.raises(ValueError):
            Pipe(sim, latency=0, bandwidth=0)
        pipe = Pipe(sim, latency=0, bandwidth=1)
        with pytest.raises(ValueError):
            pipe.send("x", nbytes=-1)
