"""Deterministic RNG streams and the tracer."""

import numpy as np
import pytest

from repro.sim import NullTracer, RngFactory, Tracer


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("x").random(8)
        b = RngFactory(7).stream("x").random(8)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        f = RngFactory(7)
        assert not np.array_equal(f.stream("x").random(8), f.stream("y").random(8))

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            RngFactory(1).stream("x").random(8), RngFactory(2).stream("x").random(8)
        )

    def test_order_independence(self):
        f1 = RngFactory(3)
        _ = f1.stream("a")
        b_after = f1.stream("b").random(4)
        b_fresh = RngFactory(3).stream("b").random(4)
        assert np.array_equal(b_after, b_fresh)

    def test_child_is_deterministic(self):
        c1 = RngFactory(5).child("sub")
        c2 = RngFactory(5).child("sub")
        assert c1.seed == c2.seed
        assert c1.seed != 5

    def test_invalid_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)
        with pytest.raises(ValueError):
            RngFactory("abc")


class TestTracer:
    def test_emit_and_filter(self):
        t = Tracer()
        t.emit(0.0, "send", 0, nbytes=10)
        t.emit(1.0, "send", 1, nbytes=20)
        t.emit(2.0, "recv", 0, nbytes=10)
        assert len(t) == 3
        assert t.count("send") == 2
        assert len(t.filter(kind="send", rank=1)) == 1
        assert t.total_bytes("send") == 30

    def test_predicate_filter(self):
        t = Tracer()
        t.emit(0.0, "send", 0, nbytes=10)
        t.emit(0.0, "send", 0, nbytes=9000)
        big = t.filter(predicate=lambda r: r.detail["nbytes"] > 100)
        assert len(big) == 1

    def test_clear(self):
        t = Tracer()
        t.emit(0.0, "x", 0)
        t.clear()
        assert len(t) == 0

    def test_null_tracer_drops_everything(self):
        t = NullTracer()
        t.emit(0.0, "send", 0)
        assert len(t) == 0
