"""Event state machine, condition events, failure propagation."""

import pytest

from repro.sim import AllOf, AnyOf, Simulator
from repro.sim.event import SimulationError


class TestEventLifecycle:
    def test_fresh_event_is_untriggered(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value_and_ok(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_succeed_after_fail_raises(self, sim):
        ev = sim.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_in_registration_order(self, sim):
        ev = sim.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        sim.run()
        assert order == [1, 2]

    def test_callback_after_processing_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        sim.run()
        with pytest.raises(SimulationError):
            ev.add_callback(lambda e: None)

    def test_delayed_succeed_fires_at_delay(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(sim.now))
        ev.succeed(delay=2.5)
        sim.run()
        assert seen == [2.5]

    def test_unwaited_failed_event_raises_at_processing(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_defused_failed_event_is_silent(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        sim.run()  # no raise


class TestTimeout:
    def test_timeout_fires_at_delay(self, sim):
        t = sim.timeout(3.0, value="done")
        sim.run()
        assert sim.now == 3.0
        assert t.value == "done"

    def test_zero_delay_is_legal(self, sim):
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestConditions:
    def test_allof_waits_for_all(self, sim):
        t1, t2, t3 = sim.timeout(1), sim.timeout(5), sim.timeout(3)
        done = AllOf(sim, [t1, t2, t3])
        sim.run(until=done)
        assert sim.now == 5

    def test_anyof_fires_on_first(self, sim):
        t1, t2 = sim.timeout(4), sim.timeout(2)
        done = AnyOf(sim, [t1, t2])
        sim.run(until=done)
        assert sim.now == 2

    def test_empty_allof_is_vacuously_satisfied(self, sim):
        done = AllOf(sim, [])
        assert done.triggered

    def test_allof_collects_values(self, sim):
        t1 = sim.timeout(1, value="a")
        t2 = sim.timeout(2, value="b")
        done = AllOf(sim, [t1, t2])
        sim.run(until=done)
        assert set(done.value.values()) == {"a", "b"}

    def test_allof_propagates_failure(self, sim):
        ev = sim.event()
        t = sim.timeout(1)
        done = AllOf(sim, [ev, t])
        ev.fail(RuntimeError("child failed"))
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(until=done)

    def test_allof_with_already_processed_child(self, sim):
        t1 = sim.timeout(1)
        sim.run()  # clock is now 1; t1 already processed
        done = AllOf(sim, [t1, sim.timeout(2)])
        sim.run(until=done)
        assert sim.now == 3  # 1 (elapsed) + 2 (new timeout)

    def test_condition_rejects_foreign_events(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            AllOf(sim, [other.timeout(1)])
