"""Generator processes: suspension, return values, failure, interrupts."""

import pytest

from repro.sim import Interrupt, Process, Simulator
from repro.sim.event import SimulationError


class TestBasics:
    def test_process_requires_generator(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)  # not a generator

    def test_process_runs_and_returns(self, sim):
        def prog():
            yield sim.timeout(2)
            return "result"

        p = sim.process(prog())
        sim.run()
        assert p.value == "result"
        assert sim.now == 2

    def test_yield_receives_event_value(self, sim):
        def prog():
            got = yield sim.timeout(1, value="hello")
            return got

        p = sim.process(prog())
        sim.run()
        assert p.value == "hello"

    def test_sequential_timeouts_accumulate(self, sim):
        def prog():
            yield sim.timeout(1)
            yield sim.timeout(2)
            yield sim.timeout(3)

        sim.process(prog())
        sim.run()
        assert sim.now == 6

    def test_two_processes_interleave(self, sim):
        log = []

        def prog(name, step):
            for _ in range(3):
                yield sim.timeout(step)
                log.append((name, sim.now))

        sim.process(prog("a", 2))
        sim.process(prog("b", 3))
        sim.run()
        # At the t=6 tie, b's event was scheduled earlier (at t=3, vs a's
        # at t=4), so insertion order puts b first.
        assert log == [
            ("a", 2), ("b", 3), ("a", 4), ("b", 6), ("a", 6), ("b", 9),
        ]

    def test_process_is_waitable(self, sim):
        def child():
            yield sim.timeout(5)
            return 99

        def parent():
            result = yield sim.process(child())
            return result * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 198

    def test_yield_already_processed_event_resumes(self, sim):
        done = sim.timeout(0)

        def prog():
            yield sim.timeout(1)
            got = yield done  # already processed by then
            return got

        p = sim.process(prog())
        sim.run()
        assert p.triggered
        assert sim.now == 1

    def test_is_alive(self, sim):
        def prog():
            yield sim.timeout(1)

        p = sim.process(prog())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestFailures:
    def test_exception_in_process_fails_it(self, sim):
        def prog():
            yield sim.timeout(1)
            raise ValueError("inside")

        p = sim.process(prog())
        p.defuse()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, ValueError)

    def test_failed_event_throws_into_process(self, sim):
        ev = sim.event()

        def prog():
            try:
                yield ev
            except RuntimeError as e:
                return f"caught {e}"

        p = sim.process(prog())
        ev.fail(RuntimeError("bad"))
        sim.run()
        assert p.value == "caught bad"

    def test_yielding_non_event_fails_process(self, sim):
        def prog():
            yield 42

        p = sim.process(prog())
        p.defuse()
        sim.run()
        assert not p.ok
        assert isinstance(p.value, SimulationError)

    def test_yielding_foreign_event_fails_process(self, sim):
        other = Simulator()

        def prog():
            yield other.timeout(1)

        p = sim.process(prog())
        p.defuse()
        sim.run()
        assert not p.ok


class TestInterrupt:
    def test_interrupt_wakes_process(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return f"interrupted: {i.cause}"

        p = sim.process(victim())

        def interrupter():
            yield sim.timeout(1)
            p.interrupt("reason")

        sim.process(interrupter())
        sim.run(until=p)
        assert p.value == "interrupted: reason"
        assert sim.now == 1

    def test_interrupt_finished_process_raises(self, sim):
        def prog():
            yield sim.timeout(1)

        p = sim.process(prog())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self, sim):
        def victim():
            yield sim.timeout(100)

        p = sim.process(victim())
        p.defuse()

        def interrupter():
            yield sim.timeout(1)
            p.interrupt()

        sim.process(interrupter())
        sim.run()
        assert not p.ok
        assert isinstance(p.value, Interrupt)
