"""The max_events livelock guard on Simulator.run / Job.run."""

import pytest

from repro.comm import Job
from repro.sim import Simulator
from repro.sim.event import SimulationError


class TestSimulatorBudget:
    def test_livelock_caught(self, sim):
        def ping(other_store, my_store):
            while True:
                other_store.put("tick")
                yield my_store.get()

        from repro.sim import Store

        a, b = Store(sim), Store(sim)
        sim.process(ping(a, b))
        sim.process(ping(b, a))
        with pytest.raises(SimulationError, match="event budget"):
            sim.run(max_events=10_000)

    def test_budget_not_triggered_by_normal_run(self, sim):
        sim.timeout(1)
        sim.timeout(2)
        sim.run(max_events=100)
        assert sim.now == 2

    def test_budget_applies_to_until_event(self, sim):
        def spinner():
            while True:
                yield sim.timeout(1e-9)

        sim.process(spinner())
        never = sim.event()
        with pytest.raises(SimulationError, match="event budget"):
            sim.run(until=never, max_events=500)

    def test_budget_applies_to_until_time(self, sim):
        def spinner():
            while True:
                yield sim.timeout(1e-9)

        sim.process(spinner())
        with pytest.raises(SimulationError, match="event budget"):
            sim.run(until=1.0, max_events=500)

    def test_budget_is_per_call(self, sim):
        sim.timeout(1)
        sim.run(max_events=5)
        for _ in range(10):
            sim.timeout(1)
        sim.run(max_events=11)  # fresh budget; would fail if cumulative

    def test_invalid_budget(self, sim):
        with pytest.raises(SimulationError):
            sim.run(max_events=0)

    def test_budget_error_mentions_time(self):
        sim = Simulator()

        def spinner():
            while True:
                yield sim.timeout(1.0)

        sim.process(spinner())
        with pytest.raises(SimulationError, match="t="):
            sim.run(max_events=50)


class TestJobBudget:
    def test_job_forwards_budget(self, pm_cpu):
        def chatty(ctx):
            while True:
                yield from ctx.compute(seconds=1e-9)

        job = Job(pm_cpu, 2, "two_sided")
        with pytest.raises(SimulationError, match="event budget"):
            job.run(chatty, max_events=1_000)

    def test_job_budget_allows_normal_completion(self, pm_cpu):
        def quick(ctx):
            yield from ctx.barrier()
            return ctx.rank

        res = Job(pm_cpu, 4, "two_sided").run(quick, max_events=10_000)
        assert res.results == [0, 1, 2, 3]
