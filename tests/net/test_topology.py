"""Topology construction, routing, loopback, route parameters."""

import pytest

from repro.net import LinkParams, TopologySpec


def _topo():
    t = TopologySpec(name="test")
    t.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=10e9))
    t.add_link("b", "c", LinkParams(latency=2e-6, bandwidth=5e9, gap=3e-7))
    return t


class TestConstruction:
    def test_endpoints_sorted(self):
        assert _topo().endpoints == ["a", "b", "c"]

    def test_duplicate_link_rejected(self):
        t = _topo()
        with pytest.raises(ValueError):
            t.add_link("b", "a", LinkParams(latency=1e-6, bandwidth=1e9))

    def test_self_link_rejected(self):
        t = TopologySpec(name="x")
        with pytest.raises(ValueError):
            t.add_link("a", "a", LinkParams(latency=0, bandwidth=1e9))

    def test_link_params_lookup(self):
        t = _topo()
        assert t.link_params("a", "b").bandwidth == 10e9
        assert t.link_params("b", "a").bandwidth == 10e9  # undirected
        with pytest.raises(KeyError):
            t.link_params("a", "c")

    def test_describe_mentions_links(self):
        text = _topo().describe()
        assert "a <-> b" in text and "10 GB/s" in text


class TestRouting:
    def test_direct_route(self):
        r = _topo().route("a", "b")
        assert r.hops == (("a", "b"),)
        assert r.latency == pytest.approx(1e-6)
        assert r.bandwidth == 10e9

    def test_multi_hop_route_accumulates(self):
        r = _topo().route("a", "c")
        assert r.hops == (("a", "b"), ("b", "c"))
        assert r.latency == pytest.approx(3e-6)
        assert r.bandwidth == 5e9  # bottleneck
        assert r.gap == pytest.approx(3e-7)  # max over hops

    def test_route_uses_min_latency_path(self):
        t = _topo()
        t.add_link("a", "c", LinkParams(latency=10e-6, bandwidth=100e9))
        # Direct a-c has higher latency than a-b-c (3 us): routing is by
        # latency, so the two-hop path wins.
        r = t.route("a", "c")
        assert r.nhops == 2

    def test_loopback_route(self):
        r = _topo().route("a", "a")
        assert r.nhops == 0
        assert r.bandwidth > 0

    def test_message_bandwidth_uses_subchannel(self):
        t = TopologySpec(name="x")
        t.add_link("a", "b", LinkParams(latency=0, bandwidth=100e9, channels=4))
        r = t.route("a", "b")
        assert r.bandwidth == 100e9
        assert r.message_bandwidth == pytest.approx(25e9)
        assert r.G == pytest.approx(1 / 25e9)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(KeyError):
            _topo().route("a", "zzz")

    def test_disconnected_raises(self):
        t = _topo()
        t.add_link("x", "y", LinkParams(latency=0, bandwidth=1e9))
        with pytest.raises(KeyError, match="no path"):
            t.route("a", "x")

    def test_route_cache_consistency(self):
        t = _topo()
        r1 = t.route("a", "c")
        r2 = t.route("a", "c")
        assert r1 is r2  # cached
        t.add_link("a", "d", LinkParams(latency=0, bandwidth=1e9))
        r3 = t.route("a", "c")
        assert r3.latency == r1.latency  # cache invalidated but same answer

    def test_injection_registration(self):
        t = _topo()
        t.set_injection("a", LinkParams(latency=0.0, bandwidth=200e9))
        assert "a" in t.injection
