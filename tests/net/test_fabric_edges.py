"""Fabric.transfer edge cases: zero-byte messages, self-routes, and
single-link topologies — with and without an active fault plan."""

import pytest

from repro.faults import FaultPlan
from repro.faults.inject import FaultInjector
from repro.net import Fabric, LinkParams, TopologySpec


def _single_link(sim, plan=None):
    topo = TopologySpec(name="one")
    topo.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=10e9))
    inj = FaultInjector(plan) if plan is not None else None
    return Fabric(sim, topo, faults=inj)


class TestZeroByte:
    def test_pays_latency_only(self, sim):
        d = _single_link(sim).transfer("a", "b", 0)
        assert d.arrival == pytest.approx(1e-6)

    def test_can_still_be_lost(self, sim):
        """A zero-byte control message has a header to drop: under heavy
        loss it retransmits like any other transfer."""
        f = _single_link(sim, FaultPlan.uniform(loss=0.5, seed=0, max_retries=20))
        deliveries = [f.transfer("a", "b", 0) for _ in range(20)]
        assert any(d.attempts > 1 for d in deliveries)
        assert all(d.arrival >= 1e-6 for d in deliveries)

    def test_jitter_applies(self, sim):
        f = _single_link(sim, FaultPlan.uniform(jitter=4e-6, seed=1))
        arrivals = [f.transfer("a", "b", 0).arrival for _ in range(20)]
        assert all(1e-6 <= a < 5e-6 for a in arrivals)
        assert len(set(arrivals)) > 1  # jitter actually varies per message


class TestSelfRoute:
    def test_loopback_below_wire_latency(self, sim):
        d = _single_link(sim).transfer("a", "a", 1000)
        assert d.arrival < 1e-6

    def test_loopback_ignores_fault_plan(self, sim):
        clean = _single_link(sim).transfer("a", "a", 1000)
        f = _single_link(sim, FaultPlan.uniform(loss=0.9, jitter=1e-3, seed=0))
        faulty = f.transfer("a", "a", 1000)
        assert faulty.arrival == clean.arrival
        assert faulty.attempts == 1 and not faulty.dropped

    def test_zero_byte_loopback(self, sim):
        d = _single_link(sim).transfer("a", "a", 0)
        assert d.arrival >= 0.0
        assert d.route.nhops == 0


class TestSingleLink:
    def test_route_has_one_hop(self, sim):
        d = _single_link(sim).transfer("a", "b", 10000)
        assert d.route.nhops == 1
        assert d.arrival == pytest.approx(2e-6)

    def test_unknown_endpoint_rejected(self, sim):
        with pytest.raises(KeyError):
            _single_link(sim).transfer("a", "z", 8)

    def test_payload_round_trip(self, sim):
        f = _single_link(sim)
        d = f.transfer("a", "b", 8, payload={"k": 1})
        assert sim.run(until=d.event) == {"k": 1}

    def test_faulty_payload_survives_retransmit(self, sim):
        f = _single_link(sim, FaultPlan.uniform(loss=0.5, seed=0, max_retries=20))
        payloads = [
            sim.run(until=f.transfer("a", "b", 8, payload=i).event)
            for i in range(10)
        ]
        assert payloads == list(range(10))
