"""ECN marking, bounded backoff, and golden-parity of the disabled path."""

import pytest

from repro.net import (
    CongestionConfig,
    CongestionControl,
    Fabric,
    LinkParams,
    TopologySpec,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator


def _topo(bandwidth=10e9):
    t = TopologySpec(name="cc")
    t.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=bandwidth))
    t.add_link("b", "c", LinkParams(latency=1e-6, bandwidth=bandwidth))
    return t


class TestConfig:
    def test_defaults_valid(self):
        cfg = CongestionConfig()
        assert cfg.ecn_threshold == 2e-6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ecn_threshold": -1.0},
            {"decrease": 0.0},
            {"decrease": 1.0},
            {"recover": -0.1},
            {"min_rate": 0.0},
            {"min_rate": 1.5},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CongestionConfig(**kwargs)


class TestControlLoop:
    def test_mark_halves_rate(self):
        cc = CongestionControl(CongestionConfig())
        assert cc.observe("a", 5e-6) is True
        assert cc.rate("a") == 0.5
        assert cc.marks == 1

    def test_rate_floor(self):
        cc = CongestionControl(CongestionConfig())
        for _ in range(10):
            cc.observe("a", 1.0)
        assert cc.rate("a") == CongestionConfig().min_rate

    def test_unmarked_recovers_additively(self):
        cc = CongestionControl(CongestionConfig())
        cc.observe("a", 1.0)  # -> 0.5
        assert cc.observe("a", 0.0) is False
        assert cc.rate("a") == pytest.approx(0.55)
        for _ in range(20):
            cc.observe("a", 0.0)
        assert cc.rate("a") == 1.0  # capped

    def test_injection_delay_only_when_throttled(self):
        cc = CongestionControl(CongestionConfig())
        assert cc.injection_delay("a", 1e-6) == 0.0
        assert cc.backoffs == 0
        cc.observe("a", 1.0)  # rate 0.5
        assert cc.injection_delay("a", 1e-6) == pytest.approx(1e-6)
        assert cc.backoffs == 1

    def test_sources_independent(self):
        cc = CongestionControl(CongestionConfig())
        cc.observe("a", 1.0)
        assert cc.rate("b") == 1.0

    def test_stats(self):
        cc = CongestionControl(CongestionConfig())
        cc.observe("a", 1.0)
        s = cc.stats()
        assert s["cc.marks"] == 1.0
        assert s["cc.rate.a"] == 0.5


class TestFabricIntegration:
    def test_flood_marks_and_backs_off(self):
        sim = Simulator()
        f = Fabric(sim, _topo(bandwidth=1e9), congestion=CongestionConfig())
        # 64 KiB at 1 GB/s = 65.5 us occupancy: queueing explodes fast.
        for _ in range(8):
            f.transfer("a", "c", 65536)
        assert f.cc.marks > 0
        assert f.cc.backoffs > 0
        assert f.cc.rate("a") < 1.0

    def test_backoff_stretches_schedule(self):
        def total_time(congestion):
            sim = Simulator()
            f = Fabric(sim, _topo(bandwidth=1e9), congestion=congestion)
            last = 0.0
            for _ in range(8):
                last = f.transfer("a", "c", 65536).arrival
            return last

        assert total_time(CongestionConfig()) > total_time(None)

    def test_disabled_path_is_byte_identical(self):
        """congestion=None must not perturb a single float of the schedule."""

        def arrivals(**kwargs):
            sim = Simulator()
            f = Fabric(sim, _topo(), **kwargs)
            return [f.transfer("a", "c", 4096).arrival for _ in range(5)]

        assert arrivals() == arrivals(congestion=None)

    def test_below_threshold_is_also_identical(self):
        """An enabled loop that never marks changes no arrival either."""
        lenient = CongestionConfig(ecn_threshold=1.0)
        sim1, sim2 = Simulator(), Simulator()
        f1 = Fabric(sim1, _topo())
        f2 = Fabric(sim2, _topo(), congestion=lenient)
        a1 = [f1.transfer("a", "c", 4096).arrival for _ in range(5)]
        a2 = [f2.transfer("a", "c", 4096).arrival for _ in range(5)]
        assert a1 == a2
        assert f2.cc.marks == 0

    def test_metrics_counters_and_util_timeline(self):
        reg = MetricsRegistry()
        sim = Simulator()
        f = Fabric(
            sim, _topo(bandwidth=1e9), metrics=reg, congestion=CongestionConfig()
        )
        for _ in range(8):
            f.transfer("a", "c", 65536)
        snap = reg.snapshot()
        assert snap["net.cc.marks"] == f.cc.marks > 0
        assert snap["net.cc.backoffs"] == f.cc.backoffs > 0
        util = snap["net.link.util.a<->b"]
        assert util and all(v > 0 for _t, v in util)

    def test_deterministic_replay(self):
        def run():
            sim = Simulator()
            f = Fabric(
                sim,
                _topo(bandwidth=1e9),
                routing="adaptive",
                congestion=CongestionConfig(),
            )
            return [f.transfer("a", "c", 65536).arrival for _ in range(10)]

        assert run() == run()
