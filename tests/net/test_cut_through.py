"""Cut-through forwarding edge cases on long (>3-hop) routes.

The wormhole model's contract: the head reserves each hop's port *in
order* (upstream before downstream), per-hop latencies accumulate on the
head, and the tail arrives one bottleneck-``G`` serialisation time behind
it.  These tests pin the reservation ordering and tail-arrival timing on a
4-hop chain, where a mistake in either is invisible to the 1–2 hop tests.
"""

import pytest

from repro.net import Fabric, LinkParams, TopologySpec
from repro.sim import Simulator

US = 1e-6


def _chain(sim, *, slow_last=False):
    """a - b - c - d - e: four hops, 1 us latency and 10 GB/s each
    (so 10 000 B serialises in exactly 1 us per hop)."""
    t = TopologySpec(name="chain")
    bw = 10e9
    t.add_link("a", "b", LinkParams(latency=1 * US, bandwidth=bw))
    t.add_link("b", "c", LinkParams(latency=1 * US, bandwidth=bw))
    t.add_link("c", "d", LinkParams(latency=1 * US, bandwidth=bw))
    t.add_link(
        "d", "e", LinkParams(latency=1 * US, bandwidth=bw / 2 if slow_last else bw)
    )
    # A side road into the middle of the chain for cross traffic.
    t.add_link("x", "c", LinkParams(latency=1 * US, bandwidth=bw))
    return Fabric(sim, t)


class TestHeadAndTail:
    def test_zero_byte_head_pays_every_latency(self, sim):
        d = _chain(sim).transfer("a", "e", 0)
        assert d.arrival == pytest.approx(4 * US)

    def test_tail_trails_head_by_one_bottleneck_time(self, sim):
        d = _chain(sim).transfer("a", "e", 10000)
        # Head at 4 us; tail streams behind it once, not once per hop.
        assert d.arrival == pytest.approx(5 * US)

    def test_bottleneck_on_final_hop_sets_tail_rate(self, sim):
        d = _chain(sim, slow_last=True).transfer("a", "e", 10000)
        # 5 GB/s bottleneck: the tail takes 2 us behind the 4 us head.
        assert d.arrival == pytest.approx(6 * US)
        assert d.route.G == pytest.approx(1 / 5e9)


class TestReservationOrdering:
    def test_back_to_back_pipelines_not_serialises(self, sim):
        """Successive messages overlap across hops: each arrival is one
        first-hop occupancy behind the previous, not a full route time."""
        f = _chain(sim)
        arrivals = [f.transfer("a", "e", 10000).arrival for _ in range(4)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert arrivals[0] == pytest.approx(5 * US)
        assert all(g == pytest.approx(1 * US) for g in gaps)

    def test_fifo_no_overtaking(self, sim):
        """A small message issued after a large one queues behind it at
        every hop and cannot arrive first."""
        f = _chain(sim)
        big = f.transfer("a", "e", 100000)  # 10 us per-hop occupancy
        small = f.transfer("a", "e", 100)
        assert small.start >= big.start
        assert small.arrival > big.arrival

    def test_downstream_cross_traffic_delays_the_head(self, sim):
        """Contention on an interior hop (c->d) is visible end to end even
        though the first hops are idle."""
        f = _chain(sim)
        f.transfer("x", "d", 100000)  # occupies c->d for 10 us from t=1us
        d = f.transfer("a", "e", 10000)
        # Head reaches c at 2 us but c->d is busy until 11 us: start there,
        # then 1 us to d, 1 us to e, plus the 1 us tail.
        assert d.arrival == pytest.approx(14 * US)

    def test_upstream_hops_reserved_before_downstream(self, sim):
        """The delayed head holds its *later* reservations too: cross
        traffic arriving at d->e after our head must queue behind it."""
        f = _chain(sim)
        f.transfer("x", "d", 100000)  # delays our head at c->d until 11 us
        f.transfer("a", "e", 10000)  # head reserves d->e at 12 us
        # The d->e port is booked for our 1 us serialisation from 12 us —
        # proof the delayed head still claimed the downstream hop.
        ch = f.link("d", "e").channel("d", "e")
        assert ch.utilization_until == pytest.approx(13 * US)

    def test_interleaved_flows_share_only_their_common_hop(self, sim):
        """Two flows overlapping only on c->d serialise there and nowhere
        else: the second flow's delay equals the first's occupancy."""
        f = _chain(sim)
        alone = _chain(Simulator()).transfer("x", "e", 10000)
        f.transfer("a", "d", 10000)  # books c->d at [2 us, 3 us)
        shared = f.transfer("x", "e", 10000)
        # x->c is free (start 0), c->d busy until 3 us (vs 1 us alone).
        assert shared.arrival - alone.arrival == pytest.approx(2 * US)


class TestLongRouteAccounting:
    def test_every_hop_counts_the_message(self, sim):
        f = _chain(sim)
        f.transfer("a", "e", 4096)
        stats = f.link_stats()
        for hop in ["a->b", "b->c", "c->d", "d->e"]:
            assert stats[f"{hop}.messages"] == 1
            assert stats[f"{hop}.bytes"] == 4096

    def test_route_metadata_matches_path(self, sim):
        d = _chain(sim).transfer("a", "e", 4096)
        assert d.route.nhops == 4
        assert d.route.latency == pytest.approx(4 * US)
