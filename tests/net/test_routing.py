"""Routing policies: minimal byte-identity, adaptive detours, determinism."""

import pytest

from repro.net import (
    AdaptiveRouting,
    Fabric,
    MinimalRouting,
    dragonfly,
    get_routing,
)
from repro.sim import Simulator


def _df_fabric(sim, routing=None):
    """A router-only dragonfly fabric (endpoints are the routers)."""
    return Fabric(sim, dragonfly(4, 2, 1).topology, routing=routing)


class TestResolver:
    def test_none_passthrough(self):
        assert get_routing(None) is None

    def test_names_resolve(self):
        assert isinstance(get_routing("minimal"), MinimalRouting)
        assert isinstance(get_routing("adaptive"), AdaptiveRouting)

    def test_instance_passthrough(self):
        policy = AdaptiveRouting(candidates=3)
        assert get_routing(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            get_routing("ecmp")

    def test_candidate_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRouting(candidates=0)


class TestMinimal:
    def test_returns_cached_route_object(self, sim):
        """Byte-identity with the no-policy default: the exact cached
        Route object, not an equal copy."""
        f = _df_fabric(sim, routing="minimal")
        route = f.routing.route(f, "g0r0", "g1r1", 1024, 0.0)
        assert route is f.topology.route("g0r0", "g1r1")

    def test_fabric_arrivals_match_default(self):
        f_default = _df_fabric(Simulator())
        f_minimal = _df_fabric(Simulator(), routing="minimal")
        for src, dst in [("g0r0", "g1r1"), ("g0r0", "g1r1"), ("g2r0", "g0r1")]:
            a = f_default.transfer(src, dst, 65536).arrival
            b = f_minimal.transfer(src, dst, 65536).arrival
            assert a == b  # exact, not approx


class TestAdaptive:
    def test_idle_fabric_takes_minimal_path(self, sim):
        f = _df_fabric(sim, routing="adaptive")
        minimal = f.topology.route("g0r0", "g1r1")
        chosen = f.routing.route(f, "g0r0", "g1r1", 1024, 0.0)
        assert chosen.hops == minimal.hops

    def test_loopback_short_circuits(self, sim):
        f = _df_fabric(sim, routing="adaptive")
        assert f.routing.route(f, "g0r0", "g0r0", 64, 0.0).nhops == 0

    def test_detours_around_queued_links(self, sim):
        """Queue every link of the minimal path; UGAL must pick a Valiant
        detour whose hops differ."""
        f = _df_fabric(sim, routing=AdaptiveRouting(candidates=4))
        minimal = f.topology.route("g0r0", "g1r0")
        for u, v in minimal.hops:
            ch = f.link(u, v).channel(u, v)
            for _ in range(50):
                ch.reserve(262144, 0.0)  # ~10.5 us occupancy each
        chosen = f.routing.route(f, "g0r0", "g1r0", 4096, 0.0)
        assert chosen.hops != minimal.hops
        assert chosen.nhops > minimal.nhops  # a real detour, freshly costed
        assert chosen.latency > minimal.latency

    def test_detour_reports_per_path_parameters(self, sim):
        f = _df_fabric(sim, routing=AdaptiveRouting(candidates=4))
        minimal = f.topology.route("g0r0", "g1r0")
        for u, v in minimal.hops:
            ch = f.link(u, v).channel(u, v)
            for _ in range(50):
                ch.reserve(262144, 0.0)
        chosen = f.routing.route(f, "g0r0", "g1r0", 4096, 0.0)
        # The fresh costing must equal route_via of the same hop sequence.
        path = [chosen.src] + [v for _u, v in chosen.hops]
        fresh = f.topology.route_via(path)
        assert chosen.latency == fresh.latency
        assert chosen.G == fresh.G

    def test_intermediates_are_routers_only(self, sim):
        from repro.machines import get_machine

        m = get_machine("perlmutter-cpu-x4@dragonfly(2,2,1)")
        f = Fabric(sim, m.topology, routing="adaptive")
        mids = f.routing._intermediates(f)
        assert mids  # the generated routers qualify
        assert all("." not in mid for mid in mids)  # never node internals

    def test_deterministic_replay(self):
        """Same transfer sequence, fresh fabrics: bit-identical schedules."""

        def run():
            f = _df_fabric(Simulator(), routing="adaptive")
            pairs = [("g0r0", "g1r0"), ("g0r1", "g2r0"), ("g0r0", "g1r0")]
            return [
                f.transfer(src, dst, 131072).arrival
                for _ in range(10)
                for src, dst in pairs
            ]

        assert run() == run()

    def test_decisions_vary_candidates(self, sim):
        """Successive decisions draw different intermediates (the decision
        counter feeds the hash)."""
        f = _df_fabric(sim, routing="adaptive")
        pool = f.routing._intermediates(f)
        first = f.routing._pick("g0r0", "g1r0", pool, 2)
        f.routing._decisions += 1
        second = f.routing._pick("g0r0", "g1r0", pool, 2)
        assert first != second


class TestAdaptiveWithDownWindows:
    """UGAL must treat a link mid-outage as expensive, not free."""

    def _down_fabric(self, routing, windows, pair=("g0r0", "g1r0")):
        from repro.faults import FaultPlan, LinkFaults
        from repro.faults.inject import FaultInjector

        plan = FaultPlan(links={pair: LinkFaults(down=windows)})
        return Fabric(
            Simulator(),
            dragonfly(4, 2, 1).topology,
            faults=FaultInjector(plan),
            routing=routing,
        )

    def test_detours_around_link_in_outage_window(self):
        f = self._down_fabric(AdaptiveRouting(candidates=4), ((0.0, 50e-6),))
        minimal = f.topology.route("g0r0", "g1r0")
        chosen = f.routing.route(f, "g0r0", "g1r0", 4096, 1e-6)
        # The direct link is down until 50 us: any live detour wins.
        assert chosen.hops != minimal.hops
        assert all(
            frozenset(hop) != frozenset(("g0r0", "g1r0")) for hop in chosen.hops
        )

    def test_minimal_path_returns_after_window(self):
        f = self._down_fabric(AdaptiveRouting(candidates=4), ((0.0, 50e-6),))
        minimal = f.topology.route("g0r0", "g1r0")
        chosen = f.routing.route(f, "g0r0", "g1r0", 4096, 60e-6)
        assert chosen.hops == minimal.hops

    def test_score_waits_out_downtime(self):
        f = self._down_fabric(AdaptiveRouting(candidates=4), ((0.0, 50e-6),))
        route = f.topology.route("g0r0", "g1r0")
        inside = f.routing._score(f, route, 4096, 1e-6)
        outside = f.routing._score(f, route, 4096, 60e-6)
        assert inside >= 50e-6  # the head cannot leave before the window ends
        assert outside - 60e-6 < inside - 1e-6  # less residual cost after it

    def test_deterministic_replay_with_down_windows(self):
        def run():
            f = self._down_fabric(
                AdaptiveRouting(candidates=4), ((0.0, 40e-6), (80e-6, 120e-6))
            )
            pairs = [("g0r0", "g1r0"), ("g0r1", "g2r0"), ("g0r0", "g1r0")]
            return [
                f.transfer(src, dst, 131072).arrival
                for _ in range(8)
                for src, dst in pairs
            ]

        assert run() == run()
