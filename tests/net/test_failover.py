"""FailoverRouting: detection, re-routing, partitions, clean parity."""

import math

import pytest

from repro.faults import FaultError, FaultPlan, RouterFaults
from repro.faults.inject import FaultInjector
from repro.net import (
    Fabric,
    FailoverRouting,
    dragonfly,
    get_routing,
)
from repro.sim import Simulator

INF = math.inf


def _fabric(routing=None, plan=None):
    sim = Simulator()
    faults = FaultInjector(plan) if plan is not None else None
    return Fabric(sim, dragonfly(4, 2, 2).topology, faults=faults, routing=routing)


def _dead_router_plan(name="g1r0", start=0.0):
    return FaultPlan(hard=(RouterFaults(name, windows=((start, INF),)),))


class TestConstruction:
    def test_resolves_by_name(self):
        assert isinstance(get_routing("failover"), FailoverRouting)

    def test_reroutes_flag(self):
        assert FailoverRouting.reroutes is True

    def test_validation(self):
        with pytest.raises(ValueError, match="suspect_after"):
            FailoverRouting(suspect_after=0)
        with pytest.raises(ValueError, match="probe_interval"):
            FailoverRouting(probe_interval=0.0)


class TestCleanParity:
    def test_returns_cached_route_object(self):
        f = _fabric(routing="failover")
        route = f.routing.route(f, "g0r0", "g1r1", 1024, 0.0)
        assert route is f.topology.route("g0r0", "g1r1")

    def test_arrivals_bit_identical_to_default(self):
        f_default = _fabric()
        f_failover = _fabric(routing="failover")
        for src, dst in [("g0r0", "g1r1"), ("g2r0", "g0r1"), ("g0r0", "g1r1")]:
            a = f_default.transfer(src, dst, 65536).arrival
            b = f_failover.transfer(src, dst, 65536).arrival
            assert a == b  # exact, not approx

    def test_dormant_hard_plan_stays_bit_identical(self):
        """A plan whose hard fault never fires must not perturb timing,
        even though transfers take the faulty (retry-loop) path."""
        plan = _dead_router_plan(start=1e9)
        f_clean = _fabric()
        f_dormant = _fabric(routing="failover", plan=plan)
        a = f_clean.transfer("g0r1", "g1r1", 65536).arrival
        b = f_dormant.transfer("g0r1", "g1r1", 65536).arrival
        assert a == b


class TestRouterFailure:
    def test_minimal_routing_dies(self):
        f = _fabric(plan=_dead_router_plan())
        with pytest.raises(FaultError, match="lost on"):
            f.transfer("g0r1", "g1r1", 65536)

    def test_failover_delivers_around_dead_router(self):
        f = _fabric(routing="failover", plan=_dead_router_plan())
        d = f.transfer("g0r1", "g1r1", 65536)
        assert d.arrival > 0
        stats = f.routing.stats()
        assert stats["detections"] >= 1
        assert stats["failovers"] >= 1
        assert stats["partitions"] == 0

    def test_detour_avoids_dead_links(self):
        f = _fabric(routing="failover", plan=_dead_router_plan())
        f.transfer("g0r1", "g1r1", 65536)
        route = f.routing.route(f, "g0r1", "g1r1", 65536, f.sim.now)
        assert all("g1r0" not in hop for hop in route.hops)

    def test_unaffected_pairs_keep_minimal_path(self):
        f = _fabric(routing="failover", plan=_dead_router_plan())
        f.transfer("g0r1", "g1r1", 65536)  # marks g1r0's links dead
        route = f.routing.route(f, "g2r0", "g2r1", 1024, f.sim.now)
        assert [tuple(h) for h in route.hops] == [
            tuple(h) for h in f.topology.route("g2r0", "g2r1").hops
        ]

    def test_transfer_to_dead_router_partitions(self):
        f = _fabric(routing="failover", plan=_dead_router_plan())
        with pytest.raises(FaultError, match="partition|no failover path"):
            f.transfer("g0r0", "g1r0", 65536)
        assert f.routing.stats()["partitions"] >= 1


class TestDetector:
    def test_suspect_threshold(self):
        f = _fabric(routing=FailoverRouting(suspect_after=2))
        key = frozenset(("g0r0", "g1r0"))
        f.routing.on_drop(f, key, 1e-6)
        assert key not in f.routing.dead
        f.routing.on_drop(f, key, 2e-6)
        assert f.routing.dead[key] == 2e-6
        assert f.routing.detections == 1

    def test_probe_revives_after_interval(self):
        f = _fabric(routing=FailoverRouting(suspect_after=1, probe_interval=10e-6))
        key = frozenset(("g0r0", "g1r0"))
        f.routing.on_drop(f, key, 0.0)
        assert key in f.routing.dead
        # Next decision before the interval keeps it dead...
        f.routing.route(f, "g0r0", "g1r1", 1024, 5e-6)
        assert key in f.routing.dead
        # ...and after the interval the link is probed back in.
        route = f.routing.route(f, "g0r0", "g1r1", 1024, 20e-6)
        assert key not in f.routing.dead
        assert f.routing.probes == 1
        assert route is f.topology.route("g0r0", "g1r1")

    def test_metrics_snapshot_keys(self):
        f = _fabric(routing="failover", plan=_dead_router_plan())
        f.transfer("g0r1", "g1r1", 65536)
        snap = f.routing.metrics_snapshot()
        assert snap["routing.failover.detections"] >= 1
        assert snap["routing.failover.failovers"] >= 1


class TestDeterminism:
    def test_bit_identical_replay(self):
        def run():
            f = _fabric(routing="failover", plan=_dead_router_plan())
            arrivals = [
                f.transfer(src, dst, 65536).arrival
                for src, dst in [
                    ("g0r1", "g1r1"),
                    ("g2r0", "g3r0"),
                    ("g0r1", "g1r1"),
                ]
            ]
            return arrivals, f.routing.stats()

        assert run() == run()
