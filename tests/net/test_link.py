"""Link channels: serialisation, gaps, sub-channel striping, atomics."""

import pytest

from repro.net import LinkParams
from repro.net.link import Channel, Link


class TestChannelReservation:
    def test_single_message_timing(self, sim):
        ch = Channel(sim, LinkParams(latency=1e-6, bandwidth=1e9))
        start, head_out = ch.reserve(1000, earliest=0.0)
        assert start == 0.0
        assert head_out == pytest.approx(1e-6)

    def test_back_to_back_spaced_by_transmission(self, sim):
        ch = Channel(sim, LinkParams(latency=0.0, bandwidth=1e9))
        ch.reserve(1000, 0.0)  # occupies 1 us
        start2, _ = ch.reserve(1000, 0.0)
        assert start2 == pytest.approx(1e-6)

    def test_gap_dominates_small_messages(self, sim):
        ch = Channel(sim, LinkParams(latency=0.0, bandwidth=1e9, gap=5e-6))
        ch.reserve(8, 0.0)
        start2, _ = ch.reserve(8, 0.0)
        assert start2 == pytest.approx(5e-6)

    def test_atomic_gap_used_for_atomics(self, sim):
        ch = Channel(
            sim, LinkParams(latency=0.0, bandwidth=1e9, gap=1e-7, atomic_gap=1e-6)
        )
        ch.reserve(16, 0.0, atomic=True)
        start2, _ = ch.reserve(16, 0.0, atomic=True)
        assert start2 == pytest.approx(1e-6)
        # Non-atomic traffic still uses the small gap.
        start3, _ = ch.reserve(16, 0.0)
        assert start3 == pytest.approx(2e-6)

    def test_multi_channel_parallel_messages(self, sim):
        ch = Channel(sim, LinkParams(latency=0.0, bandwidth=4e9, channels=4))
        starts = [ch.reserve(1000, 0.0)[0] for _ in range(4)]
        assert starts == [0.0, 0.0, 0.0, 0.0]
        # The fifth message queues behind the first sub-channel.
        start5, _ = ch.reserve(1000, 0.0)
        assert start5 == pytest.approx(1e-6)  # 1000 B / 1 GB/s sub-channel

    def test_counters(self, sim):
        ch = Channel(sim, LinkParams(latency=0.0, bandwidth=1e9))
        ch.reserve(100, 0.0)
        ch.reserve(200, 0.0)
        assert ch.bytes_carried == 300
        assert ch.messages_carried == 2

    def test_negative_bytes_rejected(self, sim):
        ch = Channel(sim, LinkParams(latency=0.0, bandwidth=1e9))
        with pytest.raises(ValueError):
            ch.reserve(-1, 0.0)


class TestLink:
    def test_directions_are_independent(self, sim):
        link = Link(sim, "a", "b", LinkParams(latency=0.0, bandwidth=1e9))
        link.channel("a", "b").reserve(1000, 0.0)
        # Reverse direction is still free at t=0.
        start, _ = link.channel("b", "a").reserve(1000, 0.0)
        assert start == 0.0

    def test_unknown_direction_rejected(self, sim):
        link = Link(sim, "a", "b", LinkParams(latency=0.0, bandwidth=1e9))
        with pytest.raises(KeyError):
            link.channel("a", "c")

    def test_self_link_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "a", "a", LinkParams(latency=0.0, bandwidth=1e9))

    def test_stats_per_direction(self, sim):
        link = Link(sim, "a", "b", LinkParams(latency=0.0, bandwidth=1e9))
        link.channel("a", "b").reserve(100, 0.0)
        stats = link.stats()
        assert stats["a->b.bytes"] == 100
        assert stats["b->a.bytes"] == 0
