"""LogGP parameter objects and analytic timing identities."""

import pytest

from repro.net import LinkParams, LogGPParams


class TestLogGPParams:
    def test_peak_bandwidth_is_inverse_G(self):
        p = LogGPParams(L=1e-6, o=1e-7, g=1e-7, G=1e-9)
        assert p.peak_bandwidth == pytest.approx(1e9)

    def test_from_bandwidth(self):
        p = LogGPParams.from_bandwidth(
            latency=1e-6, overhead=1e-7, gap=1e-7, bandwidth=32e9
        )
        assert p.G == pytest.approx(1 / 32e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogGPParams(L=-1, o=0, g=0, G=1e-9)
        with pytest.raises(ValueError):
            LogGPParams(L=0, o=0, g=0, G=0)
        with pytest.raises(ValueError):
            LogGPParams(L=0, o=0, g=0, G=1e-9, o_sync=-1)

    def test_with_overhead_and_scaling(self):
        p = LogGPParams(L=1e-6, o=1e-7, g=1e-7, G=1e-9)
        assert p.with_overhead(5e-7).o == 5e-7
        assert p.scaled_bandwidth(2.0).peak_bandwidth == pytest.approx(2e9)

    def test_one_message_time(self):
        p = LogGPParams(L=1e-6, o=2e-7, g=0.0, G=1e-9, o_sync=0.0)
        # o + L + B*G
        assert p.time_one_message(1000) == pytest.approx(2e-7 + 1e-6 + 1e-6)

    def test_pipelined_reduces_to_single_at_n1(self):
        p = LogGPParams(L=1e-6, o=2e-7, g=1e-7, G=1e-9, o_sync=3e-7)
        t1 = p.time_pipelined(100, 1)
        assert t1 == pytest.approx(2e-7 + 100e-9 + 1e-6 + 3e-7)

    def test_pipelined_marginal_cost_is_max_of_o_g_BG(self):
        p = LogGPParams(L=1e-6, o=2e-7, g=5e-7, G=1e-9)
        t10 = p.time_pipelined(100, 10)
        t11 = p.time_pipelined(100, 11)
        # Small message: the gap dominates o and B*G; they overlap, so the
        # marginal cost is max(o, g, B*G) = g.
        assert t11 - t10 == pytest.approx(5e-7)

    def test_gap_cannot_be_overlapped(self):
        """The paper's LogGP point: g bounds message rate regardless of n."""
        p = LogGPParams(L=1e-6, o=1e-9, g=1e-6, G=1e-12)
        bw_inf = p.bandwidth_pipelined(8, 1_000_000)
        assert bw_inf <= 8 / p.g * 1.01

    def test_bandwidth_monotone_in_n(self):
        p = LogGPParams(L=5e-6, o=3e-7, g=2e-7, G=1e-9, o_sync=2e-6)
        bws = [p.bandwidth_pipelined(1024, n) for n in (1, 4, 16, 64, 256)]
        assert all(b2 > b1 for b1, b2 in zip(bws, bws[1:]))

    def test_invalid_pipelined_args(self):
        p = LogGPParams(L=0, o=0, g=0, G=1e-9)
        with pytest.raises(ValueError):
            p.time_pipelined(100, 0)
        with pytest.raises(ValueError):
            p.bandwidth_pipelined(0, 1)


class TestLinkParams:
    def test_single_channel_G(self):
        lp = LinkParams(latency=1e-6, bandwidth=100e9)
        assert lp.G == pytest.approx(1e-11)
        assert lp.channel_bandwidth == 100e9

    def test_multi_channel_single_message_rate(self):
        lp = LinkParams(latency=1e-6, bandwidth=100e9, channels=4)
        # A single message only sees one sub-channel: 25 GB/s.
        assert lp.channel_bandwidth == pytest.approx(25e9)
        assert lp.G == pytest.approx(1 / 25e9)

    def test_atomic_gap_defaults_to_gap(self):
        lp = LinkParams(latency=0, bandwidth=1e9, gap=3e-7)
        assert lp.effective_atomic_gap == 3e-7
        lp2 = LinkParams(latency=0, bandwidth=1e9, gap=3e-7, atomic_gap=1e-6)
        assert lp2.effective_atomic_gap == 1e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams(latency=0, bandwidth=0)
        with pytest.raises(ValueError):
            LinkParams(latency=0, bandwidth=1e9, channels=0)
        with pytest.raises(ValueError):
            LinkParams(latency=0, bandwidth=1e9, atomic_gap=-1)
