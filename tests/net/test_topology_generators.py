"""Parametric fabric generators: dragonfly, fat tree, torus, cluster grammar."""

import pytest

from repro.machines import get_machine, machine_fingerprint
from repro.net import LinkParams, TopologySpec, dragonfly, fat_tree, torus


class TestDragonfly:
    def test_shape(self):
        bp = dragonfly(4, 2, 2)
        assert bp.kind == "dragonfly"
        assert len(bp.topology.endpoints) == 8  # 4 groups x 2 routers
        # 1 local link per group (C(2,2)) + one global per group pair.
        locals_ = [p for p in bp.topology.links.values() if p.name == "local"]
        globals_ = [p for p in bp.topology.links.values() if p.name == "global"]
        assert len(locals_) == 4
        assert len(globals_) == 6
        assert bp.max_nodes == 16  # 8 routers x 2 node ports

    def test_groups_partition_routers(self):
        bp = dragonfly(3, 2, 1)
        assert sorted(set(bp.groups.values())) == [0, 1, 2]
        assert bp.groups["g0r0"] == 0 and bp.groups["g2r1"] == 2

    def test_intergroup_route_crosses_one_global_link(self):
        bp = dragonfly(4, 2, 1)
        route = bp.topology.route("g0r0", "g1r1")
        crossed = [
            bp.topology.link_params(u, v).name == "global" for u, v in route.hops
        ]
        assert crossed.count(True) == 1

    def test_global_ports_spread_round_robin(self):
        bp = dragonfly(4, 2, 1)
        # With 3 global ports per group and 2 routers, both routers of every
        # group must host at least one global link.
        hosts = set()
        for key, p in bp.topology.links.items():
            if p.name == "global":
                hosts.update(key)
        assert hosts == set(bp.topology.endpoints)

    def test_validation(self):
        with pytest.raises(ValueError):
            dragonfly(1, 2, 1)
        with pytest.raises(ValueError):
            dragonfly(2, 0, 1)
        with pytest.raises(ValueError):
            dragonfly(2, 1, 0)


class TestFatTree:
    def test_shape(self):
        bp = fat_tree(4)
        # 4 pod edge routers + 2 cores; every pod connects to every core.
        assert len(bp.topology.endpoints) == 6
        assert len(bp.topology.links) == 8
        assert bp.max_nodes == 16  # k ports per pod

    def test_path_diversity(self):
        bp = fat_tree(4)
        # Two disjoint pod->pod paths, one through each core.
        r1 = bp.topology.shortest_path("pod0", "pod1")
        assert len(r1) == 3  # pod - core - pod
        assert bp.topology.diameter_hops() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            fat_tree(3)  # odd
        with pytest.raises(ValueError):
            fat_tree(0)


class TestTorus:
    def test_2d_shape(self):
        bp = torus((3, 3))
        assert len(bp.topology.endpoints) == 9
        # Each axis contributes one ring of 3 per row/column: 2 * 9 links.
        assert len(bp.topology.links) == 18
        assert bp.max_nodes == 9

    def test_length2_rings_collapse(self):
        bp = torus((2, 2))
        # +1 and -1 wrap to the same neighbour: 4 links, not 8.
        assert len(bp.topology.links) == 4

    def test_wraparound_shortens_routes(self):
        bp = torus((4,))
        # 3 -> 0 wraps in one hop instead of walking the ring.
        assert bp.topology.route("t3", "t0").nhops == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            torus(())
        with pytest.raises(ValueError):
            torus((1, 3))


class TestBlueprintSummaries:
    def test_describe_mentions_parameters(self):
        text = dragonfly(2, 2, 1).describe()
        assert "dragonfly" in text and "groups=2" in text

    def test_diameter_and_bisection(self):
        topo = dragonfly(4, 2, 1).topology
        assert topo.diameter_hops() >= 2
        assert topo.bisection_bandwidth() > 0


class TestRouteVia:
    """Satellite: bottleneck fields come from the hops actually taken."""

    def _topo(self):
        t = TopologySpec(name="tri")
        t.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=10e9))
        t.add_link("b", "c", LinkParams(latency=1e-6, bandwidth=10e9))
        t.add_link("a", "c", LinkParams(latency=5e-6, bandwidth=2e9, gap=1e-7))
        return t

    def test_detour_reports_its_own_bottleneck(self):
        t = self._topo()
        minimal = t.route("a", "c")  # a-b-c: 2 us, 10 GB/s
        detour = t.route_via(["a", "c"])  # direct slow link
        assert minimal.hops == (("a", "b"), ("b", "c"))
        assert minimal.latency == pytest.approx(2e-6)
        assert detour.latency == pytest.approx(5e-6)
        assert detour.bandwidth == pytest.approx(2e9)
        assert detour.gap == pytest.approx(1e-7)
        assert detour.G > minimal.G

    def test_route_via_rejects_non_links(self):
        t = self._topo()
        with pytest.raises(KeyError):
            t.route_via(["a", "b", "nope"])
        with pytest.raises(ValueError):
            t.route_via(["a"])

    def test_cached_minimal_matches_fresh_costing(self):
        t = self._topo()
        cached = t.route("a", "c")
        fresh = t.route_via(["a", "b", "c"])
        assert cached.hops == fresh.hops
        assert cached.latency == fresh.latency
        assert cached.G == fresh.G


class TestClusterGrammar:
    def test_generated_cluster_machine(self):
        m = get_machine("perlmutter-cpu-x4@dragonfly(2,2,1)")
        assert "dragonfly" in m.topology.name
        # Node internals exist behind each router.
        assert m.topology.has_endpoint("n0.cpu0")
        assert m.topology.has_endpoint("g0r0")

    def test_plain_cluster_still_works(self):
        m = get_machine("perlmutter-cpu-x2")
        assert m.topology.has_endpoint("n1.cpu0")

    def test_too_many_nodes_rejected(self):
        with pytest.raises(ValueError):
            get_machine("perlmutter-cpu-x9@dragonfly(2,2,1)")  # 8 ports

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            get_machine("perlmutter-cpu-x2@dragonfly(2)")

    def test_unknown_name_mentions_cluster_grammar(self):
        with pytest.raises(KeyError, match="dragonfly"):
            get_machine("not-a-machine")

    def test_fingerprint_distinguishes_fabrics(self):
        a = machine_fingerprint("perlmutter-cpu-x4@dragonfly(2,2,1)")
        b = machine_fingerprint("perlmutter-cpu-x4@fattree(4)")
        assert a != b
