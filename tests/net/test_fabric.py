"""Fabric transfers: timing, contention, injection ports, multi-hop."""

import pytest

from repro.net import Fabric, LinkParams, TopologySpec
from repro.sim import Simulator, Tracer


def _fabric(sim, *, channels=1, injection_bw=None, gap=0.0):
    topo = TopologySpec(name="t")
    topo.add_link(
        "a", "b", LinkParams(latency=1e-6, bandwidth=10e9, channels=channels, gap=gap)
    )
    topo.add_link("b", "c", LinkParams(latency=2e-6, bandwidth=5e9))
    if injection_bw:
        topo.set_injection("a", LinkParams(latency=0.0, bandwidth=injection_bw))
    return Fabric(sim, topo)


class TestSingleHop:
    def test_arrival_time(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "b", 10000)  # 1 us wire + 1 us bytes
        sim.run(until=d.event)
        assert sim.now == pytest.approx(2e-6)

    def test_payload_delivered(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "b", 8, payload={"k": 1})
        got = sim.run(until=d.event)
        assert got == {"k": 1}

    def test_zero_bytes_pays_latency(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "b", 0)
        sim.run(until=d.event)
        assert sim.now == pytest.approx(1e-6)

    def test_contention_serialises(self, sim):
        f = _fabric(sim)
        d1 = f.transfer("a", "b", 10000)
        d2 = f.transfer("a", "b", 10000)
        assert d1.arrival == pytest.approx(2e-6)
        # Second message starts injecting after the first finishes (1 us),
        # arrives 1 us wire + 1 us bytes later.
        assert d2.arrival == pytest.approx(3e-6)

    def test_reverse_direction_not_contended(self, sim):
        f = _fabric(sim)
        f.transfer("a", "b", 10000)
        d = f.transfer("b", "a", 10000)
        assert d.arrival == pytest.approx(2e-6)

    def test_negative_bytes_rejected(self, sim):
        with pytest.raises(ValueError):
            _fabric(sim).transfer("a", "b", -1)


class TestMultiHop:
    def test_latencies_accumulate(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "c", 0)
        assert d.arrival == pytest.approx(3e-6)

    def test_tail_at_bottleneck_rate(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "c", 10000)
        # head: 1 us + 2 us; tail: 10000 B / 5 GB/s = 2 us behind the head.
        assert d.arrival == pytest.approx(5e-6)


class TestLoopback:
    def test_loopback_uses_local_engine(self, sim):
        f = _fabric(sim)
        d = f.transfer("a", "a", 1000)
        assert d.arrival < 1e-6  # far below wire latency

    def test_loopback_serialises(self, sim):
        f = _fabric(sim)
        d1 = f.transfer("a", "a", 2_000_000)
        d2 = f.transfer("a", "a", 2_000_000)
        assert d2.arrival > d1.arrival


class TestChannelsAndInjection:
    def test_subchannels_carry_concurrent_messages(self, sim):
        f = _fabric(sim, channels=2)
        d1 = f.transfer("a", "b", 10000)
        d2 = f.transfer("a", "b", 10000)
        # Each uses its own 5 GB/s sub-channel: both arrive together.
        assert d1.arrival == pytest.approx(d2.arrival)
        assert d1.arrival == pytest.approx(1e-6 + 2e-6)

    def test_injection_port_staggers(self, sim):
        f = _fabric(sim, channels=4, injection_bw=20e9)
        d1 = f.transfer("a", "b", 10000)
        d2 = f.transfer("a", "b", 10000)
        # Injection at 20 GB/s staggers the second start by 0.5 us.
        assert d2.start - d1.start == pytest.approx(0.5e-6)

    def test_split_speedup_emerges(self, sim):
        """The Fig. 10 mechanism at fabric level: 4 chunks on 4 channels
        beat 1 big message once the volume is large."""
        V = 4_000_000
        f1 = _fabric(Simulator(), channels=4, injection_bw=20e9)
        one = f1.transfer("a", "b", V)
        f2 = _fabric(Simulator(), channels=4, injection_bw=20e9)
        chunks = [f2.transfer("a", "b", V / 4) for _ in range(4)]
        t_split = max(c.arrival for c in chunks)
        assert one.arrival / t_split > 1.5


class TestAccounting:
    def test_totals(self, sim):
        f = _fabric(sim)
        f.transfer("a", "b", 100)
        f.transfer("a", "b", 200)
        assert f.total_messages == 2
        assert f.total_bytes == 300

    def test_link_stats(self, sim):
        f = _fabric(sim)
        f.transfer("a", "b", 128)
        stats = f.link_stats()
        assert stats["a->b.bytes"] == 128

    def test_trace_emission(self):
        sim = Simulator()
        topo = TopologySpec(name="t")
        topo.add_link("a", "b", LinkParams(latency=1e-6, bandwidth=1e9))
        tracer = Tracer()
        f = Fabric(sim, topo, tracer)
        f.transfer("a", "b", 64)
        assert tracer.count("net.transfer") == 1
        rec = tracer.filter(kind="net.transfer")[0]
        assert rec.detail["nbytes"] == 64
