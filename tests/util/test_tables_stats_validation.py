"""Table rendering, statistics helpers, argument validation."""

import pytest

from repro.util import (
    Table,
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
    check_rank,
    format_kv,
    format_table,
    geometric_mean,
    percentile,
    speedup,
    summarize,
)


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[1].startswith("| a ")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789e-7], [0.0], [None]])
        assert "1.235e-07" in out
        assert "| 0" in out
        assert "| -" in out

    def test_table_class_accumulates(self):
        t = Table(["name", "val"], title="T")
        t.add_row("x", 1)
        t.add_row("y", 2)
        assert len(t) == 2
        assert t.column("val") == [1, 2]
        assert "T" in t.render()
        with pytest.raises(ValueError):
            t.add_row("only-one-cell")

    def test_format_kv(self):
        out = format_kv({"alpha": 1, "b": 2.5}, title="K")
        assert "alpha" in out and "2.5" in out


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.p50 == 2.5

    def test_summarize_singleton_has_zero_std(self):
        assert summarize([5.0]).std == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_summarize_nan_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_percentile(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        for bad in (0, -1, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                check_positive("x", bad)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5
        with pytest.raises(ValueError):
            check_in_range("x", 11, 0, 10)
        with pytest.raises(ValueError):
            check_in_range("x", 0, 0, 10, inclusive=False)

    def test_check_power_of_two(self):
        assert check_power_of_two("x", 64) == 64
        for bad in (0, 3, -4, 2.0):
            with pytest.raises(ValueError):
                check_power_of_two("x", bad)

    def test_check_rank(self):
        assert check_rank("r", 3, 4) == 3
        with pytest.raises(ValueError):
            check_rank("r", 4, 4)
        with pytest.raises(TypeError):
            check_rank("r", True, 4)
        with pytest.raises(TypeError):
            check_rank("r", 1.0, 4)
