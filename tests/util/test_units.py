"""Unit conversion and formatting helpers."""

import pytest

from repro.util import (
    GB,
    GBps,
    KiB,
    MiB,
    fmt_bw,
    fmt_bytes,
    fmt_time,
    parse_size,
    us,
)


class TestConstructors:
    def test_decimal_vs_binary(self):
        assert GB(1) == 1e9
        assert KiB(1) == 1024
        assert MiB(2) == 2 * 1024**2

    def test_bandwidth_and_time(self):
        assert GBps(32) == 32e9
        assert us(3.3) == pytest.approx(3.3e-6)


class TestFormatting:
    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (0, "0 B"),
            (64, "64 B"),
            (1024, "1 KiB"),
            (131072, "128 KiB"),
            (1536, "1.50 KiB"),
            (1024**2, "1 MiB"),
            (3 * 1024**3, "3 GiB"),
        ],
    )
    def test_fmt_bytes(self, nbytes, expected):
        assert fmt_bytes(nbytes) == expected

    def test_fmt_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            fmt_bytes(-1)

    @pytest.mark.parametrize(
        "bw,expected",
        [(32e9, "32.00 GB/s"), (250e6, "250.00 MB/s"), (1.5e3, "1.50 KB/s"), (10, "10.00 B/s")],
    )
    def test_fmt_bw(self, bw, expected):
        assert fmt_bw(bw) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (0, "0 s"),
            (3.3e-6, "3.30 us"),
            (2.5e-3, "2.50 ms"),
            (1.5, "1.500 s"),
            (5e-9, "5.00 ns"),
        ],
    )
    def test_fmt_time(self, t, expected):
        assert fmt_time(t) == expected


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64", 64),
            ("1KiB", 1024),
            ("128 KiB", 131072),
            ("4MB", 4_000_000),
            ("2k", 2048),
            ("1.5 kib", 1536),
            ("1g", 1024**3),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "KiB", "12xyz", "abc"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_roundtrip_with_fmt(self):
        assert parse_size(fmt_bytes(131072).replace(" ", "")) == 131072
