"""Victim/bully program factories and exact nearest-rank quantiles."""

import math

import pytest

from repro.cluster import Cluster, attach_victim, sample_quantile
from repro.obs import Obs, observe


class TestSampleQuantile:
    def test_empty_is_nan(self):
        assert math.isnan(sample_quantile([], 0.5))

    def test_nearest_rank_semantics(self):
        xs = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert sample_quantile(xs, 0.0) == 1.0
        assert sample_quantile(xs, 0.5) == 3.0
        assert sample_quantile(xs, 0.8) == 4.0
        assert sample_quantile(xs, 1.0) == 5.0

    def test_p99_on_100_samples_is_the_99th_value(self):
        xs = [float(i) for i in range(1, 101)]
        assert sample_quantile(xs, 0.99) == 99.0
        assert sample_quantile(xs, 0.999) == 100.0

    def test_input_not_mutated(self):
        xs = [3.0, 1.0, 2.0]
        sample_quantile(xs, 0.5)
        assert xs == [3.0, 1.0, 2.0]


class TestVictimFactory:
    def test_collects_one_sample_per_message(self):
        samples: list[float] = []
        c = Cluster("perlmutter-cpu-x2")
        c.submit(
            "v", attach_victim(samples, nmsgs=7), nranks=2, runtime="one_sided"
        )
        c.run()
        assert len(samples) == 7
        assert all(s > 0 for s in samples)

    def test_samples_feed_the_obs_histogram(self):
        samples: list[float] = []
        with observe(Obs()) as obs:
            c = Cluster("perlmutter-cpu-x2")
            c.submit(
                "v", attach_victim(samples, nmsgs=5), nranks=2, runtime="one_sided"
            )
            c.run()
            snap = obs.metrics.snapshot()
        assert snap["cluster.victim.latency_seconds.count"] == 5
        assert snap["cluster.victim.latency_seconds.p99"] == pytest.approx(
            sample_quantile(samples, 0.99), rel=0.5
        )
