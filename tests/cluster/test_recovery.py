"""Job-level recovery: drain, respawn on spares, replay from checkpoint."""

import math

import pytest

from repro.cluster import (
    Cluster,
    PlacementLedger,
    RecoveryConfig,
    RecoveryResult,
    run_recoverable_training,
)
from repro.faults import FaultPlan, NodeFaults, RouterFaults
from repro.machines.registry import get_machine
from repro.net import FailoverRouting
from repro.workloads.ml import RecoverableTrainingSpec

MACHINE = "perlmutter-cpu-x8@dragonfly(4,2,2)"
INF = math.inf
KILL = 660e-6  # mid-step 8 of the default 12-step spec

PACKED = ["n0", "n1", "n2", "n3"]
SCATTERED = ["n0", "n2", "n4", "n6"]


def _cluster(plan=None, routing=None, seed=7):
    return Cluster(MACHINE, faults=plan, routing=routing, seed=seed)


def _router_kill(name="g0r0", at=KILL):
    return FaultPlan(hard=(RouterFaults(name, windows=((at, INF),)),))


def _run(plan=None, *, nodes=None, interval=2, cost=0.0, routing="auto", **kw):
    if routing == "auto":
        routing = FailoverRouting() if plan is not None else None
    cluster = _cluster(plan, routing=routing)
    return run_recoverable_training(
        cluster,
        RecoverableTrainingSpec(),
        nranks=4,
        config=RecoveryConfig(checkpoint_interval=interval, checkpoint_cost=cost),
        nodes=nodes,
        **kw,
    )


class TestConfig:
    def test_defaults_valid(self):
        c = RecoveryConfig()
        assert c.checkpoint_interval >= 1 and c.max_restarts >= 0

    @pytest.mark.parametrize(
        "kw",
        [
            {"checkpoint_interval": 0},
            {"checkpoint_cost": -1e-6},
            {"detect_timeout": -1.0},
            {"restart_cost": -1.0},
            {"straggler_factor": 0.5},
            {"max_restarts": -1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            RecoveryConfig(**kw)


class TestNoFailure:
    def test_completes_all_steps(self):
        r = _run(nodes=PACKED)
        assert r.completed and r.steps_done == 12
        assert r.failures == 0 and r.restarts == 0 and r.replayed_steps == 0
        assert r.nodes == sorted(PACKED)

    def test_checkpoint_count(self):
        # Every k steps, but never after the final step.
        assert _run(nodes=PACKED, interval=2).checkpoints == 5
        assert _run(nodes=PACKED, interval=4).checkpoints == 2

    def test_checkpoint_cost_grows_makespan(self):
        cheap = _run(nodes=PACKED, interval=4, cost=20e-6)
        pricey = _run(nodes=PACKED, interval=1, cost=20e-6)
        assert pricey.makespan > cheap.makespan


class TestRouterFailure:
    def test_packed_blast_radius_two(self):
        r = _run(_router_kill(), nodes=PACKED)
        assert r.completed
        assert r.failures == 1
        assert r.blast_radius == 2  # n0 and n1 both sit behind g0r0
        assert r.restarts == 2
        assert set(r.nodes).isdisjoint({"n0", "n1"})

    def test_scattered_blast_radius_one(self):
        r = _run(_router_kill(), nodes=SCATTERED)
        assert r.completed
        assert r.blast_radius == 1  # only n0 sits behind g0r0
        assert r.restarts == 1

    def test_dead_nodes_are_drained(self):
        cluster = _cluster(_router_kill(), routing=FailoverRouting())
        run_recoverable_training(
            cluster,
            RecoverableTrainingSpec(),
            nranks=4,
            config=RecoveryConfig(checkpoint_interval=2, checkpoint_cost=0.0),
            nodes=PACKED,
        )
        assert cluster.ledger.drained == {"n0", "n1"}
        assert "n0" not in cluster.ledger.spares()

    def test_respawn_avoids_dead_router(self):
        # The spare pool includes nothing behind the dead router.
        r = _run(_router_kill(), nodes=SCATTERED)
        assert r.failures == 1  # the respawn target did not re-fail

    def test_replay_from_last_checkpoint(self):
        # Failure strikes in step 8; last checkpoint at step 6 (k=2):
        # one completed step (7) is lost and re-run.
        r = _run(_router_kill(), nodes=PACKED, interval=2)
        assert r.replayed_steps == 1
        r = _run(_router_kill(), nodes=PACKED, interval=4)
        assert r.replayed_steps == 3

    def test_monotone_time_to_recovery(self):
        rec = [
            _run(_router_kill(), nodes=PACKED, interval=k).recovery_seconds
            for k in (1, 2, 4)
        ]
        assert rec[0] < rec[1] < rec[2]

    def test_node_failure_recovers_without_failover_routing(self):
        # A dead *node* needs no re-routing (nothing transits a node), so
        # minimal routing plus respawn suffices.
        plan = FaultPlan(hard=(NodeFaults("n1", windows=((KILL, INF),)),))
        r = _run(plan, nodes=PACKED, routing=None)
        assert r.completed and r.blast_radius == 1


class TestExhaustion:
    def test_gives_up_when_spares_run_out(self):
        # 8 nodes, the job holds 4; kill both g0r0 and g1r0 -> n0,n1 die
        # and the n4/n5 spares are unusable; only n6,n7 remain... then
        # kill g3r* too so nothing is left.
        plan = FaultPlan(
            hard=(
                RouterFaults("g0r0", windows=((KILL, INF),)),
                RouterFaults("g0r1", windows=((KILL, INF),)),
                RouterFaults("g1r0", windows=((KILL, INF),)),
                RouterFaults("g1r1", windows=((KILL, INF),)),
                RouterFaults("g2r0", windows=((KILL, INF),)),
                RouterFaults("g2r1", windows=((KILL, INF),)),
                RouterFaults("g3r0", windows=((KILL, INF),)),
                RouterFaults("g3r1", windows=((KILL, INF),)),
            )
        )
        r = _run(plan, nodes=PACKED)
        assert not r.completed
        assert r.events and "giving up" in r.events[-1]

    def test_max_restarts_bounds_recovery(self):
        plan = _router_kill()
        cluster = _cluster(plan, routing=FailoverRouting())
        r = run_recoverable_training(
            cluster,
            RecoverableTrainingSpec(),
            nranks=4,
            config=RecoveryConfig(
                checkpoint_interval=2, checkpoint_cost=0.0, max_restarts=0
            ),
            nodes=PACKED,
        )
        assert not r.completed
        assert r.failures == 1 and r.restarts == 0


class TestDeterminism:
    def test_bit_identical_replay(self):
        a = _run(_router_kill(), nodes=PACKED)
        b = _run(_router_kill(), nodes=PACKED)
        assert isinstance(a, RecoveryResult)
        assert a == b  # dataclass equality: every field, bit for bit


class TestLedger:
    def test_drain_unknown_node_rejected(self):
        ledger = PlacementLedger(get_machine(MACHINE))
        with pytest.raises(KeyError, match="unknown node"):
            ledger.drain("n99")

    def test_drain_removes_from_spares(self):
        ledger = PlacementLedger(get_machine(MACHINE))
        assert "n3" in ledger.spares()
        ledger.drain("n3")
        assert "n3" not in ledger.spares()
        assert "n3" in ledger.drained
