"""Placement policies, node exclusivity, and co-scheduled clusters."""

import pytest

from repro.cluster import (
    PLACEMENTS,
    Cluster,
    attach_bully,
    attach_victim,
    place_ranks,
)
from repro.cluster.scheduler import PlacementLedger
from repro.machines import get_machine

MACHINE = "perlmutter-cpu-x8@dragonfly(4,2,2)"


@pytest.fixture(scope="module")
def machine():
    return get_machine(MACHINE)


def _nodes(endpoints):
    return [ep.split(".", 1)[0] for ep in endpoints]


class TestPlaceRanks:
    def test_packed_fills_nodes_in_order(self, machine):
        eps = place_ranks(machine, 4, "packed")
        assert _nodes(eps) == ["n0", "n1", "n2", "n3"]

    def test_one_rank_per_node_while_nodes_last(self, machine):
        eps = place_ranks(machine, 8, "packed")
        assert len(set(_nodes(eps))) == 8

    def test_wraps_onto_second_endpoint_when_oversubscribed(self, machine):
        eps = place_ranks(machine, 10, "packed")
        nodes = _nodes(eps)
        assert nodes[:8] == [f"n{i}" for i in range(8)]
        assert nodes[8:] == ["n0", "n1"]  # round-robin wraps over the nodes

    def test_scattered_lands_behind_distinct_routers(self, machine):
        ledger = PlacementLedger(machine)
        eps = place_ranks(machine, 4, "scattered", ledger=ledger)
        routers = [ledger.router[n] for n in _nodes(eps)]
        assert len(set(routers)) == 4

    def test_random_is_seed_deterministic(self, machine):
        a = place_ranks(machine, 6, "random", seed=3, key="job")
        b = place_ranks(machine, 6, "random", seed=3, key="job")
        c = place_ranks(machine, 6, "random", seed=4, key="job")
        assert a == b
        assert a != c

    def test_ledger_keeps_jobs_node_exclusive(self, machine):
        ledger = PlacementLedger(machine)
        first = place_ranks(machine, 3, "packed", ledger=ledger)
        second = place_ranks(machine, 3, "packed", ledger=ledger)
        assert not set(_nodes(first)) & set(_nodes(second))

    def test_no_free_nodes_rejected(self, machine):
        ledger = PlacementLedger(machine)
        place_ranks(machine, 8, "packed", ledger=ledger)
        with pytest.raises(ValueError, match="no free nodes"):
            place_ranks(machine, 1, "packed", ledger=ledger)

    def test_capacity_overflow_rejected(self, machine):
        # 8 dual-socket nodes: far more ranks than slots.
        with pytest.raises(ValueError, match="slots"):
            place_ranks(machine, 10000, "packed")

    def test_unknown_policy_rejected(self, machine):
        with pytest.raises(ValueError, match="placement"):
            place_ranks(machine, 2, "diagonal")

    def test_single_node_machine_degrades_gracefully(self):
        m = get_machine("perlmutter-cpu")
        eps = place_ranks(m, 2, "scattered")
        assert len(eps) == 2


class TestCluster:
    def test_constructor_validates_placement(self):
        with pytest.raises(ValueError, match="placement"):
            Cluster(MACHINE, placement="bogus")

    def test_duplicate_job_names_rejected(self):
        c = Cluster(MACHINE)
        samples: list[float] = []
        c.submit("v", attach_victim(samples, nmsgs=1), nranks=2, runtime="one_sided")
        with pytest.raises(ValueError, match="duplicate"):
            c.submit("v", attach_bully(nmsgs=1), nranks=2, runtime="one_sided")

    def test_run_without_jobs_rejected(self):
        with pytest.raises(ValueError, match="no jobs"):
            Cluster(MACHINE).run()

    def test_submit_defaults_to_cluster_placement(self):
        c = Cluster(MACHINE, placement="scattered")
        samples: list[float] = []
        job = c.submit(
            "v", attach_victim(samples, nmsgs=1), nranks=3, runtime="one_sided"
        )
        routers = {c._ledger.router[n] for n in _nodes(job.endpoints)}
        assert len(routers) == 3

    def test_jobs_share_one_fabric_and_clock(self):
        c = Cluster(MACHINE)
        samples: list[float] = []
        v = c.submit(
            "victim", attach_victim(samples, nmsgs=2), nranks=2, runtime="one_sided"
        )
        b = c.submit("bully", attach_bully(nmsgs=2), nranks=2, runtime="one_sided")
        assert v.fabric is b.fabric is c.fabric
        results = c.run()
        assert set(results) == {"victim", "bully"}
        assert len(samples) == 2
        assert all(r.time == c.sim.now for r in results.values())

    def test_same_seed_runs_are_bit_identical(self):
        def run():
            samples: list[float] = []
            c = Cluster(MACHINE, routing="adaptive", seed=11)
            c.submit(
                "victim",
                attach_victim(samples, nmsgs=20),
                nranks=2,
                runtime="one_sided",
                placement="scattered",
            )
            c.submit(
                "bully",
                attach_bully(nmsgs=10),
                nranks=4,
                runtime="one_sided",
                placement="scattered",
            )
            c.run()
            return samples

        assert run() == run()

    def test_bully_traffic_inflates_victim_tail(self):
        def victim_samples(with_bully):
            samples: list[float] = []
            c = Cluster(MACHINE, placement="scattered")
            c.submit(
                "victim", attach_victim(samples, nmsgs=40), nranks=2,
                runtime="one_sided",
            )
            if with_bully:
                c.submit(
                    "bully", attach_bully(nmsgs=30), nranks=6, runtime="one_sided"
                )
            c.run()
            return samples

        quiet = victim_samples(False)
        loud = victim_samples(True)
        assert max(loud) > max(quiet)
