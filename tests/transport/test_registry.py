"""Backend registry: name resolution, errors, caps, extension seam."""

import pytest

from repro.comm import Job
from repro.transport import (
    ONE_SIDED,
    ONE_SIDED_HW,
    SHMEM,
    TWO_SIDED,
    BackendCaps,
    TransportBackend,
    UnknownBackendError,
    backend_names,
    get_backend,
    register_backend,
)


class TestResolution:
    def test_builtin_names_in_canonical_order(self):
        names = backend_names()
        assert names[:4] == (TWO_SIDED, ONE_SIDED, SHMEM, ONE_SIDED_HW)

    def test_get_backend_by_name(self):
        for name in (TWO_SIDED, ONE_SIDED, SHMEM):
            assert get_backend(name).name == name

    def test_unknown_name_lists_valid_backends(self):
        with pytest.raises(UnknownBackendError) as exc:
            get_backend("nccl")
        assert "'nccl'" in str(exc.value)
        for name in (TWO_SIDED, ONE_SIDED, SHMEM):
            assert repr(name) in str(exc.value)

    def test_unknown_backend_error_is_a_value_error(self):
        # Callers that caught ValueError from the old literal check keep
        # working.
        with pytest.raises(ValueError):
            get_backend("mystery")

    def test_costs_key_defaults_to_name(self):
        assert get_backend(TWO_SIDED).resolve_costs_key() == TWO_SIDED
        assert get_backend(ONE_SIDED_HW).resolve_costs_key() == ONE_SIDED_HW


class TestCaps:
    def test_paper_op_accounting(self):
        """Table I: 2 ops/msg two-sided, 4-op one-sided emulation, fused
        single-op NVSHMEM."""
        assert get_backend(TWO_SIDED).caps.ops_per_message == 2
        assert get_backend(ONE_SIDED).caps.ops_per_message == 4
        assert get_backend(SHMEM).caps.ops_per_message == 1
        assert get_backend(ONE_SIDED_HW).caps.ops_per_message == 1

    def test_remote_atomics(self):
        assert not get_backend(TWO_SIDED).caps.remote_atomics
        assert get_backend(ONE_SIDED).caps.remote_atomics
        assert get_backend(SHMEM).caps.remote_atomics

    def test_gpu_initiated(self):
        assert get_backend(SHMEM).caps.gpu_initiated
        assert not get_backend(ONE_SIDED_HW).caps.gpu_initiated

    def test_sided_labels(self):
        assert get_backend(TWO_SIDED).sided == "two"
        assert get_backend(ONE_SIDED).sided == "one"
        assert get_backend(SHMEM).sided == "shmem"


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(get_backend(TWO_SIDED))

    def test_replace_allows_overwrite(self):
        original = get_backend(TWO_SIDED)
        try:
            register_backend(original, replace=True)
            assert get_backend(TWO_SIDED) is original
        finally:
            register_backend(original, replace=True)

    def test_nameless_backend_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_backend(TransportBackend())

    def test_custom_backend_roundtrip(self):
        class Quiet(TransportBackend):
            name = "quiet-test-backend"
            costs_key = TWO_SIDED
            caps = BackendCaps(remote_atomics=False, ops_per_message=2)

        try:
            register_backend(Quiet())
            assert get_backend("quiet-test-backend").caps.ops_per_message == 2
            assert "quiet-test-backend" in backend_names()
        finally:
            from repro.transport import registry

            registry._REGISTRY.pop("quiet-test-backend", None)


class TestJobIntegration:
    def test_job_resolves_backend_by_name(self, pm_cpu):
        job = Job(pm_cpu, 2, TWO_SIDED)
        assert job.runtime_name == TWO_SIDED
        assert job.backend is get_backend(TWO_SIDED)

    def test_job_accepts_backend_instance(self, pm_cpu):
        job = Job(pm_cpu, 2, get_backend(ONE_SIDED))
        assert job.runtime_name == ONE_SIDED

    def test_job_unknown_runtime_helpful_error(self, pm_cpu):
        with pytest.raises(UnknownBackendError, match="valid backends"):
            Job(pm_cpu, 2, "rdma++")

    def test_custom_backend_runs_without_workload_edits(self, pm_cpu):
        """The seam: a new backend + a cost profile = a runnable runtime."""
        import dataclasses

        from repro.transport.shmem import ShmemBackend
        from repro.workloads.flood import run_flood

        class FusedNic(ShmemBackend):
            name = "fused-nic-test"
            costs_key = "fused-nic-test"
            sided = "shmem"
            caps = BackendCaps(remote_atomics=True, ops_per_message=1)

        try:
            register_backend(FusedNic())
            one = pm_cpu.runtimes[ONE_SIDED]
            pm_cpu.runtimes["fused-nic-test"] = dataclasses.replace(
                one, put_signal=one.put, poll_slot=0.0, wait_poll=2e-7
            )
            r = run_flood(pm_cpu, "fused-nic-test", 512, 16, iters=2)
            assert r.runtime == "fused-nic-test"
            assert r.bandwidth > 0
        finally:
            from repro.transport import registry

            registry._REGISTRY.pop("fused-nic-test", None)


class TestCapabilitiesTable:
    def test_every_registered_backend_has_a_row(self):
        from repro.transport import capabilities

        table = capabilities()
        assert set(backend_names()) <= set(table)
        for name, caps in table.items():
            assert caps is get_backend(name).caps

    def test_stream_triggered_is_fifth_builtin(self):
        from repro.transport import STREAM_TRIGGERED

        assert backend_names()[4] == STREAM_TRIGGERED
        caps = get_backend(STREAM_TRIGGERED).caps
        assert caps.gpu_initiated
        assert caps.host_bypass
        assert caps.stream_ordered
        assert caps.ops_per_message == 1

    def test_summary_is_deterministic_prose(self):
        from repro.transport import STREAM_TRIGGERED

        s = get_backend(STREAM_TRIGGERED).caps.summary()
        assert "host-bypass" in s and "stream-ordered" in s
        assert get_backend(TWO_SIDED).caps.summary().startswith("2 op/msg")

    def test_matches_rejects_unknown_flag(self):
        with pytest.raises(TypeError, match="no capability"):
            get_backend(SHMEM).caps.matches(quantum_links=True)


class TestRequire:
    def test_candidates_filter_on_declared_caps(self):
        from repro.transport import STREAM_TRIGGERED, require

        assert require(host_bypass=True).candidates() == (STREAM_TRIGGERED,)
        fused = require(ops_per_message=1).candidates()
        assert SHMEM in fused and ONE_SIDED_HW in fused
        assert TWO_SIDED not in fused

    def test_resolve_returns_first_qualifier(self):
        from repro.transport import require

        assert require(gpu_initiated=True).resolve() == SHMEM

    def test_unsatisfiable_predicate_lists_caps_table(self):
        from repro.transport import TransportError, require

        with pytest.raises(TransportError) as exc:
            require(gpu_initiated=True, remote_atomics=False).resolve()
        msg = str(exc.value)
        assert "no registered backend satisfies" in msg
        for name in (TWO_SIDED, SHMEM):
            assert name in msg

    def test_unknown_flag_rejected_eagerly(self):
        from repro.transport import require

        with pytest.raises(TypeError, match="no capability"):
            require(telepathy=True)

    def test_empty_predicate_rejected(self):
        from repro.transport import require

        with pytest.raises(ValueError, match="at least one"):
            require()

    def test_session_accepts_predicate(self):
        from repro import Session
        from repro.transport import STREAM_TRIGGERED, require

        s = Session(machine="perlmutter-gpu", backend=require(host_bypass=True))
        assert s.backend == STREAM_TRIGGERED


class TestDiagnostics:
    def test_unknown_backend_suggests_close_name(self):
        with pytest.raises(UnknownBackendError, match="did you mean"):
            get_backend("stream_trigered")
        with pytest.raises(UnknownBackendError, match=repr(TWO_SIDED)):
            get_backend("two_sided_mpi")

    def test_hopeless_typo_gets_no_suggestion(self):
        with pytest.raises(UnknownBackendError) as exc:
            get_backend("zzzz")
        assert "did you mean" not in str(exc.value)

    def test_collision_names_incumbent_class_and_description(self):
        with pytest.raises(ValueError) as exc:
            register_backend(get_backend(SHMEM))
        msg = str(exc.value)
        assert type(get_backend(SHMEM)).__name__ in msg
        assert "replace=True" in msg

    def test_collision_with_different_class_says_shadow(self):
        class Imposter(TransportBackend):
            name = SHMEM
            costs_key = SHMEM
            caps = BackendCaps()

        with pytest.raises(ValueError, match="shadow"):
            register_backend(Imposter())
