"""Channel/endpoint contract: verb errors, spec dispatch, no-op verbs,
and cross-backend result parity of the unified workload programs."""

import numpy as np
import pytest

from repro.comm import Job
from repro.transport import (
    ONE_SIDED,
    SHMEM,
    TWO_SIDED,
    AtomicDomainSpec,
    BatchSpec,
    Channel,
    Endpoint,
    MailboxSpec,
    SpaceSpec,
    TransportBackend,
    UnsupportedTransportOp,
    get_backend,
)

CPU_BACKENDS = (TWO_SIDED, ONE_SIDED)
ALL_BACKENDS = (TWO_SIDED, ONE_SIDED, SHMEM)


class TestSpecDispatch:
    def test_unknown_spec_type_rejected(self, pm_cpu):
        job = Job(pm_cpu, 2, TWO_SIDED)
        with pytest.raises(TypeError, match="unknown channel spec"):
            job.channel(object())

    def test_base_backend_supports_nothing(self, pm_cpu):
        class Bare(TransportBackend):
            name = "bare"

        job = Job(pm_cpu, 2, TWO_SIDED)
        for spec in (
            BatchSpec(nbytes=64),
            MailboxSpec(data_words=1, nslots=1, offsets={0: [0], 1: [0]}),
            AtomicDomainSpec(spaces={"a": SpaceSpec(1)}),
        ):
            with pytest.raises(NotImplementedError, match="bare"):
                Bare().open(job, spec)

    def test_every_builtin_opens_every_pattern(self, pm_cpu, pm_gpu):
        from repro.workloads.stencil.runner import StencilConfig, _halo_spec
        from repro.workloads.stencil.decomposition import ProcessGrid

        grid = ProcessGrid.square_ish(2)
        specs = (
            _halo_spec(grid, StencilConfig(nx=16, ny=16, iters=1), 2),
            MailboxSpec(data_words=4, nslots=2, offsets={0: [0, 2], 1: [0, 2]}),
            BatchSpec(nbytes=64),
            AtomicDomainSpec(spaces={"a": SpaceSpec(4)}),
        )
        for name in ALL_BACKENDS:
            machine = pm_gpu if name == SHMEM else pm_cpu
            job = Job(machine, 2, name)
            for spec in specs:
                chan = job.channel(spec)
                assert chan.caps is get_backend(name).caps


class TestEndpointContract:
    def _endpoint(self, pm_cpu):
        job = Job(pm_cpu, 2, TWO_SIDED)
        chan = Channel(get_backend(TWO_SIDED), job, BatchSpec(nbytes=8))
        return Endpoint(chan, ctx=None)

    def test_unimplemented_verbs_raise(self, pm_cpu):
        ep = self._endpoint(pm_cpu)
        for verb, args in [
            ("begin", (0,)),
            ("put", ("north", 1)),
            ("finish", (0,)),
            ("expect", ({},)),
            ("recv", ()),
            ("drain", ()),
            ("post", (1,)),
            ("commit", (1, 0)),
            ("wait_batch", (0, 0, 1)),
            ("local", ("a",)),
            ("cas", ("a", 1, 0, 0, 1)),
            ("faa", ("a", 1, 0, 1)),
            ("swap", ("a", 1, 0, 1)),
            ("publish", ("a", 1, np.zeros(1))),
            ("native_cas", ("a", 1, 0, 0, 1)),
            ("recv_msg_poll", ()),
        ]:
            with pytest.raises(UnsupportedTransportOp, match="two_sided"):
                getattr(ep, verb)(*args)

    def test_error_message_names_backend_and_op(self, pm_cpu):
        ep = self._endpoint(pm_cpu)
        with pytest.raises(UnsupportedTransportOp, match="does not support recv"):
            ep.recv()

    def test_noop_verbs_are_empty_generators(self, pm_cpu, pm_gpu):
        """Verbs that cost nothing for a backend still drive via yield
        from — programs must never branch on the backend."""

        from repro.transport import MailboxMsg

        def program(ctx, chan):
            ep = chan.endpoint(ctx)
            t0 = ctx.sim.now
            if ctx.rank == 0:
                ep.expect({})
                yield from ep.send(1, 0, words=1, meta="m")
                yield from ep.drain()
            else:
                ep.expect({0: MailboxMsg(slot=0, words=1, meta="m")})
                meta, _data = yield from ep.recv()
                assert meta == "m"
                yield from ep.drain()
            yield from ctx.barrier()
            return ctx.sim.now - t0

        spec = MailboxSpec(data_words=2, nslots=1, offsets={0: [0], 1: [0]})
        for name, machine in ((TWO_SIDED, pm_cpu), (ONE_SIDED, pm_cpu),
                              (SHMEM, pm_gpu)):
            job = Job(machine, 2, name, placement="spread")
            res = job.run(program, job.channel(spec))
            assert all(t > 0 for t in res.results)


class TestCrossBackendParity:
    """Execute-mode numerics must be identical under every backend — the
    refactor's core guarantee: the backend changes op costs, never data."""

    def test_stencil_field_identical(self, pm_cpu, pm_gpu):
        from repro.workloads.stencil import StencilConfig, run_stencil

        cfg = StencilConfig(nx=24, ny=18, iters=4, mode="execute")
        fields = {}
        for name, machine in ((TWO_SIDED, pm_cpu), (ONE_SIDED, pm_cpu),
                              (SHMEM, pm_gpu)):
            fields[name] = run_stencil(machine, name, cfg, 4).extras["field"]
        np.testing.assert_array_equal(fields[TWO_SIDED], fields[ONE_SIDED])
        np.testing.assert_array_equal(fields[TWO_SIDED], fields[SHMEM])

    def test_sptrsv_solution_identical(self, small_matrix, rhs, pm_cpu, pm_gpu):
        from repro.workloads.sptrsv import SpTrsvConfig, run_sptrsv

        cfg = SpTrsvConfig(mode="execute")
        xs = {}
        for name, machine in ((TWO_SIDED, pm_cpu), (ONE_SIDED, pm_cpu),
                              (SHMEM, pm_gpu)):
            xs[name] = run_sptrsv(
                machine, name, small_matrix, 4, cfg=cfg, b=rhs
            ).extras["x"]
        np.testing.assert_array_equal(xs[TWO_SIDED], xs[ONE_SIDED])
        np.testing.assert_array_equal(xs[TWO_SIDED], xs[SHMEM])

    def test_hashtable_values_identical(self, pm_cpu, pm_gpu):
        from repro.workloads.hashtable import HashTableConfig, run_hashtable

        cfg = HashTableConfig(total_inserts=400, seed=2)
        stored = {}
        for name, machine in ((TWO_SIDED, pm_cpu), (ONE_SIDED, pm_cpu),
                              (SHMEM, pm_gpu)):
            res = run_hashtable(machine, name, cfg, 4)
            stored[name] = sorted(res.extras["values"])
        assert stored[TWO_SIDED] == stored[ONE_SIDED] == stored[SHMEM]

    def test_flood_bandwidth_positive_everywhere(self, pm_cpu, pm_gpu):
        from repro.workloads.flood import run_flood

        for name, machine in ((TWO_SIDED, pm_cpu), (ONE_SIDED, pm_cpu),
                              (SHMEM, pm_gpu)):
            r = run_flood(machine, name, 4096, 8, iters=2)
            assert r.bandwidth > 0
            assert r.runtime == name
