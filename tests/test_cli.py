"""CLI surface: parsing, dispatch, output, error paths."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_default_cache(tmp_path, monkeypatch):
    """Keep the CLI's default on-disk sweep cache out of the repo tree."""
    monkeypatch.setattr(
        "repro.sweep.DEFAULT_CACHE_DIR", str(tmp_path / "default-cache")
    )


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_flood_defaults(self):
        args = build_parser().parse_args(["flood", "perlmutter-cpu", "two_sided"])
        assert args.nbytes == "64KiB" and args.msgs_per_sync == 64

    def test_flood_legacy_flag_aliases(self):
        args = build_parser().parse_args(
            ["flood", "perlmutter-cpu", "two_sided",
             "--size", "4KiB", "--msgs", "8"]
        )
        assert args.nbytes == "4KiB" and args.msgs_per_sync == 8


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "frontier-gpu" in out and "polling" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "perlmutter-cpu" in out
        assert "PROJECTION" in out  # frontier-gpu listed and flagged

    def test_topo_summary(self, capsys):
        assert main(["topo", "perlmutter-cpu-x4@dragonfly(2,2,1)"]) == 0
        out = capsys.readouterr().out
        assert "diameter" in out and "bisection" in out

    def test_topo_bare_generator_dot(self, capsys):
        assert main(["topo", "dragonfly(2,2,1)", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph ") and "--" in out

    def test_topo_unknown_name(self, capsys):
        assert main(["topo", "not-a-fabric"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "paper-shape checks" in out
        assert "[PASS]" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ablation(self, capsys):
        assert main(["ablation", "sharp"]) == 0
        assert "sharp vs rounded" in capsys.readouterr().out

    def test_ablation_unknown(self, capsys):
        assert main(["ablation", "nope"]) == 2

    def test_flood(self, capsys):
        rc = main(
            ["flood", "perlmutter-cpu", "two_sided", "--size", "4KiB",
             "--msgs", "8", "--iters", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out and "GB/s" in out

    def test_flood_unknown_machine(self, capsys):
        assert main(["flood", "elcap", "two_sided"]) == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_roofline(self, capsys):
        rc = main(["roofline", "frontier-cpu", "one_sided", "--size", "1KiB"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak=36.00 GB/s" in out
        assert "bound" in out

    def test_roofline_projection_machine(self, capsys):
        rc = main(["roofline", "frontier-gpu", "shmem", "--size", "64KiB"])
        assert rc == 0


class TestTrace:
    def test_trace_writes_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "run.trace.json"
        rc = main(["trace", "table2", "--out", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"], "trace is empty"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        assert "chrome://tracing" in capsys.readouterr().out

    def test_trace_ring_sink_bounded(self, tmp_path, capsys):
        import json

        out = tmp_path / "run.trace.json"
        rc = main(
            ["trace", "table2", "--out", str(out), "--sink", "ring",
             "--capacity", "50"]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        # <= capacity records per job, plus metadata events.
        data_events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        pids = {e["pid"] for e in data_events}
        for pid in pids:
            per_job = [e for e in data_events if e["pid"] == pid and e.get("cat") != "phase"]
            assert len(per_job) <= 50

    def test_trace_jsonl_sink_round_trips(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        jdir = tmp_path / "jsonl"
        rc = main(
            ["trace", "table2", "--out", str(out), "--sink", "jsonl",
             "--jsonl-dir", str(jdir)]
        )
        assert rc == 0
        files = sorted(jdir.glob("job*.jsonl"))
        assert files
        from repro.analysis.traces import load_jsonl

        assert any(len(load_jsonl(f)) > 0 for f in files)

    def test_trace_unknown_experiment(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_ring_capacity_must_be_positive(self, capsys):
        rc = main(["trace", "table2", "--sink", "ring", "--capacity", "0"])
        assert rc == 2
        assert "--capacity must be >= 1" in capsys.readouterr().err


class TestMetricsFlag:
    def test_run_metrics_embedded_in_json(self, capsys):
        import json

        rc = main(["run", "table2", "--json", "--metrics"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        m = d["metrics"]
        assert m["net.fabric.bytes"] > 0
        assert any(k.startswith("comm.") for k in m)
        assert any(k.startswith("span.table2") for k in m)

    def test_run_without_metrics_omits_key(self, capsys):
        import json

        rc = main(["run", "table2", "--json"])
        assert rc == 0
        assert "metrics" not in json.loads(capsys.readouterr().out)

    def test_export_metrics(self, tmp_path, capsys):
        import json

        rc = main(["export", str(tmp_path), "--experiments", "table2", "--metrics"])
        assert rc == 0
        d = json.loads((tmp_path / "table2.json").read_text())
        assert d["metrics"]["net.fabric.messages"] > 0


class TestSweepExecutionFlags:
    def test_run_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig03", "--jobs", "4", "--no-cache", "--cache-dir", "x"]
        )
        assert args.jobs == 4 and args.no_cache and args.cache_dir == "x"

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "table1", "--jobs", "0"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "argument --jobs: must be >= 1" in err
        assert "use 1 for serial execution" in err

    def test_jobs_must_be_an_integer(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "table1", "--jobs", "many"])
        assert exc.value.code == 2
        assert "expected a positive integer" in capsys.readouterr().err

    def test_cache_dir_must_be_nonempty(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run", "table1", "--cache-dir", ""])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "non-empty path" in err and "--no-cache" in err

    def test_cache_dir_must_not_be_a_file(self, tmp_path, capsys):
        f = tmp_path / "not-a-dir"
        f.write_text("x")
        with pytest.raises(SystemExit) as exc:
            main(["run", "table1", "--cache-dir", str(f)])
        assert exc.value.code == 2
        assert "not a directory" in capsys.readouterr().err

    def test_second_run_hits_the_cache(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "c")
        assert main(["run", "table1", "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().err
        assert "[sweep] cache: hits=0 misses=5" in first
        assert main(["run", "table1", "--cache-dir", cache_dir]) == 0
        second = capsys.readouterr().err
        assert "[sweep] cache: hits=5 misses=0" in second

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        rc = main(
            ["run", "table1", "--no-cache", "--cache-dir", str(cache_dir)]
        )
        assert rc == 0
        assert not cache_dir.exists()
        assert "[sweep] cache:" not in capsys.readouterr().err

    def test_progress_goes_to_stderr_not_json_stdout(self, tmp_path, capsys):
        import json

        rc = main(
            ["run", "table1", "--json", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c")]
        )
        assert rc == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout must stay pure JSON
        assert "[sweep] table1" in captured.err

    def _fake_experiments(self, pass_second):
        from repro.experiments.report import ExperimentReport

        def make(name, ok):
            return lambda: ExperimentReport(
                experiment=name, title=name, headers=["x"], rows=[[1]],
                expectations={"claim": ok},
            )

        return {"alpha": make("alpha", True), "beta": make("beta", pass_second)}

    def test_run_all_failure_sets_exit_code(self, monkeypatch, capsys):
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "ALL_EXPERIMENTS", self._fake_experiments(False)
        )
        assert main(["run", "all", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "alpha                PASS" in err
        assert "beta                 FAIL" in err
        assert "1/2 experiments failed expectations" in err

    def test_run_all_success_exit_zero(self, monkeypatch, capsys):
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "ALL_EXPERIMENTS", self._fake_experiments(True)
        )
        assert main(["run", "all", "--no-cache"]) == 0
        assert "all 2 experiments passed" in capsys.readouterr().err


class TestExport:
    def test_export_writes_json_and_txt(self, tmp_path, capsys):
        rc = main(["export", str(tmp_path), "--experiments", "table1"])
        assert rc == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table1.txt").exists()
        import json

        d = json.loads((tmp_path / "table1.json").read_text())
        assert d["experiment"] == "table1"

    def test_export_unknown_experiment(self, tmp_path, capsys):
        rc = main(["export", str(tmp_path), "--experiments", "fig99"])
        assert rc == 2


class TestFaultCommand:
    def test_fault_reports_degradation(self, capsys):
        rc = main(
            ["fault", "perlmutter-cpu", "one_sided", "--loss", "0.08",
             "--msgs", "16", "--iters", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "clean" in out and "faulty" in out
        assert "% of clean" in out
        assert "drops" in out and "retransmits" in out

    def test_fault_zero_loss_matches_clean(self, capsys):
        rc = main(
            ["fault", "perlmutter-cpu", "two_sided", "--loss", "0",
             "--msgs", "16", "--iters", "1"]
        )
        assert rc == 0
        assert "(100.0% of clean)" in capsys.readouterr().out

    def test_fault_down_window(self, capsys):
        rc = main(
            ["fault", "perlmutter-cpu", "two_sided", "--loss", "0",
             "--down", "0:100", "--msgs", "16", "--iters", "1"]
        )
        assert rc == 0
        assert "stalled" in capsys.readouterr().out

    def test_fault_bad_down_spec(self, capsys):
        rc = main(
            ["fault", "perlmutter-cpu", "two_sided", "--down", "oops"]
        )
        assert rc == 2
        assert "START:END" in capsys.readouterr().err

    def test_fault_bad_loss(self, capsys):
        rc = main(["fault", "perlmutter-cpu", "two_sided", "--loss", "1.5"])
        assert rc == 2
        assert "loss" in capsys.readouterr().err

    def test_fault_unknown_machine(self, capsys):
        assert main(["fault", "elcap", "two_sided"]) == 2

    CLUSTER = "perlmutter-cpu-x8@dragonfly(4,2,2)"

    def test_fault_unknown_router_lists_valid_names(self, capsys):
        rc = main(
            ["fault", self.CLUSTER, "one_sided", "--fail-router", "bogus"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown router 'bogus'" in err
        assert "valid routers" in err and "g0r0" in err and "g3r1" in err

    def test_fault_unknown_node_rejected_eagerly(self, capsys):
        rc = main(["fault", self.CLUSTER, "one_sided", "--fail-node", "n99"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "unknown node 'n99'" in err and "n7" in err

    def test_fault_router_on_bare_machine_rejected(self, capsys):
        # A single-node machine has no routers at all; the error says so.
        rc = main(
            ["fault", "perlmutter-cpu", "one_sided", "--fail-router", "g0r0"]
        )
        assert rc == 2
        assert "no router elements" in capsys.readouterr().err

    def test_fail_bad_window_spec(self, capsys):
        rc = main(
            ["fault", self.CLUSTER, "one_sided", "--fail-router", "g0r0:oops:2"]
        )
        assert rc == 2
        assert "NAME:START:END" in capsys.readouterr().err

    def test_fail_nic_window_degrades_block_flood(self, capsys):
        rc = main(
            ["fault", self.CLUSTER, "one_sided", "--loss", "0",
             "--fail-nic", "n0.nic0:100:160", "--placement", "block",
             "--msgs", "16", "--iters", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "hard=1 element(s)" in out
        assert "at dead elements" in out

    def test_fail_router_forever_aborts_block_flood(self, capsys):
        rc = main(
            ["fault", self.CLUSTER, "one_sided", "--loss", "0",
             "--fail-router", "g0r0", "--placement", "block",
             "--msgs", "16", "--iters", "1"]
        )
        assert rc == 1
        assert "aborted" in capsys.readouterr().out


class TestRunSurvivesCrash:
    def _experiments_with_crash(self):
        from repro.experiments.report import ExperimentReport

        def good():
            return ExperimentReport(
                experiment="alpha", title="alpha", headers=["x"], rows=[[1]],
                expectations={"claim": True},
            )

        def boom():
            raise RuntimeError("experiment exploded")

        return {"alpha": good, "boom": boom}

    def test_crashing_experiment_marked_error_others_run(
        self, monkeypatch, capsys
    ):
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "ALL_EXPERIMENTS", self._experiments_with_crash()
        )
        assert main(["run", "all", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "experiment exploded" in err  # traceback surfaced
        assert "alpha                PASS" in err
        assert "boom                 ERROR" in err
