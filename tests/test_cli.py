"""CLI surface: parsing, dispatch, output, error paths."""

import pytest

from repro.cli import build_parser, main


class TestParsing:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0

    def test_flood_defaults(self):
        args = build_parser().parse_args(["flood", "perlmutter-cpu", "two_sided"])
        assert args.size == "64KiB" and args.msgs == 64


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig08" in out and "frontier-gpu" in out and "polling" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "perlmutter-cpu" in out
        assert "PROJECTION" in out  # frontier-gpu listed and flagged

    def test_run_single_experiment(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "paper-shape checks" in out
        assert "[PASS]" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ablation(self, capsys):
        assert main(["ablation", "sharp"]) == 0
        assert "sharp vs rounded" in capsys.readouterr().out

    def test_ablation_unknown(self, capsys):
        assert main(["ablation", "nope"]) == 2

    def test_flood(self, capsys):
        rc = main(
            ["flood", "perlmutter-cpu", "two_sided", "--size", "4KiB",
             "--msgs", "8", "--iters", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "bandwidth" in out and "GB/s" in out

    def test_flood_unknown_machine(self, capsys):
        assert main(["flood", "elcap", "two_sided"]) == 2
        assert "unknown machine" in capsys.readouterr().err

    def test_roofline(self, capsys):
        rc = main(["roofline", "frontier-cpu", "one_sided", "--size", "1KiB"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "peak=36.00 GB/s" in out
        assert "bound" in out

    def test_roofline_projection_machine(self, capsys):
        rc = main(["roofline", "frontier-gpu", "shmem", "--size", "64KiB"])
        assert rc == 0


class TestExport:
    def test_export_writes_json_and_txt(self, tmp_path, capsys):
        rc = main(["export", str(tmp_path), "--experiments", "table1"])
        assert rc == 0
        assert (tmp_path / "table1.json").exists()
        assert (tmp_path / "table1.txt").exists()
        import json

        d = json.loads((tmp_path / "table1.json").read_text())
        assert d["experiment"] == "table1"

    def test_export_unknown_experiment(self, tmp_path, capsys):
        rc = main(["export", str(tmp_path), "--experiments", "fig99"])
        assert rc == 2
