"""The explicit edge cases: P=1, non-power-of-two folds, tiny vectors.

These are the degenerate shapes real launchers hit constantly — a
single-rank job, 5 GPUs on a 4-slot algorithm, a 2-element vector on a
6-rank ring — and each one has a documented contract in
:mod:`repro.collectives.algorithms`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import CollectiveError, run_collective
from repro.collectives.plan import ALGORITHMS, CollectivePlan, plan_collective
from repro.machines import perlmutter_cpu
from repro.transport import TWO_SIDED
from repro.transport.api import part_bounds

from tests.collectives.test_algorithms import check

PM = perlmutter_cpu


# ---------------------------------------------------------------------------
# nranks == 1: every collective is a local no-op
# ---------------------------------------------------------------------------


ALL_PAIRS = [(c, a) for c, algs in sorted(ALGORITHMS.items()) for a in algs]


@pytest.mark.parametrize(("coll", "algorithm"), ALL_PAIRS)
def test_single_rank_is_noop(coll, algorithm):
    plan = CollectivePlan(coll=coll, algorithm=algorithm, nranks=1,
                          nelems=0 if coll == "barrier" else 4)
    assert plan.rounds == 0
    kwargs = {} if coll == "barrier" else {"nelems": 4}
    if coll != "barrier":
        kwargs["values"] = [np.arange(4.0)]
    r = run_collective(PM(), TWO_SIDED, coll, nranks=1,
                       algorithm=algorithm, **kwargs)
    assert r.stats.rounds == 0
    assert r.stats.messages == 0
    assert r.stats.bytes_moved == 0.0
    if coll == "barrier":
        return
    out = r.results[0]
    if coll in ("allreduce", "allgather", "reduce_scatter", "alltoall",
                "broadcast"):
        np.testing.assert_array_equal(out, np.arange(4.0))


# ---------------------------------------------------------------------------
# non-power-of-two ranks: the MPICH fold
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("P", [3, 5, 6, 7])
@pytest.mark.parametrize(
    ("coll", "algorithm"),
    [
        ("allreduce", "recursive_doubling"),
        ("allgather", "recursive_doubling"),
        ("reduce_scatter", "recursive_halving"),
    ],
)
def test_fold_round_count(coll, algorithm, P):
    """Non-pow2 P pays exactly two extra rounds: fold in, fold out."""
    plan = CollectivePlan(coll=coll, algorithm=algorithm, nranks=P, nelems=8)
    pof2 = 1 << (P.bit_length() - 1)
    L = pof2.bit_length() - 1
    assert plan.rounds == L + (2 if P != pof2 else 0)


@pytest.mark.parametrize("P", [3, 5, 6, 7])
@pytest.mark.parametrize(
    ("coll", "algorithm"),
    [
        ("allreduce", "recursive_doubling"),
        ("allgather", "recursive_doubling"),
        ("reduce_scatter", "recursive_halving"),
    ],
)
def test_fold_correctness(coll, algorithm, P):
    """Values survive the fold: odd front ranks merge in and fold out."""
    check(PM(), TWO_SIDED, coll, algorithm, P, 7)


# ---------------------------------------------------------------------------
# nelems < nranks: empty chunks ride as zero-word rounds
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(("coll", "algorithm"), [
    ("allreduce", "ring"),
    ("reduce_scatter", "ring"),
    ("reduce_scatter", "recursive_halving"),
])
@pytest.mark.parametrize("n", [1, 2, 3])
def test_vector_smaller_than_ring(coll, algorithm, n):
    P = 5
    check(PM(), TWO_SIDED, coll, algorithm, P, n)
    # The balanced chunking really does leave empty chunks here.
    assert any(hi == lo for lo, hi in part_bounds(n, P))


def test_empty_chunk_rounds_still_count_as_messages():
    """A zero-word round message is pure notification — it is counted
    (the schedule sent it) but moves no bytes."""
    r = run_collective(PM(), TWO_SIDED, "reduce_scatter", nranks=5,
                       nelems=2, algorithm="ring")
    # P ranks x (P-1) rounds, regardless of how many chunks are empty.
    assert r.stats.messages == 5 * 4
    # Only the non-empty chunks contribute bytes.
    moved = sum(
        (hi - lo) * 8
        for me in range(5)
        for rnd in range(4)
        for lo, hi in [part_bounds(2, 5)[(me - rnd - 1) % 5]]
    )
    assert r.stats.bytes_moved == moved


# ---------------------------------------------------------------------------
# plan/API validation
# ---------------------------------------------------------------------------


def test_size_argument_is_exactly_one_of():
    with pytest.raises(CollectiveError, match="exactly one"):
        run_collective(PM(), TWO_SIDED, "allreduce", nranks=4)
    with pytest.raises(CollectiveError, match="exactly one"):
        run_collective(PM(), TWO_SIDED, "allreduce", nranks=4, nelems=4,
                       nbytes=32)
    # barrier needs neither and ignores both.
    r = run_collective(PM(), TWO_SIDED, "barrier", nranks=4, nelems=100)
    assert r.nelems == 0


def test_nbytes_rounds_up_to_whole_words():
    r = run_collective(PM(), TWO_SIDED, "allreduce", nranks=2, nbytes=10)
    assert r.nelems == 2  # ceil(10 / 8)
    r = run_collective(PM(), TWO_SIDED, "allreduce", nranks=2, nbytes=1)
    assert r.nelems == 1


@pytest.mark.parametrize(
    ("kwargs", "match"),
    [
        (dict(coll="nonesuch", nelems=4), "unknown collective"),
        (dict(coll="allreduce", nelems=4, algorithm="tree"),
         "unknown allreduce algorithm"),
        (dict(coll="allreduce", nelems=0), "nelems >= 1"),
        (dict(coll="allreduce", nelems=4, iters=0), "iters"),
        (dict(coll="allreduce", nelems=4, stripes=0), "stripes"),
        (dict(coll="broadcast", nelems=4, algorithm="tree", stripes=2),
         "striping"),
        (dict(coll="alltoall", nelems=4, algorithm="pairwise"),
         "power-of-two"),
        (dict(coll="allreduce", nelems=4, op="xor"), "unknown reduction"),
        (dict(coll="broadcast", nelems=4, root=7), "root"),
    ],
)
def test_invalid_requests_raise(kwargs, match):
    coll = kwargs.pop("coll")
    op = kwargs.pop("op", "sum")
    root = kwargs.pop("root", 0)
    with pytest.raises(CollectiveError, match=match):
        run_collective(PM(), TWO_SIDED, coll, nranks=5, op=op, root=root,
                       **kwargs)


def test_execute_mode_validates_value_length():
    with pytest.raises(CollectiveError, match="length"):
        run_collective(PM(), TWO_SIDED, "allreduce", nranks=2, nelems=4,
                       algorithm="ring", values=[np.ones(3), np.ones(3)])


def test_execute_mode_requires_values_except_nonroot_broadcast():
    with pytest.raises(CollectiveError, match="needs per-rank values"):
        run_collective(PM(), TWO_SIDED, "allreduce", nranks=2, nelems=4,
                       algorithm="ring",
                       values=lambda rank: np.ones(4) if rank == 0 else None)


def test_auto_needs_machine_context():
    with pytest.raises(CollectiveError, match="auto"):
        plan_collective("allreduce", nranks=4, nelems=8)
