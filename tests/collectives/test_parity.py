"""Cross-backend parity: one schedule, five transports, same accounting.

The tentpole guarantee of :mod:`repro.collectives` is that an algorithm
is written once against the round-slotted verbs and means the same thing
on every backend.  Two observable invariants pin that:

* **accounting parity** — :class:`CollectiveStats` (ops, rounds,
  messages, bytes_moved) is counted schedule-side, so identical plans
  must report *identical* stats on every backend;
* **value parity** — execute-mode outputs are bit-identical across
  backends (they all ran the same numpy reductions in the same order).

Timing is explicitly *not* part of parity — differing per-backend cost
tables are the paper's entire subject.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.collectives import run_collective
from repro.transport import TWO_SIDED

from tests.collectives.conftest import ALL_RUNTIMES

# (coll, algorithm, P, nelems, stripes) — one cell per schedule family,
# pow2 and non-pow2, striped and not.
CASES = [
    ("allreduce", "ring", 4, 7, 1),
    ("allreduce", "ring", 4, 8, 2),
    ("allreduce", "recursive_doubling", 5, 6, 1),
    ("allgather", "ring", 3, 4, 1),
    ("allgather", "recursive_doubling", 6, 3, 1),
    ("reduce_scatter", "ring", 5, 3, 1),
    ("reduce_scatter", "recursive_halving", 4, 9, 1),
    ("alltoall", "pairwise", 4, 2, 1),
    ("alltoall", "ring", 5, 2, 1),
    ("broadcast", "tree", 5, 6, 1),
    ("broadcast", "ring", 4, 6, 3),
    ("barrier", "dissemination", 5, 0, 1),
    ("barrier", "tree", 6, 0, 1),
]

IDS = [f"{c}-{a}-P{p}-n{n}-s{s}" for c, a, p, n, s in CASES]


def _vals(coll, P, n):
    if coll == "barrier":
        return None
    rng = np.random.default_rng(42)
    length = P * n if coll == "alltoall" else n
    return [rng.integers(-9, 9, size=length).astype(np.float64)
            for _ in range(P)]


@pytest.mark.parametrize(("coll", "algorithm", "P", "n", "stripes"),
                         CASES, ids=IDS)
def test_stats_and_values_identical_across_backends(
    cpu_all_runtimes, coll, algorithm, P, n, stripes
):
    vals = _vals(coll, P, n)
    if coll == "broadcast":
        vals = [vals[0]] + [None] * (P - 1)
    results = {}
    for rt in ALL_RUNTIMES:
        kwargs = {} if coll == "barrier" else {"nelems": n, "values": vals}
        results[rt] = run_collective(
            cpu_all_runtimes, rt, coll, nranks=P, algorithm=algorithm,
            stripes=stripes, **kwargs,
        )
    ref = results[TWO_SIDED]
    for rt, r in results.items():
        assert r.stats.as_dict() == ref.stats.as_dict(), (
            f"{rt} accounting diverges from two_sided"
        )
        assert len(r.results) == len(ref.results)
        for got, want in zip(r.results, ref.results):
            np.testing.assert_array_equal(got, want, err_msg=rt)


def test_ring_allreduce_accounting_closed_form(cpu_all_runtimes):
    """P=4, n=8 ring allreduce: 2(P-1) rounds of n/P words per rank."""
    P, n, stripes = 4, 8, 2
    for rt in ALL_RUNTIMES:
        r = run_collective(cpu_all_runtimes, rt, "allreduce", nranks=P,
                           nelems=n, algorithm="ring", stripes=stripes)
        assert r.stats.ops == 1
        assert r.stats.rounds == 2 * (P - 1)
        assert r.stats.messages == P * 2 * (P - 1) * stripes
        assert r.stats.bytes_moved == P * 2 * (P - 1) * (n // P) * 8.0


def test_bus_bandwidth_is_wire_bytes_over_time(cpu_all_runtimes):
    """bus_bandwidth re-derives from the stats on every backend."""
    for rt in ALL_RUNTIMES:
        r = run_collective(cpu_all_runtimes, rt, "allreduce", nranks=4,
                           nelems=1024, algorithm="ring", iters=2)
        wire_per_rank = r.stats.bytes_moved / r.iters / r.nranks
        assert r.bus_bandwidth == pytest.approx(wire_per_rank / r.time)
        # Ring allreduce: bus bytes per rank = 2(P-1)/P * payload.
        assert wire_per_rank == pytest.approx(2 * 3 / 4 * r.nbytes)


def test_timings_differ_but_order_is_sane(cpu_all_runtimes):
    """Parity is accounting, not timing: the cost tables still differ
    (and the synthetic hw put+signal is never slower than the 4-op
    one-sided emulation on the same machine)."""
    t = {
        rt: run_collective(cpu_all_runtimes, rt, "allreduce", nranks=4,
                           nelems=4096, algorithm="ring").time
        for rt in ALL_RUNTIMES
    }
    assert len({round(v, 12) for v in t.values()}) > 1
    assert t["one_sided_hw"] <= t["one_sided"]
    # Host bypass strictly removes overhead: stream-triggered is never
    # slower than any host-driven runtime on the same machine.
    assert t["stream_triggered"] <= min(
        t[rt] for rt in ALL_RUNTIMES if rt != "stream_triggered"
    )
