"""Bulk-engine parity: vectorized round transfers stay byte-exact.

Signal-carrying backends (shmem, one_sided_hw) route homogeneous striped
rounds through the :mod:`repro.perf` bulk engine; the rma backend always
takes the scalar path (concurrent senders make ``put_batch``'s atomic
reservation diverge from the scalar interleaving — see
``transport/rma.py``).  Either way, toggling :func:`repro.perf.vectorized`
must never change a simulated time, a stats count, or an output value.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import perf
from repro.collectives import run_collective
from repro.machines import perlmutter_gpu, summit_gpu
from repro.transport import ONE_SIDED, ONE_SIDED_HW, SHMEM, TWO_SIDED


def _both(machine, rt, **kwargs):
    with perf.vectorized(False):
        scalar = run_collective(machine, rt, **kwargs)
    with perf.vectorized(True):
        bulk = run_collective(machine, rt, **kwargs)
    return scalar, bulk


def _assert_equal(scalar, bulk):
    assert bulk.time == scalar.time
    assert bulk.time_total == scalar.time_total
    assert bulk.stats.as_dict() == scalar.stats.as_dict()
    for got, want in zip(bulk.results, scalar.results):
        np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("stripes", [1, 2, 4])
@pytest.mark.parametrize(
    ("coll", "algorithm", "nelems"),
    [
        ("allreduce", "ring", 4096),
        ("reduce_scatter", "ring", 4096),
        ("allgather", "ring", 1024),
        ("alltoall", "ring", 512),
        ("broadcast", "ring", 2048),
    ],
)
def test_shmem_bulk_is_time_exact(coll, algorithm, nelems, stripes):
    scalar, bulk = _both(
        perlmutter_gpu(), SHMEM, coll=coll, nranks=4, nelems=nelems,
        algorithm=algorithm, stripes=stripes,
    )
    _assert_equal(scalar, bulk)


def test_shmem_bulk_is_value_exact():
    rng = np.random.default_rng(3)
    vals = [rng.integers(-9, 9, size=16).astype(np.float64)
            for _ in range(4)]
    scalar, bulk = _both(
        perlmutter_gpu(), SHMEM, coll="allreduce", nranks=4, nelems=16,
        algorithm="ring", stripes=4, values=vals,
    )
    _assert_equal(scalar, bulk)
    np.testing.assert_array_equal(
        bulk.results[0], np.sum(vals, axis=0)
    )


def test_hw_put_signal_bulk_is_exact(cpu_all_runtimes):
    scalar, bulk = _both(
        cpu_all_runtimes, ONE_SIDED_HW, coll="allreduce", nranks=4,
        nelems=2048, algorithm="ring", stripes=4,
    )
    _assert_equal(scalar, bulk)


def test_summit_dumbbell_stays_scalar_and_exact():
    """Six ranks over Summit's dumbbell NVLink: the shared X-links fail
    the exclusivity gate, so both settings take the scalar path — and
    must therefore agree trivially."""
    scalar, bulk = _both(
        summit_gpu(), SHMEM, coll="allreduce", nranks=6, nelems=1536,
        algorithm="ring", stripes=2,
    )
    _assert_equal(scalar, bulk)


@pytest.mark.parametrize("rt", [ONE_SIDED, TWO_SIDED])
def test_non_signal_backends_unaffected_by_toggle(cpu_all_runtimes, rt):
    """rma and two-sided take the scalar path under either setting."""
    scalar, bulk = _both(
        cpu_all_runtimes, rt, coll="allreduce", nranks=4, nelems=2048,
        algorithm="ring", stripes=4,
    )
    _assert_equal(scalar, bulk)


def _gate_decisions(machine, rt, P):
    """What _bulk_round decides on each rank of a striped round."""
    from repro.collectives.core import CollectiveComm
    from repro.collectives.plan import CollectivePlan
    from repro.comm.job import Job

    plan = CollectivePlan(coll="allreduce", algorithm="ring", nranks=P,
                          nelems=64, stripes=2)
    job = Job(machine, P, rt, placement="spread")
    comm = CollectiveComm(job, [plan])
    flags = []

    def prog(ctx, comm):
        ep = comm.endpoint(ctx)
        flags.append(ep.ep._bulk_round(8, 2))
        yield from ctx.barrier()
        return None

    with perf.vectorized(True):
        job.run(prog, comm)
    return flags


def test_bulk_engine_really_engages_where_exclusive(cpu_all_runtimes):
    """The exactness tests would be vacuous if nothing ever vectorized.

    The exclusivity gate must open on the all-to-all NVLink machine
    (every pair has its own direct link) and stay closed where senders
    can share a hop: Summit's dumbbell and the CPU fat-tree.
    """
    assert all(_gate_decisions(perlmutter_gpu(), SHMEM, 4))
    assert not any(_gate_decisions(summit_gpu(), SHMEM, 6))
    assert not any(_gate_decisions(cpu_all_runtimes, SHMEM, 4))


def test_vectorized_toggle_is_honoured():
    with perf.vectorized(False):
        assert not perf.enabled()
    with perf.vectorized(True):
        assert perf.enabled()
