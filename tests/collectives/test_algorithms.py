"""Execute-mode numerical correctness for every algorithm schedule.

Each (collective, algorithm) pair runs in execute mode — real payloads
through the transport window — and the per-rank outputs are checked
against the numpy-computed truth, across power-of-two and non-power-of-
two rank counts, reduction ops, broadcast roots, and ring striping.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.collectives import run_collective
from repro.collectives.core import REDUCE_OPS
from repro.collectives.plan import ALGORITHMS, STRIPEABLE
from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.transport import SHMEM, TWO_SIDED
from repro.transport.api import part_bounds

ALL_PAIRS = [(c, a) for c, algs in sorted(ALGORITHMS.items()) for a in algs]


def expected(coll, vals, P, n, op=np.add, root=0):
    """Numpy ground truth per rank for each collective's convention."""
    if coll == "allreduce":
        total = functools.reduce(op, vals)
        return [total] * P
    if coll == "allgather":
        cat = np.concatenate(vals)
        return [cat] * P
    if coll == "reduce_scatter":
        total = functools.reduce(op, vals)
        return [total[lo:hi] for lo, hi in part_bounds(n, P)]
    if coll == "alltoall":
        return [
            np.concatenate(
                [vals[src][me * n : (me + 1) * n] for src in range(P)]
            )
            for me in range(P)
        ]
    if coll == "broadcast":
        return [vals[root]] * P
    raise AssertionError(coll)


def check(machine, runtime, coll, algorithm, P, n, *, op="sum", root=0,
          stripes=1, vals=None):
    if vals is None:
        rng = np.random.default_rng(hash((coll, algorithm, P, n)) % 2**32)
        length = P * n if coll == "alltoall" else n
        vals = [
            rng.integers(-9, 9, size=length).astype(np.float64)
            for _ in range(P)
        ]
    if coll == "broadcast":
        inputs = [vals[root] if r == root else None for r in range(P)]
    else:
        inputs = vals
    r = run_collective(
        machine, runtime, coll, nranks=P, nelems=n, algorithm=algorithm,
        stripes=stripes, values=inputs, op=op, root=root,
    )
    assert r.executed
    assert r.algorithm == algorithm
    assert len(r.results) == P
    want = expected(coll, vals, P, n, op=REDUCE_OPS[op], root=root)
    for rank, (got, exp) in enumerate(zip(r.results, want)):
        np.testing.assert_array_equal(
            got, exp, err_msg=f"{coll}/{algorithm} P={P} n={n} rank={rank}"
        )
    assert r.time > 0 or P == 1
    return r


@pytest.mark.parametrize("P", [2, 3, 4, 5])
@pytest.mark.parametrize(("coll", "algorithm"), ALL_PAIRS)
def test_matches_numpy(coll, algorithm, P):
    """The full schedule matrix against numpy, pow2 and non-pow2 P."""
    if coll == "barrier":
        pytest.skip("barrier moves no data")
    if (coll, algorithm) == ("alltoall", "pairwise") and P & (P - 1):
        pytest.skip("pairwise requires power-of-two nranks")
    check(perlmutter_cpu(), TWO_SIDED, coll, algorithm, P, 5)


@pytest.mark.parametrize(("coll", "algorithm"), ALL_PAIRS)
def test_matches_numpy_on_shmem(coll, algorithm):
    """Spot-check the same truth through the GPU-initiated backend."""
    if coll == "barrier":
        pytest.skip("barrier moves no data")
    check(perlmutter_gpu(), SHMEM, coll, algorithm, 4, 3)


@pytest.mark.parametrize("op", ["sum", "prod", "max", "min"])
@pytest.mark.parametrize("coll", ["allreduce", "reduce_scatter"])
def test_reduction_ops(coll, op):
    for algorithm in ALGORITHMS[coll]:
        check(perlmutter_cpu(), TWO_SIDED, coll, algorithm, 4, 6, op=op)


@pytest.mark.parametrize("root", [0, 1, 4])
@pytest.mark.parametrize("algorithm", ALGORITHMS["broadcast"])
def test_broadcast_roots(algorithm, root):
    check(perlmutter_cpu(), TWO_SIDED, "broadcast", algorithm, 5, 4,
          root=root)


@pytest.mark.parametrize("stripes", [2, 3])
@pytest.mark.parametrize(("coll", "algorithm"), sorted(STRIPEABLE))
def test_striped_rings(coll, algorithm, stripes):
    """Striping splits round messages; the values must still be exact."""
    check(perlmutter_cpu(), TWO_SIDED, coll, algorithm, 4, 6,
          stripes=stripes)


def test_barrier_runs_everywhere():
    for algorithm in ALGORITHMS["barrier"]:
        r = run_collective(
            perlmutter_cpu(), TWO_SIDED, "barrier", nranks=5,
            algorithm=algorithm,
        )
        assert r.nelems == 0
        assert r.stats.bytes_moved == 0.0
        assert r.stats.messages > 0
        assert r.time > 0
        assert r.alg_bandwidth == 0.0


def test_iters_accumulate_stats():
    r1 = run_collective(perlmutter_cpu(), TWO_SIDED, "allreduce", nranks=4,
                        nelems=8, algorithm="ring", iters=1)
    r3 = run_collective(perlmutter_cpu(), TWO_SIDED, "allreduce", nranks=4,
                        nelems=8, algorithm="ring", iters=3)
    assert r3.stats.ops == 3 * r1.stats.ops
    assert r3.stats.messages == 3 * r1.stats.messages
    assert r3.stats.bytes_moved == 3 * r1.stats.bytes_moved
    # Per-iteration time stays in the same regime (fresh slots per op;
    # only warm-up/pipelining effects may shift it).
    assert 0.5 * r1.time <= r3.time <= 2.0 * r1.time
