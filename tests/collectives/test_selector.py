"""The LogGP algorithm selector: picks argmin, explains itself.

The selector's contract: evaluate every candidate under the Hockney
alpha-beta model from the machine's calibrated LogGP, return the
cheapest (preference order breaks ties), and show its work via
:meth:`Selection.explain`.
"""

from __future__ import annotations

import pytest

from repro.collectives import explain_collective, run_collective
from repro.collectives.plan import ALGORITHMS
from repro.collectives.selector import model_time, select
from repro.machines import perlmutter_cpu, perlmutter_gpu
from repro.transport import SHMEM, TWO_SIDED


@pytest.mark.parametrize("coll", sorted(ALGORITHMS))
@pytest.mark.parametrize("nbytes", [8, 4096, 1 << 22])
def test_selects_argmin_of_its_own_cost_table(coll, nbytes):
    sel = select(coll, nranks=4, nbytes=nbytes, machine=perlmutter_cpu(),
                 runtime=TWO_SIDED)
    best = min(sel.costs, key=lambda c: c[1])
    assert sel.algorithm == best[0]
    assert dict(sel.costs)[sel.algorithm] == best[1]


def test_size_regimes_flip_the_allreduce_choice():
    """Small messages are alpha-bound (recursive doubling: log P rounds);
    large ones are beta-bound (ring: 1.5x fewer wire bytes at P=4)."""
    m = perlmutter_cpu()
    small = select("allreduce", nranks=4, nbytes=8, machine=m,
                   runtime=TWO_SIDED)
    large = select("allreduce", nranks=4, nbytes=64 << 20, machine=m,
                   runtime=TWO_SIDED)
    assert small.algorithm == "recursive_doubling"
    assert large.algorithm == "ring"


def test_barrier_always_dissemination():
    """Dissemination is Lc rounds, the tree 2Lc — never a tie to lose."""
    for P in (2, 3, 8, 17):
        sel = select("barrier", nranks=P, nbytes=0, machine=perlmutter_cpu(),
                     runtime=TWO_SIDED)
        assert sel.algorithm == "dissemination"


def test_pairwise_skipped_for_non_pow2():
    sel = select("alltoall", nranks=6, nbytes=1024, machine=perlmutter_cpu(),
                 runtime=TWO_SIDED)
    assert sel.algorithm == "ring"
    assert [a for a, _ in sel.costs] == ["ring"]
    # On a power of two the tie goes to the preference order: pairwise.
    sel = select("alltoall", nranks=8, nbytes=1024, machine=perlmutter_cpu(),
                 runtime=TWO_SIDED)
    assert sel.algorithm == "pairwise"


def test_single_rank_costs_nothing():
    sel = select("allreduce", nranks=1, nbytes=1 << 20,
                 machine=perlmutter_cpu(), runtime=TWO_SIDED)
    assert sel.alpha == 0.0 and sel.beta == 0.0
    assert all(t == 0.0 for _, t in sel.costs)


def test_explain_reports_the_choice():
    sel = explain_collective(perlmutter_gpu(), SHMEM, "allreduce", nranks=4,
                             nbytes=1 << 20)
    text = sel.explain()
    assert "<- selected" in text
    assert sel.algorithm in text
    assert "alpha=" in text and "beta=" in text
    for alg in ALGORITHMS["allreduce"]:
        assert alg in text
    # Exactly one candidate is marked selected.
    assert text.count("<- selected") == 1


def test_auto_threads_selection_into_the_result():
    m = perlmutter_cpu()
    r = run_collective(m, TWO_SIDED, "allreduce", nranks=4, nelems=512)
    assert r.selection is not None
    assert r.algorithm == r.selection.algorithm
    explicit = run_collective(m, TWO_SIDED, "allreduce", nranks=4, nelems=512,
                              algorithm="ring")
    assert explicit.selection is None
    assert explicit.algorithm == "ring"


def test_explain_matches_run_auto():
    """explain_collective predicts exactly what run(algorithm='auto') does."""
    m = perlmutter_gpu()
    for nbytes in (64, 1 << 20):
        sel = explain_collective(m, SHMEM, "allgather", nranks=4,
                                 nbytes=nbytes)
        r = run_collective(m, SHMEM, "allgather", nranks=4, nbytes=nbytes)
        assert r.algorithm == sel.algorithm


def test_model_time_alpha_beta_decomposition():
    """Barrier is pure alpha; bandwidth term scales with beta."""
    assert model_time("barrier", "dissemination", 8, 0, 2e-6, 1e-10) == (
        pytest.approx(3 * 2e-6)
    )
    t1 = model_time("allreduce", "ring", 4, 1 << 20, 1e-6, 1e-10)
    t2 = model_time("allreduce", "ring", 4, 1 << 20, 1e-6, 2e-10)
    # Doubling beta doubles only the wire term: 2(P-1) alpha stays.
    assert t2 - t1 == pytest.approx(2 * 3 / 4 * (1 << 20) * 1e-10)
