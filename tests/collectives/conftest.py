"""Fixtures for the collectives suite.

The parity tests need one machine that carries *every* runtime cost
table so the same schedule can run on every backend.  No measured
machine does (perlmutter-cpu has the MPI pair, the GPU machines have
shmem); the fixture equips perlmutter-cpu with synthetic ``shmem`` and
``one_sided_hw`` entries cloned from its one-sided costs — the
:class:`~repro.collectives.core.CollectiveStats` accounting under test
is backend-independent, so the cost numbers themselves are irrelevant,
they only have to exist for the job to build.  ``stream_triggered``
needs no entry at all: its profile derives lazily from the calibrated
ones (see :func:`repro.comm.stream.derive_stream_costs`).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.machines import perlmutter_cpu
from repro.transport import (
    ONE_SIDED,
    ONE_SIDED_HW,
    SHMEM,
    STREAM_TRIGGERED,
    TWO_SIDED,
)

ALL_RUNTIMES = (TWO_SIDED, ONE_SIDED, SHMEM, ONE_SIDED_HW, STREAM_TRIGGERED)


@pytest.fixture
def cpu_all_runtimes():
    """perlmutter-cpu with every registered backend runnable on it."""
    m = perlmutter_cpu()
    one = m.runtimes[ONE_SIDED]
    signal = dataclasses.replace(
        one,
        put_signal=one.put,
        wait_wakeup=1.0e-6,
        poll_slot=0.0,
        wait_poll=2.0e-7,
    )
    m.runtimes[SHMEM] = signal
    m.runtimes[ONE_SIDED_HW] = signal
    return m


@pytest.fixture
def rank_values():
    """Deterministic per-rank integer-valued input vectors."""

    def make(P, length, seed=0):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(-20, 20, size=length).astype(np.float64)
            for _ in range(P)
        ]

    return make
