"""ResultCache: content-addressed keys, durability, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.sweep import ResultCache, SweepSpec
from repro.sweep import cache as cache_mod


def _runner(params, seed):
    return {"v": params["x"]}


def _spec(**kwargs):
    defaults = dict(name="t", runner=_runner, points=[{"x": 1}])
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _one_key(cache, spec):
    (pt,) = spec.iter_points()
    return cache.key_for(spec, pt)


class TestKeys:
    def test_key_deterministic(self, tmp_path):
        c = ResultCache(tmp_path)
        assert _one_key(c, _spec()) == _one_key(c, _spec())

    def test_key_changes_with_params(self, tmp_path):
        c = ResultCache(tmp_path)
        assert _one_key(c, _spec()) != _one_key(c, _spec(points=[{"x": 2}]))

    def test_key_changes_with_sweep_version(self, tmp_path):
        c = ResultCache(tmp_path)
        assert _one_key(c, _spec()) != _one_key(c, _spec(version=2))

    def test_key_changes_with_machine_fingerprint(self, tmp_path, monkeypatch):
        c = ResultCache(tmp_path)
        spec = _spec(points=[{"machine": "perlmutter-cpu"}])
        before = _one_key(c, spec)
        monkeypatch.setattr(
            cache_mod, "machine_fingerprint", lambda name: "recalibrated"
        )
        assert _one_key(c, spec) != before

    def test_key_ignores_unreferenced_machines(self, tmp_path):
        # Only machine_params values enter the key; other params are data.
        c = ResultCache(tmp_path)
        a = _spec(points=[{"machine": "perlmutter-cpu", "x": 1}])
        b = _spec(points=[{"machine": "summit-cpu", "x": 1}])
        assert _one_key(c, a) != _one_key(c, b)


class TestStore:
    def test_round_trip_and_counters(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        assert c.get(key) is None
        c.put(key, {"v": 1.5, "rows": [[1, 2]]})
        assert c.get(key) == {"v": 1.5, "rows": [[1, 2]]}
        assert c.stats() == {"hits": 1, "misses": 1, "write_errors": 0}

    def test_two_level_fanout_layout(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        c.put(key, {"v": 1})
        assert (tmp_path / key[:2] / f"{key}.json").is_file()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        c.put(key, {"v": 1})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{truncated")
        assert c.get(key) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        path = tmp_path / key[:2] / f"{key}.json"
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps([1, 2, 3]))
        assert c.get(key) is None

    def test_no_tmp_droppings_after_put(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        c.put(key, {"v": 1})
        assert not list(tmp_path.rglob("*.tmp"))


class TestWriteResilience:
    def test_oserror_counted_and_warned_once(self, tmp_path, monkeypatch):
        import warnings

        import repro.sweep.cache as cachemod

        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())

        def _boom(**kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(cachemod.tempfile, "mkstemp", _boom)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            c.put(key, {"v": 1})
            c.put(key, {"v": 2})
        assert c.write_errors == 2
        assert c.stats()["write_errors"] == 2
        warned = [w for w in caught if "continuing uncached" in str(w.message)]
        assert len(warned) == 1  # warned once, not per write

    def test_oserror_feeds_obs_counter(self, tmp_path, monkeypatch):
        import warnings

        import repro.sweep.cache as cachemod
        from repro import obs

        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        monkeypatch.setattr(
            cachemod.tempfile,
            "mkstemp",
            lambda **kw: (_ for _ in ()).throw(OSError("nope")),
        )
        with obs.observe(obs.Obs()) as session:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                c.put(key, {"v": 1})
        assert session.metrics.snapshot()["sweep.cache.write_errors"] == 1.0

    def test_failed_write_still_reads_as_miss(self, tmp_path, monkeypatch):
        import warnings

        import repro.sweep.cache as cachemod

        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        monkeypatch.setattr(
            cachemod.tempfile,
            "mkstemp",
            lambda **kw: (_ for _ in ()).throw(OSError("nope")),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            c.put(key, {"v": 1})
        assert c.get(key) is None

    def test_serialisation_bug_still_raises(self, tmp_path):
        c = ResultCache(tmp_path)
        key = _one_key(c, _spec())
        with pytest.raises(TypeError):
            c.put(key, {"v": object()})
