"""SweepSpec/SweepPoint: grid expansion, keys, seeds, canonical JSON."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sweep import SweepSpec
from repro.sweep.spec import canonical_json


def _runner(params, seed):
    return {"ok": True}


class TestCanonicalJson:
    def test_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_become_lists(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_numpy_scalars(self):
        assert canonical_json(np.float64(1.5)) == canonical_json(1.5)
        assert canonical_json(np.int64(3)) == canonical_json(3)

    def test_rejects_non_jsonable(self):
        with pytest.raises(TypeError):
            canonical_json(object())


class TestGridExpansion:
    def test_last_axis_varies_fastest(self):
        spec = SweepSpec(
            name="t", runner=_runner,
            axes={"a": (1, 2), "b": ("x", "y")},
        )
        combos = [(p.params_dict["a"], p.params_dict["b"])
                  for p in spec.iter_points()]
        assert combos == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_explicit_points_follow_axes(self):
        spec = SweepSpec(
            name="t", runner=_runner,
            axes={"a": (1,)}, points=[{"a": 99}],
        )
        assert [p.params_dict["a"] for p in spec.iter_points()] == [1, 99]

    def test_common_merged_and_overridable(self):
        spec = SweepSpec(
            name="t", runner=_runner,
            points=[{"a": 1}, {"a": 2, "iters": 9}],
            common={"iters": 3},
        )
        pts = spec.iter_points()
        assert pts[0].params_dict == {"iters": 3, "a": 1}
        assert pts[1].params_dict == {"iters": 9, "a": 2}

    def test_empty_spec_yields_no_points(self):
        assert SweepSpec(name="t", runner=_runner).iter_points() == []

    def test_machine_names_only_string_params(self):
        spec = SweepSpec(
            name="t", runner=_runner,
            points=[{"machine": "perlmutter-cpu"}, {"machine": None}],
        )
        pts = spec.iter_points()
        assert spec.machine_names(pts[0]) == ["perlmutter-cpu"]
        assert spec.machine_names(pts[1]) == []


class TestPointIdentity:
    def _point(self, **params):
        spec = SweepSpec(name="t", runner=_runner, points=[params])
        return spec.iter_points()[0]

    def test_key_stable_across_param_order(self):
        a = self._point(x=1, y=2)
        b = self._point(y=2, x=1)
        # insertion order differs, canonical key must not
        assert a.key == b.key

    def test_seed_deterministic_and_distinct(self):
        a = self._point(x=1)
        assert a.seed == self._point(x=1).seed
        assert a.seed != self._point(x=2).seed
        assert a.seed >= 0

    def test_runner_id_names_the_module(self):
        assert self._point(x=1).runner_id == f"{__name__}:_runner"

    def test_label_mentions_sweep_and_params(self):
        label = self._point(x=1).label()
        assert "t(" in label and "x=1" in label
