"""run_sweep: serial/parallel identity, caching, failures, obs feeding."""

from __future__ import annotations

import pytest

from repro import obs
from repro.sweep import (
    ResultCache,
    SweepError,
    SweepSpec,
    current_execution,
    execution,
    run_sweep,
)


# Module-level runners: process-pool workers pickle them by reference.
def _square(params, seed):
    return {"y": params["x"] ** 2, "seed": seed}


def _fail_on_two(params, seed):
    if params["x"] == 2:
        raise ValueError("x=2 is cursed")
    return {"y": params["x"]}


def _spec(xs=(1, 2, 3, 4), runner=_square):
    return SweepSpec(name="unit", runner=runner, axes={"x": tuple(xs)})


def _values(results):
    return [(r.params, r.value) for r in results]


class TestSerial:
    def test_grid_order_and_values(self):
        results = run_sweep(_spec())
        assert [r.params["x"] for r in results] == [1, 2, 3, 4]
        assert [r.value["y"] for r in results] == [1, 4, 9, 16]
        assert all(not r.cached for r in results)

    def test_seeds_are_point_derived(self):
        a = run_sweep(_spec())
        b = run_sweep(_spec())
        assert [r.value["seed"] for r in a] == [r.value["seed"] for r in b]
        assert len({r.value["seed"] for r in a}) == len(a)

    def test_failure_raises_sweep_error_with_label(self):
        with pytest.raises(SweepError, match=r"unit\(x=2\)"):
            run_sweep(_spec(runner=_fail_on_two))

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_spec(), jobs=0)


class TestParallel:
    def test_identical_to_serial(self):
        serial = run_sweep(_spec(range(1, 9)))
        parallel = run_sweep(_spec(range(1, 9)), jobs=2)
        assert _values(serial) == _values(parallel)

    def test_ambient_execution_config(self):
        with execution(jobs=2):
            assert current_execution().jobs == 2
            results = run_sweep(_spec())
        assert _values(results) == _values(run_sweep(_spec()))

    def test_pool_reused_across_sweeps(self):
        with execution(jobs=2) as cfg:
            run_sweep(_spec())
            pool = cfg._pool
            run_sweep(_spec((5, 6, 7)))
            assert cfg._pool is pool

    def test_failure_raises_sweep_error(self):
        with pytest.raises(SweepError, match="cursed"):
            run_sweep(_spec(runner=_fail_on_two), jobs=2)


class TestCaching:
    def test_second_run_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(_spec(), cache=cache)
        warm = run_sweep(_spec(), cache=cache)
        assert _values(cold) == _values(warm)
        assert all(not r.cached for r in cold)
        assert all(r.cached and r.duration == 0.0 for r in warm)
        assert cache.stats() == {"hits": 4, "misses": 4}

    def test_parallel_run_fills_cache_serial_reads_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), jobs=2, cache=cache)
        warm = run_sweep(_spec(), cache=cache)
        assert all(r.cached for r in warm)

    def test_changed_param_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        fresh = run_sweep(_spec(xs=(1, 2, 3, 4, 5)), cache=cache)
        assert [r.cached for r in fresh] == [True] * 4 + [False]


class TestObs:
    def test_metrics_fed_into_ambient_session(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)  # warm the cache outside the session
        with obs.observe(obs.Obs()) as session:
            run_sweep(_spec(), cache=cache)
            snap = session.metrics.snapshot()
        assert snap["sweep.points.completed"] == 4.0
        assert snap["sweep.cache.hits"] == 4.0
        assert snap["sweep.cache.misses"] == 0.0
        assert "sweep.unit.wall_seconds" in snap

    def test_span_opened_per_sweep(self):
        with obs.observe(obs.Obs()) as session:
            run_sweep(_spec())
        assert "sweep.unit" in session.spans.totals()

    def test_progress_lines(self):
        lines = []
        run_sweep(_spec(), progress=lines.append)
        assert len(lines) == 2
        assert "4 points" in lines[0]
        assert lines[1].startswith("[sweep] unit:")
