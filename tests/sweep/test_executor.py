"""run_sweep: serial/parallel identity, caching, failures, obs feeding."""

from __future__ import annotations

import pytest

from repro import obs
from repro.sweep import (
    ResultCache,
    SweepError,
    SweepSpec,
    current_execution,
    execution,
    run_sweep,
)


# Module-level runners: process-pool workers pickle them by reference.
def _square(params, seed):
    return {"y": params["x"] ** 2, "seed": seed}


def _fail_on_two(params, seed):
    if params["x"] == 2:
        raise ValueError("x=2 is cursed")
    return {"y": params["x"]}


def _spec(xs=(1, 2, 3, 4), runner=_square):
    return SweepSpec(name="unit", runner=runner, axes={"x": tuple(xs)})


def _values(results):
    return [(r.params, r.value) for r in results]


class TestSerial:
    def test_grid_order_and_values(self):
        results = run_sweep(_spec())
        assert [r.params["x"] for r in results] == [1, 2, 3, 4]
        assert [r.value["y"] for r in results] == [1, 4, 9, 16]
        assert all(not r.cached for r in results)

    def test_seeds_are_point_derived(self):
        a = run_sweep(_spec())
        b = run_sweep(_spec())
        assert [r.value["seed"] for r in a] == [r.value["seed"] for r in b]
        assert len({r.value["seed"] for r in a}) == len(a)

    def test_failure_raises_sweep_error_with_label(self):
        with pytest.raises(SweepError, match=r"unit\(x=2\)"):
            run_sweep(_spec(runner=_fail_on_two))

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError):
            run_sweep(_spec(), jobs=0)


class TestParallel:
    def test_identical_to_serial(self):
        serial = run_sweep(_spec(range(1, 9)))
        parallel = run_sweep(_spec(range(1, 9)), jobs=2)
        assert _values(serial) == _values(parallel)

    def test_ambient_execution_config(self):
        with execution(jobs=2):
            assert current_execution().jobs == 2
            results = run_sweep(_spec())
        assert _values(results) == _values(run_sweep(_spec()))

    def test_pool_reused_across_sweeps(self):
        with execution(jobs=2) as cfg:
            run_sweep(_spec())
            pool = cfg._pool
            run_sweep(_spec((5, 6, 7)))
            assert cfg._pool is pool

    def test_failure_raises_sweep_error(self):
        with pytest.raises(SweepError, match="cursed"):
            run_sweep(_spec(runner=_fail_on_two), jobs=2)


class TestCaching:
    def test_second_run_all_hits(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep(_spec(), cache=cache)
        warm = run_sweep(_spec(), cache=cache)
        assert _values(cold) == _values(warm)
        assert all(not r.cached for r in cold)
        assert all(r.cached and r.duration == 0.0 for r in warm)
        assert cache.stats() == {"hits": 4, "misses": 4, "write_errors": 0}

    def test_parallel_run_fills_cache_serial_reads_it(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), jobs=2, cache=cache)
        warm = run_sweep(_spec(), cache=cache)
        assert all(r.cached for r in warm)

    def test_changed_param_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        fresh = run_sweep(_spec(xs=(1, 2, 3, 4, 5)), cache=cache)
        assert [r.cached for r in fresh] == [True] * 4 + [False]


class TestObs:
    def test_metrics_fed_into_ambient_session(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(), cache=cache)  # warm the cache outside the session
        with obs.observe(obs.Obs()) as session:
            run_sweep(_spec(), cache=cache)
            snap = session.metrics.snapshot()
        assert snap["sweep.points.completed"] == 4.0
        assert snap["sweep.cache.hits"] == 4.0
        assert snap["sweep.cache.misses"] == 0.0
        assert "sweep.unit.wall_seconds" in snap

    def test_span_opened_per_sweep(self):
        with obs.observe(obs.Obs()) as session:
            run_sweep(_spec())
        assert "sweep.unit" in session.spans.totals()

    def test_progress_lines(self):
        lines = []
        run_sweep(_spec(), progress=lines.append)
        assert len(lines) == 2
        assert "4 points" in lines[0]
        assert lines[1].startswith("[sweep] unit:")


# -- resilience ---------------------------------------------------------


def _crash_on_two(params, seed):
    if params["x"] == 2:
        import os

        os._exit(42)  # simulates a segfaulting worker
    return {"y": params["x"]}


def _sleep_on_two(params, seed):
    if params["x"] == 2:
        import time

        time.sleep(30)
    return {"y": params["x"]}


class TestErrorCapture:
    def test_serial_keep_records_and_continues(self):
        results = run_sweep(_spec(runner=_fail_on_two), on_error="keep")
        assert [r.params["x"] for r in results] == [1, 2, 3, 4]
        bad = results[1]
        assert not bad.ok and "cursed" in bad.error and bad.value == {}
        assert all(r.ok for r in results if r.params["x"] != 2)

    def test_parallel_keep_records_and_continues(self):
        results = run_sweep(_spec(runner=_fail_on_two), jobs=2, on_error="keep")
        assert sum(not r.ok for r in results) == 1
        assert sum(r.ok for r in results) == 3

    def test_failed_point_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(_spec(runner=_fail_on_two), cache=cache, on_error="keep")
        again = run_sweep(_spec(runner=_fail_on_two), cache=cache, on_error="keep")
        assert [r.cached for r in again] == [True, False, True, True]

    def test_failed_count_in_metrics_and_progress(self):
        from repro import obs

        lines = []
        with obs.observe(obs.Obs()) as session:
            run_sweep(
                _spec(runner=_fail_on_two), on_error="keep", progress=lines.append
            )
        assert session.metrics.snapshot()["sweep.points.failed"] == 1.0
        assert "1 FAILED" in lines[-1]

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_sweep(_spec(), on_error="ignore")


class TestWorkerCrash:
    def test_crash_keeps_other_points(self):
        results = run_sweep(_spec(runner=_crash_on_two), jobs=2, on_error="keep")
        by_x = {r.params["x"]: r for r in results}
        assert not by_x[2].ok and "BrokenProcessPool" in by_x[2].error
        assert all(by_x[x].ok and by_x[x].value == {"y": x} for x in (1, 3, 4))

    def test_crash_raises_by_default(self):
        with pytest.raises(SweepError, match="worker pool crashed"):
            run_sweep(_spec(runner=_crash_on_two), jobs=2)

    def test_shared_pool_recovers_for_next_sweep(self):
        with execution(jobs=2):
            run_sweep(_spec(runner=_crash_on_two), on_error="keep")
            healthy = run_sweep(_spec())
        assert [r.value["y"] for r in healthy] == [1, 4, 9, 16]


class TestTimeout:
    def test_timed_out_point_recorded(self):
        import time

        t0 = time.perf_counter()
        results = run_sweep(
            _spec(runner=_sleep_on_two), jobs=2, on_error="keep", timeout=1.0
        )
        assert time.perf_counter() - t0 < 10.0  # never waits out the sleep
        by_x = {r.params["x"]: r for r in results}
        assert "timed out" in by_x[2].error
        assert all(by_x[x].ok for x in (1, 3, 4))

    def test_timeout_raises_by_default(self):
        with pytest.raises(SweepError, match="timed out"):
            run_sweep(_spec(runner=_sleep_on_two), jobs=2, timeout=1.0)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            run_sweep(_spec(), timeout=0.0)


class TestSpill:
    def _lines(self, path):
        import json

        return [json.loads(line) for line in path.read_text().splitlines()]

    def test_every_point_spilled_in_grid_order(self, tmp_path):
        out = tmp_path / "sweep.jsonl"
        results = run_sweep(_spec(), spill_path=out)
        lines = self._lines(out)
        assert [ln["params"]["x"] for ln in lines] == [1, 2, 3, 4]
        assert [ln["value"]["y"] for ln in lines] == [1, 4, 9, 16]
        assert all(ln["sweep"] == "unit" for ln in lines)
        assert all(not ln["cached"] for ln in lines)
        assert [ln["seed"] for ln in lines] == [r.point.seed for r in results]

    def test_cache_resume_rewrites_complete_file(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        first = tmp_path / "first.jsonl"
        run_sweep(_spec(), cache=cache, spill_path=first)
        resumed = tmp_path / "resumed.jsonl"
        run_sweep(_spec(), cache=cache, spill_path=resumed)
        a, b = self._lines(first), self._lines(resumed)
        assert all(ln["cached"] for ln in b)
        assert [ln["value"] for ln in a] == [ln["value"] for ln in b]
        assert [ln["params"] for ln in a] == [ln["params"] for ln in b]

    def test_failures_spilled_with_error(self, tmp_path):
        out = tmp_path / "keep.jsonl"
        run_sweep(_spec(runner=_fail_on_two), on_error="keep", spill_path=out)
        by_x = {ln["params"]["x"]: ln for ln in self._lines(out)}
        assert "ValueError" in by_x[2]["error"]
        assert by_x[2]["value"] == {}
        assert by_x[1]["error"] is None

    def test_raise_path_keeps_partial_file(self, tmp_path):
        out = tmp_path / "partial.jsonl"
        with pytest.raises(SweepError):
            run_sweep(_spec(runner=_fail_on_two), spill_path=out)
        lines = self._lines(out)
        assert len(lines) == 1 and lines[0]["params"]["x"] == 1

    def test_parallel_spill_covers_every_point(self, tmp_path):
        out = tmp_path / "par.jsonl"
        run_sweep(_spec(), jobs=2, spill_path=out)
        lines = sorted(self._lines(out), key=lambda ln: ln["index"])
        assert [ln["value"]["y"] for ln in lines] == [1, 4, 9, 16]

    def test_parent_directory_created(self, tmp_path):
        out = tmp_path / "deep" / "nested" / "sweep.jsonl"
        run_sweep(_spec(), spill_path=out)
        assert len(self._lines(out)) == 4
