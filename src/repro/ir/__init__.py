"""``repro.ir`` — a typed communication-pattern IR with verified passes.

ROADMAP item 4: the transport specs (HaloSpec/MailboxSpec/BatchSpec/
AtomicDomainSpec) promoted from passive dataclasses to a small program
representation — ops grouped into per-iteration regions — plus a pass
pipeline whose rewrites are grounded in the paper's central finding
(the *same* pattern costs very differently per runtime, so the wins
live in pattern-level rewrites):

* **coalesce** — merge homogeneous small puts/sends into one bulk
  message (hits the ``repro.perf`` engine);
* **overlap** — schedule halo-independent compute against in-flight
  transfers;
* **sync-elide** — drop epoch fences provably redundant under the
  backend's :class:`~repro.transport.api.BackendCaps`;
* **auto-backend** — per-machine backend selection via the same
  Hockney grounding as :mod:`repro.collectives.selector`.

All passes are off by default: the workload runners emit IR and lower
it through :func:`run_program`, and with the empty pipeline the lowering
is byte-identical to the pre-IR hand-written runners (pinned by
``tests/regression/test_ir_parity.py``).  Opt in per scope::

    from repro import ir

    with ir.passes():                      # coalesce, overlap, sync-elide
        res = run_flood(machine, "one_sided", 64, 1024)

    with ir.passes(["coalesce"]), ir.collect() as reports:
        run_flood(machine, "one_sided", 64, 1024)
    print(reports[0].explain())

or through the facade (``Session(passes=True)``) and the CLI
(``repro ir explain <exp>``).  See docs/IR.md.
"""

from repro.ir import ops
from repro.ir.config import collect, current_pipeline, passes
from repro.ir.cost import CostModel, program_cost
from repro.ir.explain import IRReport, explain_all
from repro.ir.lower import Emitter, IRRun, lower_rank, run_program
from repro.ir.pipeline import (
    DEFAULT_PASSES,
    AutoBackendPass,
    CoalescePass,
    OverlapPass,
    PassPipeline,
    Rewrite,
    SyncElidePass,
    build_pipeline,
)
from repro.ir.program import IRProgram, Region, region_for_all, static_program

__all__ = [
    "ops",
    "AutoBackendPass",
    "CoalescePass",
    "CostModel",
    "DEFAULT_PASSES",
    "Emitter",
    "IRProgram",
    "IRReport",
    "IRRun",
    "OverlapPass",
    "PassPipeline",
    "Region",
    "Rewrite",
    "SyncElidePass",
    "build_pipeline",
    "collect",
    "current_pipeline",
    "explain_all",
    "lower_rank",
    "passes",
    "program_cost",
    "region_for_all",
    "run_program",
    "static_program",
]
