"""The pass catalog: coalesce, overlap, sync-elide, auto-backend.

Every pass maps a *static* :class:`IRProgram` to a rewritten program
plus :class:`Rewrite` records (kind, how many sites merged/moved/
elided, and the modeled before/after cost around the application).
Passes fire only when the rewrite is provably semantics-preserving for
the lowering in :mod:`repro.ir.lower` — the conditions are documented
per pass and pinned by the property suite (cost never increases;
running a pipeline twice equals running it once).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.ir import ops as O
from repro.ir.cost import program_cost
from repro.ir.program import IRProgram, Region
from repro.transport.api import BatchSpec

__all__ = [
    "Rewrite",
    "Pass",
    "CoalescePass",
    "OverlapPass",
    "SyncElidePass",
    "AutoBackendPass",
    "PassPipeline",
    "DEFAULT_PASSES",
    "build_pipeline",
]

# Coalesced batches above this stop being "small messages" — the bulk
# engine's win flattens out and pinning the cap keeps the rewrite inside
# the span of the paper's bandwidth plots.
_COALESCE_BYTE_CAP = 4 * 1024 * 1024


@dataclass(frozen=True)
class Rewrite:
    """One fired rewrite: what, how many sites, and the modeled win."""

    pass_name: str
    kind: str
    count: int
    detail: str
    before: float
    after: float

    @property
    def win(self) -> float:
        return self.before - self.after


class Pass:
    """Base: ``run`` returns ``(program, rewrites)``; no-op by default."""

    name = "pass"

    def run(self, program: IRProgram, machine):  # pragma: no cover
        return program, []

    def _record(self, program, rewritten, machine, kind, count, detail):
        return Rewrite(
            pass_name=self.name,
            kind=kind,
            count=count,
            detail=detail,
            before=program_cost(program, machine),
            after=program_cost(rewritten, machine),
        )


def _map_regions(program: IRProgram, fn) -> IRProgram:
    return program.with_(regions=tuple(fn(r) for r in program.regions))


# ---------------------------------------------------------------------------
# coalesce
# ---------------------------------------------------------------------------


class CoalescePass(Pass):
    """Merge homogeneous small messages into one bulk-engine message.

    Two shapes:

    * **batch**: ``BatchPost(dst) x n, BatchCommit(dst, it)`` against
      ``BatchWait(src, it, n)`` becomes one post of ``n * nbytes`` (the
      spec itself is rewritten), which every backend's batch channel
      already handles — including the ``repro.perf`` bulk engine.
      Fires only when n is uniform across regions (the spec is global),
      n >= 2, and the merged message stays under 4 MiB.
    * **triplet**: k same-``(src, dst, tag)`` ``TripletSend`` ops in one
      region become a single ``TripletSendAgg`` carrying every payload;
      the receiver's k ``TripletRecv`` ops become one ``TripletRecvAgg``
      per aggregated sender, applied through the *same* per-payload
      handler — values and collision counts are order-independent, so
      execute-mode results are unchanged.
    """

    name = "coalesce"

    def run(self, program, machine):
        rewrites = []
        p2 = self._batch(program)
        if p2 is not None:
            rewrites.append(self._record(
                program, p2, machine, "batch",
                count=sum(1 for _ in p2.regions),
                detail=(
                    f"{program.spec.nbytes} B x n -> "
                    f"{p2.spec.nbytes} B x 1 per sync"
                ),
            ))
            program = p2
        p3, merged = self._triplets(program)
        if merged:
            rewrites.append(self._record(
                program, p3, machine, "triplet",
                count=merged,
                detail=f"{merged} tagged sends aggregated per (src, dst)",
            ))
            program = p3
        return program, rewrites

    # -- batch shape --------------------------------------------------

    def _batch(self, program):
        spec = program.spec
        if not isinstance(spec, BatchSpec):
            return None
        counts: set[int] = set()
        for region in program.regions:
            for ops in region.body:
                posts = [op for op in ops if isinstance(op, O.BatchPost)]
                waits = [op for op in ops if isinstance(op, O.BatchWait)]
                if posts:
                    # Contiguous run to a single dst, then its commit.
                    idx = [i for i, op in enumerate(ops)
                           if isinstance(op, O.BatchPost)]
                    if idx != list(range(idx[0], idx[0] + len(idx))):
                        return None
                    if len({op.dst for op in posts}) != 1:
                        return None
                    nxt = ops[idx[-1] + 1] if idx[-1] + 1 < len(ops) else None
                    if not isinstance(nxt, O.BatchCommit):
                        return None
                    counts.add(len(posts))
                for w in waits:
                    counts.add(w.n)
        if len(counts) != 1:
            return None
        n = counts.pop()
        if n < 2 or n * spec.nbytes > _COALESCE_BYTE_CAP:
            return None

        def rewrite(region: Region) -> Region:
            body = []
            for ops in region.body:
                out = []
                posted = False
                for op in ops:
                    if isinstance(op, O.BatchPost):
                        if not posted:
                            out.append(op)
                            posted = True
                    elif isinstance(op, O.BatchWait):
                        out.append(dataclasses.replace(op, n=1))
                    else:
                        out.append(op)
                body.append(tuple(out))
            return Region(region.name, tuple(body))

        p2 = _map_regions(program, rewrite)
        return p2.with_(
            spec=dataclasses.replace(spec, nbytes=n * spec.nbytes)
        )

    # -- triplet shape ------------------------------------------------

    def _triplets(self, program):
        merged_total = 0
        new_regions = []
        for region in program.regions:
            # sends per (src, dst, tag) and recv counts per (rank, tag)
            groups: dict[tuple[int, int, int], list[O.TripletSend]] = {}
            for src, ops in enumerate(region.body):
                for op in ops:
                    if isinstance(op, O.TripletSend):
                        groups.setdefault((src, op.dst, op.tag), []).append(op)
            hot_tags = {
                tag for (_, _, tag), sends in groups.items()
                if len(sends) >= 2
            }
            if not hot_tags:
                new_regions.append(region)
                continue
            senders_to: dict[tuple[int, int], int] = {}
            for (src, dst, tag), sends in groups.items():
                if tag in hot_tags:
                    senders_to[(dst, tag)] = senders_to.get((dst, tag), 0) + 1
                    merged_total += len(sends)
            body = []
            for rank, ops in enumerate(region.body):
                out: list[O.Op] = []
                last_send: dict[tuple[int, int], int] = {}
                for op in ops:
                    if isinstance(op, O.TripletSend) and op.tag in hot_tags:
                        last_send[(op.dst, op.tag)] = len(out)
                        out.append(op)  # placeholder; replaced below
                    else:
                        out.append(op)
                # Replace each group's last send with the aggregate and
                # drop the rest (the aggregate carries every payload, so
                # batching completes where the last original send sat).
                for (dst, tag), pos in sorted(
                    last_send.items(), key=lambda kv: kv[1]
                ):
                    sends = groups[(rank, dst, tag)]
                    out[pos] = O.TripletSendAgg(
                        dst=dst,
                        nbytes=float(sum(s.nbytes for s in sends)),
                        tag=tag,
                        count=len(sends),
                        payloads=tuple(s.payload for s in sends),
                    )
                out = [
                    op for i, op in enumerate(out)
                    if not (isinstance(op, O.TripletSend)
                            and op.tag in hot_tags)
                ]
                # Fold the recv side: k polls become one per agg sender.
                for tag in sorted(hot_tags):
                    tagged = [
                        (i, op) for i, op in enumerate(out)
                        if isinstance(op, O.TripletRecv) and op.tag == tag
                    ]
                    if not tagged:
                        continue
                    first_i, first_op = tagged[0]
                    n_agg = senders_to.get((rank, tag), 0)
                    drop = {i for i, _ in tagged}
                    out = [op for i, op in enumerate(out) if i not in drop]
                    aggs = [
                        O.TripletRecvAgg(tag=tag, on_payload=first_op.on_payload)
                        for _ in range(n_agg)
                    ]
                    out[first_i:first_i] = aggs
                body.append(tuple(out))
            new_regions.append(Region(region.name, tuple(body)))
        if not merged_total:
            return program, 0
        return program.with_(regions=tuple(new_regions)), merged_total


# ---------------------------------------------------------------------------
# overlap
# ---------------------------------------------------------------------------


class OverlapPass(Pass):
    """Schedule halo-independent compute against in-flight transfers.

    A ``Compute`` carrying ``interior_frac=f`` declares that fraction of
    its modeled work independent of the epoch's incoming halos.  The
    pass splits it: the interior share (model-only, no ``fn``) moves in
    front of the preceding ``HaloFinish``; the boundary share — with the
    *full* real ``fn`` — stays after it.  Execute-mode arrays are
    untouched because ``fn`` still runs entirely after the halos land;
    only the modeled clock overlaps.  The split ops carry no
    ``interior_frac``, so the pass is idempotent.
    """

    name = "overlap"

    def run(self, program, machine):
        moved = 0

        def rewrite(region: Region) -> Region:
            nonlocal moved
            body = []
            for ops in region.body:
                ops = list(ops)
                ci = next(
                    (i for i, op in enumerate(ops)
                     if isinstance(op, O.Compute)
                     and op.interior_frac is not None
                     and 0.0 < op.interior_frac < 1.0), None,
                )
                fi = None
                if ci is not None:
                    fi = next(
                        (i for i in range(ci - 1, -1, -1)
                         if isinstance(ops[i], O.HaloFinish)), None,
                    )
                if ci is None or fi is None:
                    body.append(tuple(ops))
                    continue
                op = ops[ci]
                f = op.interior_frac
                interior = O.Compute(nbytes=op.nbytes * f, flops=op.flops * f)
                boundary = O.Compute(
                    nbytes=op.nbytes * (1.0 - f),
                    flops=op.flops * (1.0 - f),
                    seconds=(None if op.seconds is None
                             else op.seconds * (1.0 - f)),
                    fn=op.fn,
                )
                if op.seconds is not None:
                    interior = dataclasses.replace(
                        interior, seconds=op.seconds * f
                    )
                ops[ci] = boundary
                ops.insert(fi, interior)
                moved += 1
                body.append(tuple(ops))
            return Region(region.name, tuple(body))

        p2 = _map_regions(program, rewrite)
        if not moved:
            return program, []
        return p2, [self._record(
            program, p2, machine, "pipeline",
            count=moved,
            detail=f"{moved} interior-compute slices moved before finish",
        )]


# ---------------------------------------------------------------------------
# sync-elide
# ---------------------------------------------------------------------------


class SyncElidePass(Pass):
    """Drop epoch-opening fences that are provably redundant.

    On backends whose caps declare ``fence_epochs`` (one-sided MPI RMA:
    ``begin``/``finish`` are both ``Win_fence``), the iteration pattern
    ``finish(it-1) ... begin(it)`` closes one epoch and immediately
    opens the next with no intervening exposure — the textbook
    ``MPI_MODE_NOPRECEDE`` collapse.  In the model this is exact:
    ``finish`` is collective, halo reads complete atomically at its exit
    timestamp, and every post-fence put delivers strictly later.  The
    pass removes ``HaloBegin`` from *every* rank of a region at once
    (fences are collective — rank counts must stay matched) and never
    touches a region containing ``HaloBegin(it=0)``, the epoch that
    first exposes the windows.

    Backends whose caps declare ``stream_ordered`` qualify too: their
    epoch-open is a device-side no-op (stream ordering already sequences
    the next iteration's puts behind the previous wait), so dropping it
    is exact as long as the endpoint's iteration counter advances at
    ``finish`` — the stream halo endpoint guarantees that.
    """

    name = "sync-elide"

    def run(self, program, machine):
        from repro.transport.registry import get_backend

        caps = get_backend(program.runtime).caps
        if not (caps.fence_epochs or caps.stream_ordered):
            return program, []
        elided = 0

        def rewrite(region: Region) -> Region:
            nonlocal elided
            begins = [
                op for ops in region.body for op in ops
                if isinstance(op, O.HaloBegin)
            ]
            if not begins or any(op.it == 0 for op in begins):
                return region
            elided += len(begins)
            return Region(region.name, tuple(
                tuple(op for op in ops if not isinstance(op, O.HaloBegin))
                for ops in region.body
            ))

        p2 = _map_regions(program, rewrite)
        if not elided:
            return program, []
        return p2, [self._record(
            program, p2, machine, "fence",
            count=elided,
            detail=f"{elided} redundant epoch-open fences removed",
        )]


# ---------------------------------------------------------------------------
# auto-backend
# ---------------------------------------------------------------------------


class AutoBackendPass(Pass):
    """Retarget a portable program to the cheapest backend on this machine.

    Reuses the collectives selector's Hockney grounding: every
    registered backend whose cost profile exists in
    ``machine.runtimes`` is scored with :func:`program_cost`; the argmin
    wins, with ties going to the incumbent.  Fires only on programs the
    builder marked ``portable`` (backend-agnostic op vocabulary).
    """

    name = "auto-backend"

    def run(self, program, machine):
        from repro.transport.registry import backend_names, get_backend

        if not program.portable:
            return program, []
        costs = []
        for name in backend_names():
            backend = get_backend(name)
            try:
                # Derived profiles (stream_triggered) resolve here even
                # though they are absent from machine.runtimes.
                machine.runtime(backend.resolve_costs_key())
            except KeyError:
                continue
            costs.append((name, program_cost(
                program, machine, runtime=name
            )))
        if not costs:
            return program, []
        incumbent = dict(costs).get(program.runtime)
        best_name, best = min(costs, key=lambda c: c[1])
        if incumbent is not None and incumbent <= best:
            return program, []
        p2 = program.with_(runtime=best_name)
        return p2, [Rewrite(
            pass_name=self.name,
            kind="retarget",
            count=1,
            detail=f"{program.runtime} -> {best_name}",
            before=incumbent if incumbent is not None else best,
            after=best,
        )]


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------

_PASSES = {
    "coalesce": CoalescePass,
    "overlap": OverlapPass,
    "sync-elide": SyncElidePass,
    "auto-backend": AutoBackendPass,
}

DEFAULT_PASSES = ("coalesce", "overlap", "sync-elide")


@dataclass(frozen=True)
class PassPipeline:
    """An ordered tuple of passes applied to every lowered static program."""

    passes: tuple[Pass, ...]

    @property
    def enabled(self) -> bool:
        return bool(self.passes)

    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def run(self, program: IRProgram, machine):
        """Apply every pass in order; returns (program, rewrites)."""
        rewrites: list[Rewrite] = []
        for p in self.passes:
            program, rws = p.run(program, machine)
            rewrites.extend(rws)
        return program, rewrites


def build_pipeline(spec=True) -> PassPipeline:
    """Normalise a pipeline spec: PassPipeline | bool | None | names.

    One ordering constraint is enforced: ``auto-backend`` runs before
    ``sync-elide`` whenever both are requested.  Retargeting changes the
    program's runtime, and sync-elide branches on the *runtime's*
    declared caps — eliding after the retarget is what keeps a pipeline
    idempotent (running it twice equals running it once) now that
    auto-backend can select caps-richer runtimes like
    ``stream_triggered``.
    """
    if isinstance(spec, PassPipeline):
        return spec
    if spec is None or spec is False:
        return PassPipeline(())
    if spec is True:
        spec = DEFAULT_PASSES
    passes = []
    for name in spec:
        if isinstance(name, Pass):
            passes.append(name)
            continue
        if name not in _PASSES:
            raise ValueError(
                f"unknown IR pass {name!r}; valid: " + ", ".join(_PASSES)
            )
        passes.append(_PASSES[name]())
    names = [p.name for p in passes]
    if "auto-backend" in names and "sync-elide" in names:
        ab, se = names.index("auto-backend"), names.index("sync-elide")
        if se < ab:
            passes.insert(se, passes.pop(ab))
    return PassPipeline(tuple(passes))
