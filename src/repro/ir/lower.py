"""Lowering: interpret IR ops onto the transport Channel/Endpoint verbs.

:func:`run_program` is the single entry point the refactored runners
call — it applies the ambient pass pipeline (unless faults force the
scalar/no-elide path, mirroring ``repro.perf.bulk_enabled``), opens the
program's channel on a fresh :class:`repro.comm.job.Job`, and lowers
each rank's ops through :func:`_exec`, which maps every op onto exactly
the endpoint calls the hand-written runners used to make.  With the
empty pipeline the lowering of a builder-produced program is
byte-identical to the pre-IR runner — the golden-parity lane pins this
across all four backends.

Dynamic programs drive an :class:`Emitter` instead: each emitter verb
constructs the op and immediately lowers it through the same ``_exec``
dispatch, so data-dependent control flow (SpTRSV wavefronts, CAS
collision handling, collective round schedules) still targets the IR
vocabulary and is counted per op kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.comm.job import Job
from repro.ir import ops as O
from repro.ir.config import current_pipeline, record_report
from repro.ir.explain import IRReport
from repro.ir.program import IRProgram

__all__ = ["Emitter", "IRRun", "run_program", "lower_rank"]


def _resolve(value, state):
    return value(state) if callable(value) else value


def _exec(op: O.Op, ep, ctx, state: dict):
    """Lower one op; returns the verb's value (generator)."""
    if isinstance(op, O.Barrier):
        yield from ctx.barrier()
    elif isinstance(op, O.Compute):
        if op.fn is not None:
            op.fn(state)
        if op.seconds is not None:
            yield from ctx.compute(seconds=op.seconds)
        else:
            yield from ctx.compute(nbytes=op.nbytes, flops=op.flops)
    elif isinstance(op, O.BatchPost):
        yield from ep.post(op.dst)
    elif isinstance(op, O.BatchCommit):
        yield from ep.commit(op.dst, op.it)
    elif isinstance(op, O.BatchWait):
        yield from ep.wait_batch(op.src, op.it, op.n)
    elif isinstance(op, O.HaloBegin):
        yield from ep.begin(op.it)
    elif isinstance(op, O.HaloPut):
        yield from ep.put(op.seg, op.dst, values=_resolve(op.values, state))
    elif isinstance(op, O.HaloFinish):
        received = yield from ep.finish(op.it)
        if op.on_done is not None:
            op.on_done(state, received)
        return received
    elif isinstance(op, O.TripletSend):
        yield from ep.post_msg(
            op.dst, nbytes=op.nbytes, tag=op.tag, payload=op.payload
        )
    elif isinstance(op, O.TripletSendAgg):
        yield from ep.post_msg(
            op.dst, nbytes=op.nbytes, tag=op.tag, payload=op.payloads
        )
    elif isinstance(op, O.TripletRecv):
        payload = yield from ep.recv_msg_poll(tag=op.tag)
        if op.on_payload is not None:
            op.on_payload(state, payload)
        return payload
    elif isinstance(op, O.TripletRecvAgg):
        payloads = yield from ep.recv_msg_poll(tag=op.tag)
        if op.on_payload is not None:
            for payload in payloads:
                op.on_payload(state, payload)
        return payloads
    elif isinstance(op, O.MsgDrain):
        yield from ep.drain()
    elif isinstance(op, O.MailboxExpect):
        ep.expect(op.msgs)
    elif isinstance(op, O.MailboxSend):
        yield from ep.send(
            op.dst, op.slot, words=op.words, values=op.values,
            meta=op.meta, tag=op.tag,
        )
    elif isinstance(op, O.MailboxRecv):
        got = yield from ep.recv()
        return got
    elif isinstance(op, O.RoundSend):
        yield from ep.send_round(
            op.dst, op.rnd, words=op.words, parts=op.parts, values=op.values
        )
    elif isinstance(op, O.RoundRecv):
        got = yield from ep.recv_round(
            op.src, op.rnd, words=op.words, parts=op.parts
        )
        return got
    elif isinstance(op, O.AtomicCas):
        old = yield from ep.cas(op.space, op.dst, op.offset, op.compare, op.value)
        return old
    elif isinstance(op, O.AtomicFaa):
        old = yield from ep.faa(op.space, op.dst, op.offset, op.value)
        return old
    elif isinstance(op, O.AtomicSwap):
        old = yield from ep.swap(op.space, op.dst, op.offset, op.value)
        return old
    elif isinstance(op, O.AtomicPublish):
        yield from ep.publish(op.space, op.dst, op.values, offset=op.offset)
    elif isinstance(op, O.AtomicStream):
        out = yield from ep.cas_stream(op.space, op.dst, op.offset, list(op.ops))
        if op.out is not None:
            state[op.out] = out
        return out
    elif isinstance(op, O.AllreduceSum):
        got = yield from ctx.allreduce_sum(_resolve(op.value, state))
        return got
    else:  # pragma: no cover - vocabulary and dispatch move together
        raise TypeError(f"no lowering for op {type(op).__name__}")


class Emitter:
    """Verb-shaped facade for dynamic programs: build op, lower it, count it.

    Every method constructs the matching IR op and immediately lowers it
    through :func:`_exec`, so dynamic bodies target the same vocabulary
    and dispatch as static programs — ``counts`` records how many ops of
    each kind the body emitted (surfaced through obs as
    ``ir.ops.<Kind>``).
    """

    def __init__(self, ep, ctx, state: dict | None = None,
                 counts: dict | None = None):
        self.ep = ep
        self.ctx = ctx
        self.state = state if state is not None else {}
        self.counts = counts if counts is not None else {}

    def emit(self, op: O.Op):
        kind = type(op).__name__
        self.counts[kind] = self.counts.get(kind, 0) + 1
        result = yield from _exec(op, self.ep, self.ctx, self.state)
        return result

    # -- job-wide ------------------------------------------------------
    def barrier(self):
        return self.emit(O.Barrier())

    def compute(self, nbytes: float = 0.0, flops: float = 0.0,
                seconds: float | None = None, fn=None):
        return self.emit(
            O.Compute(nbytes=nbytes, flops=flops, seconds=seconds, fn=fn)
        )

    def allreduce_sum(self, value):
        return self.emit(O.AllreduceSum(value=value))

    # -- mailbox -------------------------------------------------------
    def expect(self, msgs):
        return self.emit(O.MailboxExpect(n=len(msgs), msgs=msgs))

    def send(self, dst, slot, *, words, values=None, meta=None, tag=0):
        return self.emit(O.MailboxSend(
            dst=dst, slot=slot, words=words, tag=tag, values=values, meta=meta
        ))

    def recv(self):
        return self.emit(O.MailboxRecv())

    def drain(self):
        return self.emit(O.MsgDrain())

    # -- collective rounds ----------------------------------------------
    def send_round(self, dst, rnd, *, words, parts=1, values=None):
        return self.emit(O.RoundSend(
            dst=dst, rnd=rnd, words=words, parts=parts, values=values
        ))

    def recv_round(self, src, rnd, *, words, parts=1):
        return self.emit(O.RoundRecv(src=src, rnd=rnd, words=words, parts=parts))

    # -- atomics ---------------------------------------------------------
    def cas(self, space, dst, offset, compare, value):
        return self.emit(O.AtomicCas(
            space=space, dst=dst, offset=offset, compare=compare, value=value
        ))

    def faa(self, space, dst, offset, value):
        return self.emit(O.AtomicFaa(space=space, dst=dst, offset=offset, value=value))

    def swap(self, space, dst, offset, value):
        return self.emit(O.AtomicSwap(space=space, dst=dst, offset=offset, value=value))

    def publish(self, space, dst, values, *, offset=0):
        return self.emit(O.AtomicPublish(
            space=space, dst=dst, offset=offset, values=values
        ))

    def cas_stream(self, space, dst, offset, ops):
        ops = tuple(ops)
        return self.emit(O.AtomicStream(
            space=space, dst=dst, offset=offset, n=len(ops), ops=ops
        ))


def lower_rank(ctx, chan, program: IRProgram, counts: dict):
    """The per-rank generator handed to ``job.run``."""
    ep = chan.endpoint(ctx)
    state: dict = {"ctx": ctx}
    if program.setup is not None:
        program.setup(ctx, chan, ep, state)
    if program.dynamic:
        em = Emitter(ep, ctx, state, counts)
        result = yield from program.body(ctx, em, state)
        return result
    def run_op(op):
        kind = type(op).__name__
        counts[kind] = counts.get(kind, 0) + 1
        yield from _exec(op, ep, ctx, state)

    for op in program.prologue[ctx.rank]:
        yield from run_op(op)
    t0 = ctx.sim.now
    for region in program.regions:
        for op in region.body[ctx.rank]:
            yield from run_op(op)
    elapsed = ctx.sim.now - t0
    for op in program.epilogue[ctx.rank]:
        yield from run_op(op)
    if program.finalize is not None:
        return program.finalize(ctx, state, elapsed)
    return elapsed


@dataclass
class IRRun:
    """Everything a runner needs back: the job, channel, rank results,
    the (possibly rewritten) program, and the explain report."""

    program: IRProgram
    job: Job
    chan: Any
    result: Any  # repro.comm.job.JobResult
    report: IRReport


def run_program(machine, program: IRProgram, *, placement: str = "spread",
                pipeline=None) -> IRRun:
    """Optimise (ambient pipeline), lower, and run ``program``.

    ``pipeline`` overrides the ambient :func:`repro.ir.passes` scope.
    Two conditions force the empty pipeline regardless (each noted in
    the report): a non-clean ambient fault plan — loss/jitter draws are
    per-message, so rewrites that change message counts would change
    the fault stream (the same reason ``repro.perf.bulk_enabled`` falls
    back to the scalar path) — and dynamic programs, whose op stream
    only exists at run time.
    """
    from repro import obs
    from repro.faults.inject import current_plan
    from repro.ir.cost import program_cost

    pipe = pipeline if pipeline is not None else current_pipeline()
    from repro.ir.pipeline import build_pipeline

    pipe = build_pipeline(pipe)
    notes: list[str] = []
    plan = current_plan()
    if pipe.enabled and plan is not None and not plan.clean:
        notes.append("faults active: scalar/no-elide pipeline forced")
        pipe = build_pipeline(False)
    if pipe.enabled and program.dynamic:
        notes.append("dynamic program: passes skipped")
        pipe = build_pipeline(False)

    session = obs.current()
    original_runtime = program.runtime
    rewrites = ()
    before = after = None
    if pipe.enabled:
        span = session.span(f"ir.pipeline.{program.name}") if session else None
        if span is not None:
            with span:
                before = program_cost(program, machine)
                program, rewrites = pipe.run(program, machine)
                after = program_cost(program, machine)
        else:
            before = program_cost(program, machine)
            program, rewrites = pipe.run(program, machine)
            after = program_cost(program, machine)

    job = Job(machine, program.nranks, program.runtime, placement=placement)
    chan = job.channel(program.spec)
    counts: dict = {}
    result = job.run(lower_rank, chan, program, counts)

    report = IRReport(
        program=program.name,
        machine=machine.name,
        runtime=job.runtime_name,
        original_runtime=original_runtime,
        nranks=program.nranks,
        passes=pipe.names(),
        rewrites=tuple(rewrites),
        before=before,
        after=after,
        notes=tuple(notes),
    )
    record_report(report)
    if session is not None:
        m = session.metrics
        m.counter("ir.programs.lowered").inc()
        m.counter("ir.ops.lowered").inc(sum(counts.values()))
        for kind, n in counts.items():
            m.counter(f"ir.ops.{kind}").inc(n)
        for rw in rewrites:
            m.counter(f"ir.pass.{rw.pass_name}.{rw.kind}.rewrites").inc(rw.count)
    return IRRun(program=program, job=job, chan=chan, result=result,
                 report=report)
