"""The communication-pattern op vocabulary (ROADMAP item 4).

Every op is a frozen dataclass naming one transport verb (or one unit of
local work) over the existing spec vocabulary — :class:`HaloSpec`,
:class:`MailboxSpec`, :class:`BatchSpec`, :class:`AtomicDomainSpec`.
Programs (:mod:`repro.ir.program`) group ops into per-iteration regions;
the interpreter (:mod:`repro.ir.lower`) maps each op onto exactly the
endpoint-verb calls the hand-written runners used to make, so a lowering
with no passes applied is byte-identical to the pre-IR runners.

Value/callback fields are ``compare=False``: two ops are equal when they
describe the same *pattern*, regardless of which closures carry the
payload.  Callables in ``values``/``payload`` positions are resolved at
lowering time against the per-rank ``state`` dict, which is how
execute-mode programs read arrays that only exist once the job runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "Op",
    "HaloBegin",
    "HaloPut",
    "HaloFinish",
    "BatchPost",
    "BatchCommit",
    "BatchWait",
    "TripletSend",
    "TripletSendAgg",
    "TripletRecv",
    "TripletRecvAgg",
    "MsgDrain",
    "MailboxExpect",
    "MailboxSend",
    "MailboxRecv",
    "RoundSend",
    "RoundRecv",
    "AtomicCas",
    "AtomicFaa",
    "AtomicSwap",
    "AtomicPublish",
    "AtomicStream",
    "Compute",
    "Barrier",
    "AllreduceSum",
]


@dataclass(frozen=True)
class Op:
    """Base class: every IR op is immutable and hashable-by-pattern."""


# ---------------------------------------------------------------------------
# halo exchange (HaloSpec channels): BSP epochs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HaloBegin(Op):
    """Open the exchange epoch for iteration ``it`` (fence / irecv posts)."""

    it: int


@dataclass(frozen=True)
class HaloPut(Op):
    """Put one edge strip to neighbour ``dst``.

    ``values`` is ``None`` (simulate mode) or a callable
    ``state -> ndarray`` resolved at lowering time (execute mode reads
    the *current* local block, which passes must not capture early).
    """

    seg: str
    dst: int
    values: Callable[[dict], Any] | None = field(default=None, compare=False)


@dataclass(frozen=True)
class HaloFinish(Op):
    """Close the epoch; ``on_done(state, received)`` consumes the halos."""

    it: int
    on_done: Callable[[dict, dict], None] | None = field(
        default=None, compare=False
    )


# ---------------------------------------------------------------------------
# batch flood (BatchSpec channels)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchPost(Op):
    """Post one ``spec.nbytes`` message of the current batch to ``dst``."""

    dst: int


@dataclass(frozen=True)
class BatchCommit(Op):
    """Commit the posted batch for iteration ``it`` (flush + signal)."""

    dst: int
    it: int


@dataclass(frozen=True)
class BatchWait(Op):
    """Receiver side: wait for the ``n``-message batch of iteration ``it``."""

    src: int
    it: int
    n: int


# ---------------------------------------------------------------------------
# tagged small messages (AtomicDomainSpec post_msg/recv_msg_poll)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TripletSend(Op):
    """One tagged ``post_msg`` carrying a small tuple payload."""

    dst: int
    nbytes: float
    tag: int
    payload: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class TripletSendAgg(Op):
    """Coalesced form: ``count`` triplets to ``dst`` in one message.

    ``payloads`` is a tuple of the original payload tuples; the receiver's
    :class:`TripletRecvAgg` hands them to the handler one at a time, so
    per-payload semantics are unchanged — only the message count drops.
    """

    dst: int
    nbytes: float
    tag: int
    count: int
    payloads: tuple = field(default=(), compare=False)


@dataclass(frozen=True)
class TripletRecv(Op):
    """Poll-receive one tagged message; ``on_payload(state, payload)``."""

    tag: int
    on_payload: Callable[[dict, Any], None] | None = field(
        default=None, compare=False
    )


@dataclass(frozen=True)
class TripletRecvAgg(Op):
    """Receive one coalesced message and unpack every inner payload."""

    tag: int
    on_payload: Callable[[dict, Any], None] | None = field(
        default=None, compare=False
    )


@dataclass(frozen=True)
class MsgDrain(Op):
    """Complete all outstanding sends on the endpoint (``ep.drain``)."""


# ---------------------------------------------------------------------------
# mailbox (MailboxSpec) and collective rounds — dynamic-program verbs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MailboxExpect(Op):
    """Arm the receiver for this epoch's slot -> message map."""

    n: int
    msgs: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class MailboxSend(Op):
    """One notified mailbox send (``ep.send``)."""

    dst: int
    slot: int
    words: int
    tag: int = 0
    values: Any = field(default=None, compare=False)
    meta: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class MailboxRecv(Op):
    """Receive the next expected message; returns ``(meta, data)``."""


@dataclass(frozen=True)
class RoundSend(Op):
    """One collective-round send (``ep.send_round``)."""

    dst: int
    rnd: int
    words: int
    parts: int = 1
    values: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class RoundRecv(Op):
    """One collective-round receive (``ep.recv_round``); returns data."""

    src: int
    rnd: int
    words: int
    parts: int = 1


# ---------------------------------------------------------------------------
# atomics (AtomicDomainSpec)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AtomicCas(Op):
    """One remote compare-and-swap; returns the old value."""

    space: str
    dst: int
    offset: int
    compare: Any = field(default=None, compare=False)
    value: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class AtomicFaa(Op):
    """One remote fetch-and-add; returns the old value."""

    space: str
    dst: int
    offset: int
    value: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class AtomicSwap(Op):
    """One remote atomic swap; returns the old value."""

    space: str
    dst: int
    offset: int
    value: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class AtomicPublish(Op):
    """Ordered element publish into a remote space (``ep.publish``)."""

    space: str
    dst: int
    offset: int = 0
    values: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class AtomicStream(Op):
    """Back-to-back CAS stream on one remote location (``ep.cas_stream``)."""

    space: str
    dst: int
    offset: int
    n: int
    ops: tuple = field(default=(), compare=False)
    out: str | None = None  # state key for the returned old-value list


# ---------------------------------------------------------------------------
# local work and job-wide sync
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Compute(Op):
    """Advance the rank clock by modelled (nbytes/flops) or explicit time.

    ``fn(state)`` runs *before* the clock advance, exactly where the
    hand-written runners did their real numpy work.  ``interior_frac``
    marks a sweep whose leading fraction is independent of the in-flight
    halos — the hint the overlap pass consumes (and clears, so the pass
    is idempotent).
    """

    nbytes: float = 0.0
    flops: float = 0.0
    seconds: float | None = None
    fn: Callable[[dict], None] | None = field(default=None, compare=False)
    interior_frac: float | None = None


@dataclass(frozen=True)
class Barrier(Op):
    """Job-wide barrier (``ctx.barrier()``)."""


@dataclass(frozen=True)
class AllreduceSum(Op):
    """Job-wide sum; ``value(state) -> float`` resolved at lowering time."""

    value: Callable[[dict], float] | None = field(default=None, compare=False)
