"""Explain reports: which rewrites fired and the modeled win per rewrite.

Mirrors :meth:`repro.collectives.selector.Selection.explain` — a header
line naming the program and target, a model line, then one aligned row
per fired rewrite with its modeled before/after cost.  Reports are
deterministic (fixed ``%.3e`` formatting, stable row order), so the
regression lane snapshots them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IRReport", "explain_all"]


@dataclass(frozen=True)
class IRReport:
    """One lowered program's pass outcome."""

    program: str
    machine: str
    runtime: str
    original_runtime: str
    nranks: int
    passes: tuple[str, ...]
    rewrites: tuple  # of repro.ir.pipeline.Rewrite
    before: float | None  # modeled cost entering the pipeline
    after: float | None  # modeled cost leaving it
    notes: tuple[str, ...] = ()

    def explain(self) -> str:
        target = self.runtime
        if self.runtime != self.original_runtime:
            target = f"{self.original_runtime} -> {self.runtime}"
        head = (
            f"ir: {self.program}(P={self.nranks}) on "
            f"{self.machine}/{target}"
        )
        caps_line = None
        try:
            from repro.transport.registry import get_backend

            caps = get_backend(self.runtime).caps
            # Branch on capabilities, not on the backend name: only
            # runtimes with device-side completion semantics get the
            # extra line (snapshot stability for the host-driven four).
            if caps.host_bypass or caps.stream_ordered:
                caps_line = f"  caps: {caps.summary()}"
        except Exception:  # unregistered custom backend at report time
            pass
        if not self.passes:
            lines = [head + " -> passes off"]
        else:
            n_p, n_r = len(self.passes), len(self.rewrites)
            lines = [
                head
                + f" -> {n_p} pass{'es' if n_p != 1 else ''}, "
                + (f"{n_r} rewrite{'s' if n_r != 1 else ''}"
                   if n_r else "no rewrites fired")
            ]
            lines.append("  passes: " + ", ".join(self.passes))
        if caps_line is not None:
            lines.append(caps_line)
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.rewrites:
            labels = [f"{rw.pass_name}/{rw.kind}" for rw in self.rewrites]
            width = max(len(s) for s in labels)
            for label, rw in zip(labels, self.rewrites):
                lines.append(
                    f"  {label:<{width}}  x{rw.count:<6d} "
                    f"{rw.before:.3e} s -> {rw.after:.3e} s  "
                    f"(win {rw.win:.3e} s)  [{rw.detail}]"
                )
        if self.before is not None and self.after is not None:
            ratio = self.before / self.after if self.after > 0 else float("inf")
            lines.append(
                f"  total: {self.before:.3e} s -> {self.after:.3e} s "
                f"({ratio:.2f}x modeled)"
            )
        return "\n".join(lines)


def explain_all(reports) -> str:
    """Render many reports, deduplicating identical texts with a count.

    Experiments lower one program per sweep point; the interesting unit
    is the distinct (program, target, rewrites) shape, not the point
    count — so identical reports collapse to one block with ``xN``.
    """
    seen: dict[str, int] = {}
    order: list[str] = []
    for r in reports:
        text = r.explain()
        if text not in seen:
            order.append(text)
            seen[text] = 0
        seen[text] += 1
    blocks = []
    for text in order:
        n = seen[text]
        blocks.append(text if n == 1 else f"{text}\n  (x{n} identical programs)")
    return "\n\n".join(blocks)
