"""IR programs: per-rank op lists grouped into per-iteration regions.

A *static* program lists every op up front — prologue (untimed, before
the measured window opens), a sequence of :class:`Region` (the timed
iterations), and an epilogue (after the window closes, e.g. a trailing
barrier that the runner deliberately excludes from its measurement).
Static programs are what the pass pipeline rewrites.

A *dynamic* program supplies a ``body(ctx, em, state)`` generator that
emits ops through an :class:`repro.ir.lower.Emitter` as control flow
unfolds — the shape SpTRSV (data-dependent wavefronts), the hashtable
atomics path (CAS results steer collision handling) and the collective
round executors need.  Passes skip dynamic programs; the explain report
says so.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.ir.ops import Op

__all__ = ["Region", "IRProgram", "region_for_all", "static_program"]


@dataclass(frozen=True)
class Region:
    """One timed region (usually one iteration): per-rank op tuples."""

    name: str
    body: tuple[tuple[Op, ...], ...]  # indexed by rank

    def rank_ops(self, rank: int) -> tuple[Op, ...]:
        return self.body[rank]


def region_for_all(name: str, nranks: int, per_rank) -> Region:
    """Build a region from ``per_rank(rank) -> list[Op]``."""
    return Region(
        name=name, body=tuple(tuple(per_rank(r)) for r in range(nranks))
    )


@dataclass(frozen=True)
class IRProgram:
    """A complete communication-pattern program for one job.

    Attributes:
        name: workload label (appears in explain reports and obs names).
        spec: the channel spec (HaloSpec/MailboxSpec/BatchSpec/
            AtomicDomainSpec) the job opens.  Passes may *replace* it —
            coalescing n puts of b bytes rewrites ``BatchSpec(b)`` to
            ``BatchSpec(n*b)``.
        nranks: job size.
        runtime: backend name; the auto-backend pass may replace it.
        prologue/regions/epilogue: the static form (empty for dynamic).
        body: the dynamic form — ``body(ctx, em, state)`` generator.
        setup: per-rank ``setup(ctx, chan, ep, state) -> None`` run before
            the prologue (pure python: allocate local arrays, read
            ``ep.local(...)`` views — never yields).
        finalize: ``finalize(ctx, state, elapsed) -> result`` built after
            the epilogue; defaults to returning ``elapsed``.
        portable: True when the op vocabulary used is backend-agnostic,
            which is what licenses the auto-backend pass to retarget it.
        meta: free-form builder notes (e.g. execute flag) for reports.
    """

    name: str
    spec: Any
    nranks: int
    runtime: str
    prologue: tuple[tuple[Op, ...], ...] = ()
    regions: tuple[Region, ...] = ()
    epilogue: tuple[tuple[Op, ...], ...] = ()
    body: Callable | None = field(default=None, compare=False)
    setup: Callable | None = field(default=None, compare=False)
    finalize: Callable | None = field(default=None, compare=False)
    portable: bool = False
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def dynamic(self) -> bool:
        return self.body is not None

    def with_(self, **changes) -> "IRProgram":
        return replace(self, **changes)

    def op_count(self) -> int:
        """Total static ops across ranks (0 for dynamic programs)."""
        total = 0
        for part in (self.prologue, self.epilogue):
            total += sum(len(ops) for ops in part)
        for region in self.regions:
            total += sum(len(ops) for ops in region.body)
        return total


def static_program(
    name: str,
    spec: Any,
    nranks: int,
    runtime: str,
    *,
    prologue=None,
    regions=(),
    epilogue=None,
    setup=None,
    finalize=None,
    portable: bool = False,
    meta: dict | None = None,
) -> IRProgram:
    """Convenience constructor normalising per-rank op containers.

    ``prologue``/``epilogue`` accept either a per-rank sequence of op
    lists or a single op list applied to every rank (the common "all
    ranks barrier" case).
    """

    def norm(part) -> tuple[tuple[Op, ...], ...]:
        if part is None:
            return tuple(() for _ in range(nranks))
        part = list(part)
        if part and isinstance(part[0], Op):
            return tuple(tuple(part) for _ in range(nranks))
        if len(part) != nranks:
            raise ValueError(
                f"per-rank op lists must have nranks={nranks} entries, "
                f"got {len(part)}"
            )
        return tuple(tuple(ops) for ops in part)

    return IRProgram(
        name=name,
        spec=spec,
        nranks=nranks,
        runtime=runtime,
        prologue=norm(prologue),
        regions=tuple(regions),
        epilogue=norm(epilogue),
        setup=setup,
        finalize=finalize,
        portable=portable,
        meta=dict(meta or {}),
    )
