"""Ambient pass-pipeline scope and report collection.

Mirrors :mod:`repro.perf.config`: an innermost-wins stack installed by
the :func:`passes` context manager, consulted by
:func:`repro.ir.lower.run_program` at the moment a program is lowered.
The default (no scope active) is the empty pipeline — all passes off —
so every existing entry point stays byte-identical to the pre-IR
runners unless a caller opts in (``Session(passes=...)``, the
``repro ir explain`` CLI, or an explicit ``ir.passes(...)`` block).

:func:`collect` installs a report collector so callers can retrieve the
:class:`repro.ir.explain.IRReport` of every program lowered inside the
block — the CLI's ``repro ir explain <exp>`` is just an experiment run
inside ``passes(...)`` + ``collect()``.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["passes", "current_pipeline", "collect", "record_report"]

_PIPELINES: list = []
_COLLECTORS: list[list] = []


def current_pipeline():
    """The innermost active pipeline (empty pipeline when no scope)."""
    from repro.ir.pipeline import PassPipeline

    if _PIPELINES:
        return _PIPELINES[-1]
    return PassPipeline(())


@contextmanager
def passes(pipeline=True) -> Iterator[None]:
    """Install a pass pipeline for the duration of the block.

    ``pipeline`` may be a :class:`repro.ir.pipeline.PassPipeline`, ``True``
    (the default pipeline: coalesce, overlap, sync-elide), ``False`` /
    ``None`` (explicitly all-off), or a sequence of pass names —
    see :func:`repro.ir.pipeline.build_pipeline`.
    """
    from repro.ir.pipeline import build_pipeline

    _PIPELINES.append(build_pipeline(pipeline))
    try:
        yield
    finally:
        _PIPELINES.pop()


@contextmanager
def collect() -> Iterator[list]:
    """Collect the IRReport of every program lowered inside the block."""
    reports: list = []
    _COLLECTORS.append(reports)
    try:
        yield reports
    finally:
        _COLLECTORS.pop()


def record_report(report) -> None:
    """Hand a freshly built report to every active collector."""
    for sink in _COLLECTORS:
        sink.append(report)
