"""Analytic cost model for IR programs (the passes' currency).

Same Hockney grounding as :mod:`repro.collectives.selector` — per-round
latency ``alpha = L + o + o_sync`` and per-byte ``beta = G`` from the
machine's calibrated LogGP for the program's backend — but evaluated per
op with a two-clock walk so that *overlap* is representable:

* ``cpu`` — the rank's issue clock (message overheads, compute);
* ``net`` — when the last injected byte lands.

Puts advance ``cpu`` by the per-message overhead (``o`` times the
backend's ops-per-message accounting, the paper's Table I) and push
``net``; synchronising ops (commit/fence/wait/drain) join the clocks.
Region cost is the max across ranks (the trailing barrier aligns
everyone), so the model is monotone under each pass by construction:
coalescing drops per-message overheads while keeping bytes, overlap
moves compute under ``net``'s shadow, sync-elide removes a join, and
auto-backend takes an argmin that includes the incumbent.

Like the selector's, this model *ranks* rewrites — it does not predict
simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ir import ops as O
from repro.ir.program import IRProgram

__all__ = ["CostModel", "program_cost"]


@dataclass(frozen=True)
class CostModel:
    """LogGP-derived per-op costs for one (machine, backend) pair."""

    L: float
    o: float
    o_sync: float
    G: float
    ops_per_message: int
    nranks: int
    machine: object

    @classmethod
    def for_(cls, machine, runtime: str, nranks: int) -> "CostModel":
        from repro.transport.registry import get_backend

        backend = get_backend(runtime)
        if nranks >= 2:
            p = machine.loggp(
                backend.resolve_costs_key(), 0, 1, nranks=2,
                placement="spread", sided=backend.sided,
                ops_per_message=backend.caps.ops_per_message,
            )
            L, o, o_sync, G = p.L, p.o, p.o_sync, p.G
        else:
            L = o = o_sync = G = 0.0
        return cls(
            L=L, o=o, o_sync=o_sync, G=G,
            ops_per_message=backend.caps.ops_per_message,
            nranks=nranks, machine=machine,
        )

    @property
    def alpha(self) -> float:
        return self.L + self.o + self.o_sync

    @property
    def barrier(self) -> float:
        return max(self.nranks - 1, 0).bit_length() * self.alpha

    def message_overhead(self) -> float:
        return self.o * self.ops_per_message

    def compute_seconds(self, op: O.Compute) -> float:
        if op.seconds is not None:
            return op.seconds
        return self.machine.compute_time(
            op.nbytes, op.flops, sharing=1,
            on_gpu=self.machine.is_gpu_machine,
        )


def _halo_put_bytes(spec, op: O.HaloPut) -> float:
    seg_dir = spec.opposite[op.seg]
    _, length = spec.segments[op.dst][seg_dir]
    return float(length) * np.dtype(spec.dtype).itemsize


def _rank_cost(ops, spec, m: CostModel) -> float:
    cpu = 0.0
    net = 0.0

    def send(nbytes: float) -> None:
        nonlocal cpu, net
        cpu += m.message_overhead()
        net = max(net, cpu + m.L) + nbytes * m.G

    def join() -> None:
        nonlocal cpu
        cpu = max(cpu, net) + m.o_sync

    for op in ops:
        if isinstance(op, O.BatchPost):
            send(float(spec.nbytes))
        elif isinstance(op, (O.BatchCommit, O.BatchWait, O.MsgDrain)):
            join()
        elif isinstance(op, O.HaloPut):
            send(_halo_put_bytes(spec, op))
        elif isinstance(op, (O.HaloBegin, O.HaloFinish)):
            join()
            cpu += m.barrier  # fences are collective in every backend
        elif isinstance(op, (O.TripletSend, O.TripletSendAgg)):
            send(float(op.nbytes))
        elif isinstance(op, (O.TripletRecv, O.TripletRecvAgg)):
            join()
        elif isinstance(op, O.AtomicStream):
            cpu += op.n * (2.0 * m.L + m.message_overhead() + 8.0 * m.G)
        elif isinstance(op, O.Compute):
            cpu += m.compute_seconds(op)
        elif isinstance(op, O.Barrier):
            cpu = max(cpu, net) + m.barrier
        elif isinstance(op, O.AllreduceSum):
            cpu = max(cpu, net) + 2.0 * m.barrier
        else:  # pragma: no cover - future ops default to a sync
            join()
    return max(cpu, net)


def program_cost(
    program: IRProgram, machine, *, runtime: str | None = None
) -> float:
    """Modeled seconds for one run of a *static* program."""
    if program.dynamic:
        raise ValueError(
            f"program {program.name!r} is dynamic; its cost is not "
            "statically modelable"
        )
    m = CostModel.for_(machine, runtime or program.runtime, program.nranks)
    total = 0.0
    for part in (program.prologue, program.epilogue):
        if any(part):
            total += max(_rank_cost(ops, program.spec, m) for ops in part)
    for region in program.regions:
        total += max(_rank_cost(ops, program.spec, m) for ops in region.body)
    if not math.isfinite(total):
        raise ValueError(f"non-finite modeled cost for {program.name!r}")
    return total
