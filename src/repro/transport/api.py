"""Runtime-neutral transport API: specs, channels, and endpoint verbs.

The paper's central comparison — two-sided MPI vs one-sided MPI RMA vs
GPU-initiated NVSHMEM — maps onto four *communication patterns* that the
workloads use.  Each pattern is described by a declarative spec and served
by a per-backend :class:`Channel`:

======================  ==============================  ====================
pattern / spec          verbs (on the rank Endpoint)    used by
======================  ==============================  ====================
:class:`HaloSpec`       ``begin / put / finish``        stencil (BSP halos)
:class:`MailboxSpec`    ``expect / send / recv /        SpTRSV (notified
                        drain``                         point-to-point)
                        ``send_round / recv_round``     collectives (round-
                                                        slotted messages)
:class:`BatchSpec`      ``post / commit / wait_batch``  flood (bandwidth)
:class:`AtomicDomainSpec`  ``cas / faa / swap /         hashtable, CAS flood
                        publish / native_cas``
======================  ==============================  ====================

A workload is written *once* against these verbs; the backend chosen by
name (see :mod:`repro.transport.registry`) supplies the op sequence with
the paper-calibrated accounting:

* two-sided: 2 ops per message (``Isend`` + matching receive);
* one-sided MPI: the 4-op emulation — ``Put``, ``Win_flush``,
  ``Put(signal)``, ``Win_flush`` — with the Listing-1 software polling
  receiver;
* NVSHMEM: fused ``put_signal_nbi`` + hardware ``wait_until`` waits.

Verbs are simulation generators: call them with ``yield from`` inside a
rank program.  A verb that is a pure no-op for some backend still yields
zero events, so programs never branch on the backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

import numpy as np

__all__ = [
    "TransportError",
    "UnknownBackendError",
    "UnsupportedTransportOp",
    "BackendCaps",
    "HaloSpec",
    "MailboxMsg",
    "MailboxSpec",
    "BatchSpec",
    "SpaceSpec",
    "AtomicDomainSpec",
    "Channel",
    "Endpoint",
    "part_bounds",
]


def part_bounds(words: int, parts: int) -> list[tuple[int, int]]:
    """Balanced split of a ``words``-long payload into ``parts`` ranges.

    The canonical stripe partition shared by both sides of a round message
    (collective stripes map to NCCL's multi-ring): part ``s`` gets
    ``words // parts`` elements plus one of the first ``words % parts``
    remainders.  Parts may be empty when ``words < parts``.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    base, rem = divmod(words, parts)
    out = []
    lo = 0
    for s in range(parts):
        hi = lo + base + (1 if s < rem else 0)
        out.append((lo, hi))
        lo = hi
    return out


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class UnknownBackendError(TransportError, ValueError):
    """Raised for a runtime/backend name that is not registered.

    Carries did-you-mean suggestions: close matches from the registered
    names (typos like ``"stream_trigered"``) are appended to the message.
    """

    def __init__(self, name: str, valid: Sequence[str]):
        import difflib

        self.name = name
        self.valid = tuple(valid)
        self.suggestions = tuple(
            difflib.get_close_matches(name, self.valid, n=2, cutoff=0.5)
        )
        msg = (
            f"unknown runtime backend {name!r}; valid backends: "
            + ", ".join(repr(v) for v in self.valid)
        )
        if self.suggestions:
            msg += " (did you mean " + " or ".join(
                repr(s) for s in self.suggestions
            ) + "?)"
        super().__init__(msg)


class UnsupportedTransportOp(TransportError):
    """A verb the selected backend does not implement for this pattern."""

    def __init__(self, backend: str, op: str):
        super().__init__(f"backend {backend!r} does not support {op}")


@dataclass(frozen=True)
class BackendCaps:
    """What a backend can do natively (programs may branch on these to
    pick an algorithm, never to pick an op sequence).

    Caps are declared once, on the backend class, and queried through
    :func:`repro.transport.capabilities` — selector, IR passes, and the
    CLI branch on these fields, never on backend-name strings.
    """

    remote_atomics: bool = True  # true sender's-control CAS/FAA/swap
    ops_per_message: int = 2  # paper Table I accounting
    gpu_initiated: bool = False
    # Halo begin/finish are both a collective fence over the same window
    # (one-sided RMA): back-to-back finish/begin pairs carry no exposure
    # and may collapse (MPI_MODE_NOPRECEDE) — the IR sync-elide pass
    # fires only where this is declared.
    fence_epochs: bool = False
    # Completion is consumed on the device with no host synchronisation
    # call at all (no ``o_sync`` host term): the stream-triggered family.
    host_bypass: bool = False
    # Communication ops are enqueued on an ordered stream behind kernels;
    # epoch-open fences carry no ordering beyond what the stream already
    # guarantees, so sync-elide may drop them (the stream-ordered analogue
    # of ``fence_epochs``).
    stream_ordered: bool = False

    def matches(self, **flags: Any) -> bool:
        """True when every keyword equals the corresponding cap field
        (the predicate primitive behind :func:`repro.transport.require`)."""
        for key, want in flags.items():
            if not hasattr(self, key):
                raise TypeError(f"BackendCaps has no capability {key!r}")
            if getattr(self, key) != want:
                return False
        return True

    def summary(self) -> str:
        """One-line rendering for explain reports and the caps table."""
        bits = [
            f"{self.ops_per_message} op/msg",
            "gpu-initiated" if self.gpu_initiated else "host-driven",
        ]
        if self.fence_epochs:
            bits.append("fence epochs")
        if self.stream_ordered:
            bits.append("stream-ordered")
        if self.host_bypass:
            bits.append("host-bypass (no o_sync)")
        if self.remote_atomics:
            bits.append("remote atomics")
        return ", ".join(bits)


# ---------------------------------------------------------------------------
# pattern specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HaloSpec:
    """BSP halo exchange: every rank swaps fixed strips with its grid
    neighbours each iteration.

    All maps are *global* (rank-indexed) because one-sided puts target the
    receiver's window layout, which differs from the sender's when blocks
    are uneven.
    """

    # segment name -> signal-slot / tag index (e.g. north=0 .. east=3).
    slot: Mapping[str, int]
    # segment name -> the segment the receiver reads it from.
    opposite: Mapping[str, str]
    # rank -> {segment name -> neighbour rank}, in exchange order.
    neighbors: Mapping[int, Mapping[str, int]]
    # rank -> {segment name -> (offset, nelems)} window layout.
    segments: Mapping[int, Mapping[str, tuple[int, int]]]
    # rank -> total elems of that rank's halo layout (buffer stride).
    counts: Mapping[int, int]
    # symmetric window allocation (max layout across ranks).
    win_count: int
    dtype: Any = np.float64

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class MailboxMsg:
    """One expected notified message: a receive slot, its payload length
    in words, and opaque metadata handed back by ``recv``."""

    slot: int
    words: int
    meta: Any = None


@dataclass(frozen=True)
class MailboxSpec:
    """Notified point-to-point messages into pre-planned receive slots
    (SpTRSV's one-message-per-sync pattern)."""

    # Symmetric data window size in words; >= any rank's slot layout.
    data_words: int
    # Symmetric signal window size; >= any rank's expected-message count.
    nslots: int
    # rank -> word offset of each receive slot in its data window.
    offsets: Mapping[int, Sequence[int]]
    word_bytes: float = 8.0
    dtype: Any = np.float64
    signal_dtype: Any = np.int64
    # Copy payloads out of the data window on recv (execute mode).
    read_data: bool = False


@dataclass(frozen=True)
class BatchSpec:
    """Flood batches: n back-to-back messages rank->rank, then one
    synchronisation (the paper's msg/sync axis)."""

    nbytes: int
    dtype: Any = np.float64
    nsignals: int = 4

    @property
    def nelems(self) -> int:
        return max(int(self.nbytes // np.dtype(self.dtype).itemsize), 1)


@dataclass(frozen=True)
class SpaceSpec:
    """One named symmetric array in an atomic domain."""

    count: int
    dtype: Any = np.int64
    fill: Any = 0


@dataclass(frozen=True)
class AtomicDomainSpec:
    """A set of named symmetric spaces targeted by remote atomics
    (hashtable's table/chain/heap/meta, the CAS flood's counter)."""

    spaces: Mapping[str, SpaceSpec] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# channel / endpoint contract
# ---------------------------------------------------------------------------


class Channel:
    """Per-job communication resources for one pattern (windows, signal
    slots, or nothing at all for pure two-sided messaging).

    Created by ``Job.channel(spec)`` before the run; each rank program
    derives its :class:`Endpoint` with ``channel.endpoint(ctx)`` at zero
    simulated cost.
    """

    def __init__(self, backend, job, spec):
        self.backend = backend
        self.job = job
        self.spec = spec

    @property
    def caps(self) -> BackendCaps:
        return self.backend.caps

    def endpoint(self, ctx) -> "Endpoint":
        raise NotImplementedError

    # Atomic domains expose the backing arrays for post-run collection.
    def array(self, space: str, rank: int) -> np.ndarray:
        raise UnsupportedTransportOp(self.backend.name, "array()")


class Endpoint:
    """One rank's verbs on a channel.  Subclasses implement the verb set
    matching their channel's spec; everything else raises
    :class:`UnsupportedTransportOp`.
    """

    def __init__(self, channel: Channel, ctx):
        self.channel = channel
        self.ctx = ctx
        self.spec = channel.spec

    @property
    def caps(self) -> BackendCaps:
        return self.channel.caps

    def _unsupported(self, op: str):
        raise UnsupportedTransportOp(self.channel.backend.name, op)

    # -- halo ----------------------------------------------------------
    def begin(self, it: int):
        self._unsupported("begin")

    def put(self, seg: str, dst: int, values=None):
        self._unsupported("put")

    def finish(self, it: int):
        self._unsupported("finish")

    # -- mailbox -------------------------------------------------------
    def expect(self, msgs: Mapping[int, MailboxMsg]) -> None:
        self._unsupported("expect")

    def send(self, dst: int, slot: int, *, words: int, values=None,
             meta=None, tag: int = 0):
        self._unsupported("send")

    def recv(self):
        self._unsupported("recv")

    def drain(self):
        self._unsupported("drain")

    def send_round(self, dst: int, slot: int, *, words: int, parts: int = 1,
                   values=None):
        """Send one *round message* into the receiver's ``slot``.

        The round-slotted mailbox verbs carry collective algorithms: every
        round of a collective schedule is one logical message per
        (receiver, round), addressed by a globally agreed slot index, so
        concurrent in-flight rounds can never be mismatched (the plain
        ``recv`` verb matches ANY_SOURCE / scans all expected slots and is
        only safe for one-at-a-time patterns like SpTRSV).

        ``parts`` splits the payload into that many concurrent
        sub-messages over :func:`part_bounds` (collective striping, NCCL's
        multi-ring); the receiver's matching :meth:`recv_round` must pass
        the same ``words``/``parts``.  A ``words=0`` message is legal and
        carries only the notification (signal / zero-byte send) — how the
        collectives keep their round structure when chunks are empty.
        """
        self._unsupported("send_round")

    def recv_round(self, src: int, slot: int, *, words: int, parts: int = 1):
        """Block until the round message in ``slot`` (from ``src``) landed;
        returns the payload array when the spec has ``read_data``, else
        None.  Epoch-style wait (one synchronisation per round)."""
        self._unsupported("recv_round")

    # -- batch ---------------------------------------------------------
    def post(self, dst: int):
        self._unsupported("post")

    def commit(self, dst: int, it: int):
        self._unsupported("commit")

    def wait_batch(self, src: int, it: int, n: int):
        self._unsupported("wait_batch")

    # -- atomic domain -------------------------------------------------
    def local(self, space: str) -> np.ndarray:
        self._unsupported("local")

    def cas(self, space: str, dst: int, offset: int, compare: int, value: int):
        self._unsupported("cas")

    def faa(self, space: str, dst: int, offset: int, value: int):
        self._unsupported("faa")

    def swap(self, space: str, dst: int, offset: int, value: int):
        self._unsupported("swap")

    def publish(self, space: str, dst: int, values, *, offset: int = 0):
        self._unsupported("publish")

    def native_cas(self, space: str, dst: int, offset: int, compare: int,
                   value: int):
        self._unsupported("native_cas")

    def cas_stream(self, space: str, dst: int, offset: int,
                   ops: Sequence[tuple[int, int]]):
        """Back-to-back blocking CAS ops on one word (sender's-control
        stream: the Fig. 4 CAS flood, a hashtable insert epoch).

        Semantically identical to looping ``native_cas`` over the
        ``(compare, value)`` pairs — that loop is the default — and
        returns the list of old values.  Backends with a bulk path
        (:mod:`repro.perf.atomics`) evaluate eligible streams in one
        pass; the stream assumes a passive target for its duration.
        """
        out = []
        for compare, value in ops:
            old = yield from self.native_cas(space, dst, offset, compare, value)
            out.append(old)
        return out

    def post_msg(self, dst: int, *, nbytes: float, payload=None, tag: int = 0):
        self._unsupported("post_msg")

    def recv_msg_poll(self, tag: int = 0):
        self._unsupported("recv_msg_poll")
