"""Backend registry: the single home of runtime names.

Every runtime the repo knows about is a :class:`TransportBackend`
registered here under its name.  ``Job`` resolves the name through
:func:`get_backend`, so the string literals ``"two_sided"``,
``"one_sided"``, ``"shmem"`` (NVSHMEM) and ``"one_sided_hw"`` appear in
exactly one place — import the constants instead of spelling them out.

Adding a runtime is a single file: subclass :class:`TransportBackend`
(usually one of the built-in adapters), give it a ``name`` and a
``costs_key``, and call :func:`register_backend`.  No workload code
changes — see ``examples/custom_backend.py``.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import FaultSemantics
from repro.transport.api import (
    AtomicDomainSpec,
    BackendCaps,
    BatchSpec,
    Channel,
    HaloSpec,
    MailboxSpec,
    UnknownBackendError,
)

__all__ = [
    "TWO_SIDED",
    "ONE_SIDED",
    "SHMEM",
    "ONE_SIDED_HW",
    "STREAM_TRIGGERED",
    "TransportBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "capabilities",
    "require",
    "CapsPredicate",
]

# Canonical runtime names (the CommCosts keys machines are calibrated
# with).  "shmem" is the NVSHMEM GPU-initiated runtime.
TWO_SIDED = "two_sided"
ONE_SIDED = "one_sided"
SHMEM = "shmem"
# Hypothetical CrayMPI with hardware put-with-signal (DESIGN.md ablation
# #3): the 4-op one-sided emulation fused into one op.
ONE_SIDED_HW = "one_sided_hw"
# Stream-triggered, CPU-free communication (ROADMAP item 5): ops are
# enqueued on ordered device streams behind kernels and complete without
# any host synchronisation; costs derive from the machine's host-driven
# profiles plus a device-initiation term (see repro.comm.stream).
STREAM_TRIGGERED = "stream_triggered"

_REGISTRY: dict[str, "TransportBackend"] = {}
_BUILTINS_LOADED = False


class TransportBackend:
    """A named runtime adapter: context class + cost profile + channels.

    Class attributes:

    * ``name`` — registry key and ``--runtime`` value;
    * ``costs_key`` — the machine's :class:`CommCosts` entry to charge
      (defaults to ``name``);
    * ``sided`` — op-accounting family for the analytic rooflines
      (``"two"`` | ``"one"`` | ``"shmem"``);
    * ``caps`` — :class:`BackendCaps` programs may branch on;
    * ``fault_semantics`` — how this runtime experiences message loss
      under an active :class:`repro.faults.FaultPlan` (detection speed,
      abort-at-send vs surface-at-flush, re-sync penalty per retry).
    """

    name: str = ""
    costs_key: str | None = None
    sided: str = "two"
    caps: BackendCaps = BackendCaps()
    description: str = ""
    fault_semantics: FaultSemantics = FaultSemantics()

    @property
    def context_cls(self):
        from repro.comm.context import RankContext

        return RankContext

    def resolve_costs_key(self) -> str:
        return self.costs_key if self.costs_key is not None else self.name

    # -- channel factory -----------------------------------------------

    def open(self, job, spec: Any) -> Channel:
        """Allocate the channel resources for ``spec`` on ``job``."""
        if isinstance(spec, HaloSpec):
            return self.open_halo(job, spec)
        if isinstance(spec, MailboxSpec):
            return self.open_mailbox(job, spec)
        if isinstance(spec, BatchSpec):
            return self.open_batch(job, spec)
        if isinstance(spec, AtomicDomainSpec):
            return self.open_atomics(job, spec)
        raise TypeError(f"unknown channel spec {type(spec).__name__}")

    def open_halo(self, job, spec: HaloSpec) -> Channel:
        raise NotImplementedError(f"{self.name}: halo channels unsupported")

    def open_mailbox(self, job, spec: MailboxSpec) -> Channel:
        raise NotImplementedError(f"{self.name}: mailbox channels unsupported")

    def open_batch(self, job, spec: BatchSpec) -> Channel:
        raise NotImplementedError(f"{self.name}: batch channels unsupported")

    def open_atomics(self, job, spec: AtomicDomainSpec) -> Channel:
        raise NotImplementedError(f"{self.name}: atomic channels unsupported")


def register_backend(backend: TransportBackend, *, replace: bool = False) -> TransportBackend:
    """Register ``backend`` under ``backend.name``; returns it for chaining.

    A name collision is an error unless ``replace=True``; the diagnostic
    names the incumbent class (and its description) so a double-import or
    an accidental shadowing of a built-in is identifiable from the
    message alone.
    """
    if not backend.name:
        raise ValueError("backend must define a non-empty name")
    incumbent = _REGISTRY.get(backend.name)
    if incumbent is not None and not replace:
        detail = type(incumbent).__name__
        if incumbent.description:
            detail += f" ({incumbent.description})"
        raise ValueError(
            f"backend name {backend.name!r} is already registered by "
            f"{detail}; pass replace=True to "
            f"{'re-register it' if type(incumbent) is type(backend) else 'shadow it'}"
        )
    _REGISTRY[backend.name] = backend
    return backend


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported lazily so this module stays import-cycle-free: the backend
    # modules pull in comm.context/window/shmem, which must not be loaded
    # just to resolve a name constant.
    from repro.transport import two_sided  # noqa: F401
    from repro.transport import rma  # noqa: F401
    from repro.transport import shmem  # noqa: F401
    from repro.transport import hw  # noqa: F401
    from repro.transport import stream  # noqa: F401


def get_backend(name: str) -> TransportBackend:
    """Resolve a runtime name, with a listing of valid names on miss."""
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


def backend_names() -> tuple[str, ...]:
    """All registered runtime names, built-ins first."""
    _load_builtins()
    return tuple(_REGISTRY)


def capabilities() -> dict[str, BackendCaps]:
    """The stable capability table: ``{backend name -> BackendCaps}``.

    This mapping is the *single query surface* for backend capabilities —
    selector annotations, IR passes, and the CLI read caps from here (or
    via ``get_backend(name).caps``, the same objects) instead of
    comparing backend-name strings.  The returned dict is a snapshot;
    mutating it does not affect the registry.
    """
    _load_builtins()
    return {name: backend.caps for name, backend in _REGISTRY.items()}


class CapsPredicate:
    """A capability requirement usable wherever a backend name is taken
    (e.g. ``Session(backend=require(gpu_initiated=True))``).

    Calling :meth:`resolve` picks the first registered backend whose caps
    match every flag; :class:`UnknownBackendError`-style failure lists the
    qualifying set (empty) alongside what *was* required.
    """

    def __init__(self, **flags):
        if not flags:
            raise ValueError("require() needs at least one capability flag")
        schema = BackendCaps()
        for key in flags:
            if not hasattr(schema, key):
                raise TypeError(f"BackendCaps has no capability {key!r}")
        self.flags = dict(flags)

    def candidates(self) -> tuple[str, ...]:
        """Every registered backend satisfying the predicate, in
        registration order."""
        return tuple(
            name for name, caps in capabilities().items()
            if caps.matches(**self.flags)
        )

    def resolve(self) -> str:
        names = self.candidates()
        if not names:
            from repro.transport.api import TransportError

            want = ", ".join(f"{k}={v!r}" for k, v in self.flags.items())
            table = "; ".join(
                f"{n}: " + ", ".join(
                    f"{k}={getattr(c, k)!r}" for k in self.flags
                )
                for n, c in capabilities().items()
            )
            raise TransportError(
                f"no registered backend satisfies require({want}); "
                f"capabilities: {table}"
            )
        return names[0]

    def __repr__(self) -> str:
        flags = ", ".join(f"{k}={v!r}" for k, v in self.flags.items())
        return f"require({flags})"


def require(**flags) -> CapsPredicate:
    """A caps predicate: ``require(gpu_initiated=True, host_bypass=True)``.

    Accepted by ``Session(backend=...)`` and resolvable to a backend name
    via :meth:`CapsPredicate.resolve`; raises with the full capability
    table when nothing qualifies.
    """
    return CapsPredicate(**flags)
