"""repro.transport — runtime-neutral communication channels.

Write each workload once against the :class:`Endpoint` verbs; pick the
runtime by backend name at ``Job`` construction.  See docs/TRANSPORT.md.
"""

from repro.transport.api import (
    AtomicDomainSpec,
    BackendCaps,
    BatchSpec,
    Channel,
    Endpoint,
    HaloSpec,
    MailboxMsg,
    MailboxSpec,
    SpaceSpec,
    TransportError,
    UnknownBackendError,
    UnsupportedTransportOp,
)
from repro.transport.registry import (
    ONE_SIDED,
    ONE_SIDED_HW,
    SHMEM,
    STREAM_TRIGGERED,
    TWO_SIDED,
    CapsPredicate,
    TransportBackend,
    backend_names,
    capabilities,
    get_backend,
    register_backend,
    require,
    _load_builtins,
)

_load_builtins()

__all__ = [
    "TWO_SIDED",
    "ONE_SIDED",
    "SHMEM",
    "ONE_SIDED_HW",
    "STREAM_TRIGGERED",
    "TransportBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "capabilities",
    "require",
    "CapsPredicate",
    "TransportError",
    "UnknownBackendError",
    "UnsupportedTransportOp",
    "BackendCaps",
    "HaloSpec",
    "MailboxMsg",
    "MailboxSpec",
    "BatchSpec",
    "SpaceSpec",
    "AtomicDomainSpec",
    "Channel",
    "Endpoint",
]
