"""Stream-triggered backend: device-enqueued, CPU-free communication.

The fifth backend family (ROADMAP item 5): the op sequences are the
fused NVSHMEM ones (:class:`ShmemBackend` channels), executed by
:class:`~repro.comm.stream.StreamContext` under the *derived*
``stream_triggered`` cost profile — cheapest demonstrated issue path
plus a device-initiation term, zero host-side overhead anywhere (see
:func:`repro.comm.stream.derive_stream_costs`).  No machine needs a
calibrated ``stream_triggered`` entry: :meth:`MachineModel.runtime`
derives one on demand, so every workload, collective and IR program
runs on this backend on every machine with zero per-workload code.

The halo endpoint differs from shmem's in one load-bearing way: its
iteration counter advances at ``finish``, not only at ``begin``.  On a
stream-ordered queue the epoch-open is a no-op (ordering already
sequences iteration k+1's puts behind iteration k's wait), which is what
licenses ``SyncElidePass`` to drop ``HaloBegin`` entirely — exact only
because ``finish`` keeps the double-buffer parity counter moving.
"""

from __future__ import annotations

from repro.faults.plan import FaultSemantics
from repro.transport.api import BackendCaps, HaloSpec
from repro.transport.registry import STREAM_TRIGGERED, register_backend
from repro.transport.shmem import ShmemBackend, _HaloChannel, _HaloEndpoint

__all__ = ["StreamBackend"]


class _StreamHaloEndpoint(_HaloEndpoint):
    """Shmem halo endpoint whose ``_it`` survives epoch-open elision."""

    def finish(self, it):
        received = yield from super().finish(it)
        # Stream ordering opens the next epoch implicitly; advance the
        # parity/signal counter here so an elided begin(it+1) is exact.
        self._it = it + 1
        return received


class _StreamHaloChannel(_HaloChannel):
    def endpoint(self, ctx):
        return _StreamHaloEndpoint(self, ctx)


class StreamBackend(ShmemBackend):
    name = STREAM_TRIGGERED
    costs_key = STREAM_TRIGGERED
    sided = "shmem"
    caps = BackendCaps(
        remote_atomics=True,
        ops_per_message=1,
        gpu_initiated=True,
        host_bypass=True,
        stream_ordered=True,
    )
    description = (
        "stream-triggered CPU-free communication: ops enqueued on ordered "
        "device streams, kernel+put fusion, hardware completion with no "
        "host synchronisation (costs derived per machine)"
    )
    # Device-side triggering detects loss as fast as NVSHMEM's NIC path,
    # and stream ordering replays without any host re-sync.
    fault_semantics = FaultSemantics(mode="surface", detect_scale=0.5)

    @property
    def context_cls(self):
        from repro.comm.stream import StreamContext

        return StreamContext

    def open_halo(self, job, spec: HaloSpec):
        return _StreamHaloChannel(self, job, spec)


register_backend(StreamBackend())
