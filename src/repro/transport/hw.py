"""Hardware put-with-signal on CPUs: the paper's §V projection.

DESIGN.md ablation #3 asks what happens when the one-sided 4-op emulation
(``Put``/``flush``/``Put(signal)``/``flush`` + Listing-1 software polling)
becomes a single fused op with true receiver notification — "one-sided
MPI can easily outperform the two-sided with hardware-level support".

The entire backend is this file: the op sequences are exactly the fused
NVSHMEM ones (:class:`ShmemBackend` channels, :class:`ShmemContext`
waits), re-costed through the machine's ``"one_sided_hw"`` CommCosts
profile (see ``repro.experiments.ablations._with_hw_put_signal``).  No
workload program knows it exists — which is the point of the seam.
"""

from __future__ import annotations

from repro.faults.plan import FaultSemantics
from repro.transport.api import BackendCaps
from repro.transport.registry import ONE_SIDED_HW, register_backend
from repro.transport.shmem import ShmemBackend

__all__ = ["HwPutSignalBackend"]


class HwPutSignalBackend(ShmemBackend):
    name = ONE_SIDED_HW
    costs_key = ONE_SIDED_HW
    sided = "shmem"  # fused put-with-signal accounting
    caps = BackendCaps(remote_atomics=True, ops_per_message=1, gpu_initiated=False)
    description = (
        "hypothetical CrayMPI with hardware put-with-signal (DESIGN.md "
        "ablation #3); requires a machine with a 'one_sided_hw' cost profile"
    )
    # NIC-assisted delivery notification detects loss faster than the
    # 4-op software emulation and retries without a window re-sync, but
    # keeps one-sided surface-at-flush error semantics.
    fault_semantics = FaultSemantics(mode="surface", detect_scale=1.5, resync_penalty=True)


register_backend(HwPutSignalBackend())
