"""One-sided MPI RMA backend over :class:`repro.comm.window.Window`.

Paper accounting (Table I): a notified message is the 4-op emulation —
``Put(data)``, ``Win_flush``, ``Put(signal)``, ``Win_flush`` — and the
receiver runs the user-implemented Listing-1 polling loop, paying
``poll_slot`` per still-outstanding slot per scan.  BSP exchanges use
``Put`` bracketed by a pair of ``Win_fence``.  Remote atomics are native
(MPI_Compare_and_swap / MPI_Fetch_and_op).
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultSemantics
from repro.transport.api import (
    AtomicDomainSpec,
    BackendCaps,
    BatchSpec,
    Channel,
    Endpoint,
    HaloSpec,
    MailboxSpec,
    part_bounds,
)
from repro.transport.registry import ONE_SIDED, TransportBackend, register_backend

__all__ = ["RmaBackend"]


class _HaloChannel(Channel):
    def __init__(self, backend, job, spec: HaloSpec):
        super().__init__(backend, job, spec)
        self.win = job.window(spec.win_count, dtype=spec.dtype)

    def endpoint(self, ctx):
        return _HaloEndpoint(self, ctx)


class _HaloEndpoint(Endpoint):
    """Puts within a pair of ``Win_fence`` (paper §III-A)."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.win = channel.win
        self.h = channel.win.handle(ctx)

    def begin(self, it):
        # Epoch open (paper: "four MPI_Put within a pair of MPI_Win_fence").
        yield from self.h.fence()

    def put(self, seg, dst, values=None):
        # Data lands in the segment the *receiver* reads for the opposite
        # direction (blocks can be uneven, so layouts differ per rank).
        seg_dir = self.spec.opposite[seg]
        offset, length = self.spec.segments[dst][seg_dir]
        if values is not None:
            yield from self.h.put(dst, values, offset=offset)
        else:
            yield from self.h.put(dst, nelems=length, offset=offset)

    def finish(self, it):
        yield from self.h.fence()
        received = {}
        for d in self.spec.neighbors[self.ctx.rank]:
            offset, length = self.spec.segments[self.ctx.rank][d]
            received[d] = self.win.local(self.ctx.rank)[offset : offset + length]
        return received


class _MailboxChannel(Channel):
    def __init__(self, backend, job, spec: MailboxSpec):
        super().__init__(backend, job, spec)
        self.data_win = job.window(max(spec.data_words, 1), dtype=spec.dtype)
        self.sig_win = job.window(max(spec.nslots, 1), dtype=spec.signal_dtype)

    def endpoint(self, ctx):
        return _MailboxEndpoint(self, ctx)


class _MailboxEndpoint(Endpoint):
    """4-op notified send + the Listing-1 polling receiver."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.data_win = channel.data_win
        self.sig_win = channel.sig_win
        self.h_data = channel.data_win.handle(ctx)
        self.h_sig = channel.sig_win.handle(ctx)
        self._one = np.ones(1, dtype=channel.sig_win.dtype)
        self._remaining: dict = {}
        self._hits: list = []

    def expect(self, msgs):
        self._remaining = dict(msgs)
        self._hits = []

    def send(self, dst, slot, *, words, values=None, meta=None, tag=0):
        offset = self.spec.offsets[dst][slot]
        if values is not None:
            yield from self.h_data.put(dst, values, offset=offset)
        else:
            yield from self.h_data.put(dst, nelems=words, offset=offset)
        yield from self.h_data.flush(dst)
        yield from self.h_sig.put(dst, self._one, offset=slot)
        yield from self.h_sig.flush(dst)

    def recv(self):
        ctx = self.ctx
        # Listing 1: scan the mask of outstanding slots; each pass costs
        # poll_slot per unmasked entry.  Slots that fired together are
        # handed out one recv() at a time without rescanning.
        while not self._hits:
            scan = ctx.costs.poll_slot * len(self._remaining)
            if scan > 0:
                yield ctx.sim.timeout(scan)
            sig = self.sig_win.local(ctx.rank)
            hit = [s for s in self._remaining if sig[s] >= 1]
            if not hit:
                yield self.sig_win.on_write(ctx.rank)
                continue
            self._hits.extend(self._remaining.pop(s) for s in hit)
        m = self._hits.pop(0)
        return m.meta, self._read(m)

    def _read(self, m):
        if not self.spec.read_data:
            return None
        off = self.spec.offsets[self.ctx.rank][m.slot]
        return np.array(
            self.data_win.local(self.ctx.rank)[off : off + m.words], copy=True
        )

    def send_round(self, dst, slot, *, words, parts=1, values=None):
        # Always the scalar put loop — no put_batch here.  Unlike the
        # BSP batch pattern (where nothing runs between posts and
        # commit), collective rounds have *concurrent* senders, and
        # put_batch reserves all stripes' fabric slots atomically at
        # issue time; on a shared channel that reordering diverges from
        # the scalar interleaving once >= 3 ranks contend.  The shmem
        # backend keeps its bulk path, but gated on path exclusivity
        # (see _MailboxChannel.paths_exclusive): only topologies where
        # no other sender can touch a hop mid-batch, which is where
        # batch reservation order provably equals scalar order.
        offset = self.spec.offsets[dst][slot]
        for lo, hi in part_bounds(words, parts):
            if hi == lo:
                continue
            if values is not None and self.spec.read_data:
                # Copy: the sender may overwrite its buffer before the
                # put's delivery applies it at the target.
                stripe = np.asarray(values).ravel()[lo:hi].copy()
                yield from self.h_data.put(dst, stripe, offset=offset + lo)
            else:
                yield from self.h_data.put(
                    dst, nelems=hi - lo, offset=offset + lo
                )
        # Amortised completion: one flush covers every stripe, then the
        # 4-op emulation's put/flush signal pair notifies the round.
        yield from self.h_data.flush(dst)
        yield from self.h_sig.put(dst, self._one, offset=slot)
        yield from self.h_sig.flush(dst)

    def recv_round(self, src, slot, *, words, parts=1):
        yield from self.ctx.poll_wait_signals(self.sig_win, [slot], 1)
        if not self.spec.read_data:
            return None
        off = self.spec.offsets[self.ctx.rank][slot]
        return np.array(
            self.data_win.local(self.ctx.rank)[off : off + words], copy=True
        )

    def drain(self):
        return
        yield  # pragma: no cover - makes drain a (no-op) generator


class _BatchChannel(Channel):
    def __init__(self, backend, job, spec: BatchSpec):
        super().__init__(backend, job, spec)
        self.data_win = job.window(spec.nelems, dtype=spec.dtype)
        self.sig_win = job.window(spec.nsignals, dtype=np.int64)

    def endpoint(self, ctx):
        return _BatchEndpoint(self, ctx)


class _BatchEndpoint(Endpoint):
    """``Put`` x n + flush, then the put/flush signal pair; receiver polls
    (4 MPI ops per synchronised message group)."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.sig_win = channel.sig_win
        self.h = channel.data_win.handle(ctx)
        self.h_sig = channel.sig_win.handle(ctx)
        self._queued: dict[int, int] = {}

    def post(self, dst):
        from repro import perf

        if perf.bulk_enabled(self.ctx.job):
            # Deferred: the batch pattern guarantees nothing runs between
            # the posts and the commit, so issuing all n puts in one bulk
            # pass at commit() reproduces the scalar issue times exactly.
            self._queued[dst] = self._queued.get(dst, 0) + 1
            return
        yield from self.h.put(dst, nelems=self.spec.nelems)

    def commit(self, dst, it):
        n = self._queued.pop(dst, 0)
        if n:
            yield from self.h.put_batch(dst, n, nelems=self.spec.nelems)
        yield from self.h.flush(dst)
        yield from self.h_sig.put(
            dst, np.array([it + 1], dtype=np.int64), offset=0
        )
        yield from self.h_sig.flush(dst)

    def wait_batch(self, src, it, n):
        yield from self.ctx.poll_wait_signals(self.sig_win, [0], 1, value=it + 1)


class _AtomicChannel(Channel):
    def __init__(self, backend, job, spec: AtomicDomainSpec):
        super().__init__(backend, job, spec)
        self.wins = {
            name: job.window(s.count, dtype=s.dtype, fill=s.fill)
            for name, s in spec.spaces.items()
        }

    def endpoint(self, ctx):
        return _AtomicEndpoint(self, ctx)

    def array(self, space, rank):
        return self.wins[space].local(rank)


class _AtomicEndpoint(Endpoint):
    """Native remote atomics (MPI_Compare_and_swap / MPI_Fetch_and_op)."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.h = {name: win.handle(ctx) for name, win in channel.wins.items()}

    def local(self, space):
        return self.channel.wins[space].local(self.ctx.rank)

    def cas(self, space, dst, offset, compare, value):
        old = yield from self.h[space].cas_blocking(dst, offset, compare, value)
        return old

    def faa(self, space, dst, offset, value):
        old = yield from self.h[space].faa_blocking(dst, offset, value)
        return old

    def swap(self, space, dst, offset, value):
        req = yield from self.h[space].fetch_and_replace(dst, offset, value)
        old = yield from self.ctx.wait(req)
        return old

    def publish(self, space, dst, values, *, offset=0):
        # flush_local orders the element write before any subsequent op
        # from this origin.
        yield from self.h[space].put(dst, values, offset=offset)
        yield from self.h[space].flush_local(dst)

    def native_cas(self, space, dst, offset, compare, value):
        old = yield from self.h[space].cas_blocking(dst, offset, compare, value)
        return old

    def cas_stream(self, space, dst, offset, ops):
        from repro import perf
        from repro.perf.atomics import bulk_cas_stream

        win = self.channel.wins[space]
        if perf.bulk_enabled(self.ctx.job) and not win._watchers[dst]:
            # cas_blocking = CAS round trip + ctx.wait per op.
            out = yield from bulk_cas_stream(
                self.ctx, win, dst, offset, list(ops), count_wait=True
            )
            return out
        out = []
        for compare, value in ops:
            old = yield from self.native_cas(space, dst, offset, compare, value)
            out.append(old)
        return out


class RmaBackend(TransportBackend):
    name = ONE_SIDED
    sided = "one"
    caps = BackendCaps(remote_atomics=True, ops_per_message=4, fence_epochs=True)
    description = "one-sided MPI RMA: 4-op put/flush/signal + Listing-1 polling"
    # A lost Put has no receiver to notice it: loss is only discovered at
    # the next synchronisation (slow detection), every retry re-syncs the
    # window state (extra round trip), and the error surfaces at
    # flush/wait rather than at the send.
    fault_semantics = FaultSemantics(mode="surface", detect_scale=4.0, resync_penalty=True)

    def open_halo(self, job, spec: HaloSpec):
        return _HaloChannel(self, job, spec)

    def open_mailbox(self, job, spec: MailboxSpec):
        return _MailboxChannel(self, job, spec)

    def open_batch(self, job, spec: BatchSpec):
        return _BatchChannel(self, job, spec)

    def open_atomics(self, job, spec: AtomicDomainSpec):
        return _AtomicChannel(self, job, spec)


register_backend(RmaBackend())
