"""NVSHMEM (GPU-initiated) backend over :class:`repro.comm.shmem.ShmemContext`.

Paper accounting: a notified message is one fused ``put_signal_nbi``; the
receiver blocks in hardware ``wait_until`` waits (cold ``wait_until_all``
wakeups, hot ``wait_until_any`` spins) instead of a software polling loop.
Halo windows are double-buffered by iteration parity — the standard
NVSHMEM stencil idiom, since nothing like a fence separates epochs.
Remote atomics are native shmem AMOs.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultSemantics
from repro.transport.api import (
    AtomicDomainSpec,
    BackendCaps,
    BatchSpec,
    Channel,
    Endpoint,
    HaloSpec,
    MailboxSpec,
    part_bounds,
)
from repro.transport.registry import SHMEM, TransportBackend, register_backend

__all__ = ["ShmemBackend"]


class _HaloChannel(Channel):
    def __init__(self, backend, job, spec: HaloSpec):
        super().__init__(backend, job, spec)
        # Double-buffered halo window (iteration parity), one signal slot
        # per direction.
        self.win = job.window(2 * spec.win_count, dtype=spec.dtype)
        self.sig = job.window(len(spec.slot), dtype=np.uint64)

    def endpoint(self, ctx):
        return _HaloEndpoint(self, ctx)


class _HaloEndpoint(Endpoint):
    """``put_signal_nbi`` x neighbours + ``wait_until_all`` on the signals.

    The halo window is double-buffered by iteration parity: without the
    strict fence of the one-sided variant, a fast neighbour's iteration
    k+1 put must not overwrite halo data this rank has not yet consumed
    for iteration k.
    """

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.win = channel.win
        self.sig = channel.sig
        self._it = 0

    def begin(self, it):
        self._it = it
        return
        yield  # pragma: no cover - no epoch-open op in shmem

    def put(self, seg, dst, values=None):
        seg_dir = self.spec.opposite[seg]
        offset, length = self.spec.segments[dst][seg_dir]
        offset += (self._it % 2) * self.spec.counts[dst]
        yield from self.ctx.put_signal_nbi(
            self.win,
            dst,
            values=values,
            nelems=length,
            offset=offset,
            signal_win=self.sig,
            signal_idx=self.spec.slot[seg_dir],
            signal_value=self._it + 1,
        )

    def finish(self, it):
        expected = [self.spec.slot[d] for d in self.spec.neighbors[self.ctx.rank]]
        yield from self.ctx.wait_until_all(self.sig, expected, value=it + 1)
        parity = it % 2
        received = {}
        for d in self.spec.neighbors[self.ctx.rank]:
            offset, length = self.spec.segments[self.ctx.rank][d]
            start = parity * self.spec.counts[self.ctx.rank] + offset
            received[d] = self.win.local(self.ctx.rank)[start : start + length]
        return received


class _MailboxChannel(Channel):
    def __init__(self, backend, job, spec: MailboxSpec):
        super().__init__(backend, job, spec)
        self.data_win = job.window(max(spec.data_words, 1), dtype=spec.dtype)
        self.sig_win = job.window(max(spec.nslots, 1), dtype=spec.signal_dtype)
        self._round_bulk_ok: bool | None = None

    def paths_exclusive(self, fabric) -> bool:
        """May striped rounds take the bulk path on this job's topology?

        The bulk engine reserves a whole batch's fabric slots at issue
        time; that equals the scalar interleaving only when no *other*
        sender can touch any hop of the path mid-batch.  Sufficient (and
        checkable) condition: every rank has its own endpoint and every
        endpoint pair routes over a single direct hop — then each
        directional link belongs to exactly one sender (the mailbox
        invariant: one message per receiver per round) and nothing
        transits it.  NVLink all-to-all qualifies; fat-trees and the
        Summit dumbbell (shared X-links) do not and stay scalar.
        """
        if self._round_bulk_ok is None:
            eps = self.job.endpoints
            ok = len(set(eps)) == len(eps)
            if ok:
                topo = fabric.topology
                ok = all(
                    len(topo.route(a, b).hops) == 1
                    for a in eps
                    for b in eps
                    if a != b
                )
            self._round_bulk_ok = ok
        return self._round_bulk_ok

    def endpoint(self, ctx):
        return _MailboxEndpoint(self, ctx)


class _MailboxEndpoint(Endpoint):
    """``put_signal_nbi`` + ``wait_until_any`` in a loop (GPU)."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.data_win = channel.data_win
        self.sig_win = channel.sig_win
        self._remaining: dict = {}

    def expect(self, msgs):
        self._remaining = dict(msgs)

    def send(self, dst, slot, *, words, values=None, meta=None, tag=0):
        offset = self.spec.offsets[dst][slot]
        yield from self.ctx.put_signal_nbi(
            self.data_win,
            dst,
            values=values,
            nelems=words,
            offset=offset,
            signal_win=self.sig_win,
            signal_idx=slot,
            signal_value=1,
        )

    def recv(self):
        slot = yield from self.ctx.wait_until_any(
            self.sig_win, list(self._remaining), value=1, consume=True
        )
        m = self._remaining.pop(slot)
        if self.spec.read_data:
            off = self.spec.offsets[self.ctx.rank][m.slot]
            data = np.array(
                self.data_win.local(self.ctx.rank)[off : off + m.words], copy=True
            )
        else:
            data = None
        return m.meta, data

    def _bulk_round(self, words, parts):
        from repro import perf

        return (
            parts >= 2
            and words
            and words % parts == 0
            and not self.spec.read_data
            and perf.bulk_enabled(self.ctx.job)
            and self.channel.paths_exclusive(self.ctx.fabric)
        )

    def send_round(self, dst, slot, *, words, parts=1, values=None):
        from repro.perf.engine import rendezvous

        offset = self.spec.offsets[dst][slot]
        if self._bulk_round(words, parts):
            # Signal word before this round lands: the bulk receiver
            # reconstructs per-stripe signal values from this base.
            base = int(self.sig_win.buffers[dst][slot])
            deliver = yield from self.ctx.put_signal_batch(
                self.data_win,
                dst,
                parts,
                nelems=words // parts,
                offset=offset,
                signal_win=self.sig_win,
                signal_idx=slot,
                signal_value=1,
                signal_op="add",
            )
            if deliver is not None:
                rendezvous(self.channel).publish(
                    ("round", self.ctx.rank, dst, slot), np.asarray(deliver), base
                )
            return
        for lo, hi in part_bounds(words, parts):
            stripe = None
            if values is not None and self.spec.read_data:
                # Copy: the sender may overwrite its buffer before the
                # put's delivery applies it at the target.
                stripe = np.asarray(values).ravel()[lo:hi].copy()
            # An empty part still carries its signal (zero-word message)
            # so the receiver's wait target stays ``parts``.
            yield from self.ctx.put_signal_nbi(
                self.data_win,
                dst,
                values=stripe,
                nelems=hi - lo,
                offset=offset + lo,
                signal_win=self.sig_win,
                signal_idx=slot,
                signal_value=1,
                signal_op="add",
            )

    def recv_round(self, src, slot, *, words, parts=1):
        if self._bulk_round(words, parts):
            yield from self._recv_round_bulk(src, slot, parts)
        else:
            yield from self.ctx.wait_until_all(self.sig_win, [slot], value=parts)
        if not self.spec.read_data:
            return None
        off = self.spec.offsets[self.ctx.rank][slot]
        return np.array(
            self.data_win.local(self.ctx.rank)[off : off + words], copy=True
        )

    def _recv_round_bulk(self, src, slot, parts):
        """Exact ``wait_until_all`` timing against the bulk sender's
        published stripe-arrival schedule (mirrors the batch pattern)."""
        from repro.perf.engine import drain_wait_until_all, rendezvous

        ctx = self.ctx
        ctx.counter.syncs += 1
        ctx.counter.operations += 1
        if self.sig_win.buffers[ctx.rank][slot] >= parts:
            return
        t_entry = ctx.sim.now
        rv = rendezvous(self.channel)
        key = ("round", src, ctx.rank, slot)
        rec = rv.poll(key)
        if rec is None:
            yield rv.waiter(key, ctx.sim)
            rec = rv.poll(key)
        arrivals, base = rec
        t_done = drain_wait_until_all(ctx, arrivals, base, parts, t_entry)
        yield ctx.sim.at_time(t_done)

    def drain(self):
        yield from self.ctx.quiet()


class _BatchChannel(Channel):
    def __init__(self, backend, job, spec: BatchSpec):
        super().__init__(backend, job, spec)
        self.data_win = job.window(spec.nelems, dtype=spec.dtype)
        self.sig_win = job.window(spec.nsignals, dtype=np.uint64)

    def endpoint(self, ctx):
        return _BatchEndpoint(self, ctx)


class _BatchEndpoint(Endpoint):
    """``put_signal_nbi`` x n (signal op "add"), receiver ``wait_until_all``."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.data_win = channel.data_win
        self.sig_win = channel.sig_win
        self._queued: dict[int, int] = {}

    def post(self, dst):
        from repro import perf

        if perf.bulk_enabled(self.ctx.job):
            # Deferred: nothing runs between the batch pattern's posts and
            # its commit, so one bulk pass at commit() reproduces the
            # scalar issue times exactly.
            self._queued[dst] = self._queued.get(dst, 0) + 1
            return
        yield from self.ctx.put_signal_nbi(
            self.data_win,
            dst,
            nelems=self.spec.nelems,
            signal_win=self.sig_win,
            signal_idx=0,
            signal_value=1,
            signal_op="add",
        )

    def commit(self, dst, it):
        from repro.perf.engine import rendezvous

        n = self._queued.pop(dst, 0)
        if n:
            # Signal word before this batch lands: the bulk receiver
            # reconstructs per-arrival signal values from this base.
            base = int(self.sig_win.buffers[dst][0])
            deliver = yield from self.ctx.put_signal_batch(
                self.data_win,
                dst,
                n,
                nelems=self.spec.nelems,
                signal_win=self.sig_win,
                signal_idx=0,
                signal_value=1,
                signal_op="add",
            )
            if deliver is not None:
                rendezvous(self.channel).publish(
                    (self.ctx.rank, dst, it), np.asarray(deliver), base
                )
        yield from self.ctx.quiet()

    def wait_batch(self, src, it, n):
        from repro import perf

        if perf.bulk_enabled(self.ctx.job):
            yield from self._wait_batch_bulk(src, it, n)
            return
        yield from self.ctx.wait_until_all(self.sig_win, [0], value=(it + 1) * n)

    def _wait_batch_bulk(self, src, it, n):
        """Exact ``wait_until_all`` timing against the bulk sender's
        published arrival schedule (the signals themselves land all at
        once at the batch completion, so the scalar polling loop cannot
        observe them one by one)."""
        from repro.perf.engine import drain_wait_until_all, rendezvous

        ctx = self.ctx
        value = (it + 1) * n
        ctx.counter.syncs += 1
        ctx.counter.operations += 1
        if self.sig_win.buffers[ctx.rank][0] >= value:
            # Satisfied on entry (batch already applied): the scalar loop
            # would return immediately without blocking or wakeup cost.
            return
        t_entry = ctx.sim.now
        rv = rendezvous(self.channel)
        key = (src, ctx.rank, it)
        rec = rv.poll(key)
        if rec is None:
            yield rv.waiter(key, ctx.sim)
            rec = rv.poll(key)
        arrivals, base = rec
        t_done = drain_wait_until_all(ctx, arrivals, base, value, t_entry)
        yield ctx.sim.at_time(t_done)


class _AtomicChannel(Channel):
    def __init__(self, backend, job, spec: AtomicDomainSpec):
        super().__init__(backend, job, spec)
        self.wins = {
            name: job.window(s.count, dtype=s.dtype, fill=s.fill)
            for name, s in spec.spaces.items()
        }

    def endpoint(self, ctx):
        return _AtomicEndpoint(self, ctx)

    def array(self, space, rank):
        return self.wins[space].local(rank)


class _AtomicEndpoint(Endpoint):
    """Remote AMOs.  The CAS/FAA/swap insert sequence reuses the blocking
    window verbs (identical issue/response accounting on GPUs — the
    context supplies the shmem op costs); ``native_cas`` is the fused
    ``shmem_atomic_compare_swap`` used by the Fig. 4 CAS flood.
    """

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self.h = {name: win.handle(ctx) for name, win in channel.wins.items()}

    def local(self, space):
        return self.channel.wins[space].local(self.ctx.rank)

    def cas(self, space, dst, offset, compare, value):
        old = yield from self.h[space].cas_blocking(dst, offset, compare, value)
        return old

    def faa(self, space, dst, offset, value):
        old = yield from self.h[space].faa_blocking(dst, offset, value)
        return old

    def swap(self, space, dst, offset, value):
        req = yield from self.h[space].fetch_and_replace(dst, offset, value)
        old = yield from self.ctx.wait(req)
        return old

    def publish(self, space, dst, values, *, offset=0):
        yield from self.h[space].put(dst, values, offset=offset)
        yield from self.h[space].flush_local(dst)

    def native_cas(self, space, dst, offset, compare, value):
        old = yield from self.ctx.atomic_compare_swap(
            self.channel.wins[space], dst, offset, compare, value
        )
        return old

    def cas_stream(self, space, dst, offset, ops):
        from repro import perf
        from repro.perf.atomics import bulk_cas_stream

        win = self.channel.wins[space]
        if perf.bulk_enabled(self.ctx.job) and not win._watchers[dst]:
            # Fused shmem CAS: resume on the response, no wait accounting.
            out = yield from bulk_cas_stream(
                self.ctx, win, dst, offset, list(ops), count_wait=False
            )
            return out
        out = []
        for compare, value in ops:
            old = yield from self.native_cas(space, dst, offset, compare, value)
            out.append(old)
        return out


class ShmemBackend(TransportBackend):
    name = SHMEM
    sided = "shmem"
    caps = BackendCaps(remote_atomics=True, ops_per_message=1, gpu_initiated=True)
    description = "NVSHMEM: fused put_signal_nbi + hardware wait_until"
    # NIC-hardware retry: loss is detected fastest of all runtimes and
    # needs no window re-sync, but an unrecoverable message still only
    # surfaces at quiet/wait time (one-sided completion model).
    fault_semantics = FaultSemantics(mode="surface", detect_scale=0.5)

    @property
    def context_cls(self):
        from repro.comm.shmem import ShmemContext

        return ShmemContext

    def open_halo(self, job, spec: HaloSpec):
        return _HaloChannel(self, job, spec)

    def open_mailbox(self, job, spec: MailboxSpec):
        return _MailboxChannel(self, job, spec)

    def open_batch(self, job, spec: BatchSpec):
        return _BatchChannel(self, job, spec)

    def open_atomics(self, job, spec: AtomicDomainSpec):
        return _AtomicChannel(self, job, spec)


register_backend(ShmemBackend())
