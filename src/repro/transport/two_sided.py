"""Two-sided MPI backend: tagged ``Isend``/``Irecv``/``Recv`` over
:class:`repro.comm.context.RankContext`.

Paper accounting: 2 ops per message (the send and its matching receive);
synchronisation is carried by the message matching itself — no windows,
no signals.  Remote atomics are not native: the atomic-domain channel
exposes owner-routed triplet messaging instead (``post_msg`` /
``recv_msg_poll``), the hashtable's two-sided design.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultSemantics
from repro.transport.api import (
    AtomicDomainSpec,
    BackendCaps,
    BatchSpec,
    Channel,
    Endpoint,
    HaloSpec,
    MailboxSpec,
    part_bounds,
)
from repro.transport.registry import TWO_SIDED, TransportBackend, register_backend

__all__ = ["TwoSidedBackend"]


class _HaloChannel(Channel):
    def endpoint(self, ctx):
        return _HaloEndpoint(self, ctx)


class _HaloEndpoint(Endpoint):
    """Four ``Irecv`` + four ``Isend`` + ``Waitall`` per iteration."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self._recvs: list = []
        self._sends: list = []

    def begin(self, it):
        self._recvs = []
        self._sends = []
        for d, nb in self.spec.neighbors[self.ctx.rank].items():
            r = yield from self.ctx.irecv(source=nb, tag=self.spec.slot[d])
            self._recvs.append((d, r))

    def put(self, seg, dst, values=None):
        payload = values.copy() if values is not None else None
        # Tag by the direction the receiver sees it coming from.
        tag = self.spec.slot[self.spec.opposite[seg]]
        nelems = self.spec.segments[self.ctx.rank][seg][1]
        s = yield from self.ctx.isend(
            dst, nbytes=nelems * self.spec.itemsize, tag=tag, payload=payload
        )
        self._sends.append(s)

    def finish(self, it):
        yield from self.ctx.waitall([r for _, r in self._recvs] + self._sends)
        received = {}
        for d, r in self._recvs:
            data, _status = r.value
            received[d] = data
        return received


class _MailboxChannel(Channel):
    def endpoint(self, ctx):
        return _MailboxEndpoint(self, ctx)


class _MailboxEndpoint(Endpoint):
    """``Isend`` + blocking ``Recv(ANY_SOURCE)``; sends drained at the end."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self._send_reqs: list = []

    def expect(self, msgs):
        pass  # matching is carried by the messages themselves

    def send(self, dst, slot, *, words, values=None, meta=None, tag=0):
        r = yield from self.ctx.isend(
            dst,
            nbytes=words * self.spec.word_bytes,
            tag=tag,
            payload=(meta, values),
        )
        self._send_reqs.append(r)

    def recv(self):
        (payload, _status) = yield from self.ctx.recv()
        meta, data = payload
        return meta, data

    def send_round(self, dst, slot, *, words, parts=1, values=None):
        # One Isend per part, tagged by the round slot so concurrent
        # in-flight rounds from the same peer can never cross-match.
        for lo, hi in part_bounds(words, parts):
            payload = None
            if values is not None and self.spec.read_data:
                payload = np.asarray(values).ravel()[lo:hi].copy()
            r = yield from self.ctx.isend(
                dst,
                nbytes=(hi - lo) * self.spec.word_bytes,
                tag=slot,
                payload=payload,
            )
            self._send_reqs.append(r)

    def recv_round(self, src, slot, *, words, parts=1):
        reqs = []
        for _ in range(parts):
            r = yield from self.ctx.irecv(source=src, tag=slot)
            reqs.append(r)
        values = yield from self.ctx.waitall(reqs)
        if not self.spec.read_data:
            return None
        # Same-(src, tag) messages match posted receives in send order.
        chunks = [p for (p, _status) in values if p is not None]
        if not chunks:
            return np.zeros(0, dtype=self.spec.dtype)
        return np.concatenate([np.asarray(c).ravel() for c in chunks])

    def drain(self):
        if self._send_reqs:
            yield from self.ctx.waitall(self._send_reqs)
            self._send_reqs = []


_BATCH_TAG = 7


class _BatchChannel(Channel):
    def endpoint(self, ctx):
        return _BatchEndpoint(self, ctx)


class _BatchEndpoint(Endpoint):
    """``Isend`` x n / pre-posted ``Irecv`` x n + ``Waitall``."""

    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self._reqs: list = []

    def post(self, dst):
        r = yield from self.ctx.isend(dst, nbytes=self.spec.nbytes, tag=_BATCH_TAG)
        self._reqs.append(r)

    def commit(self, dst, it):
        yield from self.ctx.waitall(self._reqs)
        self._reqs = []

    def wait_batch(self, src, it, n):
        reqs = []
        for _ in range(n):
            r = yield from self.ctx.irecv(source=src, tag=_BATCH_TAG)
            reqs.append(r)
        yield from self.ctx.waitall(reqs)


class _AtomicChannel(Channel):
    """Symmetric spaces without remote atomics: owners mutate their own
    arrays, writers route triplets to the owner (plus a window-backed CAS
    for the atomic flood, which any MPI runtime can issue)."""

    def __init__(self, backend, job, spec: AtomicDomainSpec):
        super().__init__(backend, job, spec)
        self.wins = {
            name: job.window(s.count, dtype=s.dtype, fill=s.fill)
            for name, s in spec.spaces.items()
        }

    def endpoint(self, ctx):
        return _AtomicEndpoint(self, ctx)

    def array(self, space, rank):
        return self.wins[space].local(rank)


class _AtomicEndpoint(Endpoint):
    def __init__(self, channel, ctx):
        super().__init__(channel, ctx)
        self._send_reqs: list = []

    def local(self, space):
        return self.channel.wins[space].local(self.ctx.rank)

    def post_msg(self, dst, *, nbytes, payload=None, tag=0):
        req = yield from self.ctx.isend(dst, nbytes=nbytes, tag=tag, payload=payload)
        self._send_reqs.append(req)

    def recv_msg_poll(self, tag=0):
        (payload, _status) = yield from self.ctx.recv_poll(tag=tag)
        return payload

    def drain(self):
        if self._send_reqs:
            yield from self.ctx.waitall(self._send_reqs)
            self._send_reqs = []

    def native_cas(self, space, dst, offset, compare, value):
        h = self.channel.wins[space].handle(self.ctx)
        old = yield from h.cas_blocking(dst, offset, compare, value)
        return old


class TwoSidedBackend(TransportBackend):
    name = TWO_SIDED
    sided = "two"
    caps = BackendCaps(remote_atomics=False, ops_per_message=2)
    description = "two-sided MPI: Isend/Irecv/Recv with tag matching"
    # Library-internal recovery off a sender-side ack timer: loss is
    # detected at the base timeout, retransmitted transparently, and only
    # budget exhaustion aborts (MPI communicator-error style).
    fault_semantics = FaultSemantics(mode="abort", detect_scale=1.0)

    def open_halo(self, job, spec: HaloSpec):
        return _HaloChannel(self, job, spec)

    def open_mailbox(self, job, spec: MailboxSpec):
        return _MailboxChannel(self, job, spec)

    def open_batch(self, job, spec: BatchSpec):
        return _BatchChannel(self, job, spec)

    def open_atomics(self, job, spec: AtomicDomainSpec):
        return _AtomicChannel(self, job, spec)


register_backend(TwoSidedBackend())
