"""Multi-tenant interference: a victim's tail latency under a bully flood.

The paper measures contention *inside* a node (the Summit 42-CPU SpTRSV
collapse); production fabrics add a second contention regime the paper's
single-job runs cannot see: traffic from *other tenants* queueing on shared
routers.  This experiment co-schedules a latency-probe victim (small
put+flush round trips) with a bandwidth bully (large put floods) on one
dragonfly cluster through :class:`repro.cluster.Cluster`, and sweeps the
co-placement policy x the fabric routing policy:

* ``packed`` placement gives each job a contiguous corner of the fabric —
  the bully's flood never touches the victim's links and the victim's tail
  stays at its isolation value;
* ``scattered`` placement interleaves both jobs across routers — the
  bully's flows cross the victim's routers and its p99/p999 explode;
* ``adaptive`` (UGAL) routing lets flows detour around the queued links at
  decision time, recovering part (not all) of the scattered-placement gap —
  the Slingshot behaviour RAMC reports at scale.

Tail latencies are exact nearest-rank quantiles over the victim's per-op
samples (the same samples feed the ``cluster.victim.latency_seconds`` obs
histogram, whose interpolated ``quantile()`` surfaces in ``repro run
--metrics``).  Placement, routing, and congestion control are all pure
functions of the seed and the simulation clock, so every row is
bit-identical across runs — CI diffs two back-to-back executions.
"""

from __future__ import annotations

from repro.cluster import Cluster, attach_bully, attach_victim, sample_quantile
from repro.experiments.report import ExperimentReport
from repro.net.congestion import CongestionConfig
from repro.sweep import SweepSpec, run_sweep

__all__ = ["run_interference", "PLACEMENTS", "ROUTINGS"]

_MACHINE = "perlmutter-cpu-x8@dragonfly(4,2,2)"
_SEED = 7
PLACEMENTS = ("packed", "scattered", "random")
ROUTINGS = ("minimal", "adaptive")

_VICTIM_MSGS = 200
_BULLY_RANKS = 6
_BULLY_MSGS = 60


def _point(params, seed):
    samples: list[float] = []
    cluster = Cluster(
        params["machine"],
        routing=params["routing"],
        congestion=CongestionConfig() if params["congestion"] else None,
        seed=params["seed"],
    )
    cluster.submit(
        "victim",
        attach_victim(samples, nmsgs=_VICTIM_MSGS),
        nranks=2,
        runtime="one_sided",
        placement=params["placement"],
    )
    if params["bully"]:
        cluster.submit(
            "bully",
            attach_bully(nmsgs=_BULLY_MSGS),
            nranks=_BULLY_RANKS,
            runtime="one_sided",
            placement=params["placement"],
        )
    cluster.run()
    cc = cluster.fabric.cc
    return {
        "p50": sample_quantile(samples, 0.50),
        "p99": sample_quantile(samples, 0.99),
        "p999": sample_quantile(samples, 0.999),
        "marks": cc.marks if cc is not None else 0,
        "backoffs": cc.backoffs if cc is not None else 0,
    }


def _spec() -> SweepSpec:
    points = [
        {
            "machine": _MACHINE,
            "placement": placement,
            "routing": "minimal",
            "bully": False,
            "congestion": True,
            "seed": _SEED,
        }
        for placement in PLACEMENTS
    ]
    points += [
        {
            "machine": _MACHINE,
            "placement": placement,
            "routing": routing,
            "bully": True,
            "congestion": True,
            "seed": _SEED,
        }
        for placement in PLACEMENTS
        for routing in ROUTINGS
    ]
    return SweepSpec(name="interference", runner=_point, points=points)


def run_interference() -> ExperimentReport:
    sweep = run_sweep(_spec())
    values: dict[tuple, dict] = {
        (r.params["placement"], r.params["routing"], r.params["bully"]): r.value
        for r in sweep
    }

    headers = [
        "placement", "routing", "bully",
        "p50 (us)", "p99 (us)", "p999 (us)", "x isolation p99",
        "cc marks", "cc backoffs",
    ]
    rows = []
    for placement in PLACEMENTS:
        iso = values[(placement, "minimal", False)]
        for routing, bully in [("minimal", False)] + [
            (rt, True) for rt in ROUTINGS
        ]:
            v = values[(placement, routing, bully)]
            rows.append(
                [
                    placement,
                    routing,
                    "yes" if bully else "no",
                    round(v["p50"] * 1e6, 3),
                    round(v["p99"] * 1e6, 3),
                    round(v["p999"] * 1e6, 3),
                    round(v["p99"] / iso["p99"], 3) if iso["p99"] else "",
                    int(v["marks"]),
                    int(v["backoffs"]),
                ]
            )

    sc_iso = values[("scattered", "minimal", False)]["p99"]
    sc_min = values[("scattered", "minimal", True)]["p99"]
    sc_ada = values[("scattered", "adaptive", True)]["p99"]
    pk_iso = values[("packed", "minimal", False)]["p99"]
    pk_min = values[("packed", "minimal", True)]["p99"]
    expectations = {
        "bully strictly degrades the victim's p99 (scattered, minimal)": (
            sc_min > sc_iso
        ),
        "adaptive routing recovers part of the bully gap": (
            sc_iso <= sc_ada < sc_min
        ),
        "scattered placement degrades the victim more than packed": (
            sc_min - sc_iso > pk_min - pk_iso
        ),
        "packed placement isolates the victim from the bully": (
            pk_min <= 1.05 * pk_iso
        ),
        "congestion control engages under the flood": (
            values[("scattered", "minimal", True)]["marks"] > 0
        ),
    }

    notes = [
        f"machine {_MACHINE}: 8 dual-socket nodes on a 4-group dragonfly, "
        "node-exclusive placement",
        f"victim: 2 ranks, {_VICTIM_MSGS} timed 8 B put+flush round trips; "
        f"bully: {_BULLY_RANKS} ranks x {_BULLY_MSGS} x 64 KiB put flood",
        "quantiles are exact nearest-rank over the victim's samples; "
        "histogram-interpolated tails surface via repro run --metrics",
        f"ECN congestion control always on (threshold 2 us); seed {_SEED} — "
        "rows are bit-identical across runs",
    ]
    return ExperimentReport(
        experiment="interference",
        title="Victim tail latency under multi-tenant bully traffic",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
