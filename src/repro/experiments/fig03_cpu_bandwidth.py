"""Fig. 3 — sustained two-sided vs one-sided MPI bandwidth on CPUs.

Three panels: Perlmutter CPUs (a), Frontier CPUs (b), Summit CPUs (c).
Paper observations reproduced and checked here:

* (a, b) as msg/sync increases, **one-sided** MPI achieves higher bandwidth
  and lower per-message latency than two-sided — despite needing four MPI
  ops per message against two — because the RMA issue path is leaner than
  the send/match path;
* (c) on Summit, Spectrum MPI's one-sided is **consistently lower** than
  its two-sided (the inversion that motivates put-with-signal hardware);
* achieved bandwidth approaches the IF peak (32 / 36 GB/s) on Perlmutter /
  Frontier and only ~25 GB/s on Summit despite the 64 GB/s X-Bus.
* the diagonal latency ceilings are *fitted from the measured data*, as in
  the paper (we fit LogGP parameters per runtime).

The (machine x msg/sync x size x runtime) grid is declared as a
:class:`~repro.sweep.spec.SweepSpec`; each point is one flood run.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import fit_loggp
from repro.roofline.fit import FloodSample
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.flood import run_flood
from repro.transport import TWO_SIDED, ONE_SIDED

__all__ = ["run_fig03"]

_SIZES = (64, 1024, 16384, 262144, 4194304)
_NS = (1, 16, 256)
_RUNTIMES = (TWO_SIDED, ONE_SIDED)


def _point(params, seed):
    r = run_flood(
        get_machine(params["machine"]),
        params["runtime"],
        params["size"],
        params["msgs"],
        iters=params["iters"],
    )
    return {"bandwidth": r.bandwidth}


def _spec(machines: tuple[str, ...], iters: int) -> SweepSpec:
    return SweepSpec(
        name="fig03",
        runner=_point,
        axes={
            "machine": machines,
            "msgs": _NS,
            "size": _SIZES,
            "runtime": _RUNTIMES,
        },
        common={"iters": iters},
    )


def run_fig03(
    *,
    machines: tuple[str, ...] = ("perlmutter-cpu", "frontier-cpu", "summit-cpu"),
    iters: int = 2,
) -> ExperimentReport:
    sweep = run_sweep(_spec(machines, iters))
    results: dict[tuple[str, str, int, int], float] = {
        (p["machine"], p["runtime"], p["size"], p["msgs"]): r.value["bandwidth"]
        for r in sweep
        for p in [r.params]
    }
    return _summarize(machines, results)


def _summarize(
    machines: tuple[str, ...],
    results: dict[tuple[str, str, int, int], float],
) -> ExperimentReport:
    headers = ["machine", "B (bytes)", "msg/sync", "two-sided GB/s", "one-sided GB/s",
               "one/two"]
    rows = []
    samples: dict[tuple[str, str], list] = {}
    for mname in machines:
        for n in _NS:
            for B in _SIZES:
                bw = {
                    runtime: results[(mname, runtime, B, n)]
                    for runtime in _RUNTIMES
                }
                for runtime in _RUNTIMES:
                    samples.setdefault((mname, runtime), []).append(
                        FloodSample(
                            nbytes=float(B), msgs_per_sync=n,
                            bandwidth=bw[runtime],
                        )
                    )
                rows.append(
                    [
                        mname,
                        B,
                        n,
                        bw[TWO_SIDED] / 1e9,
                        bw[ONE_SIDED] / 1e9,
                        bw[ONE_SIDED] / bw[TWO_SIDED],
                    ]
                )

    expectations: dict[str, bool] = {}
    hi_n = max(_NS)
    small = _SIZES[0]
    big = _SIZES[-1]
    if "perlmutter-cpu" in machines:
        expectations["perlmutter: one-sided beats two-sided at high msg/sync"] = (
            results[("perlmutter-cpu", ONE_SIDED, small, hi_n)]
            > results[("perlmutter-cpu", TWO_SIDED, small, hi_n)]
        )
        expectations["perlmutter: achieved near 32 GB/s IF peak"] = (
            results[("perlmutter-cpu", ONE_SIDED, big, hi_n)] > 30e9
        )
        expectations["perlmutter: the two models converge for large messages"] = (
            abs(
                results[("perlmutter-cpu", ONE_SIDED, big, hi_n)]
                / results[("perlmutter-cpu", TWO_SIDED, big, hi_n)]
                - 1.0
            )
            < 0.1
        )
    if "frontier-cpu" in machines:
        expectations["frontier: one-sided beats two-sided at high msg/sync"] = (
            results[("frontier-cpu", ONE_SIDED, small, hi_n)]
            > results[("frontier-cpu", TWO_SIDED, small, hi_n)]
        )
        expectations["frontier: achieved near 36 GB/s IF bound"] = (
            results[("frontier-cpu", ONE_SIDED, big, hi_n)] > 33e9
        )
    if "summit-cpu" in machines:
        expectations["summit: one-sided consistently below two-sided (Spectrum)"] = all(
            results[("summit-cpu", ONE_SIDED, B, n)]
            <= results[("summit-cpu", TWO_SIDED, B, n)] * 1.05
            for B in _SIZES[:3]
            for n in _NS
        )
        expectations["summit: achieved ~25 GB/s despite 64 GB/s X-Bus"] = (
            20e9 < results[("summit-cpu", TWO_SIDED, big, hi_n)] < 27e9
        )

    notes = []
    for (mname, runtime), s in samples.items():
        fit = fit_loggp(s)
        notes.append(
            f"fitted {mname}/{runtime}: L={fit.params.L * 1e6:.2f} us, "
            f"o={fit.params.o * 1e6:.2f} us, g={fit.params.g * 1e6:.2f} us, "
            f"peak={fit.params.peak_bandwidth / 1e9:.1f} GB/s "
            f"(rms log-resid {fit.residual_rms:.3f})"
        )
    return ExperimentReport(
        experiment="fig03",
        title="Two-sided vs one-sided MPI sustained bandwidth on CPUs",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
