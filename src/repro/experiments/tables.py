"""Table I (platforms) and Table II (workload characterisation) runners."""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines import get_machine, machine_names, table1_rows
from repro.workloads.instrument import characterize_workloads

__all__ = ["run_table1", "run_table2"]


def run_table1() -> ExperimentReport:
    """Regenerate Table I from the machine registry."""
    rows = [
        [r["machine"], r["gpus"], r["cpus/cores"], r["runtimes"], r["links"]]
        for r in table1_rows()
    ]
    expectations = {
        "five platform views registered": len(rows) == 5,
        "both GPU machines expose NVSHMEM-style runtime": all(
            "shmem" in r[3]
            for r in rows
            if r[0] in ("perlmutter-gpu", "summit-gpu")
        ),
        "all CPU machines expose both MPI runtimes": all(
            "one_sided" in r[3] and "two_sided" in r[3]
            for r in rows
            if r[0].endswith("-cpu") and "gpu" not in r[0]
        ),
    }
    notes = [get_machine(name).describe() for name in machine_names()]
    return ExperimentReport(
        experiment="table1",
        title="Evaluation platforms",
        headers=["machine", "GPUs", "CPUs/cores", "runtimes", "links"],
        rows=rows,
        expectations=expectations,
        notes=notes,
    )


def run_table2(machine_name: str = "perlmutter-cpu") -> ExperimentReport:
    """Regenerate Table II from instrumented workload runs."""
    machine = get_machine(machine_name)
    t2 = characterize_workloads(machine)
    rows = [r.cells() for r in t2]
    by_name = {r.workload: r for r in t2}
    expectations = {
        "stencil: 4 messages per synchronization": (
            by_name["Stencil"].msgs_per_sync.startswith("4")
        ),
        "sptrsv: 1 message per synchronization": (
            by_name["SpTRSV"].msgs_per_sync.startswith("1")
        ),
        "hashtable: all inserts in one sync epoch": (
            "all inserts" in by_name["Hashtable"].msgs_per_sync
        ),
        "patterns match the paper": (
            by_name["Stencil"].pattern == "BSP sync"
            and by_name["SpTRSV"].pattern == "DAG async"
            and by_name["Hashtable"].pattern == "Random async"
        ),
    }
    return ExperimentReport(
        experiment="table2",
        title=f"Workload characterisation (measured on {machine_name})",
        headers=[
            "workload",
            "pattern",
            "notify",
            "two-sided op",
            "one-sided op",
            "P2P pair",
            "#msg/sync",
            "words/msg",
        ],
        rows=rows,
        expectations=expectations,
    )
