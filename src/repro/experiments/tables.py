"""Table I (platforms) and Table II (workload characterisation) runners.

Table I sweeps one point per registered machine; Table II is a single
sweep point running the instrumented workloads on the chosen machine.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines import get_machine, machine_names, table1_row
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.instrument import characterize_workloads
from repro.transport import TWO_SIDED, ONE_SIDED, SHMEM

__all__ = ["run_table1", "run_table2"]


def _table1_point(params, seed):
    name = params["machine"]
    row = table1_row(name)
    return {"row": row, "describe": get_machine(name).describe()}


def _table1_spec() -> SweepSpec:
    return SweepSpec(
        name="table1",
        runner=_table1_point,
        points=[{"machine": name} for name in machine_names()],
    )


def run_table1() -> ExperimentReport:
    """Regenerate Table I from the machine registry."""
    sweep = run_sweep(_table1_spec())
    rows = [
        [v["machine"], v["gpus"], v["cpus/cores"], v["runtimes"], v["links"]]
        for v in (r.value["row"] for r in sweep)
    ]
    expectations = {
        "five platform views registered": len(rows) == 5,
        "both GPU machines expose NVSHMEM-style runtime": all(
            SHMEM in r[3]
            for r in rows
            if r[0] in ("perlmutter-gpu", "summit-gpu")
        ),
        "all CPU machines expose both MPI runtimes": all(
            ONE_SIDED in r[3] and TWO_SIDED in r[3]
            for r in rows
            if r[0].endswith("-cpu") and "gpu" not in r[0]
        ),
    }
    notes = [r.value["describe"] for r in sweep]
    return ExperimentReport(
        experiment="table1",
        title="Evaluation platforms",
        headers=["machine", "GPUs", "CPUs/cores", "runtimes", "links"],
        rows=rows,
        expectations=expectations,
        notes=notes,
    )


def _table2_point(params, seed):
    t2 = characterize_workloads(get_machine(params["machine"]))
    return {
        "cells": [r.cells() for r in t2],
        "facts": {
            r.workload: {"msgs_per_sync": r.msgs_per_sync, "pattern": r.pattern}
            for r in t2
        },
    }


def _table2_spec(machine_name: str) -> SweepSpec:
    return SweepSpec(
        name="table2",
        runner=_table2_point,
        points=[{"machine": machine_name}],
    )


def run_table2(machine_name: str = "perlmutter-cpu") -> ExperimentReport:
    """Regenerate Table II from instrumented workload runs."""
    (result,) = run_sweep(_table2_spec(machine_name))
    rows = [list(cells) for cells in result.value["cells"]]
    facts = result.value["facts"]
    expectations = {
        "stencil: 4 messages per synchronization": (
            facts["Stencil"]["msgs_per_sync"].startswith("4")
        ),
        "sptrsv: 1 message per synchronization": (
            facts["SpTRSV"]["msgs_per_sync"].startswith("1")
        ),
        "hashtable: all inserts in one sync epoch": (
            "all inserts" in facts["Hashtable"]["msgs_per_sync"]
        ),
        "patterns match the paper": (
            facts["Stencil"]["pattern"] == "BSP sync"
            and facts["SpTRSV"]["pattern"] == "DAG async"
            and facts["Hashtable"]["pattern"] == "Random async"
        ),
    }
    return ExperimentReport(
        experiment="table2",
        title=f"Workload characterisation (measured on {machine_name})",
        headers=[
            "workload",
            "pattern",
            "notify",
            "two-sided op",
            "one-sided op",
            "P2P pair",
            "#msg/sync",
            "words/msg",
        ],
        rows=rows,
        expectations=expectations,
    )
