"""Fig. 5 — stencil time on CPUs and GPUs, two-sided vs one-sided.

Paper observations reproduced and checked:

* on CPUs, two-sided and one-sided stencil perform **equally** — the
  computation is bandwidth-bound, so the one-sided latency advantage buys
  nothing (the paper quantifies it at ~20% lower latency, invisible here);
* GPUs beat CPUs through higher achieved bandwidth and in-kernel
  parallelism (the paper: ~30 GB/s vs ~20 GB/s and 80 blocks/GPU);
* stencil is insensitive to the Summit on-node GPU topology — it scales
  across both islands (BSP tolerates the dumbbell).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines import perlmutter_cpu, perlmutter_gpu, summit_cpu, summit_gpu
from repro.workloads.stencil import StencilConfig, run_stencil

__all__ = ["run_fig05"]


def run_fig05(*, nx: int = 16384, iters: int = 5) -> ExperimentReport:
    cfg = StencilConfig(nx=nx, ny=nx, iters=iters, mode="simulate")
    headers = ["machine", "variant", "P", "time (ms)", "msg bytes"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}

    cpu_ps = (4, 16, 64, 128)
    for P in cpu_ps:
        for runtime in ("two_sided", "one_sided"):
            res = run_stencil(perlmutter_cpu(), runtime, cfg, P)
            t[("perlmutter-cpu", runtime, P)] = res.time
            rows.append(
                [
                    "perlmutter-cpu",
                    runtime,
                    P,
                    res.time * 1e3,
                    max(res.extras["halo_bytes"].values()),
                ]
            )
    for P in (16, 32):
        # 32 is the largest power-of-two rank count on Summit's 42 cores
        # that divides the paper's 16384 grid evenly.
        res = run_stencil(summit_cpu(), "two_sided", cfg, P)
        t[("summit-cpu", "two_sided", P)] = res.time
        rows.append(["summit-cpu", "two_sided", P, res.time * 1e3,
                     max(res.extras["halo_bytes"].values())])
    for P in (2, 4):
        for runtime in ("shmem", "two_sided"):
            # two_sided on the GPU machine is host-initiated CUDA-aware MPI:
            # every halo exchange pays a device sync + host MPI + relaunch.
            res = run_stencil(perlmutter_gpu(), runtime, cfg, P)
            t[("perlmutter-gpu", runtime, P)] = res.time
            rows.append(["perlmutter-gpu", runtime, P, res.time * 1e3,
                         max(res.extras["halo_bytes"].values())])
    for P in (2, 6):
        res = run_stencil(summit_gpu(), "shmem", cfg, P)
        t[("summit-gpu", "shmem", P)] = res.time
        rows.append(["summit-gpu", "shmem", P, res.time * 1e3,
                     max(res.extras["halo_bytes"].values())])

    two_vs_one = [
        t[("perlmutter-cpu", "one_sided", P)] / t[("perlmutter-cpu", "two_sided", P)]
        for P in cpu_ps
    ]
    expectations = {
        "CPU: one-sided == two-sided (within 10%)": all(
            0.9 < r < 1.1 for r in two_vs_one
        ),
        "CPU stencil scales 4 -> 128 ranks": (
            t[("perlmutter-cpu", "two_sided", 128)]
            < t[("perlmutter-cpu", "two_sided", 4)]
        ),
        "GPU (4xA100) beats CPU (128 ranks)": (
            t[("perlmutter-gpu", "shmem", 4)]
            < t[("perlmutter-cpu", "two_sided", 128)]
        ),
        "stencil insensitive to Summit dumbbell (6 GPUs scale)": (
            t[("summit-gpu", "shmem", 6)] < t[("summit-gpu", "shmem", 2)]
        ),
        "GPU-initiated beats host-initiated two-sided on GPUs": (
            t[("perlmutter-gpu", "shmem", 4)]
            <= t[("perlmutter-gpu", "two_sided", 4)]
        ),
    }
    return ExperimentReport(
        experiment="fig05",
        title=f"Stencil time ({nx}x{nx} grid, {iters} iterations)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "paper runs 1000 iterations; scale with iters= for longer runs",
        ],
    )
