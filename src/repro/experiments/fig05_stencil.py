"""Fig. 5 — stencil time on CPUs and GPUs, two-sided vs one-sided.

Paper observations reproduced and checked:

* on CPUs, two-sided and one-sided stencil perform **equally** — the
  computation is bandwidth-bound, so the one-sided latency advantage buys
  nothing (the paper quantifies it at ~20% lower latency, invisible here);
* GPUs beat CPUs through higher achieved bandwidth and in-kernel
  parallelism (the paper: ~30 GB/s vs ~20 GB/s and 80 blocks/GPU);
* stencil is insensitive to the Summit on-node GPU topology — it scales
  across both islands (BSP tolerates the dumbbell).

The (machine, runtime, P) cases form the sweep grid; each point runs one
stencil simulation.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.stencil import StencilConfig, run_stencil
from repro.transport import TWO_SIDED, ONE_SIDED, SHMEM

__all__ = ["run_fig05"]

_CPU_PS = (4, 16, 64, 128)

# (machine, runtime, P) in the figure's presentation order.  32 is the
# largest power-of-two rank count on Summit's 42 cores that divides the
# paper's 16384 grid evenly.  two_sided on the GPU machine is
# host-initiated CUDA-aware MPI: every halo exchange pays a device sync +
# host MPI + relaunch.
_CASES = (
    *[("perlmutter-cpu", runtime, P)
      for P in _CPU_PS for runtime in (TWO_SIDED, ONE_SIDED)],
    *[("summit-cpu", TWO_SIDED, P) for P in (16, 32)],
    *[("perlmutter-gpu", runtime, P)
      for P in (2, 4) for runtime in (SHMEM, TWO_SIDED)],
    *[("summit-gpu", SHMEM, P) for P in (2, 6)],
)


def _point(params, seed):
    cfg = StencilConfig(
        nx=params["nx"], ny=params["nx"], iters=params["iters"], mode="simulate"
    )
    res = run_stencil(
        get_machine(params["machine"]), params["runtime"], cfg, params["P"]
    )
    return {
        "time": res.time,
        "halo_max": max(res.extras["halo_bytes"].values()),
    }


def _spec(nx: int, iters: int) -> SweepSpec:
    return SweepSpec(
        name="fig05",
        runner=_point,
        points=[
            {"machine": m, "runtime": runtime, "P": P}
            for m, runtime, P in _CASES
        ],
        common={"nx": nx, "iters": iters},
    )


def run_fig05(*, nx: int = 16384, iters: int = 5) -> ExperimentReport:
    sweep = run_sweep(_spec(nx, iters))
    headers = ["machine", "variant", "P", "time (ms)", "msg bytes"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}
    for r in sweep:
        p = r.params
        t[(p["machine"], p["runtime"], p["P"])] = r.value["time"]
        rows.append(
            [p["machine"], p["runtime"], p["P"], r.value["time"] * 1e3,
             r.value["halo_max"]]
        )

    two_vs_one = [
        t[("perlmutter-cpu", ONE_SIDED, P)] / t[("perlmutter-cpu", TWO_SIDED, P)]
        for P in _CPU_PS
    ]
    expectations = {
        "CPU: one-sided == two-sided (within 10%)": all(
            0.9 < r < 1.1 for r in two_vs_one
        ),
        "CPU stencil scales 4 -> 128 ranks": (
            t[("perlmutter-cpu", TWO_SIDED, 128)]
            < t[("perlmutter-cpu", TWO_SIDED, 4)]
        ),
        "GPU (4xA100) beats CPU (128 ranks)": (
            t[("perlmutter-gpu", SHMEM, 4)]
            < t[("perlmutter-cpu", TWO_SIDED, 128)]
        ),
        "stencil insensitive to Summit dumbbell (6 GPUs scale)": (
            t[("summit-gpu", SHMEM, 6)] < t[("summit-gpu", SHMEM, 2)]
        ),
        "GPU-initiated beats host-initiated two-sided on GPUs": (
            t[("perlmutter-gpu", SHMEM, 4)]
            <= t[("perlmutter-gpu", TWO_SIDED, 4)]
        ),
    }
    return ExperimentReport(
        experiment="fig05",
        title=f"Stencil time ({nx}x{nx} grid, {iters} iterations)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "paper runs 1000 iterations; scale with iters= for longer runs",
        ],
    )
