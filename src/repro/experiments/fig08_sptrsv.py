"""Fig. 8 — SpTRSV time on CPUs and GPUs, two-sided vs one-sided.

Paper observations reproduced and checked:

* unlike the stencil, **one-sided SpTRSV is slower than two-sided** on CPUs
  — each message needs four MPI ops (plus user-built receiver
  notification) against two, and nothing amortises it at 1 msg/sync;
* one-sided stops scaling at high parallelism: every expected message adds
  a slot to the receiver's Listing-1 polling mask, so the per-wake scan
  grows with P;
* SpTRSV scales on Perlmutter GPUs (NVLink3: lower latency, 2x bandwidth)
  but not on Summit GPUs — at 4 GPUs Perlmutter is ~3.7x faster;
* Summit CPUs scale to 32 ranks, then contention degrades 42.

Each (machine, runtime, P) case is a sweep point; the synthetic matrix is
regenerated inside the point runner from its (deterministic) spec, so
points are independent and parallelise freely.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.transport import TWO_SIDED, ONE_SIDED, SHMEM

__all__ = ["run_fig08"]

_CASES = (
    *[("perlmutter-cpu", runtime, P)
      for P in (1, 4, 16, 32) for runtime in (TWO_SIDED, ONE_SIDED)],
    *[("summit-cpu", TWO_SIDED, P) for P in (4, 16, 32, 42)],
    *[("perlmutter-gpu", SHMEM, P) for P in (1, 2, 4)],
    *[("summit-gpu", SHMEM, P) for P in (1, 2, 4, 6)],
)


def _matrix(params):
    return generate_matrix(
        MatrixSpec(
            n_supernodes=params["n_supernodes"],
            width_lo=3,
            width_hi=130,
            seed=params["seed"],
        )
    )


def _point(params, seed):
    res = run_sptrsv(
        get_machine(params["machine"]), params["runtime"], _matrix(params),
        params["P"],
    )
    return {"time": res.time}


def _spec(n_supernodes: int, seed: int) -> SweepSpec:
    return SweepSpec(
        name="fig08",
        runner=_point,
        points=[
            {"machine": m, "runtime": runtime, "P": P}
            for m, runtime, P in _CASES
        ],
        common={"n_supernodes": n_supernodes, "seed": seed},
    )


def run_fig08(*, n_supernodes: int = 220, seed: int = 2) -> ExperimentReport:
    sweep = run_sweep(_spec(n_supernodes, seed))
    headers = ["machine", "variant", "P", "time (ms)"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}
    for r in sweep:
        p = r.params
        t[(p["machine"], p["runtime"], p["P"])] = r.value["time"]
        rows.append([p["machine"], p["runtime"], p["P"], r.value["time"] * 1e3])

    ratio_4gpu = t[("summit-gpu", SHMEM, 4)] / t[("perlmutter-gpu", SHMEM, 4)]
    expectations = {
        "CPU: one-sided slower than two-sided (P=4)": (
            t[("perlmutter-cpu", ONE_SIDED, 4)]
            > t[("perlmutter-cpu", TWO_SIDED, 4)]
        ),
        "CPU: one-sided slower than two-sided (P=32)": (
            t[("perlmutter-cpu", ONE_SIDED, 32)]
            > t[("perlmutter-cpu", TWO_SIDED, 32)]
        ),
        "perlmutter GPUs scale 1 -> 4": (
            t[("perlmutter-gpu", SHMEM, 4)] < t[("perlmutter-gpu", SHMEM, 1)]
        ),
        "perlmutter GPUs faster than summit GPUs at 4 GPUs": ratio_4gpu > 1.2,
        "single-GPU times roughly equal on the two machines": (
            0.5
            < t[("summit-gpu", SHMEM, 1)] / t[("perlmutter-gpu", SHMEM, 1)]
            < 2.0
        ),
        "summit GPUs do not scale 4 -> 6": (
            t[("summit-gpu", SHMEM, 6)] > t[("summit-gpu", SHMEM, 4)] * 0.85
        ),
        "summit CPU stops scaling past 32 ranks": (
            t[("summit-cpu", TWO_SIDED, 42)]
            > t[("summit-cpu", TWO_SIDED, 32)] * 0.93
        ),
    }
    # Regenerate once (deterministic) for the title's size/nnz stamp.
    matrix = _matrix({"n_supernodes": n_supernodes, "seed": seed})
    return ExperimentReport(
        experiment="fig08",
        title="SpTRSV time (synthetic supernodal matrix, "
        f"n={matrix.n}, nnz={matrix.nnz})",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "paper matrix: 126K x 126K, 1e8 nnz (M3D-C1 via SuperLU_DIST); "
            "this synthetic matrix preserves the message-size distribution "
            f"(paper ratio at 4 GPUs: 3.7x; measured here: {ratio_4gpu:.1f}x)",
        ],
    )
