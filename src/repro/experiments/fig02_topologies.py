"""Fig. 2 — node architectures of the evaluation platforms.

The paper's Fig. 2 diagrams the four node fabrics; here each is regenerated
from the machine models as an edge inventory, and the structural facts the
paper's analysis leans on are asserted:

* (a) Perlmutter CPU: two Milans over IF, NIC on socket 0;
* (b) Frontier: NICs attached behind the GPUs, IF as the on-node bound;
* (c) Summit: the dual-island dumbbell — two fully-connected 3-GPU islands
  bridged only by the CPU X-Bus;
* (d) Perlmutter GPU: four A100s fully connected by NVLink3 port groups.

One sweep point per panel; each point returns its panel's edge rows plus
the panel-local structural facts, and the summary stitches them together.
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep

__all__ = ["run_fig02"]

_PANELS = (
    ("2a perlmutter-cpu", "perlmutter-cpu"),
    ("2b frontier-cpu", "frontier-cpu"),
    ("2c summit", "summit-gpu"),
    ("2d perlmutter-gpu", "perlmutter-gpu"),
)


def _connected(m, a, b):
    try:
        m.topology.route(a, b)
        return True
    except KeyError:
        return False


def _panel_facts(panel: str, m) -> dict[str, bool]:
    """The paper's structural claims that live entirely inside one panel."""
    if panel.startswith("2a"):
        return {
            "2a: NIC hangs off socket 0": (
                m.topology.route("cpu1", "nic0").hops[0] == ("cpu1", "cpu0")
            ),
        }
    if panel.startswith("2b"):
        return {
            "2b: frontier NICs sit behind the GPUs": all(
                any("gpu" in ep for hop in m.topology.route("numa0", f"nic{i}").hops
                    for ep in hop)
                for i in range(4)
            ),
        }
    if panel.startswith("2c"):
        island0 = [f"gpu{i}" for i in range(3)]
        island1 = [f"gpu{i}" for i in range(3, 6)]
        return {
            "2c: islands internally fully connected": all(
                m.topology.route(a, b).nhops == 1
                for isl in (island0, island1)
                for a, b in combinations(isl, 2)
            ),
            "2c: no direct GPU link across islands": all(
                m.topology.route(a, b).nhops > 1
                for a in island0
                for b in island1
            ),
            "2c: the only bridge is the X-Bus": all(
                ("cpu0", "cpu1") in m.topology.route(a, b).hops
                for a in island0
                for b in island1
            ),
        }
    if panel.startswith("2d"):
        return {
            "2d: A100s fully connected, one hop": all(
                m.topology.route(a, b).nhops == 1
                for a, b in combinations([f"gpu{i}" for i in range(4)], 2)
            ),
            "2d: NVLink3 pair = 100 GB/s over 4 ports": (
                m.topology.link_params("gpu0", "gpu1").bandwidth == 100e9
                and m.topology.link_params("gpu0", "gpu1").channels == 4
            ),
        }
    raise ValueError(f"unknown panel {panel!r}")


def _point(params, seed):
    panel = params["panel"]
    m = get_machine(params["machine"])
    rows = []
    for key, p in sorted(m.topology.links.items(), key=lambda kv: sorted(kv[0])):
        a, b = sorted(key)
        rows.append([panel, p.name, f"{a} <-> {b}", p.bandwidth / 1e9,
                     p.latency * 1e6])
    return {
        "rows": rows,
        "facts": _panel_facts(panel, m),
        "routable": all(
            _connected(m, m.compute_endpoints[0], ep)
            for ep in m.topology.endpoints
        ),
        "describe": m.topology.describe(),
    }


def _spec() -> SweepSpec:
    return SweepSpec(
        name="fig02",
        runner=_point,
        points=[{"panel": panel, "machine": machine} for panel, machine in _PANELS],
    )


def run_fig02() -> ExperimentReport:
    sweep = run_sweep(_spec())
    headers = ["panel", "link", "endpoints", "GB/s/dir", "latency (us)"]
    rows = [row for r in sweep for row in r.value["rows"]]
    expectations: dict[str, bool] = {}
    for r in sweep:
        expectations.update(r.value["facts"])
    expectations["all panels fully routable"] = all(
        r.value["routable"] for r in sweep
    )
    notes = [r.value["describe"] for r in sweep]
    return ExperimentReport(
        experiment="fig02",
        title="Node architectures (regenerated from the machine models)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
