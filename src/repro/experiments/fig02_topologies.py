"""Fig. 2 — node architectures of the evaluation platforms.

The paper's Fig. 2 diagrams the four node fabrics; here each is regenerated
from the machine models as an edge inventory, and the structural facts the
paper's analysis leans on are asserted:

* (a) Perlmutter CPU: two Milans over IF, NIC on socket 0;
* (b) Frontier: NICs attached behind the GPUs, IF as the on-node bound;
* (c) Summit: the dual-island dumbbell — two fully-connected 3-GPU islands
  bridged only by the CPU X-Bus;
* (d) Perlmutter GPU: four A100s fully connected by NVLink3 port groups.
"""

from __future__ import annotations

from itertools import combinations

from repro.experiments.report import ExperimentReport
from repro.machines import (
    frontier_cpu,
    perlmutter_cpu,
    perlmutter_gpu,
    summit_gpu,
)

__all__ = ["run_fig02"]


def run_fig02() -> ExperimentReport:
    machines = {
        "2a perlmutter-cpu": perlmutter_cpu(),
        "2b frontier-cpu": frontier_cpu(),
        "2c summit": summit_gpu(),
        "2d perlmutter-gpu": perlmutter_gpu(),
    }
    headers = ["panel", "link", "endpoints", "GB/s/dir", "latency (us)"]
    rows = []
    for panel, m in machines.items():
        for key, p in sorted(
            m.topology.links.items(), key=lambda kv: sorted(kv[0])
        ):
            a, b = sorted(key)
            rows.append([panel, p.name, f"{a} <-> {b}", p.bandwidth / 1e9,
                         p.latency * 1e6])

    pm_cpu = machines["2a perlmutter-cpu"]
    fr = machines["2b frontier-cpu"]
    sm = machines["2c summit"]
    pm_gpu = machines["2d perlmutter-gpu"]

    def connected(m, a, b):
        try:
            m.topology.route(a, b)
            return True
        except KeyError:
            return False

    island0 = [f"gpu{i}" for i in range(3)]
    island1 = [f"gpu{i}" for i in range(3, 6)]
    expectations = {
        "2a: NIC hangs off socket 0": (
            pm_cpu.topology.route("cpu1", "nic0").hops[0] == ("cpu1", "cpu0")
        ),
        "2b: frontier NICs sit behind the GPUs": all(
            any("gpu" in ep for hop in fr.topology.route("numa0", f"nic{i}").hops
                for ep in hop)
            for i in range(4)
        ),
        "2c: islands internally fully connected": all(
            sm.topology.route(a, b).nhops == 1
            for isl in (island0, island1)
            for a, b in combinations(isl, 2)
        ),
        "2c: no direct GPU link across islands": all(
            sm.topology.route(a, b).nhops > 1
            for a in island0
            for b in island1
        ),
        "2c: the only bridge is the X-Bus": all(
            ("cpu0", "cpu1") in sm.topology.route(a, b).hops
            for a in island0
            for b in island1
        ),
        "2d: A100s fully connected, one hop": all(
            pm_gpu.topology.route(a, b).nhops == 1
            for a, b in combinations([f"gpu{i}" for i in range(4)], 2)
        ),
        "2d: NVLink3 pair = 100 GB/s over 4 ports": (
            pm_gpu.topology.link_params("gpu0", "gpu1").bandwidth == 100e9
            and pm_gpu.topology.link_params("gpu0", "gpu1").channels == 4
        ),
        "all panels fully routable": all(
            connected(m, m.compute_endpoints[0], ep)
            for m in machines.values()
            for ep in m.topology.endpoints
        ),
    }
    notes = [m.topology.describe() for m in machines.values()]
    return ExperimentReport(
        experiment="fig02",
        title="Node architectures (regenerated from the machine models)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
