"""Fig. 4 — NVSHMEM GPU-initiated put-with-signal and atomic CAS bandwidth.

Two panels: Perlmutter GPUs (NVLink3) and Summit GPUs (NVLink2).  Paper
observations reproduced and checked:

* achieved bandwidth rises with messages per synchronization, exactly like
  CPU-initiated communication;
* effective per-message latency falls from ~4 us (n=1) toward ~0.5 us on
  Perlmutter GPUs — "similar to the latency of 5 us to 0.3 us on
  Perlmutter CPUs" — and from ~5 us on Summit GPUs;
* observed GPU bandwidth is much higher than CPU bandwidth (NVLink3 pair
  peak 100 GB/s vs IF 32 GB/s);
* remote atomic CAS: ~0.8 us on Perlmutter GPUs, ~1.0 us within a Summit
  island, ~1.6 us across the Summit sockets.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines import perlmutter_gpu, summit_gpu
from repro.workloads.flood import run_cas_flood, run_flood

__all__ = ["run_fig04"]

_SIZES = (64, 4096, 65536, 1048576)
_NS = (1, 16, 256)


def run_fig04(*, iters: int = 2) -> ExperimentReport:
    headers = ["machine", "B (bytes)", "msg/sync", "GB/s", "us/msg"]
    rows = []
    lat: dict[tuple[str, int, int], float] = {}
    bw: dict[tuple[str, int, int], float] = {}
    for mname, factory in (("perlmutter-gpu", perlmutter_gpu), ("summit-gpu", summit_gpu)):
        for n in _NS:
            for B in _SIZES:
                r = run_flood(factory(), "shmem", B, n, iters=iters)
                rows.append(
                    [mname, B, n, r.bandwidth / 1e9, r.latency_per_message * 1e6]
                )
                lat[(mname, B, n)] = r.latency_per_message
                bw[(mname, B, n)] = r.bandwidth

    cas = {
        "perlmutter": run_cas_flood(perlmutter_gpu(), "shmem"),
        "summit-in-island": run_cas_flood(summit_gpu(), "shmem", target_rank=1),
        "summit-cross-socket": run_cas_flood(
            summit_gpu(), "shmem", nranks=6, target_rank=3
        ),
    }
    for name, c in cas.items():
        rows.append([f"CAS {name}", 8, c["ops"], 0.0, c["latency_per_cas"] * 1e6])

    p1 = lat[("perlmutter-gpu", 64, 1)] * 1e6
    pn = lat[("perlmutter-gpu", 64, max(_NS))] * 1e6
    s1 = lat[("summit-gpu", 64, 1)] * 1e6
    expectations = {
        "perlmutter: n=1 latency ~4 us": 3.0 <= p1 <= 5.5,
        "perlmutter: high-n latency ~0.5 us": 0.3 <= pn <= 0.8,
        "summit: n=1 latency ~5 us": 4.0 <= s1 <= 6.5,
        "bandwidth rises with msg/sync": (
            bw[("perlmutter-gpu", 65536, 256)] > bw[("perlmutter-gpu", 65536, 1)]
        ),
        "GPU bandwidth exceeds CPU IF peak at high n": (
            bw[("perlmutter-gpu", 1048576, 256)] > 32e9
        ),
        "CAS perlmutter ~0.8 us": 0.6 <= cas["perlmutter"]["latency_per_cas"] * 1e6 <= 1.0,
        "CAS summit in-island ~1.0 us": (
            0.8 <= cas["summit-in-island"]["latency_per_cas"] * 1e6 <= 1.3
        ),
        "CAS summit cross-socket ~1.6 us": (
            1.3 <= cas["summit-cross-socket"]["latency_per_cas"] * 1e6 <= 2.0
        ),
    }
    return ExperimentReport(
        experiment="fig04",
        title="NVSHMEM GPU-initiated put-with-signal and CAS",
        headers=headers,
        rows=rows,
        expectations=expectations,
    )
