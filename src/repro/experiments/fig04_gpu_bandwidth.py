"""Fig. 4 — NVSHMEM GPU-initiated put-with-signal and atomic CAS bandwidth.

Two panels: Perlmutter GPUs (NVLink3) and Summit GPUs (NVLink2).  Paper
observations reproduced and checked:

* achieved bandwidth rises with messages per synchronization, exactly like
  CPU-initiated communication;
* effective per-message latency falls from ~4 us (n=1) toward ~0.5 us on
  Perlmutter GPUs — "similar to the latency of 5 us to 0.3 us on
  Perlmutter CPUs" — and from ~5 us on Summit GPUs;
* observed GPU bandwidth is much higher than CPU bandwidth (NVLink3 pair
  peak 100 GB/s vs IF 32 GB/s);
* remote atomic CAS: ~0.8 us on Perlmutter GPUs, ~1.0 us within a Summit
  island, ~1.6 us across the Summit sockets.

The flood grid and the three CAS cases ride in one sweep; the CAS points
are explicit (irregular) entries after the regular grid.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.flood import run_cas_flood, run_flood
from repro.transport import SHMEM

__all__ = ["run_fig04"]

_SIZES = (64, 4096, 65536, 1048576)
_NS = (1, 16, 256)
_MACHINES = ("perlmutter-gpu", "summit-gpu")
_CAS_CASES = (
    # label -> (machine, nranks, target_rank)
    ("perlmutter", "perlmutter-gpu", 2, 1),
    ("summit-in-island", "summit-gpu", 2, 1),
    ("summit-cross-socket", "summit-gpu", 6, 3),
)


def _point(params, seed):
    machine = get_machine(params["machine"])
    if params["kind"] == "flood":
        r = run_flood(
            machine, SHMEM, params["size"], params["msgs"],
            iters=params["iters"],
        )
        return {
            "bandwidth": r.bandwidth,
            "latency_per_message": r.latency_per_message,
        }
    c = run_cas_flood(
        machine, SHMEM, nranks=params["nranks"], target_rank=params["target"]
    )
    return {"ops": c["ops"], "latency_per_cas": c["latency_per_cas"]}


def _spec(iters: int) -> SweepSpec:
    points = [
        {"kind": "flood", "machine": m, "msgs": n, "size": B, "iters": iters}
        for m in _MACHINES
        for n in _NS
        for B in _SIZES
    ]
    points += [
        {"kind": "cas", "label": label, "machine": m, "nranks": nranks,
         "target": target}
        for label, m, nranks, target in _CAS_CASES
    ]
    return SweepSpec(name="fig04", runner=_point, points=points)


def run_fig04(*, iters: int = 2) -> ExperimentReport:
    sweep = run_sweep(_spec(iters))
    headers = ["machine", "B (bytes)", "msg/sync", "GB/s", "us/msg"]
    rows = []
    lat: dict[tuple[str, int, int], float] = {}
    bw: dict[tuple[str, int, int], float] = {}
    cas: dict[str, dict[str, float]] = {}
    for r in sweep:
        p = r.params
        if p["kind"] == "flood":
            rows.append(
                [p["machine"], p["size"], p["msgs"],
                 r.value["bandwidth"] / 1e9,
                 r.value["latency_per_message"] * 1e6]
            )
            lat[(p["machine"], p["size"], p["msgs"])] = r.value["latency_per_message"]
            bw[(p["machine"], p["size"], p["msgs"])] = r.value["bandwidth"]
        else:
            cas[p["label"]] = r.value
            rows.append(
                [f"CAS {p['label']}", 8, r.value["ops"], 0.0,
                 r.value["latency_per_cas"] * 1e6]
            )

    p1 = lat[("perlmutter-gpu", 64, 1)] * 1e6
    pn = lat[("perlmutter-gpu", 64, max(_NS))] * 1e6
    s1 = lat[("summit-gpu", 64, 1)] * 1e6
    expectations = {
        "perlmutter: n=1 latency ~4 us": 3.0 <= p1 <= 5.5,
        "perlmutter: high-n latency ~0.5 us": 0.3 <= pn <= 0.8,
        "summit: n=1 latency ~5 us": 4.0 <= s1 <= 6.5,
        "bandwidth rises with msg/sync": (
            bw[("perlmutter-gpu", 65536, 256)] > bw[("perlmutter-gpu", 65536, 1)]
        ),
        "GPU bandwidth exceeds CPU IF peak at high n": (
            bw[("perlmutter-gpu", 1048576, 256)] > 32e9
        ),
        "CAS perlmutter ~0.8 us": 0.6 <= cas["perlmutter"]["latency_per_cas"] * 1e6 <= 1.0,
        "CAS summit in-island ~1.0 us": (
            0.8 <= cas["summit-in-island"]["latency_per_cas"] * 1e6 <= 1.3
        ),
        "CAS summit cross-socket ~1.6 us": (
            1.3 <= cas["summit-cross-socket"]["latency_per_cas"] * 1e6 <= 2.0
        ),
    }
    return ExperimentReport(
        experiment="fig04",
        title="NVSHMEM GPU-initiated put-with-signal and CAS",
        headers=headers,
        rows=rows,
        expectations=expectations,
    )
