"""Fig. 6 — communication upper bounds of the three workloads on
Perlmutter CPUs.

Places each workload's *measured* communication profile (message sizes and
messages per synchronization, from instrumented runs) on the machine's
Message Roofline.  Checked paper numbers:

* (b) Stencil: one-sided and two-sided converge around 2^16-byte messages;
  the message-size range spans 2^13..2^16 as parallelism grows 128..4;
* (b) SpTRSV at one message per sync: two-sided costs ~3.3 us per sync
  (one op) vs one-sided ~5 us (four ops);
* (c) HashTable: with ~100 msgs/sync the two-sided per-message time is
  ~0.3 us; one-sided sustains one CAS per ~2 us.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentReport
from repro.machines import perlmutter_cpu
from repro.roofline import MessageRoofline, WorkloadProfile, bound_workload
from repro.workloads.flood import run_cas_flood, run_flood

__all__ = ["run_fig06"]


def run_fig06(*, iters: int = 2) -> ExperimentReport:
    machine = perlmutter_cpu()
    stencil_sizes = tuple(float(2**k) for k in range(13, 17))
    profiles = {
        "stencil/two": WorkloadProfile(
            "stencil", stencil_sizes, msgs_per_sync=4, sided="two", ops_per_message=2
        ),
        # Stencil one-sided: four puts inside a fence pair — the completion
        # sequence amortises over the sync (ops_per_message=1).
        "stencil/one": WorkloadProfile(
            "stencil", stencil_sizes, msgs_per_sync=4, sided="one", ops_per_message=1
        ),
        "sptrsv/two": WorkloadProfile(
            "sptrsv", (24.0, 800.0, 1040.0), msgs_per_sync=1, sided="two",
            ops_per_message=2,
        ),
        "sptrsv/one": WorkloadProfile(
            "sptrsv", (24.0, 800.0, 1040.0), msgs_per_sync=1, sided="one",
            ops_per_message=4,
        ),
        "hashtable/two": WorkloadProfile(
            "hashtable", (24.0,), msgs_per_sync=100, sided="two", ops_per_message=2
        ),
    }
    headers = ["profile", "B (bytes)", "msg/sync", "bound GB/s", "us/sync",
               "frac of peak"]
    rows = []
    bounds = {}
    for name, prof in profiles.items():
        runtime = "one_sided" if prof.sided == "one" else "two_sided"
        wb = bound_workload(machine, runtime, prof)
        bounds[name] = wb
        for r in wb.rows():
            rows.append(
                [
                    name,
                    int(r["message_size_B"]),
                    int(r["msgs_per_sync"]),
                    r["bound_GBps"],
                    r["time_per_sync_us"],
                    r["fraction_of_peak"],
                ]
            )

    # Measured dots to compare against the bounds.
    measured_notes = []
    stencil_meas = run_flood(perlmutter_cpu(), "two_sided", 2**16, 4, iters=iters)
    cas = run_cas_flood(perlmutter_cpu(), "one_sided")
    measured_notes.append(
        f"measured stencil-like flood (64 KiB x 4/sync): "
        f"{stencil_meas.bandwidth / 1e9:.1f} GB/s"
    )
    measured_notes.append(
        f"measured one-sided CAS: {cas['latency_per_cas'] * 1e6:.2f} us "
        f"(paper: one CAS per ~2 us => 500K GUPS/rank bound)"
    )

    sptrsv_two_us = bounds["sptrsv/two"].time_per_sync[0] * 1e6
    sptrsv_one_us = bounds["sptrsv/one"].time_per_sync[0] * 1e6
    ht_msg_us = (
        bounds["hashtable/two"].time_per_sync[0] / 100 * 1e6
    )
    conv_size = stencil_sizes[-1]
    two_bw = float(
        bounds["stencil/two"].roofline.bandwidth(conv_size, 4)
    )
    one_bw = float(
        bounds["stencil/one"].roofline.bandwidth(conv_size, 4)
    )
    expectations = {
        "sptrsv: two-sided per-sync ~3.3 us": 2.6 <= sptrsv_two_us <= 4.2,
        "sptrsv: one-sided per-sync ~5 us": 4.0 <= sptrsv_one_us <= 6.5,
        "sptrsv: one-sided bound worse than two-sided": sptrsv_one_us > sptrsv_two_us,
        "hashtable: two-sided ~0.3 us/msg at 100 msg/sync": 0.2 <= ht_msg_us <= 0.8,
        "hashtable: one CAS per ~2 us": (
            1.6 <= cas["latency_per_cas"] * 1e6 <= 2.6
        ),
        "stencil: variants converge at 2^16 (within 20%)": (
            abs(one_bw / two_bw - 1.0) < 0.2
        ),
    }
    return ExperimentReport(
        experiment="fig06",
        title="Workload communication bounds on Perlmutter CPUs",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=measured_notes,
    )
