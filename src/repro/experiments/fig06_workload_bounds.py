"""Fig. 6 — communication upper bounds of the three workloads on
Perlmutter CPUs.

Places each workload's *measured* communication profile (message sizes and
messages per synchronization, from instrumented runs) on the machine's
Message Roofline.  Checked paper numbers:

* (b) Stencil: one-sided and two-sided converge around 2^16-byte messages;
  the message-size range spans 2^13..2^16 as parallelism grows 128..4;
* (b) SpTRSV at one message per sync: two-sided costs ~3.3 us per sync
  (one op) vs one-sided ~5 us (four ops);
* (c) HashTable: with ~100 msgs/sync the two-sided per-message time is
  ~0.3 us; one-sided sustains one CAS per ~2 us.

The sweep carries one analytic bound point per workload profile plus the
two measured calibration points (a stencil-like flood and a CAS stream).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import WorkloadProfile, bound_workload
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.flood import run_cas_flood, run_flood
from repro.transport import TWO_SIDED, ONE_SIDED

__all__ = ["run_fig06"]

_STENCIL_SIZES = tuple(float(2**k) for k in range(13, 17))

# Profile name -> (sizes, msgs_per_sync, sided, ops_per_message).  Stencil
# one-sided runs four puts inside a fence pair — the completion sequence
# amortises over the sync (ops_per_message=1).
_PROFILES = {
    "stencil/two": ("stencil", _STENCIL_SIZES, 4, "two", 2),
    "stencil/one": ("stencil", _STENCIL_SIZES, 4, "one", 1),
    "sptrsv/two": ("sptrsv", (24.0, 800.0, 1040.0), 1, "two", 2),
    "sptrsv/one": ("sptrsv", (24.0, 800.0, 1040.0), 1, "one", 4),
    "hashtable/two": ("hashtable", (24.0,), 100, "two", 2),
}


def _point(params, seed):
    machine = get_machine(params["machine"])
    kind = params["kind"]
    if kind == "bound":
        prof = WorkloadProfile(
            params["workload"],
            tuple(params["sizes"]),
            msgs_per_sync=params["msgs"],
            sided=params["sided"],
            ops_per_message=params["ops"],
        )
        runtime = ONE_SIDED if prof.sided == "one" else TWO_SIDED
        wb = bound_workload(machine, runtime, prof)
        return {
            "rows": [dict(r) for r in wb.rows()],
            "time_per_sync": list(wb.time_per_sync),
            # The bound at the profile's largest size and the stencil's 4
            # msgs/sync — the convergence check's operand.
            "bw_at_max_size_n4": float(
                wb.roofline.bandwidth(max(params["sizes"]), 4)
            ),
        }
    if kind == "flood":
        r = run_flood(
            machine, params["runtime"], params["size"], params["msgs"],
            iters=params["iters"],
        )
        return {"bandwidth": r.bandwidth}
    c = run_cas_flood(machine, params["runtime"])
    return {"latency_per_cas": c["latency_per_cas"]}


def _spec(iters: int) -> SweepSpec:
    points = [
        {"kind": "bound", "profile": name, "workload": wl, "sizes": list(sizes),
         "msgs": msgs, "sided": sided, "ops": ops}
        for name, (wl, sizes, msgs, sided, ops) in _PROFILES.items()
    ]
    points += [
        {"kind": "flood", "runtime": TWO_SIDED, "size": 2**16, "msgs": 4,
         "iters": iters},
        {"kind": "cas", "runtime": ONE_SIDED},
    ]
    return SweepSpec(
        name="fig06",
        runner=_point,
        points=points,
        common={"machine": "perlmutter-cpu"},
    )


def run_fig06(*, iters: int = 2) -> ExperimentReport:
    sweep = run_sweep(_spec(iters))
    bounds: dict[str, dict] = {}
    stencil_bw = cas_lat = None
    for r in sweep:
        kind = r.params["kind"]
        if kind == "bound":
            bounds[r.params["profile"]] = r.value
        elif kind == "flood":
            stencil_bw = r.value["bandwidth"]
        else:
            cas_lat = r.value["latency_per_cas"]

    headers = ["profile", "B (bytes)", "msg/sync", "bound GB/s", "us/sync",
               "frac of peak"]
    rows = []
    for name in _PROFILES:
        for row in bounds[name]["rows"]:
            rows.append(
                [
                    name,
                    int(row["message_size_B"]),
                    int(row["msgs_per_sync"]),
                    row["bound_GBps"],
                    row["time_per_sync_us"],
                    row["fraction_of_peak"],
                ]
            )

    # Measured dots to compare against the bounds.
    measured_notes = [
        "measured stencil-like flood (64 KiB x 4/sync): "
        f"{stencil_bw / 1e9:.1f} GB/s",
        f"measured one-sided CAS: {cas_lat * 1e6:.2f} us "
        "(paper: one CAS per ~2 us => 500K GUPS/rank bound)",
    ]

    sptrsv_two_us = bounds["sptrsv/two"]["time_per_sync"][0] * 1e6
    sptrsv_one_us = bounds["sptrsv/one"]["time_per_sync"][0] * 1e6
    ht_msg_us = bounds["hashtable/two"]["time_per_sync"][0] / 100 * 1e6
    two_bw = bounds["stencil/two"]["bw_at_max_size_n4"]
    one_bw = bounds["stencil/one"]["bw_at_max_size_n4"]
    expectations = {
        "sptrsv: two-sided per-sync ~3.3 us": 2.6 <= sptrsv_two_us <= 4.2,
        "sptrsv: one-sided per-sync ~5 us": 4.0 <= sptrsv_one_us <= 6.5,
        "sptrsv: one-sided bound worse than two-sided": sptrsv_one_us > sptrsv_two_us,
        "hashtable: two-sided ~0.3 us/msg at 100 msg/sync": 0.2 <= ht_msg_us <= 0.8,
        "hashtable: one CAS per ~2 us": (
            1.6 <= cas_lat * 1e6 <= 2.6
        ),
        "stencil: variants converge at 2^16 (within 20%)": (
            abs(one_bw / two_bw - 1.0) < 0.2
        ),
    }
    return ExperimentReport(
        experiment="fig06",
        title="Workload communication bounds on Perlmutter CPUs",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=measured_notes,
    )
