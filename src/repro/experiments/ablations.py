"""Ablation studies on the design choices DESIGN.md §7 calls out.

Each ablation flips exactly one mechanism and quantifies its contribution
to a headline result:

1. **gap non-overlappability** — the paper's LogGP point that ``g`` can
   never be hidden: removing it collapses the small-message ceiling;
2. **sharp vs rounded junction** — how unreachable the ideal knee is;
3. **hardware put-with-signal** — the paper's conclusion that one-sided
   "easily outperforms" two-sided once the 4-op emulation becomes a single
   fused op on CPUs;
4. **Listing-1 polling cost** — the receiver-notification scan as the
   one-sided SpTRSV scaling limiter;
5. **split factor k** — Fig. 10's choice of k=4 against 2 and 8.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import MessageRoofline, SplitModel
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.transport import ONE_SIDED, ONE_SIDED_HW, TWO_SIDED

__all__ = [
    "run_ablation_gap",
    "run_ablation_sharp_junction",
    "run_ablation_put_with_signal",
    "run_ablation_polling",
    "run_ablation_split_factor",
    "ALL_ABLATIONS",
]


def run_ablation_gap() -> ExperimentReport:
    """Let the injection gap go to zero and watch the ceiling move."""
    machine = get_machine("perlmutter-cpu")
    base = machine.loggp(TWO_SIDED, 0, 1, nranks=2, placement="spread",
                         sided="two")
    no_gap = dataclasses.replace(base, g=0.0)
    no_overhead = dataclasses.replace(base, o=1e-9, g=0.0)
    headers = ["B (bytes)", "baseline GB/s", "g=0 GB/s", "g=0,o~0 GB/s"]
    rows = []
    n = 10_000
    for B in (64, 512, 4096, 65536):
        rows.append(
            [
                B,
                float(MessageRoofline(base).bandwidth(B, n)) / 1e9,
                float(MessageRoofline(no_gap).bandwidth(B, n)) / 1e9,
                float(MessageRoofline(no_overhead).bandwidth(B, n)) / 1e9,
            ]
        )
    # At 64 B the paper-calibrated profile is overhead-bound (o > g), so
    # removing the gap alone changes little, while removing the overhead
    # unlocks the wire rate — exactly LogGP's decomposition.
    small = rows[0]
    expectations = {
        "small messages are o/g-bound, not wire-bound": small[1] < 1.0,
        "removing the gap alone keeps the o ceiling": small[2] <= small[3],
        "removing o and g unlocks >10x at 64 B": small[3] / small[1] > 10,
        "large messages insensitive (wire-bound)": abs(
            rows[-1][3] / rows[-1][1] - 1.0
        )
        < 0.05,
    }
    return ExperimentReport(
        experiment="ablation_gap",
        title="Ablation: the non-overlappable gap/overhead ceiling",
        headers=headers,
        rows=rows,
        expectations=expectations,
    )


def run_ablation_sharp_junction() -> ExperimentReport:
    """Quantify the sharp-vs-rounded gap around the knee (Fig. 1's
    'ideal region one can never practically reach')."""
    machine = get_machine("perlmutter-cpu")
    params = machine.loggp(TWO_SIDED, 0, 1, nranks=2, placement="spread",
                           sided="two")
    roof = MessageRoofline(params)
    headers = ["B (bytes)", "rounded GB/s", "sharp GB/s", "sharp/rounded"]
    rows = []
    ratios = {}
    knee = roof.knee_size(1)
    for B in (64, int(knee / 4), int(knee), int(knee * 4), 4 << 20):
        r = float(roof.bandwidth(B, 1))
        s = float(roof.bandwidth(B, 1, sharp=True))
        rows.append([B, r / 1e9, s / 1e9, s / r])
        ratios[B] = s / r
    at_knee = ratios[int(knee)]
    far = ratios[4 << 20]
    expectations = {
        "sharp model always >= rounded": all(r[3] >= 1 - 1e-9 for r in rows),
        "gap is widest near the knee (>1.5x)": at_knee > 1.5,
        "models agree far past the knee (<15%)": far < 1.15,
    }
    return ExperimentReport(
        experiment="ablation_sharp",
        title=f"Ablation: sharp vs rounded junction (knee ~{int(knee)} B)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "the junction region is exactly the paper's 'ideal region one "
            "can never practically reach'",
        ],
    )


def _with_hw_put_signal(machine):
    """A hypothetical CrayMPI with hardware put-with-signal: the 4-op
    sequence becomes one fused op (paper §V: 'one-sided MPI can easily
    outperform the two-sided with hardware-level support')."""
    one = machine.runtimes[ONE_SIDED]
    machine.runtimes[ONE_SIDED_HW] = dataclasses.replace(
        one,
        put_signal=one.put,  # single fused issue
        wait_wakeup=1.0e-6,  # lightweight notification wake
        poll_slot=0.0,  # no software scan loop
        wait_poll=2e-7,
    )
    return machine


def run_ablation_put_with_signal() -> ExperimentReport:
    """SpTRSV with the paper's 4-op emulation vs hardware put-with-signal.

    The hw variant reuses the GPU (shmem) code path with CPU wire
    parameters: one fused op per message plus true receiver notification.
    """
    matrix = generate_matrix(
        MatrixSpec(n_supernodes=120, width_lo=3, width_hi=130, seed=4)
    )
    headers = ["variant", "P", "time (ms)", "vs two-sided"]
    rows = []
    t: dict[tuple[str, int], float] = {}
    for P in (4, 16):
        for variant in (TWO_SIDED, ONE_SIDED):
            res = run_sptrsv(get_machine("perlmutter-cpu"), variant, matrix, P)
            t[(variant, P)] = res.time
        hw_machine = _with_hw_put_signal(get_machine("perlmutter-cpu"))
        # The one_sided_hw backend issues put_signal + wait_until_any on
        # the CPU with the hypothetical hw profile above.
        res = run_sptrsv(hw_machine, ONE_SIDED_HW, matrix, P)
        t[(ONE_SIDED_HW, P)] = res.time
        for variant in (TWO_SIDED, ONE_SIDED, ONE_SIDED_HW):
            rows.append(
                [
                    variant,
                    P,
                    t[(variant, P)] * 1e3,
                    t[(variant, P)] / t[(TWO_SIDED, P)],
                ]
            )
    expectations = {
        "4-op one-sided loses to two-sided": all(
            t[(ONE_SIDED, P)] > t[(TWO_SIDED, P)] for P in (4, 16)
        ),
        "hw put-with-signal beats the 4-op emulation": all(
            t[(ONE_SIDED_HW, P)] < t[(ONE_SIDED, P)] for P in (4, 16)
        ),
        "hw put-with-signal beats two-sided (the paper's projection)": all(
            t[(ONE_SIDED_HW, P)] < t[(TWO_SIDED, P)] for P in (4, 16)
        ),
    }
    return ExperimentReport(
        experiment="ablation_put_signal",
        title="Ablation: hardware put-with-signal on CPUs (paper §V)",
        headers=headers,
        rows=rows,
        expectations=expectations,
    )


def run_ablation_polling() -> ExperimentReport:
    """Scale the Listing-1 per-slot polling cost and watch one-sided
    SpTRSV's gap to two-sided grow — the paper's 'extra work to maintain
    data arrival'."""
    matrix = generate_matrix(
        MatrixSpec(n_supernodes=120, width_lo=3, width_hi=130, seed=4)
    )
    headers = ["poll_slot (us)", "P", "one-sided (ms)", "one/two"]
    rows = []
    ratios = {}
    P = 16
    two = run_sptrsv(get_machine("perlmutter-cpu"), TWO_SIDED, matrix, P).time
    for poll_us in (0.0, 0.05, 0.5):
        machine = get_machine("perlmutter-cpu")
        one = machine.runtimes[ONE_SIDED]
        machine.runtimes[ONE_SIDED] = dataclasses.replace(
            one, poll_slot=poll_us * 1e-6
        )
        res = run_sptrsv(machine, ONE_SIDED, matrix, P)
        ratios[poll_us] = res.time / two
        rows.append([poll_us, P, res.time * 1e3, res.time / two])
    expectations = {
        "even free polling leaves one-sided behind (4 ops)": ratios[0.0] > 1.0,
        "polling cost monotonically widens the gap": (
            ratios[0.0] < ratios[0.05] < ratios[0.5]
        ),
        "10x poll cost visibly dominates the solve": (
            ratios[0.5] > 1.3 * ratios[0.05]
        ),
    }
    return ExperimentReport(
        experiment="ablation_polling",
        title="Ablation: Listing-1 receiver-notification polling cost",
        headers=headers,
        rows=rows,
        expectations=expectations,
    )


def run_ablation_split_factor() -> ExperimentReport:
    """Fig. 10 swept over k: 2/4/8-way splits on the 4-channel NVLink."""
    model = SplitModel.from_machine(get_machine("perlmutter-gpu"), "gpu0", "gpu1")
    headers = ["k", "crossover (KiB)", "asymptotic speedup", "speedup @16MiB"]
    rows = []
    stats = {}
    for k in (2, 4, 8):
        stats[k] = {
            "cross": model.crossover_volume(k) / 1024,
            "asym": model.asymptotic_speedup(k),
            "big": float(model.speedup(16 << 20, k)),
        }
        rows.append([k, stats[k]["cross"], stats[k]["asym"], stats[k]["big"]])
    expectations = {
        "k=4 beats k=2 asymptotically": stats[4]["asym"] > stats[2]["asym"],
        "speedup can never exceed the 4-channel aggregate (4x)": all(
            stats[k]["asym"] <= 4.0 + 1e-9 for k in (2, 4, 8)
        ),
        "diminishing returns per doubling of k": (
            stats[8]["asym"] / stats[4]["asym"]
            < stats[4]["asym"] / stats[2]["asym"]
        ),
        "larger k needs larger volumes to pay off": (
            stats[2]["cross"] < stats[4]["cross"] < stats[8]["cross"]
        ),
    }
    return ExperimentReport(
        experiment="ablation_split_k",
        title="Ablation: message-split factor k on the NVLink port group",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=["the paper's k=4 matches the A100's 4 ports per peer group"],
    )


ALL_ABLATIONS = {
    "gap": run_ablation_gap,
    "sharp": run_ablation_sharp_junction,
    "put_signal": run_ablation_put_with_signal,
    "polling": run_ablation_polling,
    "split_k": run_ablation_split_factor,
}
