"""Future work #2 (paper §V): AI collectives — NCCL-style ring allreduce.

The paper names NCCL/RCCL/HCCL as the next pattern to bring under the
Message Roofline.  This experiment compares three allreduce
implementations over the same simulated GPUs, all through
:func:`repro.collectives.run_collective` (so each variant is just a
(runtime, algorithm, stripes) triple on the shared transport verbs):

* **host-MPI**: recursive-doubling allreduce under CUDA-aware two-sided
  MPI — every round pays the device-sync + host round trip;
* **GPU ring**: the NCCL algorithm, device-initiated put-with-signal,
  single stream;
* **GPU ring x4**: the same ring striped over the NVLink port group
  (NCCL's multi-ring).

Checked findings: GPU-initiated wins at every size (no host round trips);
a single-stream ring leaves 3/4 of the A100's port group idle and striping
recovers it; V100's single fat link makes Summit competitive exactly until
striping is enabled.

Every (machine, size, variant) cell is one sweep point.
"""

from __future__ import annotations

from repro.collectives import run_collective
from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.transport import SHMEM, TWO_SIDED

__all__ = ["run_future_collectives"]

_SIZES = (4096, 262144, 4_194_304)
_VARIANTS = ("host-mpi", "gpu-ring", "gpu-ring-x4")

# variant -> (runtime, algorithm, stripes) on the collectives API.
_RECIPES = {
    "host-mpi": (TWO_SIDED, "recursive_doubling", 1),
    "gpu-ring": (SHMEM, "ring", 1),
    "gpu-ring-x4": (SHMEM, "ring", 4),
}


def _point(params, seed):
    machine = get_machine(params["machine"])
    P, n = params["P"], params["nelems"]
    runtime, algorithm, stripes = _RECIPES[params["variant"]]
    r = run_collective(
        machine, runtime, "allreduce",
        nranks=P, nelems=n, algorithm=algorithm, stripes=stripes,
    )
    return {"time": r.time, "algo_bandwidth": r.bus_bandwidth}


def _spec() -> SweepSpec:
    return SweepSpec(
        name="future_collectives",
        runner=_point,
        axes={
            "machine": ("perlmutter-gpu", "summit-gpu"),
            "nelems": _SIZES,
            "variant": _VARIANTS,
        },
        common={"P": 4},
        # v2: rerouted through repro.collectives — same three variants,
        # same findings, but timings come from the shared transport-verb
        # schedules (old cached v1 cells measured the hand-rolled ring).
        version=2,
    )


def run_future_collectives() -> ExperimentReport:
    sweep = run_sweep(_spec())
    headers = ["machine", "variant", "elements", "time (us)", "algo GB/s"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}
    for r in sweep:
        p = r.params
        t[(p["machine"], p["variant"], p["nelems"])] = r.value["time"]
        rows.append(
            [p["machine"], p["variant"], p["nelems"], r.value["time"] * 1e6,
             r.value["algo_bandwidth"] / 1e9]
        )

    big = _SIZES[-1]
    small = _SIZES[0]
    expectations = {
        "GPU-initiated beats host-MPI at small sizes": all(
            t[(m, "gpu-ring", small)] < t[(m, "host-mpi", small)]
            for m in ("perlmutter-gpu", "summit-gpu")
        ),
        "GPU-initiated beats host-MPI at large sizes": all(
            t[(m, "gpu-ring-x4", big)] < t[(m, "host-mpi", big)]
            for m in ("perlmutter-gpu", "summit-gpu")
        ),
        "striping recovers the A100 port group (>2x)": (
            t[("perlmutter-gpu", "gpu-ring", big)]
            > 2 * t[("perlmutter-gpu", "gpu-ring-x4", big)]
        ),
        "single-stream ring: V100's fat link beats A100's port": (
            t[("summit-gpu", "gpu-ring", big)]
            < t[("perlmutter-gpu", "gpu-ring", big)]
        ),
        "striped ring: A100 overtakes V100": (
            t[("perlmutter-gpu", "gpu-ring-x4", big)]
            < t[("summit-gpu", "gpu-ring-x4", big)]
        ),
    }
    return ExperimentReport(
        experiment="future_collectives",
        title="FUTURE WORK: NCCL-style ring allreduce on simulated GPUs",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "algo GB/s = 2(P-1)/P * bytes / time, the standard allreduce "
            "bandwidth metric",
            "the single-stream-vs-striped split is NCCL's multi-ring "
            "rationale, emerging here purely from the port-group link model",
            "all variants run through repro.collectives.run_collective; "
            "see docs/COLLECTIVES.md",
        ],
    )
