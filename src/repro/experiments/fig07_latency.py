"""Fig. 7 — effective per-message latency of the three workloads.

The paper's point: more messages per synchronization overlap the latency,
so the effective per-message cost ranks HashTable (1e6 msg/sync, smallest)
< Stencil (4 msg/sync) < SpTRSV (1 msg/sync, largest).  We measure the
three workloads' per-message latency on Perlmutter (GPU runtime, as in the
figure) and on the CPU and check the ordering.

Each (machine, workload) operating point is one sweep point evaluating
the analytic rounded model.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import MessageRoofline
from repro.sweep import SweepSpec, run_sweep
from repro.transport import ONE_SIDED, SHMEM

__all__ = ["run_fig07"]

_WORKLOAD_POINTS = {
    # workload -> (typical message bytes, msgs per sync)
    "sptrsv": (800.0, 1),
    "stencil": (float(2**14), 4),
    "hashtable": (8.0, 1_000_000),
}

_MACHINE_RUNTIMES = (
    ("perlmutter-gpu", SHMEM, "shmem"),
    ("perlmutter-cpu", ONE_SIDED, "one"),
)


def _point(params, seed):
    machine = get_machine(params["machine"])
    loggp = machine.loggp(
        params["runtime"], 0, 1, nranks=2, placement="spread",
        sided=params["sided"], ops_per_message=4,
    )
    roofline = MessageRoofline(loggp)
    us = float(roofline.latency_per_message(params["size"], params["msgs"])) * 1e6
    return {"us_per_message": us}


def _spec() -> SweepSpec:
    return SweepSpec(
        name="fig07",
        runner=_point,
        points=[
            {"machine": mname, "runtime": runtime, "sided": sided,
             "workload": wl, "size": B, "msgs": n}
            for mname, runtime, sided in _MACHINE_RUNTIMES
            for wl, (B, n) in _WORKLOAD_POINTS.items()
        ],
    )


def run_fig07() -> ExperimentReport:
    sweep = run_sweep(_spec())
    headers = ["workload", "machine", "B (bytes)", "msg/sync", "us/message"]
    rows = []
    lat: dict[tuple[str, str], float] = {}
    for r in sweep:
        p = r.params
        us = r.value["us_per_message"]
        lat[(p["workload"], p["machine"])] = us
        rows.append([p["workload"], p["machine"], int(p["size"]), p["msgs"], us])

    expectations = {
        "hashtable latency < stencil latency (GPU)": (
            lat[("hashtable", "perlmutter-gpu")] < lat[("stencil", "perlmutter-gpu")]
        ),
        "stencil latency < sptrsv latency (GPU)": (
            lat[("stencil", "perlmutter-gpu")] < lat[("sptrsv", "perlmutter-gpu")]
        ),
        "same ordering on the CPU": (
            lat[("hashtable", "perlmutter-cpu")]
            < lat[("stencil", "perlmutter-cpu")]
            < lat[("sptrsv", "perlmutter-cpu")]
        ),
        "sptrsv (1 msg/sync) pays the full one-sided latency (>= 4 us GPU)": (
            lat[("sptrsv", "perlmutter-gpu")] >= 3.0
        ),
        "hashtable effective latency < 1 us": (
            lat[("hashtable", "perlmutter-gpu")] < 1.0
        ),
    }
    return ExperimentReport(
        experiment="fig07",
        title="Per-message latency vs messages per synchronization",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "latencies are the analytic rounded-model T(n,B)/n at each "
            "workload's operating point; Fig. 7 plots the same quantity",
        ],
    )
