"""Shared report helpers for the per-figure experiment runners."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.util.tables import format_table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Uniform result object for every figure/table experiment.

    ``expectations`` maps a named paper claim ("one_sided_faster_at_high_n")
    to whether this run reproduced it — the benches print these and the
    integration tests assert them.
    """

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    expectations: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    # Observability snapshot (repro.obs.Obs.snapshot()): counters, gauges,
    # histograms, timelines, span breakdowns.  Populated by the CLI's
    # --metrics flag; empty means "not collected" and is omitted from JSON.
    metrics: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.headers, self.rows, title=f"{self.experiment}: {self.title}")]
        for chart in self.charts:
            parts.append(chart)
        if self.expectations:
            parts.append("paper-shape checks:")
            for name, ok in self.expectations.items():
                parts.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        for n in self.notes:
            parts.append(f"note: {n}")
        if self.metrics:
            parts.append(
                f"metrics: {len(self.metrics)} series collected "
                "(embedded in the JSON report)"
            )
        return "\n".join(parts)

    @property
    def all_expectations_met(self) -> bool:
        return all(self.expectations.values())

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form (rows as header-keyed records)."""
        out = {
            "experiment": self.experiment,
            "title": self.title,
            "rows": [dict(zip(self.headers, row)) for row in self.rows],
            "expectations": dict(self.expectations),
            "all_expectations_met": self.all_expectations_met,
            "notes": list(self.notes),
        }
        if self.metrics:
            out["metrics"] = dict(self.metrics)
        return out

    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON rendering (charts excluded — they are terminal art)."""
        return json.dumps(self.to_dict(), indent=indent, default=float)

    def __str__(self) -> str:
        return self.render()
