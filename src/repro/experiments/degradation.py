"""Graceful degradation under fabric faults — "robustness rooflines".

The paper's Message Roofline assumes a perfect fabric.  This experiment
asks the question the roofline cannot: *which runtime's sustained
bandwidth collapses first when links misbehave?*  Every workload runs
under a seed-reproducible :class:`repro.faults.FaultPlan` at increasing
loss rates (plus a latency-jitter mini-sweep for the flood), and the
report tracks each runtime's throughput relative to its own fault-free
baseline.

What the fault model predicts — and the expectations check:

* bandwidth is monotonically non-increasing in the loss rate (the
  hash-coupled loss draws guarantee a message lost at ``p1`` is also
  lost at every ``p2 >= p1``);
* the runtimes degrade *differently*: two-sided MPI retransmits off a
  fast sender-side ack timer inside the library, while one-sided MPI
  discovers a lost Put only at the synchronisation point
  (``detect_scale=4``) and re-syncs its window state every retry — so
  its curve falls off faster, inverting the paper's fault-free ranking;
* NVSHMEM's NIC-hardware retry (``detect_scale=0.5``) recovers fastest.

Loss/jitter draws are pure functions of ``(seed, link, message,
attempt)``, so rows are bit-identical across runs — CI diffs two
back-to-back executions.

Every point flows through the IR lowering path (the runners emit
:class:`repro.ir.IRProgram` values into :func:`repro.ir.run_program`),
but the non-clean fault plan forces the empty scalar/no-elide pipeline
regardless of any ambient :func:`repro.ir.passes` scope: loss/jitter
draws are per-message, so a rewrite that changes message counts would
change the fault stream — the exact reason ``repro.perf.bulk_enabled``
falls back to the scalar engine under faults.  The forced fallback is
noted in each program's :class:`repro.ir.IRReport`.
"""

from __future__ import annotations

from repro import faults
from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.transport import ONE_SIDED, SHMEM, TWO_SIDED
from repro.workloads.flood import run_flood
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.stencil import StencilConfig, run_stencil

__all__ = ["run_degradation", "LOSS_RATES", "JITTERS"]

LOSS_RATES = (0.0, 0.02, 0.08, 0.2)
JITTERS = (0.0, 2e-6, 8e-6)  # seconds of max extra per-traversal latency
_SEED = 11

# Two-sided / one-sided MPI are CPU runtimes; NVSHMEM needs a GPU machine.
_CASES = (
    ("perlmutter-cpu", TWO_SIDED),
    ("perlmutter-cpu", ONE_SIDED),
    ("perlmutter-gpu", SHMEM),
)

_FLOOD_BYTES = 65536
_FLOOD_MSGS = 64


def _plan(params) -> faults.FaultPlan:
    return faults.FaultPlan.uniform(
        loss=params.get("loss", 0.0),
        jitter=params.get("jitter", 0.0),
        seed=params["fault_seed"],
    )


def _point(params, seed):
    machine = get_machine(params["machine"])
    runtime = params["runtime"]
    with faults.inject(_plan(params)) as scope:
        if params["workload"] == "flood":
            r = run_flood(machine, runtime, _FLOOD_BYTES, _FLOOD_MSGS, iters=2)
            metric = r.bandwidth
        elif params["workload"] == "stencil":
            cfg = StencilConfig(nx=2048, ny=2048, iters=3, mode="simulate")
            metric = run_stencil(machine, runtime, cfg, 4).time
        else:
            cfg = HashTableConfig(total_inserts=2000, seed=5)
            metric = run_hashtable(machine, runtime, cfg, 4).time
    stats = scope.stats()
    return {
        "metric": metric,
        "drops": stats["drops"],
        "retransmits": stats["retransmits"],
        "exhausted": stats["exhausted"],
    }


def _spec() -> SweepSpec:
    points = [
        {
            "workload": w,
            "machine": m,
            "runtime": rt,
            "loss": loss,
            "jitter": 0.0,
            "fault_seed": _SEED,
        }
        for w in ("flood", "stencil", "hashtable")
        for m, rt in _CASES
        for loss in LOSS_RATES
    ]
    points += [
        {
            "workload": "flood",
            "machine": m,
            "runtime": rt,
            "loss": 0.0,
            "jitter": jitter,
            "fault_seed": _SEED,
        }
        for m, rt in _CASES
        for jitter in JITTERS[1:]  # jitter 0.0 is the loss-sweep baseline
    ]
    return SweepSpec(name="degradation", runner=_point, points=points)


def run_degradation() -> ExperimentReport:
    sweep = run_sweep(_spec())
    values: dict[tuple, dict] = {
        (
            p["workload"], p["runtime"], p["loss"], p["jitter"]
        ): r.value
        for r in sweep
        for p in [r.params]
    }

    headers = [
        "workload", "machine", "runtime", "loss", "jitter (us)",
        "metric", "rel. to clean", "drops", "retransmits",
    ]
    rows = []
    # For the flood the metric is bandwidth (higher = better, rel <= 1);
    # for stencil/hashtable it is run time (lower = better, rel >= 1).
    rel: dict[tuple, float] = {}
    for w in ("flood", "stencil", "hashtable"):
        for m, rt in _CASES:
            base = values[(w, rt, 0.0, 0.0)]["metric"]
            jitters = JITTERS if w == "flood" else (0.0,)
            grid = [(loss, 0.0) for loss in LOSS_RATES] + [
                (0.0, j) for j in jitters[1:]
            ]
            for loss, jitter in grid:
                v = values[(w, rt, loss, jitter)]
                r = v["metric"] / base if base else float("nan")
                rel[(w, rt, loss, jitter)] = r
                metric = (
                    f"{v['metric'] / 1e9:.3f} GB/s"
                    if w == "flood"
                    else f"{v['metric'] * 1e3:.4f} ms"
                )
                rows.append(
                    [
                        w, m, rt, loss, jitter * 1e6, metric,
                        round(r, 4), int(v["drops"]), int(v["retransmits"]),
                    ]
                )

    expectations: dict[str, bool] = {}
    max_loss = LOSS_RATES[-1]
    for _m, rt in _CASES:
        bws = [values[("flood", rt, loss, 0.0)]["metric"] for loss in LOSS_RATES]
        expectations[f"flood/{rt}: bandwidth non-increasing in loss"] = all(
            bws[i] >= bws[i + 1] for i in range(len(bws) - 1)
        )
        expectations[f"flood/{rt}: jitter only slows the flood"] = (
            values[("flood", rt, 0.0, JITTERS[-1])]["metric"]
            <= values[("flood", rt, 0.0, 0.0)]["metric"]
        )
        for w in ("stencil", "hashtable"):
            expectations[f"{w}/{rt}: loss extends the run"] = (
                values[(w, rt, max_loss, 0.0)]["metric"]
                >= values[(w, rt, 0.0, 0.0)]["metric"]
            )
    expectations[
        "one-sided collapses before two-sided (slow detection + re-sync)"
    ] = (
        rel[("flood", ONE_SIDED, max_loss, 0.0)]
        < rel[("flood", TWO_SIDED, max_loss, 0.0)]
    )
    expectations["shmem hardware retry degrades least at max loss"] = rel[
        ("flood", SHMEM, max_loss, 0.0)
    ] == max(rel[("flood", rt, max_loss, 0.0)] for _m, rt in _CASES)

    notes = [
        f"FaultPlan.uniform(seed={_SEED}); retransmit: 20 us base timeout, "
        "2x backoff, 8 retries",
        "fault semantics: two_sided abort@1x detect; one_sided surface@4x "
        "detect + re-sync RTT per retry; shmem surface@0.5x detect (NIC "
        "hardware retry)",
        "rel. to clean: bandwidth ratio for the flood (<= 1), run-time "
        "ratio for stencil/hashtable (>= 1)",
    ]
    return ExperimentReport(
        experiment="degradation",
        title="Graceful degradation under link loss and jitter",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
