"""Future-work projection (paper §V): Frontier GPUs under ROC_SHMEM.

The paper excluded Frontier's MI250X GPUs because ROC_SHMEM lacked
``wait_until_any`` and names extending the Message Roofline to AMD GPUs as
future work.  This experiment runs that projection: the ``frontier-gpu``
registry projection models ROC_SHMEM with the wait *emulated in software*
(a device polling loop, the same cost structure as the paper's Listing 1),
and the three workloads are compared against Perlmutter's A100s.

Projected findings (checked as expectations):

* bandwidth-bound stencil ports fine — the fabric, not the wait primitive,
  decides it;
* SpTRSV — the workload the paper says *needs* ``wait_until_any`` — pays
  heavily for the emulated wait, landing between Perlmutter (native wait)
  and not scaling at all;
* the hashtable is wait-free (pure atomics), so it is insensitive to the
  missing primitive.

Each (machine, P, workload) cell is one sweep point; the SpTRSV matrix is
regenerated deterministically inside the runner.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.workloads.stencil import StencilConfig, run_stencil
from repro.transport import SHMEM

__all__ = ["run_future_frontier"]

# Registry name -> display label ("*" marks the projection).
_MACHINES = (
    ("perlmutter-gpu", "perlmutter-gpu"),
    ("frontier-gpu", "frontier-gpu*"),
)


def _point(params, seed):
    machine = get_machine(params["machine"])
    workload, P = params["workload"], params["P"]
    if workload == "stencil":
        cfg = StencilConfig(nx=8192, ny=8192, iters=5, mode="simulate")
        res = run_stencil(machine, SHMEM, cfg, P)
    elif workload == "sptrsv":
        matrix = generate_matrix(
            MatrixSpec(n_supernodes=160, width_lo=3, width_hi=130, seed=6)
        )
        res = run_sptrsv(machine, SHMEM, matrix, P)
    else:
        res = run_hashtable(
            machine, SHMEM, HashTableConfig(total_inserts=4000, seed=6), P
        )
    return {"time": res.time}


def _spec() -> SweepSpec:
    return SweepSpec(
        name="future_frontier",
        runner=_point,
        points=[
            {"machine": mname, "label": label, "P": P, "workload": wl}
            for mname, label in _MACHINES
            for P in (1, 4)
            for wl in ("stencil", "sptrsv", "hashtable")
        ],
    )


def run_future_frontier() -> ExperimentReport:
    sweep = run_sweep(_spec())
    headers = ["workload", "machine", "P", "time (ms)"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}
    for r in sweep:
        p = r.params
        t[(p["workload"], p["label"], p["P"])] = r.value["time"]
        rows.append([p["workload"], p["label"], p["P"], r.value["time"] * 1e3])

    sptrsv_pm = t[("sptrsv", "perlmutter-gpu", 4)]
    sptrsv_fr = t[("sptrsv", "frontier-gpu*", 4)]
    expectations = {
        "stencil ports cleanly (within 2x of A100)": (
            t[("stencil", "frontier-gpu*", 4)]
            < 2 * t[("stencil", "perlmutter-gpu", 4)]
        ),
        "stencil still scales 1 -> 4 on Frontier": (
            t[("stencil", "frontier-gpu*", 4)]
            < t[("stencil", "frontier-gpu*", 1)]
        ),
        "emulated wait costs SpTRSV >25% vs native wait": (
            sptrsv_fr > 1.25 * sptrsv_pm
        ),
        "hashtable insensitive to the missing primitive (within 2x)": (
            t[("hashtable", "frontier-gpu*", 4)]
            < 2 * t[("hashtable", "perlmutter-gpu", 4)]
        ),
    }
    return ExperimentReport(
        experiment="future_frontier",
        title="PROJECTION: Frontier MI250X under ROC_SHMEM with emulated "
        "signal waiting (paper §V future work)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "frontier-gpu* is a projection, not a paper result: link rates "
            "from public MI250X specs, ROC_SHMEM wait_until_any emulated in "
            "software (see DESIGN.md)",
            "SpTRSV at 4 GPUs: Frontier projection "
            f"{sptrsv_fr / sptrsv_pm:.2f}x slower than A100+NVSHMEM — the "
            "quantitative case for adding the wait primitive to ROC_SHMEM",
        ],
    )
