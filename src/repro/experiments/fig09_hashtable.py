"""Fig. 9 — distributed hashtable time on CPUs and GPUs.

Paper observations reproduced and checked:

* one-sided (CAS) inserts beat two-sided triplet messages at high
  parallelism on Perlmutter CPUs (the paper measures 5x at 128 processes),
  but **lose at P=2** where one two-sided message (~1.1 us) is cheaper
  than a ~2 us CAS round trip;
* on Summit GPUs the benchmark stops scaling past one island: a
  cross-socket CAS costs ~1.6 us against ~1.0 us within the island, and
  cross-socket atomic throughput saturates the X-Bus;
* Perlmutter GPUs (0.8 us CAS, all-to-all NVLink3) keep scaling to 4 GPUs.

Each (machine, runtime, P) case is an independent sweep point.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.transport import TWO_SIDED, ONE_SIDED, SHMEM

__all__ = ["run_fig09"]

_CASES = (
    *[("perlmutter-cpu", runtime, P)
      for P in (2, 8, 32, 128) for runtime in (ONE_SIDED, TWO_SIDED)],
    *[("perlmutter-gpu", SHMEM, P) for P in (1, 2, 4)],
    *[("summit-gpu", SHMEM, P) for P in (1, 3, 4, 6)],
)


def _point(params, seed):
    cfg = HashTableConfig(
        total_inserts=params["total_inserts"], seed=params["seed"]
    )
    res = run_hashtable(
        get_machine(params["machine"]), params["runtime"], cfg, params["P"]
    )
    return {"time": res.time, "gups": res.extras["gups"]}


def _spec(total_inserts: int, seed: int) -> SweepSpec:
    return SweepSpec(
        name="fig09",
        runner=_point,
        points=[
            {"machine": m, "runtime": runtime, "P": P}
            for m, runtime, P in _CASES
        ],
        common={"total_inserts": total_inserts, "seed": seed},
    )


def run_fig09(*, total_inserts: int = 8000, seed: int = 5) -> ExperimentReport:
    sweep = run_sweep(_spec(total_inserts, seed))
    headers = ["machine", "variant", "P", "time (ms)", "KUPS"]
    rows = []
    t: dict[tuple[str, str, int], float] = {}
    for r in sweep:
        p = r.params
        t[(p["machine"], p["runtime"], p["P"])] = r.value["time"]
        rows.append(
            [p["machine"], p["runtime"], p["P"], r.value["time"] * 1e3,
             r.value["gups"] * 1e6]
        )

    speedup_128 = (
        t[("perlmutter-cpu", TWO_SIDED, 128)]
        / t[("perlmutter-cpu", ONE_SIDED, 128)]
    )
    expectations = {
        "one-sided slower than two-sided at P=2": (
            t[("perlmutter-cpu", ONE_SIDED, 2)]
            > t[("perlmutter-cpu", TWO_SIDED, 2)]
        ),
        "one-sided faster at P=128 (paper: 5x)": speedup_128 > 1.5,
        "one-sided advantage grows with P": (
            speedup_128
            > t[("perlmutter-cpu", TWO_SIDED, 8)]
            / t[("perlmutter-cpu", ONE_SIDED, 8)]
        ),
        "perlmutter GPUs scale 1 -> 4": (
            t[("perlmutter-gpu", SHMEM, 4)] < t[("perlmutter-gpu", SHMEM, 1)]
        ),
        "summit GPUs stop scaling past the island (4 >= ~3)": (
            t[("summit-gpu", SHMEM, 4)] > t[("summit-gpu", SHMEM, 3)] * 0.9
        ),
        "summit GPUs scale within the island (3 < 1)": (
            t[("summit-gpu", SHMEM, 3)] < t[("summit-gpu", SHMEM, 1)]
        ),
    }
    return ExperimentReport(
        experiment="fig09",
        title=f"Distributed hashtable time ({total_inserts} inserts)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            f"one-sided speedup at P=128: {speedup_128:.1f}x (paper: 5x; "
            "scaled insert count and the owner-routed two-sided variant — "
            "see EXPERIMENTS.md for the deviation discussion)",
            "paper: 1e6 inserts; pass total_inserts=1_000_000 to match",
        ],
    )
