"""Inter-node communication over Slingshot-11 and InfiniBand.

The paper's Fig. 3 caption names "standard two-sided and one-sided MPI on
CPUs over InfiniBand and Slingshot-11" — the on-node figures are the paper's
plots, and this experiment extends the reproduction across the switched
fabric: two Perlmutter nodes over Slingshot-11 and two Summit nodes over
InfiniBand EDR, against their on-node baselines.

Checked expectations: inter-node bandwidth is NIC-bound (25 / 12.5 GB/s vs
32 / 25 GB/s on-node); latency roughly doubles through the switch; the
one-sided-vs-two-sided relationships survive the fabric change (one-sided
still wins at high msg/sync on Cray MPI, still loses on Spectrum).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines import perlmutter_cpu, summit_cpu
from repro.machines.cluster import INFINIBAND_EDR, SLINGSHOT11, make_cluster
from repro.workloads.flood import run_flood

__all__ = ["run_internode"]


def run_internode(*, iters: int = 2) -> ExperimentReport:
    headers = ["fabric", "runtime", "B (bytes)", "msg/sync", "GB/s", "us/msg"]
    rows = []
    bw: dict[tuple[str, str, int, int], float] = {}
    lat: dict[tuple[str, str, int, int], float] = {}

    cases = [
        ("perlmutter on-node", lambda: perlmutter_cpu(), "spread"),
        (
            "perlmutter SS-11",
            lambda: make_cluster(perlmutter_cpu(), 2, SLINGSHOT11),
            "block",
        ),
        ("summit on-node", lambda: summit_cpu(), "spread"),
        (
            "summit IB-EDR",
            lambda: make_cluster(summit_cpu(), 2, INFINIBAND_EDR),
            "block",
        ),
    ]
    for fabric, factory, placement in cases:
        for runtime in ("two_sided", "one_sided"):
            for B in (64, 65536, 4194304):
                for n in (1, 256):
                    r = run_flood(
                        factory(), runtime, B, n, iters=iters, placement=placement
                    )
                    bw[(fabric, runtime, B, n)] = r.bandwidth
                    lat[(fabric, runtime, B, n)] = r.latency_per_message
                    rows.append(
                        [
                            fabric,
                            runtime,
                            B,
                            n,
                            r.bandwidth / 1e9,
                            r.latency_per_message * 1e6,
                        ]
                    )

    big, hi_n = 4194304, 256
    expectations = {
        "SS-11 bandwidth NIC-bound (~25 GB/s < 32 on-node)": (
            22e9 < bw[("perlmutter SS-11", "one_sided", big, hi_n)] < 25.5e9
        ),
        "IB bandwidth NIC-bound (~12.5 GB/s)": (
            10e9 < bw[("summit IB-EDR", "two_sided", big, hi_n)] < 13e9
        ),
        "switch roughly doubles small-message latency": (
            1.6
            < lat[("perlmutter SS-11", "two_sided", 64, 1)]
            / lat[("perlmutter on-node", "two_sided", 64, 1)]
            < 3.5
        ),
        "CrayMPI: one-sided still wins at high msg/sync inter-node": (
            bw[("perlmutter SS-11", "one_sided", 64, hi_n)]
            > bw[("perlmutter SS-11", "two_sided", 64, hi_n)]
        ),
        "Spectrum: one-sided still loses inter-node": (
            bw[("summit IB-EDR", "one_sided", 64, hi_n)]
            <= bw[("summit IB-EDR", "two_sided", 64, hi_n)] * 1.05
        ),
    }
    return ExperimentReport(
        experiment="internode",
        title="Inter-node extension: Slingshot-11 and InfiniBand fabrics",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "extends the paper's on-node plots across the switched fabric "
            "(its Fig. 3 scope mentions both interconnects); interconnect "
            "parameters follow public microbenchmarks",
        ],
    )
