"""Inter-node communication over Slingshot-11 and InfiniBand.

The paper's Fig. 3 caption names "standard two-sided and one-sided MPI on
CPUs over InfiniBand and Slingshot-11" — the on-node figures are the paper's
plots, and this experiment extends the reproduction across the switched
fabric: two Perlmutter nodes over Slingshot-11 and two Summit nodes over
InfiniBand EDR, against their on-node baselines.

Checked expectations: inter-node bandwidth is NIC-bound (25 / 12.5 GB/s vs
32 / 25 GB/s on-node); latency roughly doubles through the switch; the
one-sided-vs-two-sided relationships survive the fabric change (one-sided
still wins at high msg/sync on Cray MPI, still loses on Spectrum).

Every (fabric, runtime, B, n) cell is one sweep point; cluster machines
are assembled inside the point runner from the base machine's registry
name plus a :data:`~repro.machines.cluster.FABRICS` key.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.cluster import FABRICS, make_cluster
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.flood import run_flood
from repro.transport import TWO_SIDED, ONE_SIDED

__all__ = ["run_internode"]

# fabric label -> (base machine, FABRICS key or None for on-node, placement)
_CASES = (
    ("perlmutter on-node", "perlmutter-cpu", None, "spread"),
    ("perlmutter SS-11", "perlmutter-cpu", "slingshot11", "block"),
    ("summit on-node", "summit-cpu", None, "spread"),
    ("summit IB-EDR", "summit-cpu", "infiniband-edr", "block"),
)


def _point(params, seed):
    machine = get_machine(params["machine"])
    if params["fabric_key"] is not None:
        machine = make_cluster(machine, 2, FABRICS[params["fabric_key"]])
    r = run_flood(
        machine, params["runtime"], params["size"], params["msgs"],
        iters=params["iters"], placement=params["placement"],
    )
    return {"bandwidth": r.bandwidth, "latency": r.latency_per_message}


def _spec(iters: int) -> SweepSpec:
    return SweepSpec(
        name="internode",
        runner=_point,
        points=[
            {"fabric": fabric, "machine": base, "fabric_key": key,
             "placement": placement, "runtime": runtime, "size": B, "msgs": n}
            for fabric, base, key, placement in _CASES
            for runtime in (TWO_SIDED, ONE_SIDED)
            for B in (64, 65536, 4194304)
            for n in (1, 256)
        ],
        common={"iters": iters},
    )


def run_internode(*, iters: int = 2) -> ExperimentReport:
    sweep = run_sweep(_spec(iters))
    headers = ["fabric", "runtime", "B (bytes)", "msg/sync", "GB/s", "us/msg"]
    rows = []
    bw: dict[tuple[str, str, int, int], float] = {}
    lat: dict[tuple[str, str, int, int], float] = {}
    for r in sweep:
        p = r.params
        key = (p["fabric"], p["runtime"], p["size"], p["msgs"])
        bw[key] = r.value["bandwidth"]
        lat[key] = r.value["latency"]
        rows.append(
            [
                p["fabric"],
                p["runtime"],
                p["size"],
                p["msgs"],
                r.value["bandwidth"] / 1e9,
                r.value["latency"] * 1e6,
            ]
        )

    big, hi_n = 4194304, 256
    expectations = {
        "SS-11 bandwidth NIC-bound (~25 GB/s < 32 on-node)": (
            22e9 < bw[("perlmutter SS-11", ONE_SIDED, big, hi_n)] < 25.5e9
        ),
        "IB bandwidth NIC-bound (~12.5 GB/s)": (
            10e9 < bw[("summit IB-EDR", TWO_SIDED, big, hi_n)] < 13e9
        ),
        "switch roughly doubles small-message latency": (
            1.6
            < lat[("perlmutter SS-11", TWO_SIDED, 64, 1)]
            / lat[("perlmutter on-node", TWO_SIDED, 64, 1)]
            < 3.5
        ),
        "CrayMPI: one-sided still wins at high msg/sync inter-node": (
            bw[("perlmutter SS-11", ONE_SIDED, 64, hi_n)]
            > bw[("perlmutter SS-11", TWO_SIDED, 64, hi_n)]
        ),
        "Spectrum: one-sided still loses inter-node": (
            bw[("summit IB-EDR", ONE_SIDED, 64, hi_n)]
            <= bw[("summit IB-EDR", TWO_SIDED, 64, hi_n)] * 1.05
        ),
    }
    return ExperimentReport(
        experiment="internode",
        title="Inter-node extension: Slingshot-11 and InfiniBand fabrics",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "extends the paper's on-node plots across the switched fabric "
            "(its Fig. 3 scope mentions both interconnects); interconnect "
            "parameters follow public microbenchmarks",
        ],
    )
