"""Host-involvement ablation: how much CPU time each runtime burns.

The paper's comparison stops at 2023's host-driven runtimes; this
experiment extends it one generation past the frontier.  Every workload
runs on four runtimes spanning three *host-involvement generations*:

1. **host-driven MPI** — ``two_sided`` (2 ops/message on the host) and
   ``one_sided`` (the 4-op Put/flush/Put(signal)/flush emulation plus
   Listing-1 polling);
2. **gpu-initiated** — ``shmem``: the device issues the verbs, but the
   host still launches a kernel per synchronisation epoch
   (``GpuSpec.kernel_launch`` each);
3. **stream-triggered** — ``stream_triggered``: ops enqueued on ordered
   device streams, hardware completion, zero host involvement.

The host-overhead metric is *derived from the capability table*
(:func:`repro.transport.capabilities`), never from runtime names: caps
pick the per-message / per-sync / per-atomic host cost formula, and the
workload's measured op counters scale it.  Simulated times come from the
standard runners — the stream backend's derived profile also makes the
end-to-end time a bound: modeled stream time never exceeds host-driven
one-sided on the same machine.
"""

from __future__ import annotations

import dataclasses

from repro.collectives import run_collective
from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.transport import ONE_SIDED, SHMEM, STREAM_TRIGGERED, TWO_SIDED
from repro.transport.registry import get_backend
from repro.workloads.flood import run_flood
from repro.workloads.hashtable import HashTableConfig, run_hashtable
from repro.workloads.sptrsv import MatrixSpec, generate_matrix, run_sptrsv
from repro.workloads.stencil import StencilConfig, run_stencil

__all__ = ["run_host_involvement", "host_overhead"]

# Generations, most to least host involvement; the table rows keep this
# order so the monotone reduction reads top to bottom per workload.
RUNTIMES = (TWO_SIDED, ONE_SIDED, SHMEM, STREAM_TRIGGERED)
HOST_DRIVEN = (TWO_SIDED, ONE_SIDED)


def _gpu_machine_all_runtimes():
    """perlmutter-gpu hosting every generation.

    The GPU machine carries calibrated ``two_sided`` and ``shmem``
    profiles; the one-sided 4-op emulation gets the CPU machine's
    calibrated costs (the emulation is host software — its op costs do
    not depend on the accelerator).  ``stream_triggered`` needs no entry:
    its profile derives lazily from the others.
    """
    m = get_machine("perlmutter-gpu")
    cpu = get_machine("perlmutter-cpu")
    m.runtimes[ONE_SIDED] = dataclasses.replace(cpu.runtimes[ONE_SIDED])
    return m


def host_overhead(machine, runtime: str, *, messages: float, syncs: float,
                  atomics: float = 0.0, ranks: float = 1.0) -> float:
    """Modeled host CPU seconds a workload's op mix costs on ``runtime``.

    Branches on :class:`~repro.transport.BackendCaps` only:

    * ``host_bypass`` — zero: completion never touches the host;
    * ``gpu_initiated`` (without bypass) — the host's remaining job is
      launching one persistent kernel per PE (the paper's NVSHMEM idiom:
      communication is device-initiated, but a host thread still owns
      the launch);
    * host-driven, fused single op — ``put_signal`` per message plus the
      notification wake per sync;
    * host-driven two-sided — ``isend + recv_match`` per message plus
      ``sync_enter`` per sync;
    * host-driven multi-op one-sided — the n-op emulation per message
      plus the batched completion sequence (put + 2 flushes) per sync.
    """
    backend = get_backend(runtime)
    caps = backend.caps
    if caps.host_bypass:
        return 0.0
    if caps.gpu_initiated:
        launch = machine.gpu.kernel_launch if machine.gpu is not None else 0.0
        return launch * ranks
    costs = machine.runtime(backend.resolve_costs_key())
    if backend.sided == "two":
        per_msg = costs.isend + costs.recv_match
        per_sync = costs.sync_enter
    elif caps.ops_per_message == 1:
        per_msg = costs.put_signal
        per_sync = costs.wait_wakeup
    else:
        n_puts = (caps.ops_per_message + 1) // 2
        n_flushes = caps.ops_per_message // 2
        per_msg = n_puts * costs.put + n_flushes * costs.flush
        per_sync = costs.put + 2 * costs.flush
    return messages * per_msg + syncs * per_sync + atomics * costs.fetch_op


def _workload_points(machine):
    """(name, runtime) -> (time, messages, syncs, atomics, ranks) for the
    four paper workloads plus the ML training step's allreduce traffic."""
    P = 4
    points: dict[tuple[str, str], tuple[float, float, float, float, int]] = {}
    matrix = generate_matrix(MatrixSpec(n_supernodes=48, seed=4))
    for rt in RUNTIMES:
        r = run_stencil(machine, rt, StencilConfig(nx=64, ny=64, iters=5), P)
        c = r.counters
        points[("stencil", rt)] = (r.time, c.messages, c.syncs, c.atomics, P)

        nbytes, msgs_per_sync, iters = 4096, 16, 3
        f = run_flood(machine, rt, nbytes, msgs_per_sync, iters=iters)
        # FloodResult carries no counters; the schedule is closed-form.
        points[("flood", rt)] = (
            f.time_total, msgs_per_sync * iters, iters, 0.0, 2
        )

        r = run_sptrsv(machine, rt, matrix, P)
        c = r.counters
        points[("sptrsv", rt)] = (r.time, c.messages, c.syncs, c.atomics, P)

        r = run_hashtable(machine, rt, HashTableConfig(total_inserts=512), P)
        c = r.counters
        points[("hashtable", rt)] = (r.time, c.messages, c.syncs, c.atomics, P)

        col = run_collective(machine, rt, "allreduce", nranks=P,
                             nbytes=1 << 20, algorithm="ring")
        points[("ml_training", rt)] = (
            col.time, col.stats.messages, col.stats.rounds, 0.0, P
        )
    return points


def run_host_involvement() -> ExperimentReport:
    """All paper workloads + ML training across host-involvement
    generations; host overhead must fall monotonically to zero."""
    machine = _gpu_machine_all_runtimes()
    points = _workload_points(machine)
    workloads = ("stencil", "flood", "sptrsv", "hashtable", "ml_training")

    headers = ["workload", "runtime", "time (ms)", "host ops (us)",
               "host share"]
    rows = []
    h: dict[tuple[str, str], float] = {}
    for wl in workloads:
        for rt in RUNTIMES:
            t, messages, syncs, atomics, ranks = points[(wl, rt)]
            hh = host_overhead(machine, rt, messages=messages, syncs=syncs,
                               atomics=atomics, ranks=ranks)
            h[(wl, rt)] = hh
            rows.append([wl, rt, t * 1e3, hh * 1e6,
                         f"{min(hh / t, 1.0):.1%}" if t > 0 else "0.0%"])

    expectations = {
        "stream-triggered removes all host involvement": all(
            h[(wl, STREAM_TRIGGERED)] == 0.0 for wl in workloads
        ),
        "gpu-initiated cuts host work vs every host-driven runtime": all(
            h[(wl, SHMEM)] < min(h[(wl, rt)] for rt in HOST_DRIVEN)
            for wl in workloads
        ),
        "host overhead falls monotonically across generations": all(
            min(h[(wl, rt)] for rt in HOST_DRIVEN)
            > h[(wl, SHMEM)]
            > h[(wl, STREAM_TRIGGERED)] == 0.0
            for wl in workloads
        ),
        "stream time never exceeds host-driven one-sided": all(
            points[(wl, STREAM_TRIGGERED)][0] <= points[(wl, ONE_SIDED)][0]
            for wl in workloads
        ),
    }
    return ExperimentReport(
        experiment="host_involvement",
        title="Host involvement across runtime generations "
              "(host-driven -> gpu-initiated -> stream-triggered)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            "host overhead = caps-selected per-op host costs x measured op "
            "counters; stream_triggered costs derive from the machine's "
            "host profiles (repro.comm.stream.derive_stream_costs)",
        ],
    )
