"""Fig. 1 — Message Roofline Model overview on Frontier.

Reproduces the paper's overview plot: the *sharp* model
(``n*B / max(...)``, an ideal junction one can never reach), the *rounded*
model (serial per-message overhead), the 36 GB/s Infinity Fabric ceiling,
the family of diagonal latency ceilings for increasing msg/sync — plus
measured dots from the flood simulator sitting on (and only on) the rounded
curves.

The headline claim quantified here: when latency dominates (small
messages), sending ~100+ messages per synchronization buys up to ~10x
bandwidth; when the per-byte term dominates (large messages), overlap buys
almost nothing because the bandwidth ceiling is already reached.

The analytic curves are pure model evaluations; only the measured dots
cost simulation time, and those run as a ``repro.sweep`` grid.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import MessageRoofline, Series, ascii_loglog
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.flood import run_flood
from repro.transport import ONE_SIDED

__all__ = ["run_fig01"]

_SIZES = [2.0**k for k in range(3, 23)]  # 8 B .. 4 MiB
_NS = (1, 10, 100, 1000)
_DOT_NS = (1, 16, 256)
_DOT_SIZES = (64, 4096, 262144)


def _point(params, seed):
    r = run_flood(
        get_machine(params["machine"]),
        params["runtime"],
        params["size"],
        params["msgs"],
        iters=params["iters"],
    )
    return {"bandwidth": r.bandwidth}


def _spec(iters: int) -> SweepSpec:
    return SweepSpec(
        name="fig01",
        runner=_point,
        axes={"msgs": _DOT_NS, "size": _DOT_SIZES},
        common={"machine": "frontier-cpu", "runtime": ONE_SIDED, "iters": iters},
    )


def run_fig01(*, measured: bool = True, iters: int = 2) -> ExperimentReport:
    """Build the Fig. 1 data: analytic curves plus simulator dots."""
    machine = get_machine("frontier-cpu")
    # Flood-style accounting: one put per message, completion amortised
    # over the batch (the paper's Fig. 1 is the generic put roofline).
    params = machine.loggp(
        ONE_SIDED, 0, 1, nranks=2, placement="spread", sided="one",
        ops_per_message=1,
    )
    roofline = MessageRoofline(params, name="frontier-cpu/one-sided")
    headers = ["B (bytes)", "n=1 GB/s", "n=10 GB/s", "n=100 GB/s", "n=1000 GB/s",
               "sharp n=1 GB/s"]
    rows = []
    for B in _SIZES:
        row = [int(B)]
        for n in _NS:
            row.append(float(roofline.bandwidth(B, n)) / 1e9)
        row.append(float(roofline.bandwidth(B, 1, sharp=True)) / 1e9)
        rows.append(row)

    # Overlap-gain claim: >= ~8x for tiny messages at n=100 when L >> G,
    # and ~1x for huge messages.
    small_gain = float(roofline.overlap_gain(64.0, 100))
    large_gain = float(roofline.overlap_gain(4 * 2**20, 100))
    peak = roofline.peak_bandwidth / 1e9

    expectations = {
        "latency_overlap_gain_small_msgs >= 5x": small_gain >= 5.0,
        "no_gain_for_bandwidth_bound_msgs (<1.3x)": large_gain < 1.3,
        "horizontal_ceiling_is_IF_36GBps": abs(peak - 36.0) < 1.0,
        "sharp_model_never_below_rounded": bool(
            np.all(
                roofline.bandwidth(np.array(_SIZES), 1, sharp=True)
                >= roofline.bandwidth(np.array(_SIZES), 1) - 1e-9
            )
        ),
    }

    charts = []
    series = [
        Series(
            f"model n={n}",
            [(B, float(roofline.bandwidth(B, n))) for B in _SIZES],
            marker=m,
        )
        for n, m in zip(_NS, "1abc")
    ]
    if measured:
        sweep = run_sweep(_spec(iters))
        dots = [(r.params["size"], r.value["bandwidth"]) for r in sweep]
        series.append(Series("measured", dots, marker="*"))
        # Dots must lie at or below the sharp ceiling.
        expectations["measured_dots_below_sharp_ceiling"] = all(
            bw <= float(roofline.bandwidth(B, 1_000_000, sharp=True)) * 1.05
            for B, bw in dots
        )
    charts.append(
        ascii_loglog(
            series,
            title="Fig 1: Message Roofline on Frontier (bandwidth vs message size)",
            xlabel="message size (B)",
            ylabel="GB/s",
        )
    )
    return ExperimentReport(
        experiment="fig01",
        title="Message Roofline Model overview (Frontier CPUs)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        charts=charts,
        notes=[
            f"overlap gain at 64 B, n=100: {small_gain:.1f}x "
            "(paper: up to ~10x when L >> G)",
            f"overlap gain at 4 MiB, n=100: {large_gain:.2f}x (bandwidth-bound)",
        ],
    )
