"""Per-figure/table experiment runners.

Each ``run_*`` returns an
:class:`~repro.experiments.report.ExperimentReport` whose rows mirror the
paper's figure series, whose ``expectations`` encode the paper's claims as
booleans, and whose ``render()`` prints both — the benchmarks in
``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.degradation import run_degradation
from repro.experiments.fig01_overview import run_fig01
from repro.experiments.fig02_topologies import run_fig02
from repro.experiments.fig03_cpu_bandwidth import run_fig03
from repro.experiments.fig04_gpu_bandwidth import run_fig04
from repro.experiments.fig05_stencil import run_fig05
from repro.experiments.fig06_workload_bounds import run_fig06
from repro.experiments.fig07_latency import run_fig07
from repro.experiments.fig08_sptrsv import run_fig08
from repro.experiments.fig09_hashtable import run_fig09
from repro.experiments.fig10_split import run_fig10
from repro.experiments.future import run_future_frontier
from repro.experiments.future_collectives import run_future_collectives
from repro.experiments.host_involvement import run_host_involvement
from repro.experiments.interference import run_interference
from repro.experiments.internode import run_internode
from repro.experiments.ml_traffic import (
    run_ml_inference,
    run_ml_moe,
    run_ml_training,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.resilience import run_resilience
from repro.experiments.tables import run_table1, run_table2

__all__ = [
    "ExperimentReport",
    "run_degradation",
    "run_fig01",
    "run_fig02",
    "run_fig03",
    "run_fig04",
    "run_fig05",
    "run_fig06",
    "run_fig07",
    "run_fig08",
    "run_fig09",
    "run_fig10",
    "run_future_frontier",
    "run_future_collectives",
    "run_host_involvement",
    "run_interference",
    "run_internode",
    "run_ml_inference",
    "run_ml_moe",
    "run_ml_training",
    "run_resilience",
    "run_table1",
    "run_table2",
]

ALL_EXPERIMENTS = {
    "fig01": run_fig01,
    "fig02": run_fig02,
    "fig03": run_fig03,
    "fig04": run_fig04,
    "fig05": run_fig05,
    "fig06": run_fig06,
    "fig07": run_fig07,
    "fig08": run_fig08,
    "fig09": run_fig09,
    "fig10": run_fig10,
    "table1": run_table1,
    "table2": run_table2,
    "future_frontier": run_future_frontier,
    "future_collectives": run_future_collectives,
    "host_involvement": run_host_involvement,
    "internode": run_internode,
    "degradation": run_degradation,
    "interference": run_interference,
    "ml_training": run_ml_training,
    "ml_moe": run_ml_moe,
    "ml_inference": run_ml_inference,
    "resilience": run_resilience,
}
