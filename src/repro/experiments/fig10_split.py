"""Fig. 10 — splitting large messages into concurrent smaller ones.

A Message Roofline variant with message *volume* on the x-axis: on
Perlmutter GPUs, sending one V-byte message as four concurrent V/4
messages stripes them across the NVLink port group and gets up to ~2.9x
speedup once V exceeds ~131 KB.  Both the analytic
:class:`~repro.roofline.split.SplitModel` and fabric-simulator
measurements are reported.

The simulator measurements form the sweep (one point per (volume, split)
pair); the analytic model is evaluated in the summarize step.
"""

from __future__ import annotations

import numpy as np

from repro.comm.job import Job
from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.roofline import SplitModel
from repro.sweep import SweepSpec, run_sweep
from repro.transport import SHMEM

__all__ = ["run_fig10"]

_VOLUMES = tuple(int(2.0**k) for k in range(12, 25))  # 4 KiB .. 16 MiB


def _point(params, seed):
    """Simulated time to move ``volume`` bytes as ``split`` concurrent puts."""
    volume, k = params["volume"], params["split"]
    machine = get_machine(params["machine"])
    job = Job(machine, 2, SHMEM, placement="spread")
    win = job.window(max(volume // 8, 1), dtype=np.float64)
    sig = job.window(max(k, 1), dtype=np.uint64)

    def program(ctx):
        if ctx.rank == 0:
            chunk = volume // k
            for i in range(k):
                yield from ctx.put_signal_nbi(
                    win,
                    1,
                    nelems=max(chunk // 8, 1),
                    offset=0,
                    signal_win=sig,
                    signal_idx=i,
                    signal_value=1,
                )
            return 0.0
        t0 = ctx.sim.now
        yield from ctx.wait_until_all(sig, list(range(k)), value=1)
        return ctx.sim.now - t0

    res = job.run(program)
    return {"time": res.results[1]}


def _spec(k: int) -> SweepSpec:
    return SweepSpec(
        name="fig10",
        runner=_point,
        axes={"volume": _VOLUMES, "split": (1, k)},
        common={"machine": "perlmutter-gpu"},
    )


def run_fig10(*, k: int = 4, measured: bool = True) -> ExperimentReport:
    model = SplitModel.from_machine(get_machine("perlmutter-gpu"), "gpu0", "gpu1")
    measured_time: dict[tuple[int, int], float] = {}
    if measured:
        for r in run_sweep(_spec(k)):
            measured_time[(r.params["volume"], r.params["split"])] = (
                r.value["time"]
            )

    headers = ["volume (bytes)", "model 1-msg (us)", f"model {k}-msg (us)",
               "model speedup", "measured speedup"]
    rows = []
    measured_speedups = {}
    for V in _VOLUMES:
        t1 = float(model.time(V, 1))
        tk = float(model.time(V, k))
        m = float("nan")
        if measured:
            m = measured_time[(V, 1)] / measured_time[(V, k)]
            measured_speedups[V] = m
        rows.append([V, t1 * 1e6, tk * 1e6, t1 / tk, m])

    crossover = model.crossover_volume(k)
    asymptote = model.asymptotic_speedup(k)
    expectations = {
        "crossover near 131 KB (64..256 KiB)": (
            64 * 1024 <= crossover <= 256 * 1024
        ),
        "asymptotic speedup ~2.9x (2.5..3.3)": 2.5 <= asymptote <= 3.3,
        "no benefit for small volumes (<= 16 KiB)": (
            float(model.speedup(16 * 1024, k)) < 1.0
        ),
    }
    if measured:
        big = max(_VOLUMES)
        small = min(_VOLUMES)
        expectations["measured speedup at 16 MiB >= 2.5x"] = (
            measured_speedups[big] >= 2.5
        )
        expectations["measured speedup small volumes < 1.2x"] = (
            measured_speedups[small] < 1.2
        )
        expectations["model tracks measurement within 25% at large V"] = (
            abs(
                measured_speedups[big]
                / (float(model.time(big, 1)) / float(model.time(big, k)))
                - 1.0
            )
            < 0.25
        )
    return ExperimentReport(
        experiment="fig10",
        title=f"Split one message into {k} on Perlmutter GPUs (NVLink port groups)",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=[
            f"model crossover volume: {crossover / 1024:.0f} KiB "
            "(paper: 131 KB)",
            f"model asymptotic speedup: {asymptote:.2f}x (paper: up to 2.9x)",
        ],
    )
