"""ML traffic scenarios under the Message Roofline (paper §V future work).

Three experiments put the paper's one-sided-vs-two-sided question to the
communication patterns of modern ML systems, using the
:mod:`repro.workloads.ml` runners (compute via the machine roofline,
communication via :mod:`repro.collectives` on the transport verbs):

* **ml_training** — data-parallel steps: gradient allreduce cost vs the
  batch compute that hides it;
* **ml_moe** — expert-parallel MoE: alltoall dispatch vs expert width;
* **ml_inference** — disaggregated serving: the KV-cache hand-off on
  the time-to-first-token path.

Checked findings are roofline-style: GPU-initiated (NVSHMEM) transport
is never slower than host MPI on the same traffic; growing the
compute-side axis (tokens, hidden) hides communication; communication
time is monotone in bytes on the wire; and no measured bandwidth
exceeds the port-group peak it runs on.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.machines.registry import get_machine
from repro.sweep import SweepSpec, run_sweep
from repro.transport import SHMEM, TWO_SIDED
from repro.workloads.ml import run_kv_transfer, run_moe_dispatch, run_training_step

__all__ = ["run_ml_training", "run_ml_moe", "run_ml_inference"]

_MACHINE = "perlmutter-gpu"
_P = 4
_RUNTIMES = (TWO_SIDED, SHMEM)
# A100 NVLink3: four 25 GB/s sub-channels per direction per pair.
_PORT_PEAK = 25e9
_PORT_GROUP_PEAK = 4 * _PORT_PEAK


# ---------------------------------------------------------------------------
# ml_training — data-parallel gradient allreduce
# ---------------------------------------------------------------------------

_GRADS = (1 << 20, 16 << 20)
_TOKENS = (512, 8192)


def _training_point(params, seed):
    r = run_training_step(
        get_machine(params["machine"]), params["runtime"],
        nranks=params["P"], grad_bytes=params["grad_bytes"],
        tokens_per_rank=params["tokens"],
    )
    return {
        "time": r.time,
        "comm_time": r.comm_time,
        "comm_fraction": r.comm_fraction,
        "algorithm": r.algorithm,
    }


def run_ml_training() -> ExperimentReport:
    sweep = run_sweep(SweepSpec(
        name="ml_training",
        runner=_training_point,
        axes={"runtime": _RUNTIMES, "grad_bytes": _GRADS, "tokens": _TOKENS},
        common={"machine": _MACHINE, "P": _P},
    ))
    t, frac, comm = {}, {}, {}
    rows = []
    for r in sweep:
        p = r.params
        key = (p["runtime"], p["grad_bytes"], p["tokens"])
        t[key] = r.value["time"]
        frac[key] = r.value["comm_fraction"]
        comm[key] = r.value["comm_time"]
        rows.append([
            p["runtime"], r.value["algorithm"], p["grad_bytes"] >> 20,
            p["tokens"], r.value["time"] * 1e6,
            100 * r.value["comm_fraction"],
        ])
    wire = 2 * (_P - 1) / _P  # allreduce wire bytes per payload byte
    expectations = {
        "GPU-initiated transport never loses a cell": all(
            t[(SHMEM, g, k)] <= t[(TWO_SIDED, g, k)]
            for g in _GRADS for k in _TOKENS
        ),
        "bigger gradients, longer steps": all(
            t[(rt, _GRADS[0], k)] < t[(rt, _GRADS[1], k)]
            for rt in _RUNTIMES for k in _TOKENS
        ),
        "batch compute hides the allreduce": all(
            frac[(rt, g, _TOKENS[1])] < frac[(rt, g, _TOKENS[0])]
            for rt in _RUNTIMES for g in _GRADS
        ),
        "implied allreduce bandwidth stays under the port-group peak": all(
            wire * g / c <= _PORT_GROUP_PEAK
            for (rt, g, k), c in comm.items()
        ),
    }
    return ExperimentReport(
        experiment="ml_training",
        title="ML TRAFFIC: data-parallel training step (gradient allreduce)",
        headers=["runtime", "algorithm", "grad MiB", "tokens", "step (us)",
                 "comm %"],
        rows=rows,
        expectations=expectations,
        notes=[
            "compute = 6 * params * tokens FLOPs on the machine roofline; "
            "comm % is the step share the allreduce did not hide",
        ],
    )


# ---------------------------------------------------------------------------
# ml_moe — expert-parallel alltoall dispatch
# ---------------------------------------------------------------------------

_HIDDEN = (64, 512)
_MOE_TOKENS = (256, 2048)


def _moe_point(params, seed):
    r = run_moe_dispatch(
        get_machine(params["machine"]), params["runtime"],
        nranks=params["P"], tokens_per_rank=params["tokens"],
        hidden=params["hidden"],
    )
    return {
        "time": r.time,
        "comm_fraction": r.comm_fraction,
        "tokens_per_s": r.tokens_per_s,
        "algorithm": r.algorithm,
    }


def run_ml_moe() -> ExperimentReport:
    sweep = run_sweep(SweepSpec(
        name="ml_moe",
        runner=_moe_point,
        axes={"runtime": _RUNTIMES, "hidden": _HIDDEN, "tokens": _MOE_TOKENS},
        common={"machine": _MACHINE, "P": _P},
    ))
    t, frac = {}, {}
    rows = []
    for r in sweep:
        p = r.params
        key = (p["runtime"], p["hidden"], p["tokens"])
        t[key] = r.value["time"]
        frac[key] = r.value["comm_fraction"]
        rows.append([
            p["runtime"], r.value["algorithm"], p["hidden"], p["tokens"],
            r.value["time"] * 1e6, 100 * r.value["comm_fraction"],
            r.value["tokens_per_s"] / 1e6,
        ])
    expectations = {
        "GPU-initiated transport never loses a cell": all(
            t[(SHMEM, h, k)] <= t[(TWO_SIDED, h, k)]
            for h in _HIDDEN for k in _MOE_TOKENS
        ),
        "wider experts hide the dispatch (comm ~ h, compute ~ h^2)": all(
            frac[(rt, _HIDDEN[1], k)] < frac[(rt, _HIDDEN[0], k)]
            for rt in _RUNTIMES for k in _MOE_TOKENS
        ),
        "more tokens, longer layers": all(
            t[(rt, h, _MOE_TOKENS[0])] < t[(rt, h, _MOE_TOKENS[1])]
            for rt in _RUNTIMES for h in _HIDDEN
        ),
    }
    return ExperimentReport(
        experiment="ml_moe",
        title="ML TRAFFIC: MoE expert-parallel dispatch (alltoall)",
        headers=["runtime", "algorithm", "hidden", "tokens", "layer (us)",
                 "comm %", "Mtok/s"],
        rows=rows,
        expectations=expectations,
        notes=[
            "dispatch + combine are alltoalls of tokens/P * hidden words "
            "per destination; expert FFN = 4 * ffn_mult * tokens * hidden^2 "
            "FLOPs",
        ],
    )


# ---------------------------------------------------------------------------
# ml_inference — KV-cache hand-off
# ---------------------------------------------------------------------------

_CONTEXTS = (512, 4096)


def _inference_point(params, seed):
    r = run_kv_transfer(
        get_machine(params["machine"]), params["runtime"],
        nranks=params["P"], context_tokens=params["context"],
    )
    return {
        "transfer_time": r.transfer_time,
        "transfer_bandwidth": r.transfer_bandwidth,
        "ttft": r.ttft,
        "kv_bytes": r.kv_bytes,
        "algorithm": r.algorithm,
    }


def run_ml_inference() -> ExperimentReport:
    sweep = run_sweep(SweepSpec(
        name="ml_inference",
        runner=_inference_point,
        axes={"runtime": _RUNTIMES, "context": _CONTEXTS},
        common={"machine": _MACHINE, "P": _P},
    ))
    xfer, bw, ttft = {}, {}, {}
    rows = []
    for r in sweep:
        p = r.params
        key = (p["runtime"], p["context"])
        xfer[key] = r.value["transfer_time"]
        bw[key] = r.value["transfer_bandwidth"]
        ttft[key] = r.value["ttft"]
        rows.append([
            p["runtime"], r.value["algorithm"], p["context"],
            r.value["kv_bytes"] / (1 << 20), r.value["transfer_time"] * 1e6,
            r.value["transfer_bandwidth"] / 1e9, r.value["ttft"] * 1e6,
        ])
    expectations = {
        "KV hand-off grows with context": all(
            xfer[(rt, _CONTEXTS[0])] < xfer[(rt, _CONTEXTS[1])]
            for rt in _RUNTIMES
        ),
        "time to first token grows with context": all(
            ttft[(rt, _CONTEXTS[0])] < ttft[(rt, _CONTEXTS[1])]
            for rt in _RUNTIMES
        ),
        "long contexts ride the bandwidth regime": all(
            bw[(rt, _CONTEXTS[1])] > bw[(rt, _CONTEXTS[0])]
            for rt in _RUNTIMES
        ),
        "hand-off stays under the single-stream port peak": all(
            v <= _PORT_PEAK for v in bw.values()
        ),
        "GPU-initiated hand-off is never slower": all(
            xfer[(SHMEM, c)] <= xfer[(TWO_SIDED, c)] for c in _CONTEXTS
        ),
    }
    return ExperimentReport(
        experiment="ml_inference",
        title="ML TRAFFIC: multi-tenant KV-cache hand-off (broadcast)",
        headers=["runtime", "algorithm", "context", "KV MiB", "xfer (us)",
                 "xfer GB/s", "TTFT (us)"],
        rows=rows,
        expectations=expectations,
        notes=[
            "KV cache = 2 * layers * context * hidden words; the hand-off "
            "sits on the time-to-first-token path (disaggregated serving)",
        ],
    )
