"""Fabric-scale failure domains: hard faults, failover, and recovery.

The paper measures one-sided transports on a *healthy* fabric; at
datacenter scale the fabric is never entirely healthy — Slingshot-class
networks lose routers and NICs routinely and survive through re-routing
plus job-level checkpoint/restart.  This experiment asks the follow-on
question on the reproduced stack: **when a router hard-fails mid-run,
what does each layer of the resilience story buy?**  Two sweeps on one
8-node dragonfly cluster:

* **victim** — a 2-rank latency probe pinned across the fabric
  (``n2 -> n6``) while router ``g1r0`` on its minimal path dies mid-run.
  Under :class:`~repro.net.MinimalRouting` the probe's transfers retry
  into the dead link until the retry budget exhausts and the job dies
  with a :class:`~repro.faults.FaultError`; under
  :class:`~repro.net.FailoverRouting` the detector confirms the link
  dead after two drop detections, invalidates the path caches, and
  re-routes around the corpse — the job completes with a bounded p99
  inflation.  With no fault injected the failover rows are bit-identical
  to minimal (the policy fast-paths to the cached minimal routes).
* **train** — a 4-rank recoverable training job
  (:func:`~repro.cluster.run_recoverable_training`) while router
  ``g0r0`` dies mid-step-8.  Placement picks the blast radius (packed
  n0-n3 loses two ranks behind g0r0; scattered n0/n2/n4/n6 loses one);
  the checkpoint interval picks the replay bill — time-to-recovery
  grows monotonically in the interval, while with *no* failure the
  shorter intervals are pure overhead.  A second cascading failure
  (node ``n4``, the first respawn target) is also survived.

Everything is a pure function of (seed, clock): rows are bit-identical
across runs, and CI diffs two back-to-back executions.
"""

from __future__ import annotations

import math

from repro.cluster import (
    Cluster,
    RecoveryConfig,
    attach_victim,
    run_recoverable_training,
    sample_quantile,
)
from repro.experiments.report import ExperimentReport
from repro.faults import FaultError, FaultPlan, NodeFaults, RouterFaults
from repro.net import FailoverRouting
from repro.sweep import SweepSpec, run_sweep
from repro.workloads.ml import RecoverableTrainingSpec

__all__ = ["run_resilience"]

_MACHINE = "perlmutter-cpu-x8@dragonfly(4,2,2)"
_SEED = 7

_VICTIM_MSGS = 200
_VICTIM_NODES = ["n2", "n6"]  # minimal path crosses g0r0 and g1r0
_VICTIM_KILL = 150e-6  # router g1r0 dies mid-probe

_TRAIN_RANKS = 4
_TRAIN_KILL = 660e-6  # router g0r0 dies during step 8 (of 12)
_TRAIN_KILL2 = 1500e-6  # cascading: node n4 (first spare) dies too
_PACKED_NODES = ["n0", "n1", "n2", "n3"]  # all four behind g0r0/g0r1
_SCATTERED_NODES = ["n0", "n2", "n4", "n6"]  # one node per router


def _victim_point(params):
    samples: list[float] = []
    plan = None
    if params["fault"]:
        plan = FaultPlan(
            hard=(RouterFaults("g1r0", windows=((_VICTIM_KILL, math.inf),)),)
        )
    cluster = Cluster(
        params["machine"],
        routing=FailoverRouting() if params["routing"] == "failover" else None,
        seed=params["seed"],
        faults=plan,
    )
    cluster.submit(
        "victim",
        attach_victim(samples, nmsgs=_VICTIM_MSGS),
        nranks=2,
        runtime="one_sided",
        nodes=list(_VICTIM_NODES),
    )
    completed = True
    try:
        cluster.run()
    except FaultError:
        completed = False
    routing = cluster.fabric.routing
    stats = (
        routing.stats()
        if routing is not None and hasattr(routing, "stats")
        else {}
    )
    return {
        "completed": completed,
        "nmsgs": len(samples),
        "p50": sample_quantile(samples, 0.50) if samples else math.nan,
        "p99": sample_quantile(samples, 0.99) if samples else math.nan,
        "failovers": int(stats.get("failovers", 0)),
    }


def _train_point(params):
    hard = [RouterFaults("g0r0", windows=((_TRAIN_KILL, math.inf),))]
    if params["faults"] >= 2:
        hard.append(NodeFaults("n4", windows=((_TRAIN_KILL2, math.inf),)))
    plan = FaultPlan(hard=tuple(hard)) if params["faults"] else None
    cluster = Cluster(
        params["machine"],
        routing=FailoverRouting(),
        seed=params["seed"],
        faults=plan,
    )
    nodes = _PACKED_NODES if params["placement"] == "packed" else _SCATTERED_NODES
    result = run_recoverable_training(
        cluster,
        RecoverableTrainingSpec(),
        nranks=_TRAIN_RANKS,
        config=RecoveryConfig(
            checkpoint_interval=params["interval"],
            checkpoint_cost=params["ckpt_cost"],
        ),
        nodes=list(nodes),
    )
    return {
        "completed": result.completed,
        "failures": result.failures,
        "blast": result.blast_radius,
        "restarts": result.restarts,
        "replayed": result.replayed_steps,
        "recovery": result.recovery_seconds,
        "makespan": result.makespan,
    }


def _point(params, seed):
    if params["mode"] == "victim":
        return _victim_point(params)
    return _train_point(params)


def _spec() -> SweepSpec:
    points = [
        {
            "mode": "victim",
            "machine": _MACHINE,
            "routing": routing,
            "fault": fault,
            "seed": _SEED,
        }
        for routing in ("minimal", "failover")
        for fault in (False, True)
    ]
    # Blast radius + cascade: packed vs scattered, 1 vs 2 failures.
    points += [
        {
            "mode": "train",
            "machine": _MACHINE,
            "placement": placement,
            "interval": 2,
            "ckpt_cost": 0.0,
            "faults": faults,
            "seed": _SEED,
        }
        for placement, faults in (
            ("packed", 1),
            ("scattered", 1),
            ("packed", 2),
        )
    ]
    # Time-to-recovery vs checkpoint interval (cost 0 keeps the failure
    # landing at the same simulated instant for every interval).
    points += [
        {
            "mode": "train",
            "machine": _MACHINE,
            "placement": "packed",
            "interval": interval,
            "ckpt_cost": 0.0,
            "faults": 1,
            "seed": _SEED,
        }
        for interval in (1, 4)
    ]
    # Checkpoint overhead with no failure: the insurance premium.
    points += [
        {
            "mode": "train",
            "machine": _MACHINE,
            "placement": "packed",
            "interval": interval,
            "ckpt_cost": 20e-6,
            "faults": 0,
            "seed": _SEED,
        }
        for interval in (1, 4)
    ]
    return SweepSpec(name="resilience", runner=_point, points=points)


def _train_key(params) -> tuple:
    return (
        params["placement"],
        params["interval"],
        params["ckpt_cost"],
        params["faults"],
    )


def run_resilience() -> ExperimentReport:
    sweep = run_sweep(_spec())
    victims: dict[tuple, dict] = {}
    trains: dict[tuple, dict] = {}
    for r in sweep:
        if r.params["mode"] == "victim":
            victims[(r.params["routing"], r.params["fault"])] = r.value
        else:
            trains[_train_key(r.params)] = r.value

    headers = [
        "job", "routing", "placement", "faults", "ckpt", "completed",
        "p99 (us)", "blast", "replayed", "recovery (us)", "makespan (us)",
    ]
    rows = []
    for routing in ("minimal", "failover"):
        for fault in (False, True):
            v = victims[(routing, fault)]
            rows.append(
                [
                    "victim",
                    routing,
                    "pinned n2/n6",
                    "g1r0" if fault else "none",
                    "-",
                    "yes" if v["completed"] else "NO",
                    round(v["p99"] * 1e6, 4) if v["nmsgs"] else "-",
                    "-",
                    "-",
                    "-",
                    "-",
                ]
            )
    for key in sorted(trains, key=lambda k: (k[3], k[0], k[1], k[2])):
        placement, interval, cost, faults = key
        t = trains[key]
        fault_desc = {0: "none", 1: "g0r0", 2: "g0r0+n4"}[faults]
        rows.append(
            [
                "train",
                "failover",
                placement,
                fault_desc,
                f"k={interval}" + ("" if cost else " free"),
                "yes" if t["completed"] else "NO",
                "-",
                t["blast"],
                t["replayed"],
                round(t["recovery"] * 1e6, 3),
                round(t["makespan"] * 1e6, 3),
            ]
        )

    v_min_clean = victims[("minimal", False)]
    v_fo_clean = victims[("failover", False)]
    v_min_kill = victims[("minimal", True)]
    v_fo_kill = victims[("failover", True)]
    t_packed = trains[("packed", 2, 0.0, 1)]
    t_scattered = trains[("scattered", 2, 0.0, 1)]
    t_cascade = trains[("packed", 2, 0.0, 2)]
    rec = [trains[("packed", k, 0.0, 1)]["recovery"] for k in (1, 2, 4)]
    oh = [trains[("packed", k, 20e-6, 0)]["makespan"] for k in (1, 4)]
    expectations = {
        "a single router failure kills the victim under minimal routing": (
            not v_min_kill["completed"]
        ),
        "the same failure completes under failover routing": (
            v_fo_kill["completed"]
            and v_fo_kill["nmsgs"] == _VICTIM_MSGS
            and v_fo_kill["failovers"] >= 1
        ),
        "failover p99 inflation is bounded (<= 2x the no-fault tail)": (
            v_fo_kill["p99"] <= 2.0 * v_fo_clean["p99"]
        ),
        "zero-fault failover rows are bit-identical to minimal": (
            v_fo_clean == v_min_clean
        ),
        "packed placement doubles the blast radius of scattered": (
            t_packed["blast"] == 2 and t_scattered["blast"] == 1
        ),
        "every training job completes despite the failures": all(
            t["completed"] for t in trains.values()
        ),
        "time-to-recovery grows monotonically in the checkpoint interval": (
            rec[0] < rec[1] < rec[2]
        ),
        "with no failure, frequent checkpoints are pure overhead": (
            oh[0] > oh[1]
        ),
        "a cascading second failure is survived with more restarts": (
            t_cascade["failures"] == 2
            and t_cascade["restarts"] > t_packed["restarts"]
        ),
    }

    notes = [
        f"machine {_MACHINE}: 8 nodes, 2 per router, on a 4-group "
        "dragonfly; seed {0} — rows are bit-identical across runs".format(
            _SEED
        ),
        f"victim: 2 ranks pinned to n2/n6, {_VICTIM_MSGS} timed 8 B "
        f"put+flush round trips; router g1r0 (on the minimal path) dies "
        f"at {_VICTIM_KILL * 1e6:.0f} us",
        "train: 4 ranks x 12 steps of ring-allreduce DDP; router g0r0 "
        f"dies at {_TRAIN_KILL * 1e6:.0f} us (mid-step 8), killing every "
        "node behind it — recovery drains, respawns on spares, replays "
        "from the last checkpoint",
        "'k=N free' rows write zero-cost checkpoints every N steps so "
        "time-to-recovery isolates the replay bill; the faults=none rows "
        "price the same checkpoints at 20 us each",
    ]
    return ExperimentReport(
        experiment="resilience",
        title="Failure domains: failover routing and checkpoint/restart",
        headers=headers,
        rows=rows,
        expectations=expectations,
        notes=notes,
    )
