"""ASCII rendering of roofline plots for terminal reports.

No plotting stack is assumed offline; every figure bench prints its series
as (a) a numeric table and (b) an ASCII log-log chart from this module, so
shapes (diagonal latency ceilings, the horizontal bandwidth ceiling, where
dots sit against them) are inspectable in the pytest output.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["ascii_loglog", "Series"]


class Series:
    """One plottable series: points plus a single-character marker."""

    def __init__(
        self, label: str, points: Sequence[tuple[float, float]], marker: str = "*"
    ):
        if len(marker) != 1:
            raise ValueError(f"marker must be one character, got {marker!r}")
        self.label = label
        self.points = [(float(x), float(y)) for x, y in points]
        self.marker = marker


def _log_ticks(lo: float, hi: float) -> list[float]:
    lo_e = math.floor(math.log10(lo))
    hi_e = math.ceil(math.log10(hi))
    return [10.0**e for e in range(lo_e, hi_e + 1)]


def ascii_loglog(
    series: Sequence[Series],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render series on a log-log grid of ``width`` x ``height`` characters."""
    pts = [(x, y) for s in series for x, y in s.points if x > 0 and y > 0]
    if not pts:
        raise ValueError("nothing to plot: no positive points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_lo == x_hi:
        x_lo, x_hi = x_lo / 2, x_hi * 2
    if y_lo == y_hi:
        y_lo, y_hi = y_lo / 2, y_hi * 2
    lx_lo, lx_hi = math.log10(x_lo), math.log10(x_hi)
    ly_lo, ly_hi = math.log10(y_lo), math.log10(y_hi)

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, ch: str) -> None:
        cx = int(round((math.log10(x) - lx_lo) / (lx_hi - lx_lo) * (width - 1)))
        cy = int(round((math.log10(y) - ly_lo) / (ly_hi - ly_lo) * (height - 1)))
        cx = min(max(cx, 0), width - 1)
        cy = min(max(cy, 0), height - 1)
        row = height - 1 - cy
        grid[row][cx] = ch

    for s in series:
        for x, y in s.points:
            if x > 0 and y > 0:
                place(x, y, s.marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (log axis, {y_lo:.3g} .. {y_hi:.3g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} (log axis, {x_lo:.3g} .. {x_hi:.3g})")
    legend = "  ".join(f"{s.marker}={s.label}" for s in series)
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
