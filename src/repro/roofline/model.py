"""The Message Roofline Model (paper §II) — the core contribution.

Characterises sustained messaging bandwidth (bytes/s) as a function of

* message size ``B`` (bytes),
* **messages per synchronization** ``n`` (the paper's new axis),
* peak network bandwidth (``1/G``),
* network latency ``L`` and software overhead ``o``.

Two variants, as in the paper's Fig. 1:

* the **sharp** model ``n*B / max(n*o, n*max(g, B*G), L)`` — perfect overlap
  of everything that can overlap; the junction between the diagonal
  (latency) and horizontal (bandwidth) ceilings is "an ideal region one can
  never practically reach";
* the **rounded** model, where per-message overhead is serial::

      T(n, B) = n*o + (n-1)*max(g, B*G) + B*G + L

  i.e. the sender pays ``o`` per message, injections are spaced by the gap
  or the transmission time (whichever dominates — LogGP's statement that
  ``g`` cannot be overlapped), the last message streams out and the wire
  latency is paid once at the tail.

At ``n = 1`` the rounded model reduces to the paper's
``B / (o + L + B*G)`` ~= ``B / (o + max(L, B*G))`` form, and as ``n`` grows
the achieved bandwidth approaches ``min(B / max(g, o), 1/G)`` — the
latency is overlapped but the gap and overhead are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.net.loggp import LogGPParams

__all__ = ["MessageRoofline", "RooflineSeries"]


@dataclass(frozen=True)
class RooflineSeries:
    """One plotted curve: bandwidth vs message size at fixed msg/sync."""

    label: str
    msgs_per_sync: int
    sizes: np.ndarray  # bytes
    bandwidth: np.ndarray  # bytes/s


@dataclass(frozen=True)
class MessageRoofline:
    """Analytic Message Roofline for one (machine, runtime, path) triple."""

    params: LogGPParams
    name: str = "roofline"

    # -- core model ------------------------------------------------------------

    def time(
        self, nbytes, msgs_per_sync: int = 1, *, sharp: bool = False
    ) -> np.ndarray:
        """Time to complete one synchronization batch (vectorised in B)."""
        B = np.asarray(nbytes, dtype=float)
        if np.any(B < 0):
            raise ValueError("message sizes must be >= 0")
        n = int(msgs_per_sync)
        if n < 1:
            raise ValueError(f"msgs_per_sync must be >= 1, got {msgs_per_sync}")
        p = self.params
        spacing = np.maximum.reduce(
            [np.full_like(B, p.o), np.full_like(B, p.g), B * p.G]
        )
        if sharp:
            return np.maximum(n * spacing, np.full_like(B, p.L + p.o_sync))
        return p.o + (n - 1) * spacing + B * p.G + p.L + p.o_sync

    def bandwidth(
        self, nbytes, msgs_per_sync: int = 1, *, sharp: bool = False
    ) -> np.ndarray:
        """Sustained bandwidth of the batch: ``n*B / T(n, B)``."""
        B = np.asarray(nbytes, dtype=float)
        if np.any(B <= 0):
            raise ValueError("bandwidth requires positive message sizes")
        n = int(msgs_per_sync)
        return n * B / self.time(B, n, sharp=sharp)

    def latency_per_message(self, nbytes, msgs_per_sync: int = 1) -> np.ndarray:
        """Effective per-message latency ``T / n`` (the paper's Fig. 7 metric:
        more messages per sync => lower effective latency)."""
        n = int(msgs_per_sync)
        return self.time(nbytes, n) / n

    # -- ceilings ----------------------------------------------------------------

    @property
    def peak_bandwidth(self) -> float:
        """The horizontal ceiling, ``1/G`` (bytes/s)."""
        return self.params.peak_bandwidth

    def saturation_bandwidth(self, nbytes) -> np.ndarray:
        """Large-``n`` limit: ``B / max(o, g, B*G)`` — what infinite message
        concurrency buys; the gap/overhead term is the part that can never
        be overlapped."""
        B = np.asarray(nbytes, dtype=float)
        p = self.params
        return B / np.maximum.reduce(
            [np.full_like(B, p.o), np.full_like(B, p.g), B * p.G]
        )

    def knee_size(self, msgs_per_sync: int = 1) -> float:
        """Message size where the diagonal (latency) ceiling of the sharp
        model meets the horizontal (bandwidth) ceiling:
        ``n * B * G = max(n*o, n*g, L + o_sync)``."""
        n = int(msgs_per_sync)
        p = self.params
        return max(n * p.o, n * p.g, p.L + p.o_sync) / (n * p.G)

    # -- msg/sync implications -----------------------------------------------------

    def overlap_gain(self, nbytes, msgs_per_sync: int) -> np.ndarray:
        """Bandwidth improvement over serialized messages:
        ``BW(B, n) / BW(B, 1)`` — the paper's "at maximum you can get 10x
        improvement by sending one hundred messages per sync when L >> G"."""
        return self.bandwidth(nbytes, msgs_per_sync) / self.bandwidth(nbytes, 1)

    def required_msgs_per_sync(
        self, nbytes: float, target_fraction: float
    ) -> int | None:
        """Smallest msg/sync reaching ``target_fraction`` of the large-n
        limit bandwidth for this message size — the paper's "how much
        optimization room do I have by overlapping messages", inverted.

        Returns None when the target exceeds what any concurrency can buy
        (i.e. ``target_fraction`` of peak is above the saturation
        bandwidth ``B / max(o, g, B*G)``).
        """
        if not 0 < target_fraction <= 1:
            raise ValueError(
                f"target_fraction must be in (0, 1], got {target_fraction}"
            )
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        target = target_fraction * float(self.saturation_bandwidth(nbytes))
        if float(self.bandwidth(nbytes, 1)) >= target:
            return 1
        # T(n) = n*spacing + C with C the fixed terms, so n solves directly.
        p = self.params
        spacing = max(p.o, p.g, nbytes * p.G)
        fixed = p.o - spacing + nbytes * p.G + p.L + p.o_sync
        # n*B/ (n*spacing + fixed) >= target
        denom = nbytes - target * spacing
        if denom <= 0:
            return None
        n = int(np.ceil(target * fixed / denom))
        return max(n, 1)

    def max_overlap_gain(self, nbytes) -> np.ndarray:
        """The ``n -> inf`` limit of :meth:`overlap_gain`."""
        B = np.asarray(nbytes, dtype=float)
        p = self.params
        t1 = p.o + B * p.G + p.L + p.o_sync
        tinf = np.maximum.reduce(
            [np.full_like(B, p.o), np.full_like(B, p.g), B * p.G]
        )
        return t1 / tinf

    # -- plot data ----------------------------------------------------------------

    def series(
        self,
        sizes: Sequence[float],
        msgs_per_sync: Sequence[int] = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000),
        *,
        sharp: bool = False,
    ) -> list[RooflineSeries]:
        """Bandwidth-vs-size curves, one per msg/sync value (Fig. 1 family)."""
        sizes_arr = np.asarray(list(sizes), dtype=float)
        out = []
        for n in msgs_per_sync:
            out.append(
                RooflineSeries(
                    label=f"{n} msg/sync",
                    msgs_per_sync=int(n),
                    sizes=sizes_arr,
                    bandwidth=self.bandwidth(sizes_arr, int(n), sharp=sharp),
                )
            )
        return out

    def bound(self, nbytes: float, msgs_per_sync: int = 1) -> dict[str, float]:
        """Point query used by the Fig. 6 workload-bound plots."""
        bw = float(self.bandwidth(nbytes, msgs_per_sync))
        return {
            "message_size": float(nbytes),
            "msgs_per_sync": float(msgs_per_sync),
            "bound_bandwidth": bw,
            "bound_time_per_sync": float(self.time(nbytes, msgs_per_sync)),
            "bound_latency_per_message": float(
                self.latency_per_message(nbytes, msgs_per_sync)
            ),
            "peak_bandwidth": self.peak_bandwidth,
            "fraction_of_peak": bw / self.peak_bandwidth,
        }
