"""Workload communication bounds (paper Fig. 6).

Given a workload's instrumented communication profile — its message-size
distribution and messages per synchronization — place it on the Message
Roofline of a machine/runtime and report the bound and the headroom, as the
paper does for HashTable, Stencil and SpTRSV on Perlmutter CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.machines.base import MachineModel
from repro.roofline.model import MessageRoofline

__all__ = ["WorkloadProfile", "WorkloadBound", "bound_workload"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Communication profile of one workload (a Table II row, measured)."""

    name: str
    message_sizes: tuple[float, ...]  # bytes, the tested sizes (Fig. 6 verticals)
    msgs_per_sync: float
    sided: str  # "two" | "one" | "shmem"
    ops_per_message: int

    def __post_init__(self) -> None:
        if not self.message_sizes:
            raise ValueError("profile needs at least one message size")
        if any(b <= 0 for b in self.message_sizes):
            raise ValueError("message sizes must be positive")
        if self.msgs_per_sync < 1:
            raise ValueError("msgs_per_sync must be >= 1")


@dataclass(frozen=True)
class WorkloadBound:
    """Roofline placement of one workload on one machine/runtime."""

    profile: WorkloadProfile
    machine: str
    runtime: str
    roofline: MessageRoofline
    bound_bandwidth: tuple[float, ...]  # per tested size
    time_per_sync: tuple[float, ...]
    peak_bandwidth: float

    def rows(self) -> list[dict[str, float]]:
        out = []
        n = max(int(round(self.profile.msgs_per_sync)), 1)
        for B, bw, t in zip(
            self.profile.message_sizes, self.bound_bandwidth, self.time_per_sync
        ):
            out.append(
                {
                    "message_size_B": B,
                    "msgs_per_sync": n,
                    "bound_GBps": bw / 1e9,
                    "time_per_sync_us": t * 1e6,
                    "fraction_of_peak": bw / self.peak_bandwidth,
                }
            )
        return out


def bound_workload(
    machine: MachineModel,
    runtime: str,
    profile: WorkloadProfile,
    *,
    src: int = 0,
    dst: int = 1,
    nranks: int = 2,
) -> WorkloadBound:
    """Place ``profile`` on the machine's Message Roofline.

    The LogGP parameters come from the machine model via
    :meth:`~repro.machines.base.MachineModel.loggp`, using the workload's
    sidedness to pick the op accounting (2 ops two-sided, 4 ops one-sided
    CPU, 1 fused op GPU).
    """
    params = machine.loggp(
        runtime,
        src,
        dst,
        nranks=nranks,
        placement="spread",
        ops_per_message=profile.ops_per_message,
        sided=profile.sided,
    )
    roofline = MessageRoofline(params, name=f"{machine.name}/{runtime}")
    n = max(int(round(profile.msgs_per_sync)), 1)
    sizes = np.asarray(profile.message_sizes, dtype=float)
    bw = roofline.bandwidth(sizes, n)
    t = roofline.time(sizes, n)
    return WorkloadBound(
        profile=profile,
        machine=machine.name,
        runtime=runtime,
        roofline=roofline,
        bound_bandwidth=tuple(float(v) for v in np.atleast_1d(bw)),
        time_per_sync=tuple(float(v) for v in np.atleast_1d(t)),
        peak_bandwidth=roofline.peak_bandwidth,
    )


def profile_from_counters(
    name: str,
    counters,
    *,
    sided: str,
    sizes: Sequence[float] | None = None,
) -> WorkloadProfile:
    """Derive a :class:`WorkloadProfile` from a job's merged
    :class:`~repro.comm.base.OpCounter` (measured, not assumed)."""
    msgs_per_sync = counters.msg_per_sync()
    if not np.isfinite(msgs_per_sync) or msgs_per_sync < 1:
        msgs_per_sync = 1.0
    if sizes is None:
        mean = (
            counters.bytes_sent / counters.messages if counters.messages else 8.0
        )
        sizes = (max(mean, 1.0),)
    ops = counters.ops_per_message()
    return WorkloadProfile(
        name=name,
        message_sizes=tuple(float(s) for s in sizes),
        msgs_per_sync=float(msgs_per_sync),
        sided=sided,
        ops_per_message=int(ops) if np.isfinite(ops) else 1,
    )
