"""Fitting LogGP parameters from measured (size, msg/sync, bandwidth) data.

The paper's diagonal "latency" ceilings are *inferred from empirical data*;
this module does the same inference: given sweep measurements (from the
simulator, or in principle a real machine), recover ``(L, o, g, G)`` by
least squares on log-bandwidth.

Log space matters: bandwidths span four orders of magnitude across a sweep,
and a linear-space fit would only see the large-message points.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.net.loggp import LogGPParams

__all__ = ["FloodSample", "fit_loggp", "FitResult"]


@dataclass(frozen=True)
class FloodSample:
    """One sweep measurement: a batch of ``msgs_per_sync`` messages of
    ``nbytes`` each achieved ``bandwidth`` bytes/s."""

    nbytes: float
    msgs_per_sync: int
    bandwidth: float


@dataclass(frozen=True)
class FitResult:
    """Fitted parameters plus goodness-of-fit diagnostics."""

    params: LogGPParams
    residual_rms: float  # RMS of log-space residuals
    n_samples: int

    @property
    def max_relative_error(self) -> float:
        """Worst-case multiplicative error implied by the residual RMS."""
        return float(np.expm1(self.residual_rms))


def _model_bandwidth(theta: np.ndarray, B: np.ndarray, n: np.ndarray) -> np.ndarray:
    L, o, g, G = theta
    spacing = np.maximum.reduce([np.full_like(B, o), np.full_like(B, g), B * G])
    t = o + (n - 1) * spacing + B * G + L
    return n * B / t


def fit_loggp(
    samples: Sequence[FloodSample],
    *,
    peak_bandwidth_hint: float | None = None,
) -> FitResult:
    """Fit the rounded Message Roofline's ``(L, o, g, G)`` to measurements.

    Args:
        samples: at least four measurements spanning several message sizes
            and msg/sync values (a degenerate sweep cannot identify four
            parameters).
        peak_bandwidth_hint: optional starting point for ``1/G``.

    Returns:
        A :class:`FitResult`; ``result.params`` plugs straight into
        :class:`~repro.roofline.model.MessageRoofline`.
    """
    samples = list(samples)
    if len(samples) < 4:
        raise ValueError(f"need >= 4 samples to fit 4 parameters, got {len(samples)}")
    B = np.array([s.nbytes for s in samples], dtype=float)
    n = np.array([s.msgs_per_sync for s in samples], dtype=float)
    bw = np.array([s.bandwidth for s in samples], dtype=float)
    if np.any(B <= 0) or np.any(n < 1) or np.any(bw <= 0):
        raise ValueError("samples must have positive sizes/bandwidths and n >= 1")

    bw_peak0 = peak_bandwidth_hint if peak_bandwidth_hint else float(bw.max()) * 1.2
    # Initial guess: latency from the smallest single-message sample.
    n1 = (n == n.min()) & (B == B.min())
    t_small = float((B[n1] * n[n1] / bw[n1]).mean()) if np.any(n1) else 3e-6
    lower = np.array([1e-9, 1e-9, 1e-9, 1e-13])
    upper = np.array([1e-2, 1e-2, 1e-2, 1e-6])

    def residuals(theta: np.ndarray) -> np.ndarray:
        return np.log(_model_bandwidth(theta, B, n)) - np.log(bw)

    # The surface has local minima (L trades against o around the n=1
    # points), so run a small multi-start over latency/overhead splits.
    starts = []
    for l_frac, o_frac in ((0.7, 0.1), (0.5, 0.25), (0.3, 0.5), (0.85, 0.05)):
        starts.append(
            np.array(
                [l_frac * t_small, o_frac * t_small, 0.1 * t_small, 1.0 / bw_peak0]
            )
        )
    best = None
    for theta0 in starts:
        sol = least_squares(
            residuals,
            np.clip(theta0, lower, upper),
            bounds=(lower, upper),
            method="trf",
            xtol=1e-14,
            ftol=1e-14,
        )
        if best is None or sol.cost < best.cost:
            best = sol
    L, o, g, G = best.x
    rms = float(np.sqrt(np.mean(best.fun**2)))
    return FitResult(
        params=LogGPParams(L=float(L), o=float(o), g=float(g), G=float(G)),
        residual_rms=rms,
        n_samples=len(samples),
    )
