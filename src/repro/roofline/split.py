"""Message-splitting analysis (paper Fig. 10 and §V "Discussion").

Fig. 10 is a Message Roofline *variant*: the x-axis is message **volume**
``V = k * B`` (number of messages times per-message size), and the question
is whether sending a volume as ``k`` concurrent smaller messages beats one
big message.  On Perlmutter GPUs the answer is yes for V > 131 KB, by up to
2.9x, because a GPU pair is connected by a *group* of NVLink ports: one
message streams over a single port while ``k`` messages stripe across ``k``
ports, limited by the device's aggregate injection rate.

The analytic model here mirrors the fabric simulation
(``repro.net``): chunk ``i`` (0-based) leaves the injection engine at
``i * (V/k) * G_inj``, then streams over its own sub-channel::

    T(k) = k*o + (k-1) * (V/k) * G_inj + L + (V/k) * G_chan

with ``G_chan`` the per-byte time of one sub-channel and ``G_inj`` of the
injection engine.  ``k = 1`` recovers the single-message time
``o + L + V * G_chan``.  For ``channels`` available sub-channels the model
caps striping at that width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport import SHMEM
from repro.util.validation import check_non_negative, check_positive

__all__ = ["SplitModel"]


@dataclass(frozen=True)
class SplitModel:
    """Analytic split-message timing for a multi-channel connection.

    Attributes:
        o: per-message software issue overhead (seconds).
        L: one-way wire latency (seconds).
        channel_bandwidth: bytes/s of one sub-channel.
        injection_bandwidth: bytes/s of the endpoint's injection engine.
        channels: number of sub-channels available to stripe across.
    """

    o: float
    L: float
    channel_bandwidth: float
    injection_bandwidth: float
    channels: int = 4
    # Receiver-side wake-and-recheck cost per extra chunk: the receiver's
    # wait_until_all re-scans its signals at each chunk arrival.
    wait_poll: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative("o", self.o)
        check_non_negative("L", self.L)
        check_positive("channel_bandwidth", self.channel_bandwidth)
        check_positive("injection_bandwidth", self.injection_bandwidth)
        check_non_negative("wait_poll", self.wait_poll)
        if self.channels < 1:
            raise ValueError(f"channels must be >= 1, got {self.channels}")

    @classmethod
    def from_machine(cls, machine, src: str, dst: str, runtime: str = SHMEM) -> "SplitModel":
        """Build from a machine's topology and runtime profile."""
        from repro.transport.registry import get_backend

        link = machine.topology.link_params(src, dst)
        inj = machine.topology.injection.get(src)
        backend = get_backend(runtime)
        costs = machine.runtime(backend.resolve_costs_key())
        # Capability branch, not a name check: fused single-op runtimes
        # (put-with-signal families) issue via put_signal, two-sided and
        # 4-op one-sided emulations via isend.
        caps = backend.caps
        fused = caps.gpu_initiated or caps.ops_per_message == 1
        o = costs.put_signal if fused else costs.isend
        return cls(
            o=o,
            L=link.latency,
            channel_bandwidth=link.channel_bandwidth,
            injection_bandwidth=inj.bandwidth if inj else float("inf"),
            channels=link.channels,
            wait_poll=costs.wait_poll,
        )

    def time(self, volume, k: int = 1) -> np.ndarray:
        """Time to move ``volume`` bytes as ``k`` concurrent messages."""
        V = np.asarray(volume, dtype=float)
        if np.any(V < 0):
            raise ValueError("volume must be >= 0")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        width = min(k, self.channels)
        chunk = V / k
        g_inj = 1.0 / self.injection_bandwidth
        g_chan = 1.0 / self.channel_bandwidth
        if k == 1:
            return self.o + self.L + V * g_chan
        # Chunks are injected back to back; with stripe width < k, a chunk
        # beyond the width also waits for its sub-channel, so the effective
        # serial term is the larger of injection spacing and channel reuse.
        inj_spacing = chunk * g_inj
        chan_serial = np.where(
            k > width, (np.ceil(k / width) - 1) * chunk * g_chan, 0.0
        )
        serial = np.maximum((k - 1) * inj_spacing, chan_serial)
        return (
            k * self.o
            + serial
            + self.L
            + chunk * g_chan
            + (k - 1) * self.wait_poll
        )

    def bandwidth(self, volume, k: int = 1) -> np.ndarray:
        V = np.asarray(volume, dtype=float)
        if np.any(V <= 0):
            raise ValueError("bandwidth requires positive volume")
        return V / self.time(V, k)

    def speedup(self, volume, k: int = 4) -> np.ndarray:
        """``T(1) / T(k)`` — the paper's Fig. 10 y-axis-equivalent."""
        return self.time(volume, 1) / self.time(volume, k)

    def asymptotic_speedup(self, k: int = 4) -> float:
        """Large-volume limit of :meth:`speedup` (the 'up to' figure).

        With injection spacing dominating: ``T(k) -> V*((k-1)/k*G_inj +
        G_chan/k)`` against ``T(1) -> V*G_chan``.
        """
        width = min(k, self.channels)
        g_inj = 1.0 / self.injection_bandwidth
        g_chan = 1.0 / self.channel_bandwidth
        per_byte_split = max(
            (k - 1) / k * g_inj, (np.ceil(k / width) - 1) / k * g_chan
        ) + g_chan / k
        return float(g_chan / per_byte_split)

    def crossover_volume(self, k: int = 4, *, threshold: float = 1.0) -> float:
        """Smallest volume where splitting into ``k`` beats one message by
        ``threshold`` (paper: ~131 KB for speedup > 1 on Perlmutter GPUs).

        Found by bisection on the monotone speedup curve.
        """
        lo, hi = 8.0, 1 << 40
        if float(self.speedup(hi, k)) <= threshold:
            return float("inf")
        if float(self.speedup(lo, k)) > threshold:
            return lo
        for _ in range(200):
            mid = np.sqrt(lo * hi)  # geometric bisection on a log scale
            if float(self.speedup(mid, k)) > threshold:
                hi = mid
            else:
                lo = mid
            if hi / lo < 1.0001:
                break
        return float(hi)
