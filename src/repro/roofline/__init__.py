"""The Message Roofline Model — the paper's primary contribution.

* :class:`MessageRoofline` — sharp & rounded analytic models over (message
  size, messages per synchronization);
* :func:`fit_loggp` — infer the ceilings from empirical sweep data;
* :class:`SplitModel` — message-splitting analysis (Fig. 10);
* :func:`bound_workload` — place an instrumented workload on the roofline
  (Fig. 6);
* :func:`ascii_loglog` — terminal rendering of the plots.
"""

from repro.roofline.bounds import (
    WorkloadBound,
    WorkloadProfile,
    bound_workload,
    profile_from_counters,
)
from repro.roofline.fit import FitResult, FloodSample, fit_loggp
from repro.roofline.model import MessageRoofline, RooflineSeries
from repro.roofline.render import Series, ascii_loglog
from repro.roofline.split import SplitModel

__all__ = [
    "MessageRoofline",
    "RooflineSeries",
    "FitResult",
    "FloodSample",
    "fit_loggp",
    "SplitModel",
    "WorkloadBound",
    "WorkloadProfile",
    "bound_workload",
    "profile_from_counters",
    "Series",
    "ascii_loglog",
]
