"""Multi-tenant co-scheduling: several jobs sharing one fabric.

A :class:`Cluster` owns a single simulator and a single
:class:`~repro.net.fabric.Fabric` over a (usually multi-node) machine;
:meth:`Cluster.submit` places each job's ranks onto compute endpoints with a
placement policy (``packed`` / ``scattered`` / ``random``) and
:meth:`Cluster.run` drives every job's rank programs in one simulation — so
a victim workload's latency can be measured while a bully floods the shared
links (`experiments/interference.py`).

When the cluster's fault plan kills fabric elements outright
(:class:`~repro.faults.RouterFaults` and friends),
:func:`run_recoverable_training` layers the job-level answer on top:
detect the failure, drain the dead nodes, respawn the lost ranks on
spares, and replay from the last checkpoint.
"""

from repro.cluster.recovery import (
    RecoveryConfig,
    RecoveryResult,
    run_recoverable_training,
)
from repro.cluster.scheduler import (
    PLACEMENTS,
    Cluster,
    PlacementLedger,
    place_ranks,
)
from repro.cluster.workloads import attach_bully, attach_victim, sample_quantile

__all__ = [
    "Cluster",
    "PLACEMENTS",
    "PlacementLedger",
    "RecoveryConfig",
    "RecoveryResult",
    "attach_bully",
    "attach_victim",
    "place_ranks",
    "run_recoverable_training",
    "sample_quantile",
]
