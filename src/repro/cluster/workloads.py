"""Victim and bully rank programs for interference studies.

Both are *program factories* in the :meth:`repro.cluster.Cluster.submit`
convention — called with the placed job, they allocate a window and return
the per-rank generator:

* :func:`attach_victim` — rank 0 issues small ``put``+``flush`` round trips
  to rank 1 at a fixed cadence and appends each one's completion latency to
  the caller's ``samples`` list (and, under an obs session, to the
  ``cluster.victim.latency_seconds`` histogram, whose p99/p999 surface in
  ``repro run --metrics``).
* :func:`attach_bully` — every rank floods large puts at the rank half the
  job away (with the scattered placements used in the interference
  experiment, that traffic crosses the shared fabric and queues on the
  victim's links).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Generator

from repro.comm.job import Job

__all__ = ["attach_victim", "attach_bully", "sample_quantile"]

# Victim latency histogram edges (seconds): fine decades around the
# microsecond round trips the victim sees.
_LATENCY_EDGES = (1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 1e-3)


def attach_victim(
    samples: list[float],
    *,
    nelems: int = 1,
    nmsgs: int = 200,
    spacing: float = 5e-6,
) -> Callable[[Job], Callable]:
    """Latency-probe job: ``nmsgs`` timed put+flush round trips, one every
    ``spacing`` seconds of think time, latencies appended to ``samples``."""

    def make(job: Job) -> Callable:
        win = job.window(max(nelems, 1))
        hist = None
        if job.metrics is not None:
            hist = job.metrics.histogram(
                "cluster.victim.latency_seconds", _LATENCY_EDGES
            )

        def program(ctx) -> Generator:
            h = win.handle(ctx)
            if ctx.rank == 0:
                for _ in range(nmsgs):
                    t0 = ctx.sim.now
                    yield from h.put(1, nelems=nelems)
                    yield from h.flush(1)
                    lat = ctx.sim.now - t0
                    samples.append(lat)
                    if hist is not None:
                        hist.observe(lat)
                    if spacing > 0:
                        yield from ctx.compute(seconds=spacing)
            else:
                yield from ctx.compute(seconds=0)

        return program

    return make


def attach_bully(
    *,
    nelems: int = 8192,
    nmsgs: int = 100,
    flush_every: int = 16,
) -> Callable[[Job], Callable]:
    """Flood job: every rank streams ``nmsgs`` puts of ``nelems`` doubles at
    the rank half the job away, flushing every ``flush_every`` puts."""

    def make(job: Job) -> Callable:
        win = job.window(max(nelems, 1))

        def program(ctx) -> Generator:
            h = win.handle(ctx)
            peer = (ctx.rank + max(ctx.size // 2, 1)) % ctx.size
            if peer == ctx.rank:
                yield from ctx.compute(seconds=0)
                return
            for i in range(nmsgs):
                yield from h.put(peer, nelems=nelems)
                if (i + 1) % flush_every == 0:
                    yield from h.flush(peer)
            yield from h.flush(peer)

        return program

    return make


def sample_quantile(samples: list[float], p: float) -> float:
    """Exact nearest-rank quantile of raw samples (NaN when empty)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, max(0, math.ceil(p * len(ordered)) - 1))]
