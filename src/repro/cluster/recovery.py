"""Checkpoint/restart recovery for training jobs on a failing fabric.

The fabric layer can now kill routers, nodes and NICs
(:class:`repro.faults.RouterFaults` et al.) and route around them
(:class:`repro.net.FailoverRouting`); this module adds the *job-level*
protocol that production ML schedulers run on top:

* **failure detection** — a transfer into a dead element surfaces as a
  :class:`~repro.faults.FaultError`; the job confirms the failure after
  ``detect_timeout`` (the ms-scale health-check consensus real
  schedulers pay before acting);
* **node drain** — every node behind the dead element is
  :meth:`drained <repro.cluster.scheduler.PlacementLedger.drain>` from
  the cluster ledger: it is neither free nor placeable again;
* **respawn on spares** — each lost rank is re-hosted on a spare node
  from the ledger (natural order, so the choice is deterministic),
  paying ``restart_cost``;
* **replay from the last checkpoint** — the job rolls its step counter
  back to the last checkpoint (written every ``checkpoint_interval``
  steps at ``checkpoint_cost`` each) and re-executes the lost steps.

The *placement policy decides the blast radius*: a packed job loses
every rank behind a dead router, a scattered job loses one.  Everything
is a pure function of the simulated history, so same-seed runs replay
bit-identically — ``experiments/resilience.py`` sweeps failure count x
placement x routing on exactly this runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.faults.hard import elements_down_at
from repro.faults.plan import _NODE_PREFIX, FaultError
from repro.workloads.ml.training import RecoverableTrainingSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.scheduler import Cluster, PlacementLedger

__all__ = ["RecoveryConfig", "RecoveryResult", "run_recoverable_training"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs of the checkpoint/restart protocol."""

    checkpoint_interval: int = 4  # steps between checkpoints
    checkpoint_cost: float = 20e-6  # seconds to write one checkpoint
    detect_timeout: float = 100e-6  # failure-confirmation delay
    restart_cost: float = 500e-6  # respawn + rejoin per recovery event
    straggler_factor: float = 3.0  # step slower than this x baseline
    max_restarts: int = 4  # recovery events before giving up

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        for name in ("checkpoint_cost", "detect_timeout", "restart_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")


@dataclass
class RecoveryResult:
    """What one recoverable training run went through."""

    completed: bool = False
    steps_done: int = 0
    failures: int = 0  # recovery events (confirmed hard failures)
    restarts: int = 0  # ranks respawned, total
    blast_radius: int = 0  # max ranks lost in one failure event
    checkpoints: int = 0
    replayed_steps: int = 0  # completed steps lost and re-executed
    stragglers: int = 0  # steps slower than straggler_factor x baseline
    recovery_seconds: float = 0.0  # failure -> caught-back-up, summed
    makespan: float = 0.0
    nodes: list[str] = field(default_factory=list)  # final hosting nodes
    events: list[str] = field(default_factory=list)


def _dead_job_nodes(plan, ledger: "PlacementLedger", t: float) -> set[str]:
    """The nodes unusable at time ``t`` under the plan's hard faults:
    their own node/NIC died, or their attachment router did."""
    dead: set[str] = set()
    for hf in elements_down_at(plan, t):
        if hf.kind == "node":
            dead.add(hf.element)
        elif hf.kind == "nic":
            m = _NODE_PREFIX.match(hf.element)
            if m is not None:
                dead.add(m.group(1))
        elif hf.kind == "router":
            for node, router in ledger.router.items():
                if router == hf.element:
                    dead.add(node)
    return dead


def run_recoverable_training(
    cluster: "Cluster",
    spec: RecoverableTrainingSpec | None = None,
    *,
    nranks: int,
    config: RecoveryConfig | None = None,
    placement: str | None = None,
    nodes: list[str] | None = None,
    name: str = "train",
) -> RecoveryResult:
    """Run one recoverable data-parallel training job to completion.

    Places ``nranks`` ranks through the cluster's ledger (``placement``
    defaults to the cluster's policy; ``nodes`` pins them), then drives
    ``spec.steps`` synchronous steps — per-rank compute plus a ring
    gradient exchange on the shared fabric — under the checkpoint/restart
    protocol of ``config``.  Owns the cluster's simulator run: call it on
    a cluster whose jobs you have not yet launched.

    A failure the fault plan cannot explain (no hard element is down when
    a transfer dies) is re-raised: soft-loss exhaustion is a fabric
    problem, not something respawning a node can fix.
    """
    from repro.cluster.scheduler import _node_of, place_ranks

    spec = spec if spec is not None else RecoverableTrainingSpec()
    config = config if config is not None else RecoveryConfig()
    sim = cluster.sim
    fabric = cluster.fabric
    ledger = cluster.ledger
    result = RecoveryResult()
    endpoints = place_ranks(
        cluster.machine,
        nranks,
        cluster.placement if placement is None else placement,
        ledger=ledger,
        seed=cluster.seed,
        key=name,
        nodes=nodes,
    )
    plan = cluster.fault_injector.plan if cluster.fault_injector is not None else None
    shard = spec.shard_bytes(nranks)

    def _respawn(dead_nodes: list[str], now: float) -> bool:
        """Drain the dead nodes and re-host their ranks on spares.
        Returns False when the spare pool is too small."""
        for node in dead_nodes:
            ledger.drain(node)
        # Spares behind an element that is down right now would re-fail
        # immediately: the health checks that confirmed this failure
        # exclude them too.
        unusable = _dead_job_nodes(plan, ledger, now) if plan is not None else set()
        alive = {_node_of(ep) for ep in endpoints} - set(dead_nodes)
        spares = [s for s in ledger.spares() if s not in alive and s not in unusable]
        if len(spares) < len(dead_nodes):
            result.events.append(
                f"t={now * 1e6:.1f}us: {len(dead_nodes)} node(s) lost, "
                f"only {len(spares)} spare(s) — giving up"
            )
            return False
        chosen = spares[: len(dead_nodes)]
        ledger.take(chosen)
        for dead, spare in zip(sorted(dead_nodes), chosen):
            for r, ep in enumerate(endpoints):
                if _node_of(ep) != dead:
                    continue
                slot = ledger.node_eps[dead].index(ep)
                new_ep = ledger.node_eps[spare][slot]
                endpoints[r] = new_ep
                ledger.used[new_ep] += 1
                result.restarts += 1
        result.events.append(
            f"t={now * 1e6:.1f}us: drained {sorted(dead_nodes)}, "
            f"respawned on {chosen}"
        )
        return True

    def manager():
        step = 1
        last_ckpt = 0
        baseline = None
        open_recoveries: list[tuple[int, float]] = []  # (failed step, fail time)
        while step <= spec.steps:
            t0 = sim.now
            try:
                if spec.compute_seconds > 0:
                    yield sim.timeout(spec.compute_seconds)
                # Ring allreduce: 2(n-1) neighbour-exchange phases, each
                # rank streaming its shard to the next rank.
                for _phase in range(2 * (nranks - 1)):
                    events = []
                    for r in range(nranks):
                        src, dst = endpoints[r], endpoints[(r + 1) % nranks]
                        if src == dst:
                            continue
                        d = fabric.transfer(src, dst, shard)
                        events.append(d.event)
                    if events:
                        yield sim.all_of(events)
            except FaultError:
                fail_time = sim.now
                # Confirm the failure (health-check consensus) before
                # acting; the hard windows are live by now.
                if config.detect_timeout > 0:
                    yield sim.timeout(config.detect_timeout)
                dead = sorted(
                    _dead_job_nodes(plan, ledger, sim.now) if plan is not None else ()
                )
                dead = [d for d in dead if d in {_node_of(ep) for ep in endpoints}]
                if not dead:
                    raise  # unexplained: not a hard element failure
                result.failures += 1
                lost_ranks = sum(1 for ep in endpoints if _node_of(ep) in set(dead))
                result.blast_radius = max(result.blast_radius, lost_ranks)
                if result.failures > config.max_restarts or not _respawn(
                    dead, sim.now
                ):
                    result.steps_done = step - 1
                    return
                if config.restart_cost > 0:
                    yield sim.timeout(config.restart_cost)
                result.replayed_steps += (step - 1) - last_ckpt
                open_recoveries.append((step, fail_time))
                step = last_ckpt + 1
                continue
            duration = sim.now - t0
            if baseline is None:
                baseline = duration
            elif duration > config.straggler_factor * baseline:
                result.stragglers += 1
            for failed_step, fail_time in list(open_recoveries):
                if step >= failed_step:
                    # Caught back up to where the failure struck.
                    result.recovery_seconds += sim.now - fail_time
                    open_recoveries.remove((failed_step, fail_time))
            if step % config.checkpoint_interval == 0 and step < spec.steps:
                if config.checkpoint_cost > 0:
                    yield sim.timeout(config.checkpoint_cost)
                result.checkpoints += 1
                last_ckpt = step
            result.steps_done = step
            step += 1
        result.completed = True

    proc = sim.process(manager(), name=f"recovery/{name}")
    sim.run(until=proc)
    result.makespan = sim.now
    result.nodes = sorted({_node_of(ep) for ep in endpoints})
    metrics = cluster.metrics
    if metrics is not None:
        metrics.counter("cluster.recovery.failures").inc(result.failures)
        metrics.counter("cluster.recovery.restarts").inc(result.restarts)
        metrics.counter("cluster.recovery.replayed_steps").inc(result.replayed_steps)
        metrics.counter("cluster.recovery.checkpoints").inc(result.checkpoints)
        metrics.counter("cluster.recovery.stragglers").inc(result.stragglers)
        metrics.counter("cluster.recovery.seconds").inc(result.recovery_seconds)
    return result
