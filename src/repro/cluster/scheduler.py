"""Placement policies and the co-scheduling :class:`Cluster`.

Placement is node-exclusive and node-granular, like a production batch
scheduler: each job is handed whole nodes (a cluster machine's endpoints
are named ``n{i}.cpu0`` etc.; single-node machines degrade to one endpoint
per "node"), one rank per node while nodes last, wrapping onto successive
endpoints when a job has more ranks than nodes.  Policies differ in *which*
free nodes a job gets:

* ``packed`` — the first free nodes in natural order.  Consecutive nodes
  attach to the same routers, so a packed job's traffic stays in one corner
  of the fabric;
* ``scattered`` — free nodes interleaved by attachment router, so
  consecutive ranks land behind *different* routers and the job's traffic
  spreads over (and shares) the whole fabric;
* ``random`` — a deterministic keyed-hash shuffle of the free nodes; same
  seed, same placement, bit for bit.

The cluster tracks node ownership across submissions, so co-scheduled jobs
never share a node — interference happens on the fabric, where the
experiments can see it.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.comm.job import Job, JobResult
from repro.faults.inject import FaultInjector, current_plan, current_scope
from repro.faults.plan import FaultPlan
from repro.machines.base import MachineModel
from repro.machines.registry import get_machine
from repro.net.congestion import CongestionConfig
from repro.net.fabric import Fabric
from repro.obs.session import current as _obs_current
from repro.sim.engine import Simulator
from repro.sim.trace import NullTracer, Tracer

__all__ = ["Cluster", "PLACEMENTS", "place_ranks"]

PLACEMENTS = ("packed", "scattered", "random")


def _node_of(endpoint: str) -> str:
    """The node prefix of a cluster endpoint (the endpoint itself when the
    machine is a bare node)."""
    return endpoint.split(".", 1)[0] if "." in endpoint else endpoint


def _attach_router(machine: MachineModel, node: str, eps: list[str]) -> str:
    """The fabric router/switch a node's NIC cables to (the node itself
    when nothing outside the node is adjacent)."""
    topo = machine.topology
    prefix = f"{node}."
    for ep in topo.endpoints:
        if not ep.startswith(prefix):
            continue
        for other in topo._graph.neighbors(ep):
            if not other.startswith(prefix):
                return other
    return node


def _interleave_by_router(nodes: list[str], router: dict[str, str]) -> list[str]:
    """Round-robin nodes across their attachment routers, so consecutive
    picks land behind different routers."""
    buckets: dict[str, list[str]] = {}
    order: list[str] = []
    for node in nodes:
        r = router[node]
        if r not in buckets:
            buckets[r] = []
            order.append(r)
        buckets[r].append(node)
    out: list[str] = []
    while len(out) < len(nodes):
        for r in order:
            if buckets[r]:
                out.append(buckets[r].pop(0))
    return out


def _shuffled(nodes: list[str], seed: int, key: str) -> list[str]:
    def rank(node: str) -> bytes:
        return hashlib.blake2b(
            f"{seed}|{key}|{node}".encode(), digest_size=8
        ).digest()

    return sorted(nodes, key=rank)


class PlacementLedger:
    """Node ownership + per-endpoint slot usage across submissions."""

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.cap = 1 if machine.is_gpu_machine else machine.cores_per_endpoint
        self.node_eps: dict[str, list[str]] = {}
        for ep in machine.compute_endpoints:
            self.node_eps.setdefault(_node_of(ep), []).append(ep)
        self.free_nodes: list[str] = list(self.node_eps)
        self.router = {
            node: _attach_router(machine, node, eps)
            for node, eps in self.node_eps.items()
        }
        self.used: dict[str, int] = {ep: 0 for ep in machine.compute_endpoints}
        self.drained: set[str] = set()

    def take(self, nodes: list[str]) -> None:
        self.free_nodes = [n for n in self.free_nodes if n not in nodes]

    def drain(self, node: str) -> None:
        """Remove a hard-failed node from service: it is neither free nor
        placeable again (recovery respawns ranks onto *other* nodes)."""
        if node not in self.node_eps:
            raise KeyError(f"unknown node {node!r} on {self.machine.name!r}")
        self.drained.add(node)
        self.free_nodes = [n for n in self.free_nodes if n != node]

    def spares(self) -> list[str]:
        """The nodes still free to host respawned ranks (natural order)."""
        return list(self.free_nodes)


def place_ranks(
    machine: MachineModel,
    nranks: int,
    policy: str,
    *,
    ledger: PlacementLedger | None = None,
    seed: int = 0,
    key: str = "",
    nodes: list[str] | None = None,
) -> list[str]:
    """Choose one hosting endpoint per rank under ``policy``.

    ``ledger`` carries node ownership and slot occupancy across successive
    placements (the cluster passes its own; omitting it places against a
    fresh, empty machine); ``seed``/``key`` feed the ``random`` hash.
    ``nodes`` pins the job to an explicit node list instead of the policy
    (resilience experiments pin victims to known routers; recovery
    respawns ranks onto chosen spares) — the nodes must exist and be free.
    """
    if policy not in PLACEMENTS:
        raise ValueError(f"unknown placement {policy!r}; valid: {PLACEMENTS}")
    if ledger is None:
        ledger = PlacementLedger(machine)
    free = ledger.free_nodes
    if nodes is not None:
        unknown = [n for n in nodes if n not in ledger.node_eps]
        if unknown:
            raise ValueError(
                f"unknown node(s) {unknown} on {machine.name!r}; "
                f"valid: {sorted(ledger.node_eps)}"
            )
        busy = [n for n in nodes if n not in free]
        if busy:
            raise ValueError(
                f"node(s) {busy} are not free on {machine.name!r}"
            )
        job_nodes = list(nodes)
    else:
        if not free:
            raise ValueError(
                f"cannot place {nranks} ranks: no free nodes remain on "
                f"{machine.name!r}"
            )
        if policy == "scattered":
            free = _interleave_by_router(free, ledger.router)
        elif policy == "random":
            free = _shuffled(free, seed, key)
        job_nodes = free[: min(nranks, len(free))]
    capacity = sum(ledger.cap * len(ledger.node_eps[n]) for n in job_nodes)
    if nranks > capacity:
        raise ValueError(
            f"cannot place {nranks} ranks: the {len(job_nodes)} free nodes "
            f"hold only {capacity} slots on {machine.name!r}"
        )
    ledger.take(job_nodes)
    chosen: list[str] = []
    while len(chosen) < nranks:
        for node in job_nodes:
            for ep in ledger.node_eps[node]:
                if ledger.used[ep] < ledger.cap:
                    chosen.append(ep)
                    ledger.used[ep] += 1
                    break
            if len(chosen) == nranks:
                break
    return chosen


class Cluster:
    """One shared simulator + fabric hosting several co-scheduled jobs."""

    def __init__(
        self,
        machine: str | MachineModel,
        *,
        routing: Any = None,
        congestion: CongestionConfig | None = None,
        seed: int = 0,
        faults: FaultPlan | None = None,
        placement: str = "packed",
    ):
        self.machine = get_machine(machine) if isinstance(machine, str) else machine
        self.seed = seed
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r}; valid: {PLACEMENTS}")
        self.placement = placement
        self.sim = Simulator()
        obs = _obs_current()
        self.obs = obs
        tracer: Tracer | NullTracer = (
            obs.tracer_for(f"cluster/{self.machine.name}")
            if obs is not None
            else NullTracer()
        )
        self.metrics = obs.metrics if obs is not None else None
        plan = faults if faults is not None else current_plan()
        self.fault_injector = None
        if plan is not None and not plan.clean:
            self.fault_injector = FaultInjector(plan)
            scope = current_scope()
            if scope is not None:
                scope.attach(self.fault_injector)
        self.fabric = Fabric(
            self.sim,
            self.machine.topology,
            tracer,
            metrics=self.metrics,
            faults=self.fault_injector,
            routing=routing,
            congestion=congestion,
        )
        self._ledger = PlacementLedger(self.machine)
        self._jobs: list[tuple[str, Job, Any]] = []

    @property
    def ledger(self) -> PlacementLedger:
        """The cluster's node-ownership ledger (drain/spares live here)."""
        return self._ledger

    def submit(
        self,
        name: str,
        make_program: Any,
        *,
        nranks: int,
        runtime: str,
        placement: str | None = None,
        seed: int | None = None,
        nodes: list[str] | None = None,
    ) -> Job:
        """Place and register one job; its rank programs run at :meth:`run`.

        ``make_program(job)`` is called immediately with the placed
        :class:`~repro.comm.Job` (so it can allocate windows/channels) and
        must return the per-rank generator function ``program(ctx)``.
        ``placement`` defaults to the cluster's own policy; ``nodes`` pins
        the job to explicit free nodes instead.
        """
        if any(name == existing for existing, _j, _p in self._jobs):
            raise ValueError(f"duplicate job name {name!r}")
        endpoints = place_ranks(
            self.machine,
            nranks,
            self.placement if placement is None else placement,
            ledger=self._ledger,
            seed=self.seed if seed is None else seed,
            key=name,
            nodes=nodes,
        )
        job = Job(
            self.machine,
            nranks,
            runtime,
            seed=self.seed if seed is None else seed,
            sim=self.sim,
            fabric=self.fabric,
            endpoints=endpoints,
        )
        self._jobs.append((name, job, make_program(job)))
        return job

    def run(self, max_events: int | None = None) -> dict[str, JobResult]:
        """Launch every submitted job's ranks into the shared simulator,
        run to completion, and collect per-job results (keyed by name)."""
        if not self._jobs:
            raise ValueError("no jobs submitted")
        launched = [
            (name, job, job.launch(program)) for name, job, program in self._jobs
        ]
        done = self.sim.all_of([p for _n, _j, procs in launched for p in procs])
        self.sim.run(until=done, max_events=max_events)
        return {name: job.collect(procs) for name, job, procs in launched}
