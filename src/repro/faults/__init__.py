"""repro.faults — deterministic fault injection for the simulated fabric.

Public surface:

* :class:`FaultPlan` / :class:`LinkFaults` / :class:`RetransmitPolicy` —
  declarative description of link loss, jitter, outages and degradation.
* :class:`RouterFaults` / :class:`NodeFaults` / :class:`NicFaults` —
  hard (fail-stop) faults scoped to topology elements, resolved against
  a concrete fabric by :func:`resolve_hard_faults`; victims for a sweep
  come from the keyed-hash :func:`pick_victims`.
* :class:`FaultSemantics` — how a runtime reacts to loss (carried by each
  :mod:`repro.transport` backend).
* :func:`inject` / :func:`current_plan` / :func:`current_scope` — ambient
  installation of a plan, mirroring :func:`repro.obs.observe`.
* :class:`FaultError` — delivery failure after the retry budget (or a
  partitioned topology under failover routing).
* :class:`UnknownElementError` — a hard-fault target the topology doesn't
  have (raised by the eager :func:`validate_element` check).
"""

from repro.faults.plan import (
    NO_FAULTS,
    FaultError,
    FaultPlan,
    FaultSemantics,
    HardFaults,
    LinkFaults,
    NicFaults,
    NodeFaults,
    RetransmitPolicy,
    RouterFaults,
)
from repro.faults.hard import (
    UnknownElementError,
    element_catalog,
    elements_down_at,
    pick_victims,
    resolve_hard_faults,
    validate_element,
)
from repro.faults.inject import (
    FaultInjector,
    FaultScope,
    current_plan,
    current_scope,
    inject,
)

__all__ = [
    "NO_FAULTS",
    "FaultError",
    "FaultPlan",
    "FaultSemantics",
    "HardFaults",
    "LinkFaults",
    "NicFaults",
    "NodeFaults",
    "RetransmitPolicy",
    "RouterFaults",
    "UnknownElementError",
    "FaultInjector",
    "FaultScope",
    "current_plan",
    "current_scope",
    "element_catalog",
    "elements_down_at",
    "inject",
    "pick_victims",
    "resolve_hard_faults",
    "validate_element",
]
