"""repro.faults — deterministic fault injection for the simulated fabric.

Public surface:

* :class:`FaultPlan` / :class:`LinkFaults` / :class:`RetransmitPolicy` —
  declarative description of link loss, jitter, outages and degradation.
* :class:`FaultSemantics` — how a runtime reacts to loss (carried by each
  :mod:`repro.transport` backend).
* :func:`inject` / :func:`current_plan` / :func:`current_scope` — ambient
  installation of a plan, mirroring :func:`repro.obs.observe`.
* :class:`FaultError` — delivery failure after the retry budget.
"""

from repro.faults.plan import (
    NO_FAULTS,
    FaultError,
    FaultPlan,
    FaultSemantics,
    LinkFaults,
    RetransmitPolicy,
)
from repro.faults.inject import (
    FaultInjector,
    FaultScope,
    current_plan,
    current_scope,
    inject,
)

__all__ = [
    "NO_FAULTS",
    "FaultError",
    "FaultPlan",
    "FaultSemantics",
    "LinkFaults",
    "RetransmitPolicy",
    "FaultInjector",
    "FaultScope",
    "current_plan",
    "current_scope",
    "inject",
]
