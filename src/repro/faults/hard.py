"""Resolving hard element faults against a concrete topology.

A :class:`~repro.faults.plan.FaultPlan` names failed *elements* —
routers, nodes, NICs — while the fabric operates on *links*.  This
module bridges the two:

* :func:`element_catalog` classifies a topology's endpoints into the
  three element kinds (using the cluster naming convention: ``n{i}.``
  prefixes mark node-internal endpoints, ``nic*`` suffixes mark NICs,
  everything else at fabric level is a router/switch);
* :func:`resolve_hard_faults` maps every hard fault in a plan to the
  set of topology links it takes down, merging overlapping windows —
  a dead router kills **all** of its attached links atomically, a dead
  node kills every link touching any of its endpoints (internal links
  included), a dead NIC kills just that endpoint's links;
* :func:`validate_element` raises :class:`UnknownElementError` (listing
  the valid names, mirroring ``UnknownBackendError``) — the eager check
  the ``repro fault`` CLI runs before building a plan.  Resolution
  itself is lenient by default so one plan can span machines of
  different scales (an element absent from a topology does not bind
  there, exactly like a ``links`` override for a link that machine
  doesn't have).

Which element fails in a sweep is chosen deterministically with
:func:`pick_victims`: a keyed blake2b ranking of the candidate names,
pure in ``(seed, key)`` — same seed, same victims, bit for bit.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

from repro.faults.plan import _NODE_PREFIX, FaultPlan, HardFaults

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import TopologySpec

__all__ = [
    "UnknownElementError",
    "element_catalog",
    "elements_down_at",
    "pick_victims",
    "resolve_hard_faults",
    "validate_element",
]


class UnknownElementError(ValueError):
    """A hard-fault target names an element the topology doesn't have."""

    def __init__(self, kind: str, name: str, valid: tuple[str, ...]):
        self.kind = kind
        self.name = name
        self.valid = tuple(valid)
        if self.valid:
            hint = f"valid {kind}s: {', '.join(self.valid)}"
        else:
            hint = f"this topology has no {kind} elements"
        super().__init__(f"unknown {kind} {name!r}; {hint}")


def _is_nic_name(base: str) -> bool:
    return base.startswith("nic")


def element_catalog(
    topology: "TopologySpec", *, compute: tuple[str, ...] = ()
) -> dict[str, tuple[str, ...]]:
    """The named elements of ``topology``, per kind.

    ``compute`` (the machine's compute endpoints) excludes bare-node
    devices like ``cpu0`` from the router list — on a single-node
    machine nothing is a router; on a generated fabric blueprint
    everything is.
    """
    compute_set = set(compute)
    routers: list[str] = []
    nodes: set[str] = set()
    nics: list[str] = []
    for ep in topology.endpoints:
        m = _NODE_PREFIX.match(ep)
        base = ep[m.end():] if m is not None else ep
        if m is not None:
            nodes.add(m.group(1))
        if _is_nic_name(base):
            nics.append(ep)
        elif m is None and ep not in compute_set:
            routers.append(ep)
    return {
        "router": tuple(sorted(routers)),
        "node": tuple(sorted(nodes, key=lambda n: int(n[1:]))),
        "nic": tuple(sorted(nics)),
    }


def validate_element(
    topology: "TopologySpec",
    kind: str,
    name: str,
    *,
    compute: tuple[str, ...] = (),
) -> None:
    """Raise :class:`UnknownElementError` unless ``name`` is a ``kind``
    element of ``topology`` (the CLI's eager check)."""
    catalog = element_catalog(topology, compute=compute)
    if kind not in catalog:
        raise ValueError(f"unknown element kind {kind!r}; valid: {sorted(catalog)}")
    if name not in catalog[kind]:
        raise UnknownElementError(kind, name, catalog[kind])


def _element_links(
    topology: "TopologySpec", fault: HardFaults
) -> list[frozenset[str]]:
    """The topology links a dead element takes down (possibly none)."""
    if fault.kind == "node":
        prefix = f"{fault.element}."
        return [
            key for key in topology.links
            if any(ep.startswith(prefix) for ep in key)
        ]
    # Routers and NICs are single endpoints: all incident links.
    return [key for key in topology.links if fault.element in key]


def _merge_windows(
    windows: list[tuple[float, float]],
) -> tuple[tuple[float, float], ...]:
    """Sort and coalesce overlapping/adjacent ``[a, b)`` windows."""
    merged: list[tuple[float, float]] = []
    for a, b in sorted(windows):
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return tuple(merged)


def resolve_hard_faults(
    plan: FaultPlan,
    topology: "TopologySpec",
    *,
    strict: bool = False,
    compute: tuple[str, ...] = (),
) -> dict[frozenset[str], tuple[tuple[float, float], ...]]:
    """Map each topology link to its merged hard-outage windows.

    Only links covered by at least one firing hard fault appear in the
    result.  With ``strict=True`` an element the topology doesn't have
    raises :class:`UnknownElementError`; the default is lenient (the
    plan may span machines of different scales).
    """
    out: dict[frozenset[str], list[tuple[float, float]]] = {}
    for hf in plan.hard:
        if hf.clean:
            continue
        keys = _element_links(topology, hf)
        if not keys:
            if strict:
                validate_element(topology, hf.kind, hf.element, compute=compute)
                # An element can exist yet have no links (isolated): then
                # its death takes nothing down, which is fine.
            continue
        for key in keys:
            out.setdefault(key, []).extend(hf.windows)
    return {key: _merge_windows(ws) for key, ws in out.items()}


def elements_down_at(plan: FaultPlan, t: float) -> list[HardFaults]:
    """The plan's hard faults whose outage window covers time ``t``
    (the recovery layer's view of "what is dead right now")."""
    return [
        hf
        for hf in plan.hard
        if any(a <= t < b for a, b in hf.windows)
    ]


def pick_victims(
    elements: tuple[str, ...] | list[str],
    count: int,
    *,
    seed: int = 0,
    key: str = "victims",
) -> tuple[str, ...]:
    """``count`` victim elements, chosen by keyed-hash ranking.

    Pure in ``(seed, key, elements)``: the same sweep point always kills
    the same elements, and raising ``count`` only *adds* victims (the
    ranking is a fixed total order), so failure sweeps are monotone.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")

    def rank(name: str) -> bytes:
        return hashlib.blake2b(
            f"{seed}|{key}|{name}".encode(), digest_size=8
        ).digest()

    ranked = sorted(elements, key=rank)
    return tuple(ranked[: min(count, len(ranked))])
