"""Fault plans: a declarative description of fabric misbehaviour.

The Message Roofline assumes a perfect fabric; a :class:`FaultPlan` states
how a simulated fabric departs from that ideal, per link:

* ``loss`` — probability that one traversal of the link drops the message
  (the sender's retransmission machinery then recovers it, paying the full
  LogGP cost of the retry — see :mod:`repro.net.fabric`);
* ``jitter`` — extra per-traversal latency, uniform on ``[0, jitter)``;
* ``degrade`` — a permanent slowdown factor on the link's per-byte time
  (``2.0`` = the link runs at half bandwidth);
* ``down`` — transient outage windows ``[start, end)`` in simulated
  seconds during which the link accepts no new messages (heads stall at
  the injection port until the window closes).

Everything is deterministic: loss and jitter draws are pure functions of
``(plan.seed, link, message id, attempt)`` — see
:class:`~repro.faults.inject.FaultInjector` — so two runs with the same
plan produce identical schedules, and raising ``loss`` can only delay a
message, never reorder its draws (degradation curves are monotone).

How a *runtime* reacts to loss is described separately by
:class:`FaultSemantics`, a knob each :class:`repro.transport` backend
carries: two-sided MPI retransmits inside the library off a sender-side
ack timer, one-sided MPI only discovers a lost Put at the next
flush/synchronisation (a larger effective detection timeout plus a
re-sync round trip per retry), and NVSHMEM-style transports retry in NIC
hardware.  This is what gives the runtimes genuinely different
degradation shapes in ``repro run degradation``.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "FaultError",
    "LinkFaults",
    "HardFaults",
    "RouterFaults",
    "NodeFaults",
    "NicFaults",
    "RetransmitPolicy",
    "FaultSemantics",
    "FaultPlan",
    "NO_FAULTS",
]

# The namespaced-cluster endpoint prefix (`n{i}.`) that
# :func:`repro.machines.cluster.make_cluster` prepends to every
# node-internal endpoint.
_NODE_PREFIX = re.compile(r"^(n\d+)\.")


class FaultError(RuntimeError):
    """A message could not be delivered within the retransmission budget.

    For library-retransmit runtimes (two-sided MPI) this aborts the job at
    the send, like an MPI communicator error; for one-sided runtimes the
    failure is carried by the operation's completion event and surfaces at
    the next ``flush``/``wait``/``quiet``.
    """


@dataclass(frozen=True)
class LinkFaults:
    """Fault parameters of one link (or the plan-wide default)."""

    loss: float = 0.0  # per-traversal drop probability, [0, 1)
    jitter: float = 0.0  # max extra per-traversal latency (seconds)
    degrade: float = 1.0  # per-byte time multiplier (>= 1)
    down: tuple[tuple[float, float], ...] = ()  # [start, end) outage windows

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.degrade < 1.0:
            raise ValueError(f"degrade must be >= 1, got {self.degrade}")
        windows = tuple(sorted((float(a), float(b)) for a, b in self.down))
        for a, b in windows:
            if not 0.0 <= a < b:
                raise ValueError(f"down window [{a}, {b}) is not a valid interval")
        object.__setattr__(self, "down", windows)

    @property
    def clean(self) -> bool:
        """True when this link behaves perfectly (no sampling needed)."""
        return (
            self.loss == 0.0
            and self.jitter == 0.0
            and self.degrade == 1.0
            and not self.down
        )


NO_FAULTS = LinkFaults()


@dataclass(frozen=True)
class HardFaults:
    """Fail-stop windows on one named topology *element* (not a link).

    During each ``[fail_at, recover_at)`` window the element is dead:
    every link attached to it drops every message atomically (a dead
    router takes down all its ports at once).  ``recover_at`` may be
    ``float("inf")`` for an element that never comes back.  Unlike the
    soft :class:`LinkFaults` knobs, hard faults are not sampled — the
    windows themselves are the whole behaviour, so two runs with the
    same plan replay identically by construction (use
    :func:`repro.faults.pick_victims` for a keyed-hash choice of *which*
    element fails in a sweep).

    Subclasses name the element kind the plan resolver binds against a
    topology: :class:`RouterFaults` (switch/router endpoints),
    :class:`NodeFaults` (a whole ``n{i}`` node and everything inside
    it), :class:`NicFaults` (one NIC endpoint).
    """

    element: str
    windows: tuple[tuple[float, float], ...] = ()

    kind = "element"

    def __post_init__(self) -> None:
        if not self.element or not isinstance(self.element, str):
            raise ValueError(f"element must be a non-empty name, got {self.element!r}")
        windows = tuple(sorted((float(a), float(b)) for a, b in self.windows))
        for a, b in windows:
            if not 0.0 <= a < b:
                raise ValueError(
                    f"hard-fault window [{a}, {b}) is not a valid interval"
                )
        object.__setattr__(self, "windows", windows)

    @property
    def clean(self) -> bool:
        """True when this element never actually fails."""
        return not self.windows


@dataclass(frozen=True)
class RouterFaults(HardFaults):
    """Hard failure of one switch/router (all attached links die)."""

    kind = "router"


@dataclass(frozen=True)
class NodeFaults(HardFaults):
    """Hard failure of one whole node (``n{i}``): every link touching
    any of the node's endpoints dies, including node-internal links."""

    kind = "node"


@dataclass(frozen=True)
class NicFaults(HardFaults):
    """Hard failure of one NIC endpoint (its cable and on-node links die;
    the rest of the node keeps computing)."""

    kind = "nic"


@dataclass(frozen=True)
class RetransmitPolicy:
    """How lost messages are recovered.

    Attempt ``k`` (0-based) of a message that was dropped is detected
    ``timeout * backoff**k`` after its injection started (scaled by the
    runtime's :attr:`FaultSemantics.detect_scale`), and the next attempt
    re-enters the fabric then — re-paying injection serialisation, link
    occupancy and latency in full.  After ``max_retries`` failed retries
    the transfer gives up and raises/fails with :class:`FaultError`.
    """

    timeout: float = 20e-6  # base detection timeout (seconds)
    backoff: float = 2.0  # exponential backoff factor
    max_retries: int = 8  # retries after the first attempt

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True)
class FaultSemantics:
    """How one runtime experiences and recovers from message loss.

    Attributes:
        mode: ``"abort"`` — exhaustion of the retry budget raises
            :class:`FaultError` at the send (library-internal recovery,
            MPI-style job abort on catastrophic loss); ``"surface"`` —
            the operation's completion event *fails* instead, and the
            error reaches the program at the next flush/wait/quiet.
        detect_scale: multiplies :attr:`RetransmitPolicy.timeout` — how
            quickly this runtime notices a lost message.  A sender-side
            ack timer (two-sided) detects at 1x; one-sided MPI discovers
            loss only at the synchronisation point (4x); hardware NIC
            retry (NVSHMEM) reacts fastest (0.5x).
        resync_penalty: when True, every retry also pays one extra round
            trip of route latency — the origin must re-synchronise its
            window state before re-issuing (the one-sided flush dance).
    """

    mode: str = "abort"
    detect_scale: float = 1.0
    resync_penalty: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("abort", "surface"):
            raise ValueError(f"mode must be 'abort' or 'surface', got {self.mode!r}")
        if self.detect_scale <= 0:
            raise ValueError(f"detect_scale must be > 0, got {self.detect_scale}")


def _normalize_links(
    links: Mapping[tuple[str, str], LinkFaults],
) -> dict[frozenset[str], LinkFaults]:
    out: dict[frozenset[str], LinkFaults] = {}
    for pair, lf in links.items():
        a, b = pair
        key = frozenset((a, b))
        if key in out:
            raise ValueError(f"duplicate link override for {a!r}<->{b!r}")
        out[key] = lf
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A seed-reproducible description of every fault in one run.

    ``default`` applies to every topology link; ``links`` overrides it for
    specific unordered endpoint pairs (``{("cpu0", "cpu1"): LinkFaults(...)}``).
    Loopback (``src == dst``) transfers never traverse a link and are
    unaffected.  ``seed`` namespaces all loss/jitter draws.

    ``hard`` lists fail-stop element faults (:class:`RouterFaults` /
    :class:`NodeFaults` / :class:`NicFaults`); they are resolved against
    the concrete topology when a fabric is built (see
    :func:`repro.faults.resolve_hard_faults`) — elements absent from a
    given topology simply do not bind there, so one plan can span
    machines of different scales.
    """

    seed: int = 0
    default: LinkFaults = NO_FAULTS
    links: Mapping[tuple[str, str], LinkFaults] = field(default_factory=dict)
    retransmit: RetransmitPolicy = RetransmitPolicy()
    hard: tuple[HardFaults, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {self.seed!r}")
        object.__setattr__(self, "links", _normalize_links(dict(self.links)))
        hard = tuple(self.hard)
        seen: set[tuple[str, str]] = set()
        for hf in hard:
            if not isinstance(hf, HardFaults):
                raise ValueError(
                    f"hard entries must be RouterFaults/NodeFaults/NicFaults, "
                    f"got {hf!r}"
                )
            key = (hf.kind, hf.element)
            if key in seen:
                raise ValueError(
                    f"duplicate hard fault for {hf.kind} {hf.element!r}"
                )
            seen.add(key)
        object.__setattr__(self, "hard", hard)

    @classmethod
    def uniform(
        cls,
        *,
        loss: float = 0.0,
        jitter: float = 0.0,
        degrade: float = 1.0,
        down: tuple[tuple[float, float], ...] = (),
        seed: int = 0,
        timeout: float = 20e-6,
        backoff: float = 2.0,
        max_retries: int = 8,
        hard: tuple[HardFaults, ...] = (),
    ) -> "FaultPlan":
        """The common case: the same faults on every link."""
        return cls(
            seed=seed,
            default=LinkFaults(loss=loss, jitter=jitter, degrade=degrade, down=down),
            retransmit=RetransmitPolicy(
                timeout=timeout, backoff=backoff, max_retries=max_retries
            ),
            hard=hard,
        )

    def for_link(self, a: str, b: str) -> LinkFaults:
        """The fault parameters governing the (unordered) link ``a<->b``.

        Cluster machines prefix node-internal endpoints with ``n{i}.``
        (``n3.cpu0``), so a per-link override written against the bare
        node model (``("cpu0", "cpu1")``) also binds every node's copy of
        that link: when both endpoints carry the *same* node prefix and
        no exact override exists, the lookup retries with the prefix
        stripped.
        """
        lf = self.links.get(frozenset((a, b)))
        if lf is not None:
            return lf
        if self.links:
            ma, mb = _NODE_PREFIX.match(a), _NODE_PREFIX.match(b)
            if ma is not None and mb is not None and ma.group(1) == mb.group(1):
                lf = self.links.get(
                    frozenset((a[ma.end():], b[mb.end():]))
                )
                if lf is not None:
                    return lf
        return self.default

    @property
    def clean(self) -> bool:
        """True when no link in this plan can misbehave and no element
        ever hard-fails."""
        return (
            self.default.clean
            and all(lf.clean for lf in self.links.values())
            and all(hf.clean for hf in self.hard)
        )
