"""Fault plans: a declarative description of fabric misbehaviour.

The Message Roofline assumes a perfect fabric; a :class:`FaultPlan` states
how a simulated fabric departs from that ideal, per link:

* ``loss`` — probability that one traversal of the link drops the message
  (the sender's retransmission machinery then recovers it, paying the full
  LogGP cost of the retry — see :mod:`repro.net.fabric`);
* ``jitter`` — extra per-traversal latency, uniform on ``[0, jitter)``;
* ``degrade`` — a permanent slowdown factor on the link's per-byte time
  (``2.0`` = the link runs at half bandwidth);
* ``down`` — transient outage windows ``[start, end)`` in simulated
  seconds during which the link accepts no new messages (heads stall at
  the injection port until the window closes).

Everything is deterministic: loss and jitter draws are pure functions of
``(plan.seed, link, message id, attempt)`` — see
:class:`~repro.faults.inject.FaultInjector` — so two runs with the same
plan produce identical schedules, and raising ``loss`` can only delay a
message, never reorder its draws (degradation curves are monotone).

How a *runtime* reacts to loss is described separately by
:class:`FaultSemantics`, a knob each :class:`repro.transport` backend
carries: two-sided MPI retransmits inside the library off a sender-side
ack timer, one-sided MPI only discovers a lost Put at the next
flush/synchronisation (a larger effective detection timeout plus a
re-sync round trip per retry), and NVSHMEM-style transports retry in NIC
hardware.  This is what gives the runtimes genuinely different
degradation shapes in ``repro run degradation``.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "FaultError",
    "LinkFaults",
    "RetransmitPolicy",
    "FaultSemantics",
    "FaultPlan",
    "NO_FAULTS",
]


class FaultError(RuntimeError):
    """A message could not be delivered within the retransmission budget.

    For library-retransmit runtimes (two-sided MPI) this aborts the job at
    the send, like an MPI communicator error; for one-sided runtimes the
    failure is carried by the operation's completion event and surfaces at
    the next ``flush``/``wait``/``quiet``.
    """


@dataclass(frozen=True)
class LinkFaults:
    """Fault parameters of one link (or the plan-wide default)."""

    loss: float = 0.0  # per-traversal drop probability, [0, 1)
    jitter: float = 0.0  # max extra per-traversal latency (seconds)
    degrade: float = 1.0  # per-byte time multiplier (>= 1)
    down: tuple[tuple[float, float], ...] = ()  # [start, end) outage windows

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.degrade < 1.0:
            raise ValueError(f"degrade must be >= 1, got {self.degrade}")
        windows = tuple(sorted((float(a), float(b)) for a, b in self.down))
        for a, b in windows:
            if not 0.0 <= a < b:
                raise ValueError(f"down window [{a}, {b}) is not a valid interval")
        object.__setattr__(self, "down", windows)

    @property
    def clean(self) -> bool:
        """True when this link behaves perfectly (no sampling needed)."""
        return (
            self.loss == 0.0
            and self.jitter == 0.0
            and self.degrade == 1.0
            and not self.down
        )


NO_FAULTS = LinkFaults()


@dataclass(frozen=True)
class RetransmitPolicy:
    """How lost messages are recovered.

    Attempt ``k`` (0-based) of a message that was dropped is detected
    ``timeout * backoff**k`` after its injection started (scaled by the
    runtime's :attr:`FaultSemantics.detect_scale`), and the next attempt
    re-enters the fabric then — re-paying injection serialisation, link
    occupancy and latency in full.  After ``max_retries`` failed retries
    the transfer gives up and raises/fails with :class:`FaultError`.
    """

    timeout: float = 20e-6  # base detection timeout (seconds)
    backoff: float = 2.0  # exponential backoff factor
    max_retries: int = 8  # retries after the first attempt

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass(frozen=True)
class FaultSemantics:
    """How one runtime experiences and recovers from message loss.

    Attributes:
        mode: ``"abort"`` — exhaustion of the retry budget raises
            :class:`FaultError` at the send (library-internal recovery,
            MPI-style job abort on catastrophic loss); ``"surface"`` —
            the operation's completion event *fails* instead, and the
            error reaches the program at the next flush/wait/quiet.
        detect_scale: multiplies :attr:`RetransmitPolicy.timeout` — how
            quickly this runtime notices a lost message.  A sender-side
            ack timer (two-sided) detects at 1x; one-sided MPI discovers
            loss only at the synchronisation point (4x); hardware NIC
            retry (NVSHMEM) reacts fastest (0.5x).
        resync_penalty: when True, every retry also pays one extra round
            trip of route latency — the origin must re-synchronise its
            window state before re-issuing (the one-sided flush dance).
    """

    mode: str = "abort"
    detect_scale: float = 1.0
    resync_penalty: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("abort", "surface"):
            raise ValueError(f"mode must be 'abort' or 'surface', got {self.mode!r}")
        if self.detect_scale <= 0:
            raise ValueError(f"detect_scale must be > 0, got {self.detect_scale}")


def _normalize_links(
    links: Mapping[tuple[str, str], LinkFaults],
) -> dict[frozenset[str], LinkFaults]:
    out: dict[frozenset[str], LinkFaults] = {}
    for pair, lf in links.items():
        a, b = pair
        key = frozenset((a, b))
        if key in out:
            raise ValueError(f"duplicate link override for {a!r}<->{b!r}")
        out[key] = lf
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A seed-reproducible description of every fault in one run.

    ``default`` applies to every topology link; ``links`` overrides it for
    specific unordered endpoint pairs (``{("cpu0", "cpu1"): LinkFaults(...)}``).
    Loopback (``src == dst``) transfers never traverse a link and are
    unaffected.  ``seed`` namespaces all loss/jitter draws.
    """

    seed: int = 0
    default: LinkFaults = NO_FAULTS
    links: Mapping[tuple[str, str], LinkFaults] = field(default_factory=dict)
    retransmit: RetransmitPolicy = RetransmitPolicy()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {self.seed!r}")
        object.__setattr__(self, "links", _normalize_links(dict(self.links)))

    @classmethod
    def uniform(
        cls,
        *,
        loss: float = 0.0,
        jitter: float = 0.0,
        degrade: float = 1.0,
        down: tuple[tuple[float, float], ...] = (),
        seed: int = 0,
        timeout: float = 20e-6,
        backoff: float = 2.0,
        max_retries: int = 8,
    ) -> "FaultPlan":
        """The common case: the same faults on every link."""
        return cls(
            seed=seed,
            default=LinkFaults(loss=loss, jitter=jitter, degrade=degrade, down=down),
            retransmit=RetransmitPolicy(
                timeout=timeout, backoff=backoff, max_retries=max_retries
            ),
        )

    def for_link(self, a: str, b: str) -> LinkFaults:
        """The fault parameters governing the (unordered) link ``a<->b``."""
        return self.links.get(frozenset((a, b)), self.default)

    @property
    def clean(self) -> bool:
        """True when no link in this plan can misbehave."""
        return self.default.clean and all(lf.clean for lf in self.links.values())
