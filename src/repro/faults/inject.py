"""Deterministic fault sampling and the ambient injection scope.

Experiment runners build :class:`~repro.comm.job.Job` objects internally,
so — like :mod:`repro.obs` — a fault plan is installed ambiently::

    from repro import faults

    plan = faults.FaultPlan.uniform(loss=0.05, seed=7)
    with faults.inject(plan) as scope:
        result = run_flood(machine, "one_sided", 65536, 64)
    print(scope.stats())   # drops / retransmits / exhausted / ...

Every job constructed inside the block threads the plan into its fabric.
Outside a scope (or with ``inject(None)``) nothing changes: the fabric
takes its zero-overhead, byte-identical fault-free path.

Determinism: every loss/jitter draw is a pure function of
``(seed, link, direction, message id, attempt)`` via a keyed blake2b
hash.  The message id is the fabric's transfer sequence number, so the
draw a message sees does not depend on how many retries *other* messages
needed — and a draw compared against a larger loss threshold can only
flip from "delivered" to "dropped", which is why degradation curves are
monotone in the loss rate.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from collections.abc import Iterator

from repro.faults.plan import FaultPlan, FaultSemantics

__all__ = ["FaultInjector", "FaultScope", "inject", "current_plan", "current_scope"]

_TWO_64 = float(2**64)


class FaultInjector:
    """Per-fabric fault state: the plan, the runtime semantics, counters.

    One injector serves one :class:`~repro.net.fabric.Fabric` (hence one
    job); scopes aggregate across injectors.  The optional ``attempts_hist``
    hook (a :class:`repro.obs.metrics.Histogram`) receives the attempt
    count of every delivered transfer when an obs session is active.
    """

    __slots__ = (
        "plan",
        "semantics",
        "drops",
        "retransmits",
        "exhausted",
        "delivered",
        "delivered_with_retry",
        "down_stall_seconds",
        "drops_by_link",
        "hard_drops",
        "hard_drops_by_link",
        "attempts_hist",
        "_seed_bytes",
    )

    def __init__(self, plan: FaultPlan, semantics: FaultSemantics | None = None):
        self.plan = plan
        self.semantics = semantics if semantics is not None else FaultSemantics()
        self.drops = 0
        self.retransmits = 0
        self.exhausted = 0
        self.delivered = 0
        self.delivered_with_retry = 0
        self.down_stall_seconds = 0.0
        self.drops_by_link: dict[str, int] = {}
        self.hard_drops = 0
        self.hard_drops_by_link: dict[str, int] = {}
        self.attempts_hist = None
        self._seed_bytes = str(plan.seed).encode()

    # -- deterministic sampling ----------------------------------------

    def unit(self, link: str, tid: int, attempt: int, purpose: str) -> float:
        """A uniform draw in [0, 1): pure function of the arguments + seed."""
        h = hashlib.blake2b(
            f"{link}|{tid}|{attempt}|{purpose}".encode(),
            digest_size=8,
            key=self._seed_bytes,
        ).digest()
        return int.from_bytes(h, "little") / _TWO_64

    def lost(self, lf, link: str, tid: int, attempt: int) -> bool:
        """Does traversal ``attempt`` of transfer ``tid`` drop on ``link``?"""
        return lf.loss > 0.0 and self.unit(link, tid, attempt, "loss") < lf.loss

    def jitter(self, lf, link: str, tid: int, attempt: int) -> float:
        """Extra latency for this traversal (0 when the link has no jitter)."""
        if lf.jitter <= 0.0:
            return 0.0
        return lf.jitter * self.unit(link, tid, attempt, "jitter")

    # -- bookkeeping ----------------------------------------------------

    def record_drop(self, link: str) -> None:
        self.drops += 1
        self.drops_by_link[link] = self.drops_by_link.get(link, 0) + 1

    def record_hard_drop(self, link: str) -> None:
        """A drop caused by a hard (fail-stop) element outage; also
        counted in the overall drop totals."""
        self.record_drop(link)
        self.hard_drops += 1
        self.hard_drops_by_link[link] = self.hard_drops_by_link.get(link, 0) + 1

    def record_retransmit(self) -> None:
        self.retransmits += 1

    def record_exhausted(self) -> None:
        self.exhausted += 1

    def record_delivery(self, attempts: int) -> None:
        self.delivered += 1
        if attempts > 1:
            self.delivered_with_retry += 1
        if self.attempts_hist is not None:
            self.attempts_hist.observe(attempts)

    def record_down_stall(self, seconds: float) -> None:
        self.down_stall_seconds += seconds

    def stats(self) -> dict[str, float]:
        """Aggregate counters (the shape :class:`FaultScope` merges)."""
        return {
            "drops": float(self.drops),
            "retransmits": float(self.retransmits),
            "exhausted": float(self.exhausted),
            "delivered": float(self.delivered),
            "delivered_with_retry": float(self.delivered_with_retry),
            "down_stall_seconds": self.down_stall_seconds,
            "hard_drops": float(self.hard_drops),
        }

    def metrics_snapshot(self) -> dict[str, float]:
        """Snapshot-time collector payload for a MetricsRegistry."""
        stats = self.stats()
        out = {f"faults.{k}": v for k, v in stats.items() if k != "hard_drops"}
        out["faults.hard.drops"] = stats["hard_drops"]
        for link, n in self.drops_by_link.items():
            out[f"faults.link.{link}.drops"] = float(n)
        for link, n in self.hard_drops_by_link.items():
            out[f"faults.hard.link.{link}.drops"] = float(n)
        return out


class FaultScope:
    """Aggregates fault statistics over every job run inside one
    :func:`inject` block (``plan`` may be None for a no-op scope)."""

    def __init__(self, plan: FaultPlan | None):
        self.plan = plan
        self.injectors: list[FaultInjector] = []

    def attach(self, injector: FaultInjector) -> None:
        self.injectors.append(injector)

    def stats(self) -> dict[str, float]:
        merged: dict[str, float] = {
            "drops": 0.0,
            "retransmits": 0.0,
            "exhausted": 0.0,
            "delivered": 0.0,
            "delivered_with_retry": 0.0,
            "down_stall_seconds": 0.0,
            "hard_drops": 0.0,
        }
        for inj in self.injectors:
            for k, v in inj.stats().items():
                merged[k] = merged.get(k, 0.0) + v
        return merged


_STACK: list[FaultScope] = []


def current_plan() -> FaultPlan | None:
    """The innermost active plan, or None (the fault-free default)."""
    return _STACK[-1].plan if _STACK else None


def current_scope() -> FaultScope | None:
    """The innermost active scope, or None."""
    return _STACK[-1] if _STACK else None


@contextmanager
def inject(plan: FaultPlan | None) -> Iterator[FaultScope]:
    """Install ``plan`` as the ambient fault plan for the block.

    ``inject(None)`` is a valid no-op scope — convenient for code that
    builds the plan conditionally and always wants a scope to query.
    """
    scope = FaultScope(plan)
    _STACK.append(scope)
    try:
        yield scope
    finally:
        _STACK.pop()
