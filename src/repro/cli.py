"""Command-line interface: run experiments, ablations, and quick tools.

Usage (also via ``python -m repro``):

    repro list                      # available experiments & machines
    repro run fig08                 # run one experiment, print the report
    repro run all --jobs 8          # every figure/table, 8 worker processes
    repro run fig03 --no-cache      # force re-execution of every point
    repro ablation polling          # run one ablation (or 'all')
    repro machines                  # platform inventory (Table I detail)
    repro flood perlmutter-cpu two_sided --nbytes 64KiB --msgs-per-sync 256
    repro roofline frontier-cpu one_sided --nbytes 4KiB --msgs-per-sync 100
    repro run fig09 --metrics       # embed the obs metrics snapshot
    repro trace fig09 --out run.trace.json   # chrome://tracing export
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    """argparse type for ``--jobs``: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {value}); use 1 for serial execution"
        )
    return value


def _cache_dir(text: str) -> str:
    """argparse type for ``--cache-dir``: a usable directory path.

    The directory itself need not exist (the cache creates it), but the
    path must be non-empty and must not name an existing non-directory.
    """
    import os

    if not text.strip():
        raise argparse.ArgumentTypeError(
            "cache directory must be a non-empty path "
            "(or pass --no-cache to disable caching)"
        )
    if os.path.exists(text) and not os.path.isdir(text):
        raise argparse.ArgumentTypeError(
            f"{text!r} exists and is not a directory"
        )
    return text


def build_parser() -> argparse.ArgumentParser:
    from repro.transport import backend_names

    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Evaluating the Performance of One-sided "
            "Communication on CPUs and GPUs' (SC 2023)"
        ),
    )
    p.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments, ablations and machines")

    runp = sub.add_parser("run", help="run a figure/table experiment")
    runp.add_argument("experiment", help="e.g. fig08, table2, or 'all'")
    runp.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    runp.add_argument(
        "--metrics",
        action="store_true",
        help="collect the repro.obs metrics snapshot and embed it in the report",
    )
    _add_execution_args(runp)

    tp = sub.add_parser(
        "trace",
        help="run an experiment under tracing; export a Chrome/Perfetto trace",
    )
    tp.add_argument("experiment", help="e.g. fig09")
    tp.add_argument(
        "--out", default="run.trace.json",
        help="Chrome trace-event JSON output path (open in chrome://tracing)",
    )
    tp.add_argument(
        "--sink", choices=["list", "ring", "jsonl"], default="list",
        help="per-job record storage: unbounded list, bounded ring, or "
        "streaming JSONL files",
    )
    tp.add_argument(
        "--capacity", type=int, default=100_000,
        help="ring sink capacity (records kept per job; --sink ring)",
    )
    tp.add_argument(
        "--jsonl-dir", default="trace-jsonl",
        help="directory for per-job JSONL record streams (--sink jsonl)",
    )

    abp = sub.add_parser("ablation", help="run an ablation study")
    abp.add_argument("name", help="gap|sharp|put_signal|polling|split_k|all")

    sub.add_parser("machines", help="describe the modelled platforms")

    top = sub.add_parser(
        "topo",
        help="summarise a machine/fabric topology (nodes, links, diameter, "
        "bisection bandwidth)",
    )
    top.add_argument(
        "name",
        help="a machine name (incl. cluster grammar like "
        "'perlmutter-cpu-x8@dragonfly(4,2,2)') or a bare generator "
        "like 'dragonfly(4,2,2)', 'fattree(8)', 'torus(4,4)'",
    )
    top.add_argument(
        "--dot", action="store_true",
        help="emit the topology as Graphviz DOT on stdout instead",
    )

    fp = sub.add_parser("flood", help="run a flood bandwidth point")
    fp.add_argument("machine")
    fp.add_argument("runtime", choices=backend_names())
    _add_message_args(fp, iters=3)

    fap = sub.add_parser(
        "fault",
        help="run a flood point under fault injection; compare to clean",
    )
    fap.add_argument("machine")
    fap.add_argument("runtime", choices=backend_names())
    _add_message_args(fap, iters=2)
    fap.add_argument(
        "--loss", type=float, default=0.05,
        help="per-traversal link loss probability in [0, 1) (default 0.05)",
    )
    fap.add_argument(
        "--jitter-us", type=float, default=0.0,
        help="max extra per-traversal latency, microseconds",
    )
    fap.add_argument(
        "--degrade", type=float, default=1.0,
        help="per-byte time multiplier on every link (>= 1)",
    )
    fap.add_argument(
        "--down", action="append", default=[], metavar="START:END",
        help="link outage window in simulated microseconds (repeatable)",
    )
    fap.add_argument(
        "--fail-router", action="append", default=[], metavar="NAME[:START:END]",
        help="hard-fail a router, taking down every attached link "
             "(outage window in simulated microseconds, END may be 'inf'; "
             "bare NAME means dead for the whole run; repeatable)",
    )
    fap.add_argument(
        "--fail-node", action="append", default=[], metavar="NAME[:START:END]",
        help="hard-fail a node (all its links); same syntax as --fail-router",
    )
    fap.add_argument(
        "--fail-nic", action="append", default=[], metavar="NAME[:START:END]",
        help="hard-fail a NIC; same syntax as --fail-router",
    )
    fap.add_argument(
        "--placement", choices=["spread", "block"], default="spread",
        help="rank placement: 'spread' keeps the flood on-node, 'block' "
             "crosses the switched fabric (where hard faults live)",
    )
    fap.add_argument("--seed", type=int, default=0, help="fault plan seed")
    fap.add_argument(
        "--timeout-us", type=float, default=20.0,
        help="base retransmission detection timeout, microseconds",
    )
    fap.add_argument(
        "--max-retries", type=int, default=8,
        help="retries per message before the transfer fails",
    )

    ep = sub.add_parser(
        "export", help="run experiments and write JSON reports to a directory"
    )
    ep.add_argument("outdir", help="output directory (created if missing)")
    ep.add_argument(
        "--experiments", default="all",
        help="comma-separated names, or 'all' (default)",
    )
    ep.add_argument(
        "--metrics",
        action="store_true",
        help="embed the repro.obs metrics snapshot in each JSON report",
    )
    _add_execution_args(ep)

    rp = sub.add_parser("roofline", help="query the analytic bound")
    rp.add_argument("machine")
    rp.add_argument("runtime", choices=backend_names())
    _add_message_args(rp, iters=None)

    from repro.collectives.plan import ALGORITHMS

    cop = sub.add_parser(
        "collective",
        help="run one collective; print timing, accounting, and the "
        "selector's reasoning",
    )
    cop.add_argument("machine")
    cop.add_argument("runtime", choices=backend_names())
    cop.add_argument("coll", choices=sorted(ALGORITHMS))
    cop.add_argument("--nranks", type=_positive_int, default=4)
    cop.add_argument(
        "--nbytes", default="64KiB",
        help="payload size (e.g. 4MiB); ignored for barrier",
    )
    cop.add_argument(
        "--algorithm", default="auto",
        help="a named algorithm, or 'auto' for the alpha-beta selector",
    )
    cop.add_argument(
        "--stripes", type=_positive_int, default=1,
        help="concurrent puts per hop on ring schedules (NCCL multi-ring)",
    )
    cop.add_argument("--iters", type=_positive_int, default=1)
    cop.add_argument(
        "--explain", action="store_true",
        help="print the selector's full modeled cost table",
    )

    irp = sub.add_parser(
        "ir",
        help="inspect the communication-pattern IR: run an experiment "
        "under the pass pipeline and report every fired rewrite",
    )
    irp.add_argument("action", choices=["explain"])
    irp.add_argument("experiment", help="e.g. fig03, fig05, or 'all'")
    irp.add_argument(
        "--passes", default=None,
        help="comma-separated pass names (coalesce, overlap, sync-elide, "
        "auto-backend); default: the standard pipeline",
    )
    return p


def _add_message_args(p: argparse.ArgumentParser, *, iters: int | None) -> None:
    """The normalised message-shape flags (``--size``/``--msgs`` remain as
    deprecated aliases of ``--nbytes``/``--msgs-per-sync``)."""
    p.add_argument(
        "--nbytes", "--size", dest="nbytes", default="64KiB",
        help="message size (e.g. 4KiB)",
    )
    p.add_argument(
        "--msgs-per-sync", "--msgs", dest="msgs_per_sync", type=int,
        default=64, help="messages per sync",
    )
    if iters is not None:
        p.add_argument("--iters", type=int, default=iters)


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    """Sweep-execution flags shared by ``run`` and ``export``."""
    from repro.sweep import DEFAULT_CACHE_DIR

    p.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for sweep points (default 1 = serial; "
        "results are identical to serial at any N)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk sweep result cache",
    )
    p.add_argument(
        "--cache-dir", type=_cache_dir, default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"sweep result cache directory (default {DEFAULT_CACHE_DIR!r})",
    )


def _execution_from_args(args: argparse.Namespace):
    """An :func:`repro.sweep.execution` block configured from CLI flags.

    Progress lines go to stderr so ``--json`` stdout stays parseable.
    """
    from repro.sweep import ResultCache, execution

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return execution(
        jobs=args.jobs,
        cache=cache,
        progress=lambda line: print(line, file=sys.stderr),
    )


def _print_run_summary(statuses: dict[str, str], cache) -> None:
    """Per-experiment PASS/FAIL/ERROR lines plus a greppable cache-stats
    line.  ERROR marks an experiment that raised rather than merely
    failing its expectations."""
    if len(statuses) > 1:
        print("summary:", file=sys.stderr)
        for n, status in statuses.items():
            print(f"  {n:<20} {status}", file=sys.stderr)
        failed = sum(1 for s in statuses.values() if s == "FAIL")
        errored = sum(1 for s in statuses.values() if s == "ERROR")
        if failed or errored:
            parts = []
            if failed:
                parts.append(f"{failed}/{len(statuses)} experiments failed expectations")
            if errored:
                parts.append(f"{errored}/{len(statuses)} experiments raised")
            print(f"  {'; '.join(parts)}", file=sys.stderr)
        else:
            print(f"  all {len(statuses)} experiments passed", file=sys.stderr)
    if cache is not None:
        s = cache.stats()
        print(
            f"[sweep] cache: hits={s['hits']} misses={s['misses']}",
            file=sys.stderr,
        )


def _cmd_list() -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.ablations import ALL_ABLATIONS
    from repro.machines import machine_names

    print("experiments:", ", ".join(sorted(ALL_EXPERIMENTS)))
    print("ablations  :", ", ".join(sorted(ALL_ABLATIONS)))
    print("machines   :", ", ".join(machine_names(include_projections=True)))
    return 0


def _run_one(name: str, with_metrics: bool):
    """Run one experiment, optionally under an observation session."""
    from repro.experiments import ALL_EXPERIMENTS

    if not with_metrics:
        return ALL_EXPERIMENTS[name]()
    from repro import obs

    with obs.observe(obs.Obs()) as session:
        with session.span(name):
            report = ALL_EXPERIMENTS[name]()
    report.metrics = session.snapshot()
    return report


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    name = args.experiment
    if name == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif name in ALL_EXPERIMENTS:
        names = [name]
    else:
        print(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    statuses: dict[str, str] = {}
    with _execution_from_args(args) as cfg:
        for n in names:
            # One crashing experiment must not abort the rest of `run all`:
            # record it as ERROR and keep going (non-zero exit at the end).
            try:
                report = _run_one(n, args.metrics)
            except Exception:
                import traceback

                print(f"experiment {n} raised:", file=sys.stderr)
                traceback.print_exc()
                statuses[n] = "ERROR"
                continue
            print(report.to_json() if args.json else report.render())
            if not args.json:
                print()
            statuses[n] = "PASS" if report.all_expectations_met else "FAIL"
        _print_run_summary(statuses, cfg.cache)
    return 0 if all(s == "PASS" for s in statuses.values()) else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import pathlib

    from repro import obs
    from repro.experiments import ALL_EXPERIMENTS

    name = args.experiment
    if name not in ALL_EXPERIMENTS:
        print(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    if args.sink == "ring":
        if args.capacity < 1:
            print(
                f"--capacity must be >= 1, got {args.capacity}",
                file=sys.stderr,
            )
            return 2

        def factory():
            return obs.RingBufferSink(args.capacity)
    elif args.sink == "jsonl":
        jsonl_dir = pathlib.Path(args.jsonl_dir)
        jsonl_dir.mkdir(parents=True, exist_ok=True)
        counter = iter(range(1_000_000))

        def factory():
            return obs.JsonlSink(jsonl_dir / f"job{next(counter)}.jsonl")
    else:
        factory = None  # unbounded in-memory ListSink
    session = obs.Obs(trace=True, sink_factory=factory)
    with obs.observe(session):
        with session.span(name):
            report = ALL_EXPERIMENTS[name]()
    session.close()
    traces: list = []
    for label, tracer in session.traces:
        records = tracer.records
        if not records and isinstance(tracer.sink, obs.JsonlSink):
            from repro.analysis.traces import load_jsonl

            records = load_jsonl(tracer.sink.path).records
        traces.append((label, records))
    out = obs.write_chrome_trace(args.out, traces, session.spans)
    kept = sum(len(records) for _label, records in traces)
    print(report.render())
    print()
    print(f"trace     : {out} ({kept} records across {len(traces)} jobs)")
    print("open in   : chrome://tracing or https://ui.perfetto.dev")
    if args.sink == "jsonl":
        print(f"jsonl     : {args.jsonl_dir}/job*.jsonl "
              "(load with repro.analysis.traces.load_jsonl)")
    snap = session.metrics.snapshot()
    for key in ("net.fabric.messages", "net.fabric.bytes"):
        if key in snap:
            print(f"{key:<20}: {snap[key]:.0f}")
    return 0 if report.all_expectations_met else 1


def _cmd_ablation(name: str) -> int:
    from repro.experiments.ablations import ALL_ABLATIONS

    if name == "all":
        names = sorted(ALL_ABLATIONS)
    elif name in ALL_ABLATIONS:
        names = [name]
    else:
        print(
            f"unknown ablation {name!r}; available: "
            f"{', '.join(sorted(ALL_ABLATIONS))}",
            file=sys.stderr,
        )
        return 2
    ok = True
    for n in names:
        report = ALL_ABLATIONS[n]()
        print(report.render())
        print()
        ok = ok and report.all_expectations_met
    return 0 if ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    import pathlib

    from repro.experiments import ALL_EXPERIMENTS

    which = args.experiments
    names = sorted(ALL_EXPERIMENTS) if which == "all" else which.split(",")
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    out = pathlib.Path(args.outdir)
    out.mkdir(parents=True, exist_ok=True)
    statuses: dict[str, str] = {}
    with _execution_from_args(args) as cfg:
        for n in names:
            try:
                report = _run_one(n, args.metrics)
            except Exception:
                import traceback

                print(f"experiment {n} raised:", file=sys.stderr)
                traceback.print_exc()
                print(f"  {n}: ERROR (no report written)")
                statuses[n] = "ERROR"
                continue
            (out / f"{n}.json").write_text(report.to_json() + "\n")
            (out / f"{n}.txt").write_text(report.render() + "\n")
            status = "ok" if report.all_expectations_met else "CHECKS FAILED"
            print(f"  {n}: {status} -> {out / n}.{{json,txt}}")
            statuses[n] = "PASS" if report.all_expectations_met else "FAIL"
        _print_run_summary(statuses, cfg.cache)
    return 0 if all(s == "PASS" for s in statuses.values()) else 1


def _cmd_machines() -> int:
    from repro.machines import get_machine, machine_names

    for name in machine_names(include_projections=True):
        print(get_machine(name).describe())
        print()
    return 0


def _resolve_topology(name: str):
    """A TopologySpec from a machine name or a bare generator expression."""
    import re

    from repro.net.topology import dragonfly, fat_tree, torus

    m = re.match(r"^(dragonfly|fattree|torus)\((\d+(?:,\d+)*)\)$", name)
    if m is not None:
        args = tuple(int(x) for x in m.group(2).split(","))
        gen = m.group(1)
        if gen == "dragonfly":
            return dragonfly(*args).topology
        if gen == "fattree":
            return fat_tree(*args).topology
        return torus(args).topology
    machine = _resolve_machine(name)
    return None if machine is None else machine.topology


def _topo_dot(topo) -> str:
    lines = [f'graph "{topo.name}" {{']
    for ep in topo.endpoints:
        lines.append(f'  "{ep}";')
    for key, params in sorted(topo.links.items(), key=lambda kv: sorted(kv[0])):
        a, b = sorted(key)
        lines.append(
            f'  "{a}" -- "{b}" '
            f'[label="{params.name} {params.bandwidth / 1e9:.0f}GB/s"];'
        )
    lines.append("}")
    return "\n".join(lines)


def _cmd_topo(args: argparse.Namespace) -> int:
    from repro.util import fmt_bw

    try:
        topo = _resolve_topology(args.name)
    except (ValueError, TypeError) as exc:
        print(f"bad generator expression {args.name!r}: {exc}", file=sys.stderr)
        return 2
    if topo is None:
        return 2
    if args.dot:
        print(_topo_dot(topo))
        return 0
    nlinks = len(topo.links)
    print(f"topology  : {topo.name}")
    print(f"endpoints : {len(topo.endpoints)}")
    print(f"links     : {nlinks}")
    print(f"diameter  : {topo.diameter_hops()} hops")
    print(f"bisection : {fmt_bw(topo.bisection_bandwidth())}")
    kinds: dict[str, int] = {}
    for params in topo.links.values():
        kinds[params.name] = kinds.get(params.name, 0) + 1
    for kind, count in sorted(kinds.items()):
        print(f"  {count:>4} x {kind}")
    return 0


def _resolve_machine(name: str):
    from repro.machines import get_machine

    try:
        return get_machine(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def _cmd_flood(args: argparse.Namespace) -> int:
    from repro.util import fmt_bw, fmt_time, parse_size
    from repro.workloads.flood import run_flood

    machine = _resolve_machine(args.machine)
    if machine is None:
        return 2
    r = run_flood(
        machine, args.runtime, parse_size(args.nbytes), args.msgs_per_sync,
        iters=args.iters,
    )
    print(f"machine   : {r.machine} / {r.runtime}")
    print(f"message   : {args.nbytes} x {args.msgs_per_sync}/sync x {args.iters} iters")
    print(f"bandwidth : {fmt_bw(r.bandwidth)}")
    print(f"latency   : {fmt_time(r.latency_per_message)} per message")
    return 0


def _cmd_fault(args: argparse.Namespace) -> int:
    from repro import faults
    from repro.util import fmt_bw, parse_size
    from repro.workloads.flood import run_flood

    machine = _resolve_machine(args.machine)
    if machine is None:
        return 2
    down = []
    for spec in args.down:
        try:
            a, b = spec.split(":")
            down.append((float(a) * 1e-6, float(b) * 1e-6))
        except ValueError:
            print(f"--down expects START:END in microseconds, got {spec!r}",
                  file=sys.stderr)
            return 2
    hard: list[faults.HardFaults] = []
    hard_classes = {
        "router": ("--fail-router", args.fail_router, faults.RouterFaults),
        "node": ("--fail-node", args.fail_node, faults.NodeFaults),
        "nic": ("--fail-nic", args.fail_nic, faults.NicFaults),
    }
    compute = tuple(machine.compute_endpoints)
    for kind, (flag, specs, cls) in hard_classes.items():
        windows: dict[str, list[tuple[float, float]]] = {}
        for spec in specs:
            parts = spec.split(":")
            if len(parts) == 1:
                name, window = parts[0], (0.0, float("inf"))
            elif len(parts) == 3:
                try:
                    name = parts[0]
                    window = (float(parts[1]) * 1e-6, float(parts[2]) * 1e-6)
                except ValueError:
                    print(f"{flag} expects NAME or NAME:START:END in "
                          f"microseconds, got {spec!r}", file=sys.stderr)
                    return 2
            else:
                print(f"{flag} expects NAME or NAME:START:END in "
                      f"microseconds, got {spec!r}", file=sys.stderr)
                return 2
            # Validate the element name eagerly, before any simulation runs.
            try:
                faults.validate_element(
                    machine.topology, kind, name, compute=compute
                )
            except faults.UnknownElementError as exc:
                print(exc, file=sys.stderr)
                return 2
            windows.setdefault(name, []).append(window)
        hard.extend(
            cls(name, windows=tuple(ws)) for name, ws in windows.items()
        )
    try:
        plan = faults.FaultPlan.uniform(
            loss=args.loss,
            jitter=args.jitter_us * 1e-6,
            degrade=args.degrade,
            down=tuple(down),
            seed=args.seed,
            timeout=args.timeout_us * 1e-6,
            max_retries=args.max_retries,
            hard=tuple(hard),
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    size = parse_size(args.nbytes)
    clean = run_flood(
        machine, args.runtime, size, args.msgs_per_sync, iters=args.iters,
        placement=args.placement,
    )
    try:
        with faults.inject(plan) as scope:
            faulty = run_flood(
                machine, args.runtime, size, args.msgs_per_sync,
                iters=args.iters, placement=args.placement,
            )
    except faults.FaultError as exc:
        print(f"machine   : {machine.name} / {args.runtime}")
        print(f"plan      : loss={args.loss} jitter={args.jitter_us}us "
              f"degrade={args.degrade} hard={len(hard)} element(s) "
              f"seed={args.seed}")
        print(f"aborted   : {exc}")
        return 1
    s = scope.stats()
    print(f"machine   : {machine.name} / {args.runtime}")
    print(f"message   : {args.nbytes} x {args.msgs_per_sync}/sync x {args.iters} iters")
    print(f"plan      : loss={args.loss} jitter={args.jitter_us}us "
          f"degrade={args.degrade} down={len(down)} window(s) "
          f"hard={len(hard)} element(s) seed={args.seed}")
    print(f"clean     : {fmt_bw(clean.bandwidth)}")
    print(f"faulty    : {fmt_bw(faulty.bandwidth)} "
          f"({faulty.bandwidth / clean.bandwidth * 100:.1f}% of clean)")
    print(f"recovery  : {int(s['drops'])} drops "
          f"({int(s['hard_drops'])} at dead elements), "
          f"{int(s['retransmits'])} retransmits, "
          f"{int(s['exhausted'])} exhausted")
    if s["down_stall_seconds"] > 0:
        print(f"stalled   : {s['down_stall_seconds'] * 1e6:.1f} us at down links")
    return 0


def _cmd_roofline(args: argparse.Namespace) -> int:
    from repro.roofline import MessageRoofline
    from repro.transport import get_backend
    from repro.util import fmt_bw, fmt_time, parse_size

    machine = _resolve_machine(args.machine)
    if machine is None:
        return 2
    backend = get_backend(args.runtime)
    params = machine.loggp(
        backend.resolve_costs_key(), 0, 1, nranks=2, placement="spread",
        sided=backend.sided,
    )
    roof = MessageRoofline(params)
    B = parse_size(args.nbytes)
    bound = roof.bound(B, args.msgs_per_sync)
    print(f"machine : {machine.name} / {args.runtime}")
    print(
        f"params  : L={params.L * 1e6:.2f} us, o={params.o * 1e6:.2f} us, "
        f"g={params.g * 1e6:.2f} us, o_sync={params.o_sync * 1e6:.2f} us, "
        f"peak={fmt_bw(params.peak_bandwidth)}"
    )
    print(f"bound   : {fmt_bw(bound['bound_bandwidth'])} "
          f"({bound['fraction_of_peak'] * 100:.1f}% of peak)")
    print(f"per sync: {fmt_time(bound['bound_time_per_sync'])}")
    return 0


def _cmd_collective(args: argparse.Namespace) -> int:
    from repro.collectives import CollectiveError, explain_collective, run_collective
    from repro.util import fmt_bw, fmt_time, parse_size

    machine = _resolve_machine(args.machine)
    if machine is None:
        return 2
    nbytes = None if args.coll == "barrier" else parse_size(args.nbytes)
    try:
        r = run_collective(
            machine, args.runtime, args.coll,
            nranks=args.nranks, nbytes=nbytes, algorithm=args.algorithm,
            stripes=args.stripes, iters=args.iters,
        )
    except (CollectiveError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    except KeyError as exc:
        # e.g. a machine without this runtime's calibration
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    print(f"machine   : {r.machine} / {r.runtime}")
    print(f"collective: {r.coll} (P={r.nranks}, {r.nelems} words"
          + (f", {args.stripes} stripes" if args.stripes > 1 else "") + ")")
    print(f"algorithm : {r.algorithm}"
          + (" (selected)" if args.algorithm == "auto" else ""))
    print(f"time      : {fmt_time(r.time)} per op ({args.iters} iters)")
    if r.nbytes:
        print(f"alg bw    : {fmt_bw(r.alg_bandwidth)} (payload / time)")
        print(f"bus bw    : {fmt_bw(r.bus_bandwidth)} (wire per rank / time)")
    s = r.stats
    print(f"schedule  : {s.rounds} rounds, {s.messages} messages, "
          f"{s.bytes_moved:.0f} wire bytes (all ranks, all iters)")
    if args.explain:
        sel = r.selection or explain_collective(
            machine, args.runtime, args.coll,
            nranks=args.nranks, nbytes=nbytes,
        )
        print(sel.explain())
    return 0


def _cmd_ir(args: argparse.Namespace) -> int:
    from repro import ir
    from repro.experiments import ALL_EXPERIMENTS

    name = args.experiment
    if name == "all":
        names = sorted(ALL_EXPERIMENTS)
    elif name in ALL_EXPERIMENTS:
        names = [name]
    else:
        print(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(ALL_EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    spec = True if args.passes is None else [
        s.strip() for s in args.passes.split(",") if s.strip()
    ]
    try:
        pipeline = ir.build_pipeline(spec)
    except (KeyError, TypeError, ValueError) as e:
        print(f"bad --passes: {e}", file=sys.stderr)
        return 2
    print(f"[ir] passes: {', '.join(pipeline.names()) or '(none)'}",
          file=sys.stderr)
    status = 0
    for n in names:
        with ir.passes(pipeline), ir.collect() as reports:
            try:
                ALL_EXPERIMENTS[n]()
            except Exception:
                import traceback

                traceback.print_exc()
                status = 1
                continue
        print(f"== {n} ==")
        if reports:
            print(ir.explain_all(reports))
        else:
            print("  (no IR programs lowered)")
        print()
    return status


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "ablation":
        return _cmd_ablation(args.name)
    if args.command == "machines":
        return _cmd_machines()
    if args.command == "topo":
        return _cmd_topo(args)
    if args.command == "export":
        return _cmd_export(args)
    if args.command == "flood":
        return _cmd_flood(args)
    if args.command == "fault":
        return _cmd_fault(args)
    if args.command == "roofline":
        return _cmd_roofline(args)
    if args.command == "collective":
        return _cmd_collective(args)
    if args.command == "ir":
        return _cmd_ir(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
