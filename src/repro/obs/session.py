"""The :class:`Obs` facade and the ambient observation session.

Experiment runners build :class:`~repro.comm.job.Job` objects internally,
so instrumentation cannot be threaded through their signatures without
touching every runner.  Instead an ``Obs`` session is installed ambiently::

    from repro import obs

    with obs.observe(obs.Obs(trace=True)) as session:
        report = run_fig09()
    obs.write_chrome_trace("run.trace.json", session.traces, session.spans)

Every job constructed inside the ``with`` block attaches itself: its
fabric and comm layers feed ``session.metrics``, and (when ``trace`` is
on) each job gets a fresh tracer — built by ``sink_factory`` — registered
under a ``jobN:machine/runtime`` label in ``session.traces``.

Outside a session nothing changes: jobs default to
:class:`~repro.sim.trace.NullTracer` and no metrics, so the zero-overhead
path stays zero-overhead.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Callable, Iterator
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.sim.trace import ListSink, NullTracer, Tracer, TraceSink

__all__ = ["Obs", "observe", "current"]


class Obs:
    """One observation session: metrics + spans + per-job tracers.

    Args:
        trace: when True, jobs created inside :func:`observe` get a real
            tracer (one per job) instead of a :class:`NullTracer`.
        sink_factory: builds the sink for each job tracer; defaults to the
            unbounded in-memory :class:`~repro.sim.trace.ListSink`.  Pass
            ``lambda: RingBufferSink(100_000)`` for bounded memory or a
            ``JsonlSink`` factory for streaming to disk.
        metrics, spans: pre-built registries to feed (fresh ones by
            default).
    """

    def __init__(
        self,
        *,
        trace: bool = False,
        sink_factory: Callable[[], TraceSink] | None = None,
        metrics: MetricsRegistry | None = None,
        spans: SpanTracker | None = None,
    ):
        self.trace = trace
        self.sink_factory = sink_factory if sink_factory is not None else ListSink
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanTracker()
        self.traces: list[tuple[str, Tracer]] = []

    def tracer_for(self, label: str) -> Tracer:
        """A tracer for one job (NullTracer when tracing is off)."""
        if not self.trace:
            return NullTracer()
        tracer = Tracer(sink=self.sink_factory())
        self.traces.append((f"job{len(self.traces)}:{label}", tracer))
        return tracer

    def span(self, name: str):
        return self.spans.span(name)

    def snapshot(self) -> dict[str, Any]:
        """Metrics + span breakdown, JSON-ready (report embedding format)."""
        out: dict[str, Any] = dict(self.metrics.snapshot())
        totals = self.spans.totals()
        for name, seconds in totals.items():
            out[f"span.{name}.seconds"] = seconds
        return out

    def close(self) -> None:
        """Flush/close any closable trace sinks (JSONL files)."""
        for _label, tracer in self.traces:
            close = getattr(tracer.sink, "close", None)
            if close is not None:
                close()


_ACTIVE: list[Obs] = []


def current() -> Obs | None:
    """The innermost active session, or None (the zero-overhead default)."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def observe(session: Obs | None = None) -> Iterator[Obs]:
    """Install ``session`` (a fresh metrics-only ``Obs`` by default) as the
    ambient observation session for the duration of the block."""
    session = session if session is not None else Obs()
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.pop()
