"""``repro.obs`` — streaming observability: sinks, metrics, spans, export.

The pieces compose around the existing :class:`repro.sim.trace.Tracer`:

* :mod:`repro.obs.sinks` — bounded :class:`RingBufferSink` (keeps the last
  N records in O(1) memory) and streaming :class:`JsonlSink` (one JSON
  object per line; load back with
  :func:`repro.analysis.traces.load_jsonl`);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, fixed-bucket histograms and binned timelines, fed by
  ``net.fabric``/``net.link`` and (via collectors) the comm layers, and
  exported as a flat dict for reports;
* :mod:`repro.obs.spans` — ``with spans.span("warmup"): ...`` phase spans
  so experiment wall-clock breaks down by phase;
* :mod:`repro.obs.chrome` — Chrome trace-event / Perfetto JSON export, so
  any run opens in ``chrome://tracing`` or https://ui.perfetto.dev;
* :mod:`repro.obs.session` — the :class:`Obs` facade and the ambient
  ``observe()`` context manager that :class:`repro.comm.job.Job` consults,
  which is how ``repro run --metrics`` and ``repro trace`` instrument
  experiment code without threading arguments through every runner.

The zero-overhead default is unchanged: a job with no ambient observation
session and ``trace=False`` still gets a :class:`~repro.sim.trace.NullTracer`
and no metrics; tier-1 numbers do not move.
"""

from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeline,
)
from repro.obs.session import Obs, current, observe
from repro.obs.sinks import JsonlSink, RingBufferSink
from repro.obs.spans import SpanRecord, SpanTracker

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "Obs",
    "RingBufferSink",
    "SpanRecord",
    "SpanTracker",
    "Timeline",
    "chrome_trace",
    "current",
    "observe",
    "write_chrome_trace",
]
