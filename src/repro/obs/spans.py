"""Phase spans: named, nestable timed regions.

``with spans.span("warmup"): ...`` records a :class:`SpanRecord` with the
enclosing span path (``"fig09/warmup"``), so experiment wall-clock breaks
down by phase.  The clock is injectable: the experiment harness uses wall
time (``time.perf_counter``), while anything holding a simulator can pass
``lambda: sim.now`` to span *virtual* time instead.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from collections.abc import Callable, Iterator

__all__ = ["SpanRecord", "SpanTracker"]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span."""

    name: str  # full path, e.g. "fig09/run/simulate"
    start: float
    end: float
    depth: int

    @property
    def duration(self) -> float:
        return self.end - self.start


class SpanTracker:
    """Collects closed spans; safe to nest, cheap when unused."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self._stack: list[str] = []

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        if "/" in name:
            raise ValueError(f"span name may not contain '/': {name!r}")
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        t0 = self.clock()
        try:
            yield
        finally:
            end = self.clock()
            self._stack.pop()
            self.spans.append(SpanRecord(name=path, start=t0, end=end, depth=depth))

    def totals(self) -> dict[str, float]:
        """Total seconds per span path (summed over repeats)."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.name] = out.get(s.name, 0.0) + s.duration
        return out

    def snapshot(self) -> list[dict[str, float | str | int]]:
        """JSON-ready span list, in completion order."""
        return [
            {
                "name": s.name,
                "start": s.start,
                "end": s.end,
                "duration": s.duration,
                "depth": s.depth,
            }
            for s in self.spans
        ]

    def clear(self) -> None:
        self.spans.clear()
