"""Trace sinks beyond the in-memory default.

These plug into :class:`repro.sim.trace.Tracer` via its ``sink`` argument:

* :class:`RingBufferSink` — bounded memory: keeps the most recent
  ``capacity`` records and evicts the oldest.  The right choice for the
  paper's hashtable workload at 1e6 msg/sync, where an unbounded list is
  exactly what collapses.
* :class:`JsonlSink` — streams every record to a file as one JSON object
  per line and retains nothing in memory.  ``repro.analysis.traces`` loads
  the file back into a plain in-memory :class:`~repro.sim.trace.Tracer`,
  so post-run analysis is identical either way.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterator
from pathlib import Path
from typing import IO, Any

from repro.sim.trace import TraceRecord

__all__ = ["RingBufferSink", "JsonlSink", "record_to_json", "record_from_json"]


def record_to_json(record: TraceRecord) -> str:
    """One-line JSON form of a record (the JSONL wire format)."""
    return json.dumps(
        {
            "t": record.t,
            "kind": record.kind,
            "rank": record.rank,
            "detail": record.detail,
        },
        default=repr,
        separators=(",", ":"),
    )


def record_from_json(line: str) -> TraceRecord:
    """Inverse of :func:`record_to_json`."""
    d = json.loads(line)
    return TraceRecord(
        t=d["t"], kind=d["kind"], rank=d["rank"], detail=dict(d.get("detail", {}))
    )


class RingBufferSink:
    """Keep the last ``capacity`` records; evict the oldest in O(1)."""

    __slots__ = ("capacity", "_ring", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0  # evicted-record count (so truncation is visible)

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._ring)

    def append(self, record: TraceRecord) -> None:
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0


class JsonlSink:
    """Stream records to ``path`` as JSON Lines; retain nothing in memory.

    Usable as a context manager; otherwise call :meth:`close` (or rely on
    the file being line-buffered flushed at interpreter exit).  ``clear``
    truncates the file, mirroring ``Tracer.clear`` semantics.
    """

    __slots__ = ("path", "_fh", "written")

    records: tuple[TraceRecord, ...] = ()  # nothing retained in memory

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w")
        self.written = 0

    def append(self, record: TraceRecord) -> None:
        if self._fh is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        self._fh.write(record_to_json(record))
        self._fh.write("\n")
        self.written += 1

    def __len__(self) -> int:
        return 0  # in-memory length; total emitted is .written

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def clear(self) -> None:
        if self._fh is not None:
            self._fh.close()
        self._fh = self.path.open("w")
        self.written = 0

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
