"""Chrome trace-event / Perfetto JSON export.

Converts traced runs into the Trace Event Format (the ``traceEvents`` JSON
consumed by ``chrome://tracing`` and https://ui.perfetto.dev):

* every ``net.transfer`` record becomes a complete ("X") event on the
  fabric track, spanning injection start to tail arrival;
* ``net.link.down`` records (fault-plan outage windows) become "X"
  events spanning the outage on the fabric track; ``net.fault.*``
  records (drops, exhausted retransmissions) become fabric instants;
* every rank-level record (``send``, ``put``, ``put_signal``, ``cas``,
  ``arrive``, ...) becomes an instant ("i") event on that rank's track;
* harness phase spans (wall clock) become complete events in their own
  process, so simulated time and harness time never share a track.

Timestamps are microseconds, as the format requires; pid/tid are small
integers with ``process_name``/``thread_name`` metadata events naming them.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Any

from repro.sim.trace import TraceRecord, Tracer
from repro.obs.spans import SpanTracker

__all__ = ["chrome_trace", "write_chrome_trace"]

_FABRIC_TID = 0  # rank r maps to tid r + 1

# Fallback label for pid 0, the harness span process.
_HARNESS_PID = 0


def _meta(pid: int, name: str, tid: int | None = None) -> dict[str, Any]:
    ev: dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        ev["tid"] = tid
    return ev


def _transfer_event(pid: int, rec: TraceRecord, scale: float) -> dict[str, Any]:
    d = rec.detail
    start = float(d.get("start", rec.t))
    arrival = float(d.get("arrival", rec.t))
    return {
        "ph": "X",
        "pid": pid,
        "tid": _FABRIC_TID,
        "ts": start * scale,
        "dur": max(arrival - start, 0.0) * scale,
        "name": f"{d.get('src', '?')}->{d.get('dst', '?')}",
        "cat": "net",
        "args": {k: v for k, v in d.items() if k not in ("src", "dst")},
    }


def _link_down_event(pid: int, rec: TraceRecord, scale: float) -> dict[str, Any]:
    d = rec.detail
    start = float(d.get("start", rec.t))
    end = float(d.get("arrival", rec.t))
    return {
        "ph": "X",
        "pid": pid,
        "tid": _FABRIC_TID,
        "ts": start * scale,
        "dur": max(end - start, 0.0) * scale,
        "name": f"DOWN {d.get('link', '?')}",
        "cat": "fault",
        "args": dict(d),
    }


def _fault_event(pid: int, rec: TraceRecord, scale: float) -> dict[str, Any]:
    return {
        "ph": "i",
        "pid": pid,
        "tid": _FABRIC_TID,
        "ts": rec.t * scale,
        "s": "t",
        "name": rec.kind,
        "cat": "fault",
        "args": dict(rec.detail),
    }


def _instant_event(pid: int, rec: TraceRecord, scale: float) -> dict[str, Any]:
    return {
        "ph": "i",
        "pid": pid,
        "tid": rec.rank + 1,
        "ts": rec.t * scale,
        "s": "t",
        "name": rec.kind,
        "cat": "comm",
        "args": dict(rec.detail),
    }


def chrome_trace(
    traces: Sequence[tuple[str, Tracer | Iterable[TraceRecord]]],
    spans: SpanTracker | None = None,
    *,
    time_scale: float = 1e6,
) -> dict[str, Any]:
    """Build the trace-event dict for labelled traces plus optional spans.

    Args:
        traces: ``(label, tracer_or_records)`` pairs; each becomes one
            process in the viewer (simulated-time tracks).
        spans: harness phase spans (wall-clock tracks, separate process).
        time_scale: seconds → trace timestamp units (default microseconds).
    """
    events: list[dict[str, Any]] = []
    if spans is not None and spans.spans:
        events.append(_meta(_HARNESS_PID, "harness (wall clock)"))
        base = min(s.start for s in spans.spans)
        for s in spans.spans:
            events.append(
                {
                    "ph": "X",
                    "pid": _HARNESS_PID,
                    "tid": 0,
                    "ts": (s.start - base) * time_scale,
                    "dur": s.duration * time_scale,
                    "name": s.name,
                    "cat": "phase",
                    "args": {"depth": s.depth},
                }
            )
    for i, (label, trace) in enumerate(traces):
        pid = i + 1
        events.append(_meta(pid, label))
        events.append(_meta(pid, "fabric", _FABRIC_TID))
        seen_ranks: set[int] = set()
        for rec in trace:
            if rec.kind == "net.transfer":
                events.append(_transfer_event(pid, rec, time_scale))
            elif rec.kind == "net.link.down":
                events.append(_link_down_event(pid, rec, time_scale))
            elif rec.kind.startswith("net.fault."):
                events.append(_fault_event(pid, rec, time_scale))
            elif rec.rank >= 0:
                if rec.rank not in seen_ranks:
                    seen_ranks.add(rec.rank)
                    events.append(_meta(pid, f"rank {rec.rank}", rec.rank + 1))
                events.append(_instant_event(pid, rec, time_scale))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.chrome", "time_unit": "us"},
    }


def write_chrome_trace(
    path: str | Path,
    traces: Sequence[tuple[str, Tracer | Iterable[TraceRecord]]],
    spans: SpanTracker | None = None,
    *,
    time_scale: float = 1e6,
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    doc = chrome_trace(traces, spans, time_scale=time_scale)
    path.write_text(json.dumps(doc, default=repr) + "\n")
    return path
