"""Metrics registry: counters, gauges, fixed-bucket histograms, timelines.

The registry is deliberately small and allocation-light — instruments are
created once (at wiring time) and hot paths touch plain attributes:

* :class:`Counter` — monotonically increasing value (messages, bytes);
* :class:`Gauge` — last-set value (queue depth, per-link totals);
* :class:`Histogram` — fixed bucket edges chosen at creation; ``observe``
  is a bisect + increment (injection-queue wait distributions);
* :class:`Timeline` — values accumulated into fixed-width time bins
  (per-link bytes over time → achieved-bandwidth timelines).

``snapshot()`` flattens everything into one ``dict[str, value]`` for
embedding in experiment reports.  *Collectors* are callables registered by
subsystems that prefer to derive metrics at snapshot time from state they
already keep (per-link byte counters, per-rank :class:`OpCounter`\\ s) —
their outputs are sum-merged on key collision so several jobs feeding one
registry aggregate instead of clobbering each other.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Callable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "Timeline", "MetricsRegistry"]


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``len(edges) + 1`` buckets.

    ``counts[i]`` counts observations ``x <= edges[i]``; the final bucket
    is the overflow (``x > edges[-1]``).  Edges must be strictly
    increasing.  Tracks count/sum/min/max alongside the buckets.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]):
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must strictly increase")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.counts[bisect_left(self.edges, x)] += 1
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        """Estimated p-quantile (``p`` in [0, 1]) from the bucket counts.

        Linear interpolation inside the bucket holding the target rank,
        with the tracked ``min``/``max`` bounding the open first/overflow
        buckets — so p99/p999 tail estimates stay finite and within the
        observed range.  NaN with no observations.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"quantile p must be in [0, 1], got {p}")
        if self.count == 0:
            return float("nan")
        target = p * self.count
        cum = 0.0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                lo = self.edges[i - 1] if i >= 1 else self.min
                hi = self.edges[i] if i < len(self.edges) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi < lo:
                    hi = lo
                frac = max(0.0, target - cum) / c
                return lo + frac * (hi - lo)
            cum += c
        return self.max

    def snapshot(self) -> dict[str, float]:
        out: dict[str, float] = {
            f"{self.name}.count": self.count,
            f"{self.name}.sum": self.sum,
        }
        if self.count:
            out[f"{self.name}.min"] = self.min
            out[f"{self.name}.max"] = self.max
            out[f"{self.name}.mean"] = self.mean
            out[f"{self.name}.p99"] = self.quantile(0.99)
            out[f"{self.name}.p999"] = self.quantile(0.999)
        for edge, c in zip(self.edges, self.counts):
            out[f"{self.name}.le_{edge:g}"] = c
        out[f"{self.name}.le_inf"] = self.counts[-1]
        return out


class Timeline:
    """Values accumulated into fixed-width time bins.

    ``observe(t, v)`` adds ``v`` to the bin containing ``t``; ``series()``
    returns ``[(bin_center_seconds, total), ...]`` in time order.  Dividing
    a bytes timeline by ``bin_width`` gives achieved bytes/s per window.
    """

    __slots__ = ("name", "bin_width", "bins")

    def __init__(self, name: str, bin_width: float):
        if bin_width <= 0:
            raise ValueError(f"timeline {name!r} bin_width must be > 0")
        self.name = name
        self.bin_width = float(bin_width)
        self.bins: dict[int, float] = {}

    def observe(self, t: float, value: float) -> None:
        key = int(t // self.bin_width)
        self.bins[key] = self.bins.get(key, 0.0) + value

    def series(self) -> list[tuple[float, float]]:
        w = self.bin_width
        return [((k + 0.5) * w, v) for k, v in sorted(self.bins.items())]


class MetricsRegistry:
    """Named instruments plus snapshot-time collectors (see module doc)."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram | Timeline] = {}
        self._collectors: list[Callable[[], dict[str, float]]] = []

    def _get_or_create(self, name: str, cls, factory):
        inst = self._instruments.get(name)
        if inst is not None:
            if not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst
        inst = factory()
        self._instruments[name] = inst
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name, edges))

    def timeline(self, name: str, bin_width: float) -> Timeline:
        return self._get_or_create(name, Timeline, lambda: Timeline(name, bin_width))

    def register_collector(self, fn: Callable[[], dict[str, float]]) -> None:
        """Register a snapshot-time producer of ``{flat_key: value}``.

        Collector outputs are sum-merged on key collision, so e.g. several
        jobs on the same machine aggregate their per-link byte counts.
        """
        self._collectors.append(fn)

    def snapshot(self) -> dict[str, object]:
        """Flatten every instrument and collector into one dict."""
        out: dict[str, object] = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, (Counter, Gauge)):
                out[name] = inst.value
            elif isinstance(inst, Histogram):
                out.update(inst.snapshot())
            else:
                out[name] = [[t, v] for t, v in inst.series()]
        for fn in self._collectors:
            for key, value in fn().items():
                prev = out.get(key)
                out[key] = value if prev is None else prev + value
        return out
