"""repro.perf — the vectorized bulk-transfer engine.

Evaluates homogeneous message batches (flood rounds, hashtable epochs,
CAS streams) in one pass instead of per-message event dispatch, while
staying byte-identical to the scalar path.  See :mod:`repro.perf.engine`
for the exactness argument and :mod:`repro.perf.config` for the on/off
switches.

Public surface::

    perf.enabled()            # is the engine globally on?
    perf.vectorized(False)    # context manager: force off (or on)
    perf.bulk_enabled(job)    # may batches on this job take the bulk path?
"""

from repro.perf.config import bulk_enabled, enabled, vectorized

__all__ = ["enabled", "vectorized", "bulk_enabled"]
