"""Bulk evaluation of blocking remote-atomic streams (hashtable/CAS flood).

A blocking remote CAS on the scalar path is ~12 heap events: the issue
timeout, the 16 B request transfer, the target-side serialisation timeout,
the 8 B response transfer, the completion event and the waiter's wake-up
timeout.  The paper's sender's-control workloads (Fig. 4 CAS flood, the
hashtable insert epoch) issue these back-to-back from one origin to one
passive target — a homogeneous stream this module replays as a single
tight loop over the identical float recurrence.

Replicated per op (see ``WindowHandle._atomic`` / ``RankContext.wait``):

1. ``operations += 1; atomics += 1``; origin clock ``t += fetch_op``;
2. 16 B request transfer at ``t`` (``atomic=True`` spacing) -> heap time
   ``h_req``;
3. target atomic unit: ``start = max(h_req, atomic_next_free)``;
   ``finish = start + atomic_apply``; the apply runs at
   ``h_req + (finish - h_req)`` (the scalar path's relative timeout);
4. the CAS/FAA applies against the *real* window buffer — values matter
   (a CAS stream's outcome depends on what previous ops wrote);
5. 8 B response transfer at the apply time -> heap time ``h_resp``;
6. blocking completion: MPI-style (``ctx.wait``) charges
   ``syncs += 1; operations += 1`` and wakes ``sync_enter + wait_per_req``
   after ``h_resp``; shmem-style (``atomic_compare_swap``) resumes at
   ``h_resp`` with no further cost.

Contract (beyond :func:`repro.perf.bulk_enabled`): the target rank is
passive for the duration of the stream — no write watchers on the window
(checked at entry) and no competing traffic on the route (by construction
of the single-writer call sites).
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING, Any

from repro.comm.base import CommError
from repro.perf.engine import FabricPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.context import RankContext
    from repro.comm.window import Window

__all__ = ["bulk_cas_stream"]


def bulk_cas_stream(
    ctx: "RankContext",
    win: "Window",
    target: int,
    offset: int,
    ops: list[tuple[Any, Any]],
    *,
    count_wait: bool,
) -> Generator:
    """Run a stream of blocking CAS ops; returns the list of old values.

    ``count_wait=True`` replicates ``cas_blocking`` (CAS + ``ctx.wait``,
    the one-sided MPI idiom); ``False`` replicates the fused shmem
    ``atomic_compare_swap`` (resume on the response, no wait accounting).
    """
    if not 0 <= offset < win.count:
        raise CommError(f"atomic offset {offset} out of bounds ({win.count})")
    if win._watchers[target]:
        raise CommError(
            "bulk_cas_stream requires a passive target (no write watchers)"
        )
    sim = ctx.sim
    costs = ctx.costs
    fetch_op = costs.fetch_op
    atomic_apply = costs.atomic_apply
    wake = costs.sync_enter + costs.wait_per_req
    c = ctx.counter
    target_ep = ctx.job.endpoints[target]
    # Pre-built plans: the stream alternates a 16 B atomic-spaced request
    # with an 8 B response, so both transfer shapes are constant.
    fwd_time = FabricPath(ctx.fabric, ctx.endpoint, target_ep).plan(
        16.0, atomic=True
    ).time
    rev_time = FabricPath(ctx.fabric, target_ep, ctx.endpoint).plan(8.0).time
    anf = win._atomic_next_free[target]
    buf = win.buffers[target]
    t = sim.now
    old_values = []
    for compare, value in ops:
        c.operations += 1
        c.atomics += 1
        t = t + fetch_op
        h_req = fwd_time(t)
        start = anf if anf > h_req else h_req  # max(now, atomic_next_free)
        finish = start + atomic_apply
        anf = finish
        u = h_req + (finish - h_req)
        old = buf[offset].item()
        if old == compare:
            buf[offset] = value
        old_values.append(old)
        h_resp = rev_time(u)
        if count_wait:
            c.syncs += 1
            c.operations += 1
            t = h_resp + wake if wake > 0 else h_resp
        else:
            t = h_resp
    win._atomic_next_free[target] = anf
    yield sim.at_time(t)
    return old_values
