"""Global switch for the vectorized bulk-transfer engine.

The bulk engine (:mod:`repro.perf.engine`) is on by default: it is exact
by construction, so there is no accuracy trade-off in leaving it enabled.
Two override mechanisms exist for benchmarking and debugging:

* the ``REPRO_PERF`` environment variable (``0``/``off``/``false``/``no``
  disables the engine process-wide);
* the :func:`vectorized` context manager, which wins over the
  environment for the duration of the block::

      from repro import perf

      with perf.vectorized(False):
          scalar = run_flood(machine, "one_sided", 64, 1024)

Independent of this switch, batches fall back to the scalar per-message
path whenever exactness cannot be guaranteed for the whole job: an
active fault plan (loss/jitter/outages need per-message draws) or an
enabled tracer (per-message records must be emitted) — see
:func:`bulk_enabled`.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["enabled", "vectorized", "bulk_enabled"]

_ENV_VAR = "REPRO_PERF"
_FALSY = frozenset({"0", "off", "false", "no"})

# Innermost-wins override stack installed by vectorized().
_STACK: list[bool] = []


def enabled() -> bool:
    """Is the bulk engine globally enabled right now?"""
    if _STACK:
        return _STACK[-1]
    return os.environ.get(_ENV_VAR, "1").strip().lower() not in _FALSY


@contextmanager
def vectorized(on: bool = True) -> Iterator[None]:
    """Force the bulk engine on (default) or off for the block."""
    _STACK.append(bool(on))
    try:
        yield
    finally:
        _STACK.pop()


def bulk_enabled(job) -> bool:
    """May batches on ``job`` take the bulk path?

    True only when the whole job is on the pristine, untraced fast path:

    * the engine is globally enabled (:func:`enabled`);
    * no fault injector is attached (fault draws, retransmissions and
      outage stalls are inherently per-message);
    * the job's tracer is disabled (per-message trace records cannot be
      batch-evaluated).

    Both sides of a batch rendezvous (sender ``commit``, receiver
    ``wait_batch``) evaluate this on the *same* job, so they always
    agree; flipping :func:`vectorized` from inside a running rank
    program is unsupported.
    """
    return (
        enabled()
        and job.fault_injector is None
        and not job.tracer.enabled
    )
