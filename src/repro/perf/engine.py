"""Exact bulk evaluation of homogeneous message batches.

The scalar path walks every message through the event heap: a ``put`` is a
timeout, a fabric delivery event, a land callback, a copy-visibility
timeout and a completion event — five heap operations and several Python
frames per message.  For the paper's hot loops (flood rounds, hashtable
epochs: up to 1e6 messages per synchronisation, all the same size on the
same route) that dispatch overhead *is* the simulator's runtime.

This module evaluates such a batch in one pass: a tight loop that performs
**the identical sequence of float operations** the scalar event chain
would have performed — channel reservations, copy-engine serialisation,
counter increments — but without touching the heap.  Only the batch's
boundary events (sender resume, batch completion, receiver wake) are
materialised, via :meth:`Simulator.at_time`, at the exact times the
scalar chain would have produced.

Why a Python loop and not a closed-form numpy kernel?  Exactness.  The
acceptance bar is *byte-identical* results, and IEEE-754 addition does not
associate: ``base + n * step`` differs from ``n`` repeated ``+= step`` by
ulps that compound over a million messages, and ``now + (T - now)`` (how
the scalar heap lands an event at ``T``) is itself not ``T``.  So the
engine replays the scalar arithmetic verbatim — per-message state updates
in issue order — and numpy serves as storage and binary search
(:func:`numpy.searchsorted` over arrival schedules), not as the
arithmetic engine.  What is eliminated is the per-message *event machinery*
(heap pushes/pops, Event/Request allocation, generator suspensions), which
is where the time went.

Exactness contract (enforced by :func:`repro.perf.bulk_enabled` plus the
construction of the call sites):

* no fault injection on the job (loss/jitter draws are per-message);
* tracer disabled (per-message records cannot be batched);
* the batch is homogeneous: one (src, dst) route, one size, one verb.

Under that contract the bulk path is not an approximation — every float
written into channel ``_next_free`` state, every counter, every metrics
observation is the one the scalar path would have written.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.comm.context import RankContext
    from repro.net.fabric import Fabric
    from repro.net.link import Channel

__all__ = ["FabricPath", "bulk_visible_last", "drain_wait_until_all", "BatchRendezvous", "rendezvous"]


def _reserve(channel: "Channel", nbytes: float, earliest: float, atomic: bool):
    """Replicates :meth:`repro.net.link.Channel.reserve` on the pristine
    (fault-free) path, float-op for float-op."""
    nf = channel._next_free
    idx = min(range(len(nf)), key=nf.__getitem__)
    start = max(earliest, nf[idx])
    params = channel.params
    gap = params.effective_atomic_gap if atomic else params.gap
    occupancy = max(gap, nbytes * params.G)
    nf[idx] = start + occupancy
    channel.bytes_carried += nbytes
    channel.messages_carried += 1
    if channel.wait_hist is not None:
        channel.wait_hist.observe(start - earliest)
    return start, start + params.latency


class FabricPath:
    """A pre-resolved ``src -> dst`` path through a pristine fabric.

    :meth:`plan` freezes the per-message constants for one homogeneous
    size into a :class:`_TransferPlan`, whose ``time``/``times`` replicate
    :meth:`repro.net.fabric.Fabric.transfer` — reservations, counters,
    metrics — and return the simulated time at which the delivery event
    would have been *processed*: the scalar path schedules it via
    ``succeed(delay=arrival - now)``, so the heap time is
    ``now + (arrival - now)``, which can differ from ``arrival`` by one
    ulp.  Everything downstream of a delivery (copy engines, atomic
    units, signal waits) keys off that heap time, so that is what we
    return.
    """

    __slots__ = ("fabric", "src", "route", "inj", "hops")

    def __init__(self, fabric: "Fabric", src: str, dst: str):
        if fabric.faults is not None:
            raise RuntimeError(
                "bulk engine engaged on a faulty fabric — bulk_enabled() "
                "must gate every call site"
            )
        self.fabric = fabric
        self.src = src
        self.route = fabric.topology.route(src, dst)
        self.inj = fabric._injection.get(src)
        self.hops = [
            fabric._links[frozenset((u, v))].channel(u, v)
            for u, v in self.route.hops
        ]

    def plan(self, nbytes: float, atomic: bool = False) -> "_TransferPlan":
        """Freeze per-message constants for one homogeneous message size."""
        return _TransferPlan(self, nbytes, atomic)

    def transfer_time(self, nbytes: float, now: float, atomic: bool = False) -> float:
        return self.plan(nbytes, atomic).time(now)

    def transfer_times(self, nbytes: float, issue: list[float]) -> list[float]:
        """Delivery heap times for one homogeneous batch, in issue order."""
        return self.plan(nbytes).times(issue)


class _TransferPlan:
    """One (path, size, atomic?) combination with all constants hoisted.

    Per-sub-channel occupancy ``max(gap, nbytes * G)``, hop latency and
    the tail time ``nbytes * route.G`` are pure functions of frozen
    parameters, so computing them once per batch instead of once per
    message yields the identical floats.  Mutable state — ``_next_free``,
    byte counters, histograms — is updated message-by-message in issue
    order, exactly as the scalar path would.
    """

    __slots__ = ("fabric", "src", "nbytes", "loopback", "hop_data", "occ", "lat", "tail")

    def __init__(self, path: FabricPath, nbytes: float, atomic: bool):
        route = path.route
        self.fabric = path.fabric
        self.src = path.src
        self.nbytes = nbytes
        self.tail = nbytes * route.G
        self.loopback = route.nhops == 0
        if self.loopback:
            self.hop_data = []
            self.occ = max(route.gap, nbytes * route.G)
            self.lat = route.latency
        else:
            chans = ([path.inj] if path.inj is not None else []) + path.hops
            self.hop_data = []
            for ch in chans:
                p = ch.params
                gap = p.effective_atomic_gap if atomic else p.gap
                self.hop_data.append(
                    (ch._next_free, max(gap, nbytes * p.G), p.latency, ch)
                )
            self.occ = 0.0
            self.lat = 0.0

    def time(self, now: float) -> float:
        """One message: full per-message replication (state + counters)."""
        fabric = self.fabric
        nbytes = self.nbytes
        if self.loopback:
            lnf = fabric._loopback_next_free
            free = lnf.get(self.src, 0.0)
            start = now if now >= free else free  # max(now, free)
            lnf[self.src] = start + self.occ
            arrival = start + self.lat + self.tail
        else:
            t = now
            for nf, occ, lat, ch in self.hop_data:
                if len(nf) == 1:
                    f = nf[0]
                    start = t if t >= f else f  # max(earliest, next_free)
                    nf[0] = start + occ
                else:
                    idx = min(range(len(nf)), key=nf.__getitem__)
                    f = nf[idx]
                    start = t if t >= f else f
                    nf[idx] = start + occ
                ch.bytes_carried += nbytes
                ch.messages_carried += 1
                wh = ch.wait_hist
                if wh is not None:
                    wh.observe(start - t)
                t = start + lat
            arrival = t + self.tail
        fabric.total_messages += 1
        fabric.total_bytes += nbytes
        if fabric._m_bytes is not None:
            fabric._m_messages.inc()
            fabric._m_bytes.inc(nbytes)
            fabric._m_timeline.observe(arrival, nbytes)
        return now + (arrival - now)

    def times(self, issue: list[float]) -> list[float]:
        """Delivery heap times for the whole batch, in issue order.

        When metrics or wait histograms are attached (an obs session is
        active) every message runs the full :meth:`time` replication;
        otherwise the reservation recurrence runs in a tight loop and the
        float accumulators (``bytes_carried``, ``total_bytes``) are
        advanced afterwards by the same per-message ``+=`` sequence —
        each accumulator sees the identical ordered additions either way,
        so the totals are bit-exact.
        """
        fabric = self.fabric
        if fabric._m_bytes is not None or any(
            ch.wait_hist is not None for *_rest, ch in self.hop_data
        ):
            return [self.time(t) for t in issue]
        nbytes = self.nbytes
        n = len(issue)
        out = [0.0] * n
        tail = self.tail
        if self.loopback:
            lnf = fabric._loopback_next_free
            free = lnf.get(self.src, 0.0)
            occ = self.occ
            lat = self.lat
            for k in range(n):
                now = issue[k]
                start = now if now >= free else free
                free = start + occ
                arrival = start + lat + tail
                out[k] = now + (arrival - now)
            lnf[self.src] = free
        else:
            hop_data = self.hop_data
            if len(hop_data) == 1 and len(hop_data[0][0]) == 1:
                # Single hop, single sub-channel: the flood fast path.
                nf, occ, lat, _ch = hop_data[0]
                f = nf[0]
                for k in range(n):
                    now = issue[k]
                    start = now if now >= f else f
                    f = start + occ
                    arrival = start + lat + tail
                    out[k] = now + (arrival - now)
                nf[0] = f
            else:
                for k in range(n):
                    now = issue[k]
                    t = now
                    for nf, occ, lat, _ch in hop_data:
                        if len(nf) == 1:
                            f = nf[0]
                            start = t if t >= f else f
                            nf[0] = start + occ
                        else:
                            idx = min(range(len(nf)), key=nf.__getitem__)
                            f = nf[idx]
                            start = t if t >= f else f
                            nf[idx] = start + occ
                        t = start + lat
                    arrival = t + tail
                    out[k] = now + (arrival - now)
            for *_rest, ch in hop_data:
                bc = ch.bytes_carried
                for _ in range(n):
                    bc += nbytes
                ch.bytes_carried = bc
                ch.messages_carried += n
        fabric.total_messages += n
        tb = fabric.total_bytes
        for _ in range(n):
            tb += nbytes
        fabric.total_bytes = tb
        return out


def bulk_visible_last(target_ctx: "RankContext", nbytes: float, deliver: list[float]) -> float:
    """Visibility time of the *last* write in a batch of RMA puts.

    Replicates, per message, ``RankContext.charge_copy`` at the delivery
    heap time followed by the scalar land callback's ``if delay > 0``
    visibility timeout.  Mutates the target's ``_copy_next_free`` exactly
    as the scalar sequence of land callbacks would have.
    """
    copy = nbytes * target_ctx.costs.copy_per_byte
    if copy <= 0:
        last = deliver[0]
        for v in deliver:
            if v > last:
                last = v
        return last
    cnf = target_ctx._copy_next_free
    last = deliver[0]
    for h in deliver:
        start = h if h > cnf else cnf  # max(now, _copy_next_free)
        finish = start + copy
        cnf = finish
        delay = finish - h
        v = h + delay if delay > 0 else h
        if v > last:
            last = v
    target_ctx._copy_next_free = cnf
    return last


def drain_wait_until_all(
    ctx: "RankContext",
    arrivals: np.ndarray,
    base: int,
    value: int,
    t_entry: float,
    *,
    signal_value: int = 1,
) -> float:
    """Completion time of ``ShmemContext.wait_until_all`` on one signal slot.

    Mini-simulates the scalar polling loop against a known arrival
    schedule: the signal word starts at ``base`` and gains ``signal_value``
    at each time in ``arrivals`` (sorted, the batch's delivery heap times).
    The scalar loop checks first (free), then per round wakes at the next
    write *strictly after* its clock, pays ``poll_slot`` per watched slot
    (one here), and re-checks counting every arrival at-or-before the new
    clock; a loop that ever blocked pays ``wait_wakeup`` once at the end.
    All additions replicate the scalar ``timeout`` chain (and its
    ``recheck > 0`` / ``wait_wakeup > 0`` guards) in order.
    """
    poll = ctx.costs.poll_slot  # recheck cost: poll_slot * len(idxs), one idx
    arr = arrivals.tolist()  # Python floats: identical doubles, cheap compares
    n = len(arr)
    t = t_entry
    # i = number of arrivals at-or-before the clock (searchsorted "right");
    # it is also the index of the next write strictly after the clock, so
    # one pointer serves both the signal count and the wake target, and
    # the post-wake recount is a short linear advance (the clock moved to
    # arr[i] + poll, at most a few slots ahead).
    i = int(np.searchsorted(arrivals, t, side="right"))
    blocked = False
    while base + i * signal_value < value:
        blocked = True
        if i >= n:
            raise AssertionError(
                "bulk wait_until_all: arrival schedule exhausted before the "
                "signal target was reached (sender/receiver batch mismatch?)"
            )
        t = arr[i]
        if poll > 0:
            t = t + poll
        i += 1
        while i < n and arr[i] <= t:
            i += 1
    if blocked and ctx.costs.wait_wakeup > 0:
        t = t + ctx.costs.wait_wakeup
    return t


class BatchRendezvous:
    """Sender -> receiver handoff of a batch's arrival schedule.

    The sender publishes ``(arrivals, base_signal)`` under a key
    ``(src_rank, dst_rank, iteration)`` at its commit time; a receiver that
    got there first parks an event and is woken by the publish.  Records
    are consumed by the first matching wait — one batch, one waiter.
    """

    __slots__ = ("_records", "_waiters")

    def __init__(self):
        self._records: dict = {}
        self._waiters: dict = {}

    def publish(self, key, arrivals: np.ndarray, base: int) -> None:
        self._records[key] = (arrivals, base)
        ev = self._waiters.pop(key, None)
        if ev is not None:
            ev.succeed()

    def poll(self, key):
        """Consume and return the record for ``key``, or None."""
        return self._records.pop(key, None)

    def waiter(self, key, sim):
        ev = sim.event()
        self._waiters[key] = ev
        return ev


def rendezvous(channel) -> BatchRendezvous:
    """The (lazily created) per-transport-channel batch rendezvous."""
    rv = getattr(channel, "_bulk_rendezvous", None)
    if rv is None:
        rv = channel._bulk_rendezvous = BatchRendezvous()
    return rv
