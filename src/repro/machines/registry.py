"""Registry of evaluation platforms (the paper's Table I / Table III).

Machines are constructed lazily and fresh on every call — a
:class:`~repro.machines.base.MachineModel` carries mutable route caches and
must not be shared across concurrently running simulations.

This module is the single source of machine lookups: experiment point
runners resolve registry *names* via :func:`get_machine` (projections
included), and the sweep result cache fingerprints a machine's LogGP and
topology parameters via :func:`machine_fingerprint` so recalibrating a
platform invalidates exactly its cached points.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from collections.abc import Callable

from repro.machines.base import MachineModel
from repro.machines.cluster import make_cluster
from repro.machines.frontier import frontier_cpu, frontier_gpu_projection
from repro.machines.perlmutter import perlmutter_cpu, perlmutter_gpu
from repro.machines.summit import summit_cpu, summit_gpu
from repro.net.topology import dragonfly, fat_tree, torus

__all__ = [
    "MACHINES",
    "PROJECTIONS",
    "get_machine",
    "machine_fingerprint",
    "machine_names",
    "table1_row",
    "table1_rows",
]

# The five platform views the paper evaluates (Table I).
MACHINES: dict[str, Callable[[], MachineModel]] = {
    "perlmutter-cpu": perlmutter_cpu,
    "perlmutter-gpu": perlmutter_gpu,
    "frontier-cpu": frontier_cpu,
    "summit-cpu": summit_cpu,
    "summit-gpu": summit_gpu,
}

# Platforms the paper names as future work, modelled here as projections;
# excluded from Table I but reachable by name everywhere else.
PROJECTIONS: dict[str, Callable[[], MachineModel]] = {
    "frontier-gpu": frontier_gpu_projection,
}


# Cluster name grammar: "{base}-x{N}" is an N-node star-switch cluster of
# the registered node model {base}; an optional "@generator(args)" suffix
# swaps the star for a generated router fabric, e.g.
# "perlmutter-cpu-x8@dragonfly(2,2,2)", "summit-cpu-x4@fattree(4)",
# "frontier-cpu-x4@torus(2,2)".
_CLUSTER_RE = re.compile(
    r"^(?P<base>.+)-x(?P<n>\d+)"
    r"(?:@(?P<gen>dragonfly|fattree|torus)\((?P<args>\d+(?:,\d+)*)\))?$"
)

_GENERATORS: dict[str, Callable[..., object]] = {
    "dragonfly": lambda *a: dragonfly(*a),
    "fattree": lambda *a: fat_tree(*a),
    "torus": lambda *a: torus(a),
}


def _cluster_from_name(name: str) -> MachineModel | None:
    m = _CLUSTER_RE.match(name)
    if m is None:
        return None
    factory = MACHINES.get(m.group("base")) or PROJECTIONS.get(m.group("base"))
    if factory is None:
        return None
    fabric = None
    if m.group("gen") is not None:
        args = tuple(int(x) for x in m.group("args").split(","))
        try:
            fabric = _GENERATORS[m.group("gen")](*args)
        except TypeError:
            raise ValueError(
                f"bad generator arity in machine name {name!r}: "
                f"{m.group('gen')}({m.group('args')})"
            ) from None
    return make_cluster(factory(), int(m.group("n")), fabric=fabric, name=name)


def get_machine(name: str) -> MachineModel:
    """Build a fresh machine model by registry name (incl. projections).

    Beyond the literal registry entries, cluster names compose on the fly:
    ``"{base}-x{N}"`` (star switch) and ``"{base}-x{N}@dragonfly(g,r,n)"`` /
    ``"...@fattree(k)"`` / ``"...@torus(d0,d1,...)"`` (generated fabrics).
    """
    factory = MACHINES.get(name) or PROJECTIONS.get(name)
    if factory is not None:
        return factory()
    cluster = _cluster_from_name(name)
    if cluster is not None:
        return cluster
    raise KeyError(
        f"unknown machine {name!r}; available: "
        f"{sorted(MACHINES) + sorted(PROJECTIONS)} "
        f"(or a cluster name like 'perlmutter-cpu-x4@dragonfly(2,2,2)')"
    )


def machine_names(*, include_projections: bool = False) -> list[str]:
    names = sorted(MACHINES)
    if include_projections:
        names += sorted(PROJECTIONS)
    return names


def table1_row(name: str) -> dict[str, str]:
    """One machine's row of the paper's Table I."""
    m = get_machine(name)
    gpus = f"{len(m.compute_endpoints)}x GPU" if m.is_gpu_machine else "-"
    return {
        "machine": m.name,
        "gpus": gpus,
        "cpus/cores": f"{len(m.compute_endpoints)}x{m.cores_per_endpoint}"
        if not m.is_gpu_machine
        else "host",
        "runtimes": "+".join(sorted(m.runtimes)),
        "links": "; ".join(
            f"{k}: {v}" for k, v in sorted(m.nominal_link_specs.items())
        ),
    }


def table1_rows() -> list[dict[str, str]]:
    """Rows of the paper's Table I, regenerated from the machine models."""
    return [table1_row(name) for name in machine_names()]


def machine_fingerprint(name: str) -> str:
    """Hash of everything that shapes a machine's simulated performance.

    Covers the per-runtime software cost tables (the LogGP ``o``
    components), every topology link's wire parameters, injection ports,
    the loopback model, rank capacity, and the compute-rate/GPU
    parameters.  Used by :class:`repro.sweep.cache.ResultCache` so cached
    sweep points go stale the moment a machine model is recalibrated.
    """
    m = get_machine(name)
    topo = m.topology
    payload = {
        "name": m.name,
        "runtimes": {
            k: dataclasses.asdict(v) for k, v in sorted(m.runtimes.items())
        },
        "links": {
            "<->".join(sorted(key)): dataclasses.asdict(params)
            for key, params in topo.links.items()
        },
        "injection": {
            ep: dataclasses.asdict(params)
            for ep, params in sorted(topo.injection.items())
        },
        "loopback": dataclasses.asdict(topo.loopback),
        "compute_endpoints": list(m.compute_endpoints),
        "cores_per_endpoint": m.cores_per_endpoint,
        "mem_bandwidth_per_endpoint": m.mem_bandwidth_per_endpoint,
        "mem_bandwidth_per_core": m.mem_bandwidth_per_core,
        "flop_rate_per_core": m.flop_rate_per_core,
        "gpu": dataclasses.asdict(m.gpu) if m.gpu is not None else None,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()
