"""Registry of evaluation platforms (the paper's Table I / Table III).

Machines are constructed lazily and fresh on every call — a
:class:`~repro.machines.base.MachineModel` carries mutable route caches and
must not be shared across concurrently running simulations.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.machines.base import MachineModel
from repro.machines.frontier import frontier_cpu, frontier_gpu_projection
from repro.machines.perlmutter import perlmutter_cpu, perlmutter_gpu
from repro.machines.summit import summit_cpu, summit_gpu

__all__ = [
    "MACHINES",
    "PROJECTIONS",
    "get_machine",
    "machine_names",
    "table1_rows",
]

# The five platform views the paper evaluates (Table I).
MACHINES: dict[str, Callable[[], MachineModel]] = {
    "perlmutter-cpu": perlmutter_cpu,
    "perlmutter-gpu": perlmutter_gpu,
    "frontier-cpu": frontier_cpu,
    "summit-cpu": summit_cpu,
    "summit-gpu": summit_gpu,
}

# Platforms the paper names as future work, modelled here as projections;
# excluded from Table I but reachable by name everywhere else.
PROJECTIONS: dict[str, Callable[[], MachineModel]] = {
    "frontier-gpu": frontier_gpu_projection,
}


def get_machine(name: str) -> MachineModel:
    """Build a fresh machine model by registry name (incl. projections)."""
    factory = MACHINES.get(name) or PROJECTIONS.get(name)
    if factory is None:
        raise KeyError(
            f"unknown machine {name!r}; available: "
            f"{sorted(MACHINES) + sorted(PROJECTIONS)}"
        )
    return factory()


def machine_names(*, include_projections: bool = False) -> list[str]:
    names = sorted(MACHINES)
    if include_projections:
        names += sorted(PROJECTIONS)
    return names


def table1_rows() -> list[dict[str, str]]:
    """Rows of the paper's Table I, regenerated from the machine models."""
    rows = []
    for name in machine_names():
        m = get_machine(name)
        gpus = (
            f"{len(m.compute_endpoints)}x GPU" if m.is_gpu_machine else "-"
        )
        rows.append(
            {
                "machine": m.name,
                "gpus": gpus,
                "cpus/cores": f"{len(m.compute_endpoints)}x{m.cores_per_endpoint}"
                if not m.is_gpu_machine
                else "host",
                "runtimes": "+".join(sorted(m.runtimes)),
                "links": "; ".join(
                    f"{k}: {v}" for k, v in sorted(m.nominal_link_specs.items())
                ),
            }
        )
    return rows
